#!/usr/bin/env python3
"""Noisy-neighbor storage: the Fig. 1 scenario with real app models.

A sharded Redis deployment (YCSB-C) shares a Cascade Lake host with a
storage node doing large sequential reads (FIO, 8 MB requests). Sweep
the Redis core count and print, for each point, both apps' throughput
degradation and a per-domain bottleneck explanation built with the
paper's domain abstraction.

Run:  python examples/noisy_neighbor_storage.py
"""

from repro import Host, cascade_lake
from repro.apps.fio import add_fio
from repro.apps.redis import add_redis_cores
from repro.core import C2M_READ, Domain, DomainKind, P2M_WRITE, analyze_bottleneck
from repro.experiments.reporting import render_table

WARMUP_NS = 20_000.0
MEASURE_NS = 60_000.0
CORE_COUNTS = (1, 2, 4, 6)
CONFIG = cascade_lake(llc_mode="full", ddio_enabled=True)


def run_point(n_cores: int, colocated: bool):
    host = Host(CONFIG)
    workloads = add_redis_cores(host, n_cores)
    job = None
    if colocated:
        job = add_fio(host, mode="read", name="fio")
    result = host.run(WARMUP_NS, MEASURE_NS)
    queries = sum(w.queries_completed for w in workloads)
    return result, queries, job


def main() -> None:
    host = Host(CONFIG)
    fio_only = add_fio(host, mode="read", name="fio")
    fio_iso = host.run(WARMUP_NS, MEASURE_NS)
    fio_iso_bw = fio_iso.device_bandwidth("fio")

    rows = []
    for n_cores in CORE_COUNTS:
        _, q_iso, _ = run_point(n_cores, colocated=False)
        result, q_col, _ = run_point(n_cores, colocated=True)
        redis_deg = q_iso / max(1, q_col)
        fio_deg = fio_iso_bw / result.device_bandwidth("fio")
        rows.append(
            [
                n_cores,
                q_iso,
                q_col,
                round(redis_deg, 2),
                round(fio_deg, 2),
                round(result.mem_bw_utilization, 2),
            ]
        )
        if n_cores == CORE_COUNTS[-1]:
            explain(result, fio_iso)

    print(
        render_table(
            "Redis (YCSB-C) vs FIO storage reads, Cascade Lake (DDIO on)",
            ["redis_cores", "q_isolated", "q_colocated", "redis_deg",
             "fio_deg", "mem_util"],
            rows,
        )
    )
    print("Expected: redis_deg grows with cores, fio_deg stays ~1.0 —")
    print("the blue regime of 'Understanding the Host Network' (Fig. 1).")


def explain(colocated, fio_iso) -> None:
    """Per-domain bottleneck narrative for the last colocated point."""
    config = colocated.config
    c2m = Domain(
        DomainKind.C2M_READ,
        credits=config.effective_lfb_size,
        unloaded_latency_ns=70.0,
        loaded_latency_ns=colocated.latency("c2m_read"),
        credits_in_use=colocated.lfb_avg_occupancy.get("c2m", 0.0)
        / max(1, len(CORE_COUNTS)),
    )
    p2m = Domain(
        DomainKind.P2M_WRITE,
        credits=config.iio_write_entries,
        unloaded_latency_ns=fio_iso.latency("p2m_write", "p2m"),
        loaded_latency_ns=colocated.latency("p2m_write", "p2m"),
        credits_in_use=colocated.iio_write_avg_occupancy,
    )
    print()
    print("Domain analysis at the highest load:")
    report = analyze_bottleneck(C2M_READ, {DomainKind.C2M_READ: c2m})
    print(f"  per-core C2M-Read : {report.explanation}")
    report = analyze_bottleneck(
        P2M_WRITE, {DomainKind.P2M_WRITE: p2m}, demand=config.device_rate
    )
    print(f"  P2M-Write         : {report.explanation}")
    print()


if __name__ == "__main__":
    main()
