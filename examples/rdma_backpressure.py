#!/usr/bin/env python3
"""RDMA backpressure: how host contention reaches the wire.

Server-side view of ``ib_write_bw`` over RoCE/PFC while the host also
runs a write-heavy memory workload (the paper's RDMA quadrant 3,
Appendix C/D). As C2M load grows, WPQ backpressure inflates the
P2M-Write domain; once the NIC's IIO credits are exhausted its receive
buffer fills and PFC pauses propagate to the sender — congestion that
originates entirely *inside* the host.

Run:  python examples/rdma_backpressure.py
"""

from repro import Host, cascade_lake
from repro.experiments.reporting import render_table
from repro.net.rdma import add_rdma_write_traffic

WARMUP_NS = 40_000.0
MEASURE_NS = 80_000.0
CORE_COUNTS = (0, 2, 4, 6)
#: a constrained IIO makes the credit exhaustion visible quickly
CONFIG = cascade_lake(iio_write_entries=64)


def main() -> None:
    rows = []
    for n_cores in CORE_COUNTS:
        host = Host(CONFIG)
        if n_cores:
            host.add_stream_cores(n_cores, store_fraction=1.0)
        # A small receive buffer makes the pause point land inside
        # the measurement window.
        nic = add_rdma_write_traffic(host, buffer_bytes=128 << 10)
        result = host.run(WARMUP_NS, MEASURE_NS)
        rows.append(
            [
                n_cores,
                round(result.device_bandwidth("nic") * 8, 1),  # Gb/s
                round(result.latency("p2m_write", "p2m"), 0),
                round(result.iio_write_avg_occupancy, 0),
                round(result.wpq_full_fraction, 2),
                round(result.extra["nic.pause_fraction"], 3),
                nic.rx.lines_dropped,
            ]
        )
    print(
        render_table(
            "ib_write_bw (98 Gb/s offered) vs C2M-ReadWrite, Cascade Lake",
            ["c2m_cores", "goodput_gbps", "p2m_wr_latency_ns",
             "iio_credits_used", "wpq_full_frac", "pfc_pause_frac", "drops"],
            rows,
        )
    )
    print("Expected: latency and credit usage climb with C2M load; once")
    print("credits exhaust, PFC pauses appear — and drops stay at zero")
    print("(lossless fabric). See Appendix D.1 / Fig. 23 of the paper.")


if __name__ == "__main__":
    main()
