#!/usr/bin/env python3
"""Per-bank bandwidth regulation taming a hot-bank aggressor.

Four sequential-read cores (victims) share a Cascade Lake host with an
open-loop DMA read stream cycling a 512 KB buffer — small enough that
a handful of DRAM banks hold a standing backlog. The aggressor's
backlog soaks up scheduling slots, fattening the bank-deviation CDF
tail (Fig. 7d) and inflating the victims' row-miss ratio.

Per-bank token buckets (``bank_reg_enabled``, 20% of the channel line
rate per bank, burst 4 lines) cap the hot banks, shrinking both — at
no cost to the aggressor, whose device-limited rate sits far below its
aggregate cap.

Run:  python examples/bank_regulation.py
"""

from repro.experiments.bankreg import (
    TAIL_THRESHOLDS,
    BankRegSpec,
    BankRegSummary,
    run_comparison,
)
from repro.experiments.reporting import render_table

SPEC = BankRegSpec()


def main() -> None:
    comparison = run_comparison(SPEC)
    summary = BankRegSummary.from_comparison(comparison)

    rows = [
        [f"P(dev >= {t:g})", summary.tail_baseline[t], summary.tail_regulated[t]]
        for t in TAIL_THRESHOLDS
    ]
    rows.append(
        ["row-miss inflation", summary.inflation_baseline, summary.inflation_regulated]
    )
    rows.append(
        ["victim bw (GB/s)", summary.victim_bw_baseline, summary.victim_bw_regulated]
    )
    rows.append(["hog bw (GB/s)", summary.hog_bw_baseline, summary.hog_bw_regulated])
    print(
        render_table(
            "Hot-bank aggressor: baseline vs per-bank regulation",
            ["metric", "baseline", "regulated"],
            rows,
        )
    )

    tail = max(TAIL_THRESHOLDS[:-1])
    shrink = summary.tail_baseline[tail] / max(summary.tail_regulated[tail], 1e-9)
    print(
        f"\nRegulation shrinks the P(dev >= {tail:g}) tail {shrink:.1f}x and "
        f"cuts row-miss inflation from {summary.inflation_baseline:.2f}x to "
        f"{summary.inflation_regulated:.2f}x over the victims-only floor."
    )


if __name__ == "__main__":
    main()
