#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline phenomenon in ~20 lines.

Colocate a C2M app (STREAM-style reads on 4 cores) with a P2M app
(FIO-style storage reads -> DMA writes) on the simulated Cascade Lake
host, and watch the *blue regime*: the C2M app degrades while the P2M
app is untouched, even though memory bandwidth is far from saturated.

Run:  python examples/quickstart.py
"""

from repro import Host, RequestKind, cascade_lake
from repro.core import RegimePoint, classify_regime

WARMUP_NS = 20_000.0
MEASURE_NS = 60_000.0
C2M_CORES = 4


def run(with_c2m: bool, with_p2m: bool):
    host = Host(cascade_lake())
    if with_c2m:
        host.add_stream_cores(C2M_CORES, store_fraction=0.0)  # C2M-Read
    if with_p2m:
        host.add_raw_dma(RequestKind.WRITE, name="ssd")  # P2M-Write
    return host.run(WARMUP_NS, MEASURE_NS)


def main() -> None:
    c2m_alone = run(with_c2m=True, with_p2m=False)
    p2m_alone = run(with_c2m=False, with_p2m=True)
    together = run(with_c2m=True, with_p2m=True)

    c2m_deg = c2m_alone.class_bandwidth("c2m") / together.class_bandwidth("c2m")
    p2m_deg = p2m_alone.device_bandwidth("ssd") / together.device_bandwidth("ssd")

    print(f"C2M app alone : {c2m_alone.class_bandwidth('c2m'):6.1f} GB/s "
          f"(read latency {c2m_alone.latency('c2m_read'):5.1f} ns)")
    print(f"P2M app alone : {p2m_alone.device_bandwidth('ssd'):6.1f} GB/s "
          f"(write latency {p2m_alone.latency('p2m_write', 'p2m'):5.1f} ns)")
    print(f"Colocated     : C2M {together.class_bandwidth('c2m'):5.1f} GB/s, "
          f"P2M {together.device_bandwidth('ssd'):5.1f} GB/s")
    print()
    print(f"C2M degradation        : {c2m_deg:.2f}x")
    print(f"P2M degradation        : {p2m_deg:.2f}x")
    print(f"Memory BW utilization  : {together.mem_bw_utilization:.0%} "
          "(far from saturated!)")
    print(f"C2M read latency       : {c2m_alone.latency('c2m_read'):.0f} -> "
          f"{together.latency('c2m_read'):.0f} ns")

    regime = classify_regime(
        RegimePoint(c2m_deg, p2m_deg, together.mem_bw_utilization)
    )
    print(f"Regime                 : {regime.value}")


if __name__ == "__main__":
    main()
