#!/usr/bin/env python3
"""Mitigating the red regime with host congestion control (§7).

The paper's closing discussion asks for "new mechanisms for host
network resource allocation (e.g., extending ideas in hostCC [2] to
the case of all traffic contained within a single host)". This example
runs that extension: quadrant 3 at full C2M load, with and without the
controller from ``repro.ext.hostcc``, plus the MC-side isolation
policy (peripheral writes prioritized in write drains).

Run:  python examples/hostcc_mitigation.py
"""

from repro import Host, RequestKind, cascade_lake
from repro.experiments.reporting import render_table
from repro.ext import HostCongestionController

WARMUP_NS = 40_000.0
MEASURE_NS = 80_000.0
C2M_CORES = 6
TARGET_LATENCY_NS = 360.0


def run(policy: str):
    host = Host(cascade_lake(p2m_write_priority=(policy == "mc-priority")))
    host.add_stream_cores(C2M_CORES, store_fraction=1.0)  # C2M-ReadWrite
    host.add_raw_dma(RequestKind.WRITE, name="ssd")  # P2M-Write
    controller = None
    if policy == "hostcc":
        controller = HostCongestionController(
            host, target_latency_ns=TARGET_LATENCY_NS
        )
    result = host.run(WARMUP_NS, MEASURE_NS)
    return result, controller


def main() -> None:
    rows = []
    for policy in ("baseline", "hostcc", "mc-priority"):
        result, controller = run(policy)
        rows.append(
            [
                policy,
                round(result.device_bandwidth("ssd"), 2),
                round(result.latency("p2m_write", "p2m"), 0),
                round(result.class_bandwidth("c2m"), 1),
                round(result.wpq_full_fraction, 2),
                round(controller.gap_ns, 1) if controller else 0.0,
            ]
        )
    print(
        render_table(
            f"Red regime (Q3, {C2M_CORES} C2M-RW cores) under three policies",
            ["policy", "p2m_GBps", "p2m_wr_latency_ns", "c2m_GBps",
             "wpq_full_frac", "throttle_gap_ns"],
            rows,
        )
    )
    print(f"hostcc target latency: {TARGET_LATENCY_NS:.0f} ns.")
    print("Expected: hostcc caps the P2M-Write latency and restores P2M")
    print("throughput by throttling the cores; mc-priority is a milder,")
    print("C2M-friendly improvement. Neither exists on today's hosts —")
    print("which is the paper's point.")


if __name__ == "__main__":
    main()
