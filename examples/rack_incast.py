#!/usr/bin/env python3
"""Rack incast: N RDMA writers converge on one receiving host.

The paper's testbed was two physical servers on one cable; a modelled
rack can couple N full host networks through a leaf/spine fabric on
one shared clock. Here hosts 1..N each run ``ib_write_bw`` toward host
0 (their tx NICs DMA-read the payload out of their own memory), the
flows collide in the last-hop switch queue, and per-hop PFC paces
every sender down to its fair share — congestion that originates in
the *fabric*, while host 0's memory app keeps contending with the
aggregate DMA stream *inside* the host. Fabric and host-network
backpressure compose in one simulation.

Run:  python examples/rack_incast.py
"""

from repro import Cluster, cascade_lake
from repro.experiments.reporting import render_table
from repro.net.rdma import add_rdma_write_flow

WARMUP_NS = 20_000.0
MEASURE_NS = 60_000.0
SENDER_COUNTS = (1, 2, 4)
#: receiver-side memory app (STREAM read/write on 2 cores)
MEM_CORES = 2
#: a small edge queue makes the PFC point land inside the window
QUEUE_LINES = 512


def main() -> None:
    rows = []
    for n_senders in SENDER_COUNTS:
        cluster = Cluster(
            cascade_lake(),
            n_hosts=n_senders + 1,
            n_leaves=1,
            queue_capacity_lines=QUEUE_LINES,
            pfc_enabled=True,
        )
        cluster.hosts[0].add_stream_cores(
            MEM_CORES, store_fraction=1.0, traffic_class="mem"
        )
        for src in range(1, n_senders + 1):
            add_rdma_write_flow(cluster, src=src, dst=0)
        result = cluster.run(WARMUP_NS, MEASURE_NS)
        edge = result.fabric.ports["leaf0.down.h0"]
        rows.append(
            [
                n_senders,
                round(sum(result.flow_goodput) * 8, 1),  # Gb/s
                round(min(result.flow_goodput) * 8, 1),
                round(max(result.flow_goodput) * 8, 1),
                round(edge.pause_fraction, 3),
                edge.lines_dropped,
                round(result.host(0).class_bandwidth("mem"), 2),
            ]
        )
    print(
        render_table(
            "rack incast: N x ib_write_bw (98 Gb/s) into one host, 100 Gb/s fabric",
            ["senders", "agg_goodput_gbps", "min_flow_gbps", "max_flow_gbps",
             "edge_pause_frac", "drops", "rx_mem_bw"],
            rows,
        )
    )
    print("Expected: one sender runs at line rate with no pauses; more")
    print("senders overload the last-hop link, the edge switch queue")
    print("asserts PFC (pause fraction rises) and every flow converges")
    print("to the fair share — with zero drops, because PFC is lossless.")
    print("The receiver's memory app sees the same aggregate DMA load")
    print("throughout, so its bandwidth barely moves: the contention")
    print("shifted from the host network into the fabric.")


if __name__ == "__main__":
    main()
