#!/usr/bin/env python3
"""Domain calculator: the paper's abstraction without the simulator.

Domain-by-domain credit-based flow control is useful as a back-of-the-
envelope tool on its own: given a domain's credits and latency, its
throughput is bounded by ``T <= C x 64 / L`` (§4.1). This example
answers three questions analytically:

1. What does each domain's unloaded bound look like on the paper's
   Cascade Lake host?
2. How much latency inflation can the P2M-Write domain absorb before a
   14 GB/s NVMe array notices? (§5.1's spare-credit argument)
3. Why does a fully-utilized C2M-Read domain degrade *immediately*
   under any inflation?

Run:  python examples/domain_calculator.py
"""

from repro.core import (
    C2M_READ,
    C2M_READWRITE,
    Domain,
    DomainKind,
    P2M_READ,
    P2M_WRITE,
    throughput_bound,
)
from repro.core.domain import credits_needed
from repro.experiments.reporting import render_table

#: unloaded characteristics measured in §4.2 (Cascade Lake)
DOMAINS = {
    DomainKind.C2M_READ: Domain(DomainKind.C2M_READ, 10, 70.0),
    DomainKind.C2M_WRITE: Domain(DomainKind.C2M_WRITE, 10, 10.0),
    DomainKind.P2M_WRITE: Domain(DomainKind.P2M_WRITE, 92, 300.0),
    DomainKind.P2M_READ: Domain(DomainKind.P2M_READ, 200, 520.0),
}


def main() -> None:
    rows = [
        [
            kind.value,
            domain.credits,
            domain.unloaded_latency_ns,
            round(domain.unloaded_throughput, 1),
            "yes" if kind.includes_dram else "no",
        ]
        for kind, domain in DOMAINS.items()
    ]
    print(
        render_table(
            "Unloaded domain bounds, T <= C x 64 / L (per sender)",
            ["domain", "credits", "latency_ns", "bound_GBps", "includes_DRAM"],
            rows,
        )
    )

    print()
    nvme_rate = 14.0  # GB/s, the paper's SSD array
    p2m_write = DOMAINS[DomainKind.P2M_WRITE]
    needed = credits_needed(nvme_rate, p2m_write.unloaded_latency_ns)
    ceiling = p2m_write.tolerable_latency(nvme_rate)
    print(f"P2M-Write at {nvme_rate:.0f} GB/s needs {needed:.0f} of "
          f"{p2m_write.credits:.0f} credits -> "
          f"{p2m_write.credits - needed:.0f} spare.")
    print(f"Latency may inflate to {ceiling:.0f} ns "
          f"({ceiling / p2m_write.unloaded_latency_ns:.2f}x) before any "
          "throughput is lost — the blue regime's P2M immunity (§5.1).")

    print()
    c2m = DOMAINS[DomainKind.C2M_READ]
    for inflation in (1.0, 1.26, 1.8):
        latency = c2m.unloaded_latency_ns * inflation
        bound = throughput_bound(c2m.credits, latency)
        print(f"C2M-Read at {inflation:.2f}x latency: "
              f"{bound:5.2f} GB/s per core "
              f"({bound / c2m.unloaded_throughput:.0%} of unloaded)")
    print("A full credit pool converts *any* latency inflation straight "
          "into throughput loss.")

    print()
    merged = dict(DOMAINS)
    print("End-to-end datapath bounds (per sender):")
    for path in (C2M_READ, C2M_READWRITE, P2M_WRITE, P2M_READ):
        print(f"  {path.name:<14} {path.bound(merged):6.1f} GB/s")


if __name__ == "__main__":
    main()
