#!/usr/bin/env python3
"""Domain calculator driven by live credit-runtime measurements.

Domain-by-domain credit-based flow control is useful as a back-of-the-
envelope tool: given a domain's credits and latency, its throughput is
bounded by ``T <= C x 64 / L`` (§4.1). Where the constants used to be
hand-copied from the paper, this example now *measures* them — it runs
a small fig03-style colocation (C2M-ReadWrite cores next to DMA write
and read streams) and builds every :class:`repro.core.Domain` from the
run's :class:`repro.sim.credit.DomainSnapshot`\\ s, then answers:

1. What does each domain's measured bound look like, and how close did
   the run come to it (the bound utilization ``T*L/(C*64)``)?
2. How much latency inflation can the P2M-Write domain absorb before a
   14 GB/s NVMe array notices? (§5.1's spare-credit argument)
3. Why does a saturated C2M-Read domain degrade *immediately* under
   any inflation?

Run:  python examples/domain_calculator.py
"""

from repro.core import (
    C2M_READ,
    C2M_READWRITE,
    Domain,
    DomainKind,
    P2M_READ,
    P2M_WRITE,
    throughput_bound,
)
from repro.core.domain import credits_needed
from repro.experiments.reporting import render_table
from repro.sim.records import RequestKind
from repro.topology.host import Host
from repro.topology.presets import cascade_lake

WARMUP_NS = 5_000.0
MEASURE_NS = 15_000.0

#: unloaded latencies measured in §4.2 (Cascade Lake); the run below
#: supplies the *loaded* latency, so inflation is meaningful.
UNLOADED_NS = {
    DomainKind.C2M_READ: 70.0,
    DomainKind.C2M_WRITE: 10.0,
    DomainKind.P2M_WRITE: 300.0,
    DomainKind.P2M_READ: 520.0,
}


def measure_domains():
    """One fig03-style colocated run exercising all four domains."""
    host = Host(cascade_lake(), seed=1)
    host.add_stream_cores(2, store_fraction=1.0)  # C2M-ReadWrite
    host.add_raw_dma(RequestKind.WRITE, name="dma_write")  # P2M-Write
    host.add_raw_dma(RequestKind.READ, name="dma_read")  # P2M-Read
    result = host.run(warmup_ns=WARMUP_NS, measure_ns=MEASURE_NS)
    return result


def main() -> None:
    result = measure_domains()

    rows = []
    for kind_value, snapshot in sorted(result.domain_snapshots.items()):
        rows.append(
            [
                kind_value,
                round(snapshot.credits, 1),
                round(snapshot.credits_in_use, 2),
                round(snapshot.latency_ns, 1),
                round(snapshot.throughput_bytes_per_ns, 2),
                (
                    "inf"
                    if snapshot.bound_bytes_per_ns == float("inf")
                    else round(snapshot.bound_bytes_per_ns, 1)
                ),
                f"{snapshot.bound_utilization:.0%}",
            ]
        )
    print(
        render_table(
            "Live domain snapshots, T <= C x 64 / L (colocated run)",
            ["domain", "C", "in_use", "L_ns", "T_GBps", "bound_GBps", "util"],
            rows,
        )
    )

    # Measured Domain objects: loaded latency and occupancy from the
    # run, unloaded baseline from §4.2.
    domains = {
        DomainKind(kind_value): Domain.from_snapshot(
            snapshot, unloaded_latency_ns=UNLOADED_NS[DomainKind(kind_value)]
        )
        for kind_value, snapshot in result.domain_snapshots.items()
        if snapshot.latency_ns > 0
    }

    print()
    nvme_rate = 14.0  # GB/s, the paper's SSD array
    p2m_write = domains[DomainKind.P2M_WRITE]
    needed = credits_needed(nvme_rate, p2m_write.unloaded_latency_ns)
    ceiling = p2m_write.tolerable_latency(nvme_rate)
    print(f"P2M-Write at {nvme_rate:.0f} GB/s needs {needed:.0f} of "
          f"{p2m_write.credits:.0f} credits -> "
          f"{p2m_write.credits - needed:.0f} spare.")
    print(f"Measured latency this run: {p2m_write.latency:.0f} ns "
          f"({p2m_write.latency_inflation:.2f}x unloaded); it may inflate "
          f"to {ceiling:.0f} ns before any throughput is lost — the blue "
          "regime's P2M immunity (§5.1).")

    print()
    c2m = domains[DomainKind.C2M_READ]
    saturated = "saturated" if c2m.credits_saturated else "not saturated"
    print(f"C2M-Read this run: {c2m.credits_in_use:.1f} of "
          f"{c2m.credits:.0f} credits in use ({saturated}; threshold "
          f"{c2m.saturation_threshold:.0%}).")
    for inflation in (1.0, c2m.latency_inflation, 1.8):
        latency = c2m.unloaded_latency_ns * inflation
        bound = throughput_bound(c2m.credits, latency)
        print(f"C2M-Read at {inflation:.2f}x latency: "
              f"{bound:5.2f} GB/s across senders "
              f"({bound / c2m.unloaded_throughput:.0%} of unloaded)")
    print("A full credit pool converts *any* latency inflation straight "
          "into throughput loss.")

    print()
    print("End-to-end datapath bounds (measured domains):")
    for path in (C2M_READ, C2M_READWRITE, P2M_WRITE, P2M_READ):
        try:
            print(f"  {path.name:<14} {path.bound(domains):6.1f} GB/s")
        except KeyError:
            print(f"  {path.name:<14} (domain not measured this run)")


if __name__ == "__main__":
    main()
