"""Checkpoint/restore, preemption and the no-progress watchdog."""

import os
import pickle
import random
import warnings

import pytest

from repro import Host, RequestKind, cascade_lake
from repro.sim import checkpoint, watchdog
from repro.sim.engine import Simulator, WheelSimulator
from repro.validate.harness import (
    _environment,
    assert_results_identical,
    resume_differential,
)

WARMUP, MEASURE = 2_000.0, 6_000.0


@pytest.fixture(autouse=True)
def clean_checkpoint_env(monkeypatch):
    for name in (
        "REPRO_CKPT",
        "REPRO_CKPT_PATH",
        "REPRO_CKPT_DIR",
        "REPRO_WATCHDOG",
        "REPRO_CHAOS",
    ):
        monkeypatch.delenv(name, raising=False)
    checkpoint.disarm_preempt()
    checkpoint.end_task()
    yield
    checkpoint.disarm_preempt()
    checkpoint.end_task()


def _build_host():
    host = Host(cascade_lake())
    host.add_stream_cores(2, store_fraction=0.5)
    host.add_raw_dma(RequestKind.WRITE)
    return host


# ----------------------------------------------------------------------
# Engine observers: the canonical pending walk
# ----------------------------------------------------------------------


class _Recorder:
    """Picklable callback target that logs (tag, now) firings."""

    def __init__(self):
        self.log = []
        self.sim = None

    def hit(self, tag):
        self.log.append((tag, self.sim.now))


class TestPendingEntries:
    def test_pending_entries_covers_every_entry_shape(self):
        sim = Simulator()
        rec = _Recorder()
        rec.sim = sim
        sim.schedule(5.0, rec.hit, "a")
        sim.schedule(5.0, rec.hit, "b")  # same-instant list bucket
        sim.schedule(9.0, rec.hit, "c")  # singleton bucket
        keep = sim.schedule_cancellable(7.0, rec.hit, "keep")
        dead = sim.schedule_cancellable(7.0, rec.hit, "dead")
        dead.cancel()
        sim.schedule_many(3.0, rec.hit, [("t1",), ("t2",), ("t3",)])

        entries = list(sim.pending_entries())
        # 2 tuples at t=5, 1 at t=9, 2 Events at t=7, 1 chain at t=3.
        assert len(entries) == 6
        assert {t for t, _ in entries} == {3.0, 5.0, 7.0, 9.0}
        assert keep in [e for _, e in entries]
        assert dead in [e for _, e in entries]  # lazily deleted, still walked
        for time, entry in entries:
            if isinstance(entry, type(keep)):
                assert entry.time == time
        # pending counts chain members; pending_live excludes the
        # cancelled Event.
        assert sim.pending == 8
        assert sim.pending_live == 7
        assert sorted(sim.pending_instants()) == [3.0, 5.0, 7.0, 9.0]

    def test_wheel_pending_instants_gathers_slots_and_overflow(self):
        sim = WheelSimulator()
        rec = _Recorder()
        rec.sim = sim
        near = [1.0, 2.0, 2.0, 150.0]
        for t in near:
            sim.schedule(t, rec.hit, t)
        # Beyond the wheel horizon (n_slots * slot_width = 1024 ns):
        # lands in the overflow heap.
        far = 5_000.0
        sim.schedule(far, rec.hit, "far")
        instants = sim.pending_instants()
        assert sorted(instants) == [1.0, 2.0, 150.0, far]
        assert set(instants) == set(sim._buckets)

    @pytest.mark.parametrize("engine", [Simulator, WheelSimulator])
    def test_pending_walk_agrees_with_pending_property(self, engine):
        sim = engine()
        rec = _Recorder()
        rec.sim = sim
        rng = random.Random(42)
        for _ in range(200):
            sim.schedule(rng.choice([1.0, 2.5, 2.5, 40.0, 900.0]), rec.hit, "x")
        sim.schedule_many(2.5, rec.hit, [("m",)] * 5)
        walked = 0
        for _, entry in sim.pending_entries():
            if hasattr(entry, "argslist"):
                walked += len(entry.argslist) - entry.idx
            else:
                walked += 1
        assert walked == sim.pending == 205


# ----------------------------------------------------------------------
# Engine pickling: a snapshot clone replays the identical sequence
# ----------------------------------------------------------------------


class _Feeder:
    """Self-rescheduling generator of a deterministic mixed workload."""

    def __init__(self, sim, rec, rng_seed):
        self.sim = sim
        self.rec = rec
        self.rng = random.Random(rng_seed)
        self.n = 0

    def tick(self):
        self.n += 1
        self.rec.hit(f"tick{self.n}")
        if self.n < 400:
            self.sim.schedule(self.rng.choice([0.0, 1.0, 3.5]), self.tick)
            if self.n % 7 == 0:
                self.sim.schedule_many(
                    2.0, self.rec.hit, [(f"burst{self.n}.{k}",) for k in range(3)]
                )
            if self.n % 11 == 0:
                event = self.sim.schedule_cancellable(
                    5.0, self.rec.hit, f"cancellable{self.n}"
                )
                if self.n % 22 == 0:
                    event.cancel()


class TestEnginePickleRoundTrip:
    @pytest.mark.parametrize("engine", [Simulator, WheelSimulator])
    def test_cloned_simulator_fires_identical_suffix(self, engine):
        sim = Simulator() if engine is Simulator else WheelSimulator()
        rec = _Recorder()
        rec.sim = sim
        rng = random.Random(7)
        feeder = _Feeder(sim, rec, rng.random())
        sim.schedule(0.0, feeder.tick)
        # Advance partway, snapshot, then race the original against the
        # clone: both must fire the identical remaining sequence.
        sim._drain_limited(1e9, 137)
        blob = pickle.dumps((sim, rec), protocol=4)
        sim.run_until(10_000.0)
        sim2, rec2 = pickle.loads(blob)
        sim2.run_until(10_000.0)
        assert rec2.log == rec.log
        assert sim2.now == sim.now
        assert sim2.events_processed == sim.events_processed


# ----------------------------------------------------------------------
# REPRO_CKPT parsing and plan plumbing
# ----------------------------------------------------------------------


class TestIntervalSpec:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("", (None, None)),
            ("off", (None, None)),
            ("on", (checkpoint.DEFAULT_EVERY_EVENTS, None)),
            ("events:5000", (5000, None)),
            ("25000", (25000, None)),
            ("time:750.5", (None, 750.5)),
        ],
    )
    def test_parse(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_CKPT", raw)
        assert checkpoint.interval_spec() == expected

    @pytest.mark.parametrize("raw", ["soon", "events:-1", "time:0", "0x10", "-5"])
    def test_garbage_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CKPT", raw)
        with pytest.raises(ValueError, match="REPRO_CKPT"):
            checkpoint.interval_spec()

    def test_cadence_without_destination_warns_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_CKPT", "on")
        monkeypatch.setattr(checkpoint, "_WARNED_NO_PATH", False)
        with pytest.warns(RuntimeWarning, match="no destination"):
            assert checkpoint.active_plan() is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert checkpoint.active_plan() is None  # warned once

    def test_destination_without_cadence_is_preemption_only(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CKPT_PATH", str(tmp_path / "c.ckpt"))
        plan = checkpoint.active_plan()
        assert plan is not None
        assert plan.every_events is None and plan.every_ns is None

    def test_task_path_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CKPT_PATH", str(tmp_path / "env.ckpt"))
        checkpoint.begin_task(str(tmp_path / "task.ckpt"))
        try:
            assert checkpoint.checkpoint_path().name == "task.ckpt"
        finally:
            checkpoint.end_task()
        assert checkpoint.checkpoint_path().name == "env.ckpt"


# ----------------------------------------------------------------------
# Interrupt/resume differentials (the bit-identical contract)
# ----------------------------------------------------------------------


class TestInterruptResume:
    def test_resume_is_bit_identical_at_random_events(self):
        rng = random.Random(0xC4E1)
        points = sorted(rng.randrange(2_000, 60_000) for _ in range(3))
        resume_differential(
            _build_host, WARMUP, MEASURE, at_events=points, context="default knobs"
        )

    @pytest.mark.parametrize("kernel", ["on", "off"])
    @pytest.mark.parametrize("wheel", [None, "1"])
    @pytest.mark.parametrize("burst", ["1", "4"])
    @pytest.mark.parametrize("ddio", [None, "1"])
    def test_resume_across_knob_matrix(self, kernel, wheel, burst, ddio):
        rng = random.Random(hash((kernel, wheel, burst, ddio)) & 0xFFFF)
        with _environment(
            REPRO_KERNEL=kernel, REPRO_WHEEL=wheel, REPRO_BURST=burst, REPRO_DDIO=ddio
        ):
            resume_differential(
                _build_host,
                WARMUP,
                MEASURE,
                at_events=(rng.randrange(3_000, 40_000),),
                context=f"kernel={kernel} wheel={wheel} burst={burst} ddio={ddio}",
            )

    def test_preempted_carries_path_and_warmup_interrupt_resumes(self, tmp_path):
        path = str(tmp_path / "host.ckpt")
        baseline = _build_host().run(WARMUP, MEASURE)
        with _environment(REPRO_CKPT_PATH=path):
            checkpoint.arm_preempt(1_000)  # well inside the warmup window
            try:
                with pytest.raises(checkpoint.Preempted) as excinfo:
                    _build_host().run(WARMUP, MEASURE)
            finally:
                checkpoint.disarm_preempt()
            assert excinfo.value.path == path
            restored = Host.restore(path)
            assert restored._resume_state.phase == "warmup"
            result = restored.resume_run()
        assert_results_identical(baseline, result, context="warmup preempt")

    def test_periodic_checkpoints_are_discarded_on_completion(self, tmp_path):
        path = str(tmp_path / "host.ckpt")
        baseline = _build_host().run(WARMUP, MEASURE)
        with _environment(REPRO_CKPT_PATH=path, REPRO_CKPT="events:2000"):
            result = _build_host().run(WARMUP, MEASURE)
        assert_results_identical(baseline, result, context="periodic cadence")
        assert not os.path.exists(path)  # completed runs leave no blob

    def test_time_cadence_is_result_invisible(self, tmp_path):
        path = str(tmp_path / "host.ckpt")
        baseline = _build_host().run(WARMUP, MEASURE)
        with _environment(REPRO_CKPT_PATH=path, REPRO_CKPT="time:500"):
            result = _build_host().run(WARMUP, MEASURE)
        assert_results_identical(baseline, result, context="time cadence")

    def test_post_restore_validation_walks_the_revived_graph(self, tmp_path):
        path = str(tmp_path / "host.ckpt")
        with _environment(REPRO_CKPT_PATH=path, REPRO_VALIDATE="1"):
            baseline = _build_host().run(WARMUP, MEASURE)
            checkpoint.arm_preempt(5_000)
            try:
                with pytest.raises(checkpoint.Preempted):
                    _build_host().run(WARMUP, MEASURE)
            finally:
                checkpoint.disarm_preempt()
            # restore() runs the structural invariant walk (REPRO_VALIDATE=1);
            # a corrupted revived graph would raise InvariantViolation here.
            result = Host.restore(path).resume_run()
        assert_results_identical(baseline, result, context="validated resume")


# ----------------------------------------------------------------------
# Blob integrity and knob fingerprinting
# ----------------------------------------------------------------------


class TestBlobIntegrity:
    def test_corrupt_blob_quarantined_and_run_falls_back_fresh(self, tmp_path):
        path = tmp_path / "host.ckpt"
        path.write_bytes(b"RRC1" + b"\x00" * 40)
        baseline = _build_host().run(WARMUP, MEASURE)
        with _environment(REPRO_CKPT_PATH=str(path)):
            with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
                result = _build_host().run(WARMUP, MEASURE)
        assert_results_identical(baseline, result, context="corrupt fallback")
        assert list((tmp_path / "quarantine").iterdir())

    def test_foreign_file_is_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "host.ckpt"
        from repro.experiments.runcache import encode_blob

        path.write_bytes(encode_blob({"format": "something-else"}))
        with pytest.warns(RuntimeWarning, match="not a host checkpoint"):
            with pytest.raises(checkpoint.CheckpointError):
                checkpoint.load(path)

    def test_version_mismatch_refused_without_quarantine(self, tmp_path):
        path = tmp_path / "host.ckpt"
        from repro.experiments.runcache import encode_blob

        path.write_bytes(
            encode_blob({"format": "host-ckpt", "version": checkpoint.CKPT_VERSION + 1})
        )
        with pytest.raises(checkpoint.CheckpointError, match="version"):
            checkpoint.load(path)
        assert path.exists()  # future-version blobs are left intact

    def test_knob_mismatch_refuses_resume(self, tmp_path):
        path = str(tmp_path / "host.ckpt")
        with _environment(REPRO_CKPT_PATH=path, REPRO_KERNEL="on"):
            checkpoint.end_task()  # run numbering as a fresh process would see it
            checkpoint.arm_preempt(5_000)
            try:
                with pytest.raises(checkpoint.Preempted):
                    _build_host().run(WARMUP, MEASURE)
            finally:
                checkpoint.disarm_preempt()
        with _environment(REPRO_KERNEL="off"):
            with pytest.raises(checkpoint.CheckpointError, match="kernel"):
                Host.restore(path)
        # Host.run degrades to a fresh run (with a warning), never garbage.
        with _environment(REPRO_CKPT_PATH=path, REPRO_KERNEL="off"):
            checkpoint.end_task()  # same ordinal as the interrupted run
            with pytest.warns(RuntimeWarning, match="not resuming"):
                result = _build_host().run(WARMUP, MEASURE)
        with _environment(REPRO_KERNEL="off"):
            baseline = _build_host().run(WARMUP, MEASURE)
        assert_results_identical(baseline, result, context="knob fallback")

    def test_run_key_binds_ordinal_and_windows(self):
        host = _build_host()
        checkpoint.begin_task(None)
        first = checkpoint.run_key(host, 1000.0, 2000.0)
        second = checkpoint.run_key(host, 1000.0, 2000.0)
        assert first != second  # ordinal advanced
        checkpoint.begin_task(None)  # reset numbering, as a retry would
        assert checkpoint.run_key(host, 1000.0, 2000.0) == first
        checkpoint.begin_task(None)
        assert checkpoint.run_key(host, 1000.0, 9999.0) != first


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------


class _Spinner:
    """A seeded synthetic livelock: reschedules itself at zero delay."""

    def __init__(self, sim):
        self.sim = sim
        self.fires = 0

    def pump(self):
        self.fires += 1
        self.sim.schedule(0.0, self.pump)


class TestWatchdog:
    def test_synthetic_livelock_hangs_without_watchdog(self):
        sim = Simulator()
        spinner = _Spinner(sim)
        sim.schedule(0.0, spinner.pump)
        # The hang signature: unbounded chunks execute, the clock never
        # moves. (An unchunked run_until(10.0) would simply never return.)
        for _ in range(50):
            assert sim._drain_limited(10.0, 1_000) == 1_000
        assert sim.now == 0.0
        assert sim.events_processed == 50_000
        assert spinner.fires == 50_000

    def test_watchdog_flags_livelock_within_budget(self):
        sim = Simulator()
        spinner = _Spinner(sim)
        sim.schedule(0.0, spinner.pump)
        wd = watchdog.Watchdog(budget=5_000)
        wd.arm(sim)
        chunks = 0
        with pytest.raises(watchdog.StallError) as excinfo:
            while True:
                sim._drain_limited(10.0, 1_000)
                wd.observe(sim)
                chunks += 1
                assert chunks < 100, "watchdog never fired"
        details = excinfo.value.details
        assert details["clock_ns"] == 0.0
        assert details["events_at_stuck_clock"] >= 5_000
        assert details["budget"] == 5_000
        assert details["pending_live"] >= 1
        # Fired within one chunk of the budget, not at some far excess.
        assert sim.events_processed <= 5_000 + 1_000

    def test_clock_advance_resets_the_budget(self):
        sim = Simulator()
        rec = _Recorder()
        rec.sim = sim
        wd = watchdog.Watchdog(budget=300)
        wd.arm(sim)
        # 200 events per instant — under budget each time the clock moves.
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            sim.schedule_many(t, rec.hit, [("x",)] * 200)
        while sim.pending_live:
            sim._drain_limited(100.0, 128)
            wd.observe(sim)  # must never raise

    def test_watchdog_env_run_is_result_invisible(self):
        baseline = _build_host().run(WARMUP, MEASURE)
        with _environment(REPRO_WATCHDOG="on"):
            result = _build_host().run(WARMUP, MEASURE)
        assert_results_identical(baseline, result, context="watchdog on")

    def test_dump_state_reports_channels_and_waiting_pools(self):
        host = _build_host()
        host.start()
        host.sim.run_until(1_000.0)
        details = watchdog.dump_state(host.sim, host)
        assert details["clock_ns"] == host.sim.now
        assert details["events_processed"] == host.sim.events_processed
        assert details["channels"], "expected per-channel pump state"
        for entry in details["channels"]:
            assert {"channel", "mode", "busy_until_ns", "pump_armed_at_ns"} <= set(entry)
        assert isinstance(details["pools_with_waiters"], list)

    @pytest.mark.parametrize(
        "raw,budget",
        [("", None), ("off", None), ("on", watchdog.DEFAULT_BUDGET), ("12000", 12000)],
    )
    def test_budget_from_env(self, monkeypatch, raw, budget):
        monkeypatch.setenv("REPRO_WATCHDOG", raw)
        assert watchdog.budget_from_env() == budget

    @pytest.mark.parametrize("raw", ["soon", "-3", "0x10"])
    def test_budget_garbage_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WATCHDOG", raw)
        with pytest.raises(ValueError, match="REPRO_WATCHDOG"):
            watchdog.budget_from_env()
