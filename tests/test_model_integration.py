"""End-to-end validation of the analytical model against the simulator
(the Fig. 11 claim on small windows)."""

import pytest

from repro import Host, RequestKind, cascade_lake
from repro.model.inputs import FormulaInputs
from repro.model.read_latency import read_domain_latency, read_queueing_delay
from repro.model.validation import (
    calibrate_read_constant,
    calibrate_write_constant,
    estimate_c2m_throughput,
    estimate_p2m_throughput,
)
from repro.model.write_latency import write_domain_latency

WARMUP = 15_000.0
MEASURE = 40_000.0


@pytest.fixture(scope="module")
def calibration():
    config = cascade_lake()
    timing = config.dram_timing
    host = Host(config)
    host.add_stream_cores(1, store_fraction=0.0)
    unloaded_read = host.run(WARMUP, MEASURE)
    host = Host(config)
    host.add_raw_dma(RequestKind.WRITE)
    unloaded_write = host.run(WARMUP, MEASURE)
    return {
        "config": config,
        "timing": timing,
        "c_read": calibrate_read_constant(unloaded_read, timing),
        "c_write": calibrate_write_constant(unloaded_write, timing),
    }


def colocated_run(n_cores, store_fraction, p2m_kind):
    host = Host(cascade_lake())
    host.add_stream_cores(n_cores, store_fraction)
    host.add_raw_dma(p2m_kind)
    return host.run(WARMUP, MEASURE)


class TestCalibration:
    def test_read_constant_near_unloaded_latency(self, calibration):
        assert 50.0 <= calibration["c_read"] <= 80.0

    def test_write_constant_near_unloaded_latency(self, calibration):
        assert 260.0 <= calibration["c_write"] <= 330.0


class TestFormulaAccuracy:
    @pytest.mark.parametrize("n_cores", [1, 3, 6])
    def test_quadrant1_read_latency_within_15pct(self, calibration, n_cores):
        run = colocated_run(n_cores, 0.0, RequestKind.WRITE)
        inputs = FormulaInputs.from_run(run)
        estimated = read_domain_latency(
            calibration["c_read"], inputs, calibration["timing"]
        )
        measured = run.latency("c2m_read")
        assert estimated == pytest.approx(measured, rel=0.15)

    @pytest.mark.parametrize("n_cores", [1, 3, 6])
    def test_quadrant1_c2m_throughput_within_15pct(self, calibration, n_cores):
        run = colocated_run(n_cores, 0.0, RequestKind.WRITE)
        estimate = estimate_c2m_throughput(run, calibration["c_read"], n_cores)
        assert abs(estimate.error) < 0.15

    def test_quadrant1_p2m_estimate_matches_offered_load(self, calibration):
        """Blue regime: the formula's P2M bound exceeds the offered
        rate, so the estimate equals the device rate."""
        run = colocated_run(2, 0.0, RequestKind.WRITE)
        estimate = estimate_p2m_throughput(run, calibration["c_write"], is_write=True)
        assert estimate.estimated == pytest.approx(
            run.config.device_rate, rel=0.01
        )
        assert abs(estimate.error) < 0.1

    def test_quadrant3_p2m_write_latency_tracks_formula(self, calibration):
        run = colocated_run(6, 1.0, RequestKind.WRITE)
        inputs = FormulaInputs.from_run(run)
        estimated = write_domain_latency(
            calibration["c_write"], inputs, calibration["timing"]
        )
        measured = run.latency("p2m_write", "p2m")
        assert estimated == pytest.approx(measured, rel=0.30)

    def test_write_hol_dominates_quadrant1_single_core(self, calibration):
        """Fig. 12(a): WriteHoL is the dominant component at 1 core."""
        run = colocated_run(1, 0.0, RequestKind.WRITE)
        breakdown = read_queueing_delay(
            FormulaInputs.from_run(run), calibration["timing"]
        )
        assert breakdown.write_hol >= breakdown.read_hol

    def test_read_hol_grows_with_cores_quadrant1(self, calibration):
        """Fig. 12(a): ReadHoL grows with C2M core count."""
        small = read_queueing_delay(
            FormulaInputs.from_run(colocated_run(1, 0.0, RequestKind.WRITE)),
            calibration["timing"],
        )
        large = read_queueing_delay(
            FormulaInputs.from_run(colocated_run(6, 0.0, RequestKind.WRITE)),
            calibration["timing"],
        )
        assert large.read_hol > small.read_hol

    def test_no_write_hol_in_quadrant2(self, calibration):
        """Fig. 12(b): quadrant 2 has no writes, hence no WriteHoL."""
        run = colocated_run(3, 0.0, RequestKind.READ)
        breakdown = read_queueing_delay(
            FormulaInputs.from_run(run), calibration["timing"]
        )
        assert breakdown.write_hol == pytest.approx(0.0, abs=1.0)
        assert breakdown.switching == pytest.approx(0.0, abs=1.0)
