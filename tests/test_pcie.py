"""Unit tests for the PCIe link and DMA devices."""

import pytest

from repro.dram.controller import MemoryController
from repro.dram.region import ContiguousRegion
from repro.dram.timing import DDR4_2933
from repro.pcie.device import DmaDevice, SequentialDmaWorkload
from repro.pcie.link import PcieLink
from repro.pcie.nic import Nic, NicWorkload
from repro.pcie.nvme import NvmeDevice, NvmeWorkload
from repro.sim.engine import Simulator
from repro.sim.records import CACHELINE_BYTES, RequestKind
from repro.telemetry.counters import CounterHub
from repro.uncore.cha import CHA
from repro.uncore.iio import IIO


def make_fabric(write_entries=16, read_entries=16):
    sim = Simulator()
    hub = CounterHub()
    mc = MemoryController(sim, hub, DDR4_2933, n_channels=1, n_banks=8)
    cha = CHA(sim, hub, mc, write_capacity=64, read_capacity=64)
    iio = IIO(sim, hub, write_entries=write_entries, read_entries=read_entries)
    iio.cha_admission = cha.request_admission
    link = PcieLink(sim, bandwidth_bytes_per_ns=16.0, t_prop=100.0)
    return sim, hub, mc, cha, iio, link


class TestPcieLink:
    def test_serialization_paces_upstream(self):
        sim = Simulator()
        link = PcieLink(sim, bandwidth_bytes_per_ns=16.0, t_prop=100.0)
        a = link.send_upstream(64)
        b = link.send_upstream(64)
        assert a == pytest.approx(104.0)
        assert b == pytest.approx(108.0)

    def test_directions_are_independent(self):
        sim = Simulator()
        link = PcieLink(sim, bandwidth_bytes_per_ns=16.0, t_prop=0.0)
        link.send_upstream(64)
        serialized, arrival = link.send_downstream(64)
        assert serialized == pytest.approx(4.0)

    def test_byte_accounting(self):
        sim = Simulator()
        link = PcieLink(sim, bandwidth_bytes_per_ns=16.0)
        link.send_upstream(64)
        link.send_downstream(128)
        assert link.bytes_upstream == 64
        assert link.bytes_downstream == 128

    def test_invalid_args(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PcieLink(sim, 0.0)
        with pytest.raises(ValueError):
            PcieLink(sim, 1.0, t_prop=-1)


class TestDmaDevice:
    def test_write_stream_delivers_at_device_rate(self):
        sim, hub, mc, cha, iio, link = make_fabric(write_entries=64)
        workload = SequentialDmaWorkload(
            ContiguousRegion(0, 1 << 20), RequestKind.WRITE
        )
        device = DmaDevice(sim, hub, iio, link, mc, workload, device_rate=8.0)
        device.start()
        sim.run_until(50_000.0)
        rate = workload.lines_done * CACHELINE_BYTES / 50_000.0
        assert rate == pytest.approx(8.0, rel=0.1)

    def test_write_stream_respects_iio_credits(self):
        sim, hub, mc, cha, iio, link = make_fabric(write_entries=4)
        workload = SequentialDmaWorkload(
            ContiguousRegion(0, 1 << 20), RequestKind.WRITE
        )
        device = DmaDevice(sim, hub, iio, link, mc, workload, device_rate=None)
        device.start()
        sim.run_until(20_000.0)
        assert iio.write_occ.max_seen <= 4
        assert workload.lines_done > 0

    def test_read_stream_round_trips(self):
        sim, hub, mc, cha, iio, link = make_fabric(read_entries=8)
        workload = SequentialDmaWorkload(
            ContiguousRegion(0, 1 << 20), RequestKind.READ
        )
        device = DmaDevice(sim, hub, iio, link, mc, workload, device_rate=4.0)
        device.start()
        sim.run_until(50_000.0)
        assert workload.lines_done > 0
        stat = hub.latency("domain.p2m_read.p2m")
        assert stat.count > 0
        # Non-posted round trip: at least two propagations + memory.
        assert stat.average > 2 * link.t_prop

    def test_p2m_write_domain_latency_includes_pcie(self):
        sim, hub, mc, cha, iio, link = make_fabric()
        workload = SequentialDmaWorkload(
            ContiguousRegion(0, 1 << 20), RequestKind.WRITE
        )
        device = DmaDevice(sim, hub, iio, link, mc, workload, device_rate=1.0)
        device.start()
        sim.run_until(20_000.0)
        stat = hub.latency("domain.p2m_write.p2m")
        assert stat.average > link.t_prop  # credit allocated at initiation


class TestNvme:
    def test_io_completion_accounting(self):
        sim, hub, mc, cha, iio, link = make_fabric(write_entries=64)
        device = NvmeDevice(
            sim,
            hub,
            iio,
            link,
            mc,
            region=ContiguousRegion(0, 1 << 20),
            io_size_bytes=4096,
            queue_depth=2,
            kind=RequestKind.WRITE,
            device_rate=8.0,
        )
        device.start()
        sim.run_until(100_000.0)
        assert device.ios_completed > 0
        assert device.lines_done == pytest.approx(
            device.ios_completed * 64, abs=2 * 64
        )

    def test_queue_depth_one_with_gap_is_low_load(self):
        sim, hub, mc, cha, iio, link = make_fabric(write_entries=64)
        device = NvmeDevice(
            sim,
            hub,
            iio,
            link,
            mc,
            region=ContiguousRegion(0, 1 << 20),
            io_size_bytes=4096,
            queue_depth=1,
            kind=RequestKind.WRITE,
            device_rate=8.0,
            t_io_gap=5_000.0,
        )
        device.start()
        sim.run_until(100_000.0)
        # With a 5 us gap per 4 KB IO, occupancy stays far below limit.
        assert iio.write_occ.average(sim.now) < 8
        assert device.ios_completed >= 10

    def test_invalid_io_size(self):
        with pytest.raises(ValueError):
            NvmeWorkload(ContiguousRegion(0, 100), 100, 1, RequestKind.WRITE)
        with pytest.raises(ValueError):
            NvmeWorkload(ContiguousRegion(0, 100), 4096, 0, RequestKind.WRITE)


class TestNic:
    def test_ingress_delivers_to_memory(self):
        sim, hub, mc, cha, iio, link = make_fabric(write_entries=64)
        nic = Nic(
            sim,
            hub,
            iio,
            link,
            mc,
            region=ContiguousRegion(0, 1 << 20),
            ingress_rate=4.0,
        )
        nic.start()
        sim.run_until(50_000.0)
        rate = nic.rx.lines_delivered * CACHELINE_BYTES / 50_000.0
        assert rate == pytest.approx(4.0, rel=0.1)
        assert nic.loss_rate() == 0.0

    def test_pfc_pauses_instead_of_dropping(self):
        sim, hub, mc, cha, iio, link = make_fabric(write_entries=2)
        mc.channels[0].wpq_size = 2
        nic = Nic(
            sim,
            hub,
            iio,
            link,
            mc,
            region=ContiguousRegion(0, 1 << 20),
            ingress_rate=16.0,
            buffer_bytes=64 * 64,  # tiny buffer
            pfc_enabled=True,
        )
        nic.start()
        sim.run_until(50_000.0)
        assert nic.pause_fraction() > 0.0
        assert nic.loss_rate() == 0.0

    def test_lossy_mode_drops_on_overflow(self):
        sim, hub, mc, cha, iio, link = make_fabric(write_entries=2)
        mc.channels[0].wpq_size = 2
        nic = Nic(
            sim,
            hub,
            iio,
            link,
            mc,
            region=ContiguousRegion(0, 1 << 20),
            ingress_rate=16.0,
            buffer_bytes=64 * 64,
            pfc_enabled=False,
        )
        nic.start()
        sim.run_until(50_000.0)
        assert nic.loss_rate() > 0.0

    def test_egress_reads(self):
        sim, hub, mc, cha, iio, link = make_fabric(read_entries=32)
        nic = Nic(
            sim,
            hub,
            iio,
            link,
            mc,
            region=ContiguousRegion(0, 1 << 20),
            egress_read_rate=4.0,
        )
        nic.start()
        sim.run_until(50_000.0)
        rate = nic.rx.lines_read * CACHELINE_BYTES / 50_000.0
        assert rate == pytest.approx(4.0, rel=0.15)

    def test_set_ingress_rate_restarts_flow(self):
        sim, hub, mc, cha, iio, link = make_fabric()
        nic = Nic(
            sim,
            hub,
            iio,
            link,
            mc,
            region=ContiguousRegion(0, 1 << 20),
            ingress_rate=0.0,
        )
        nic.start()
        sim.run_until(1_000.0)
        assert nic.rx.lines_arrived == 0
        nic.set_ingress_rate(4.0)
        sim.run_until(10_000.0)
        assert nic.rx.lines_arrived > 0

    def test_pause_fraction_window(self):
        workload = NicWorkload(ContiguousRegion(0, 1000), buffer_bytes=640)
        workload.pause_hi = 1
        workload.on_ingress_line(0.0)
        assert workload.paused
        assert workload.pause_fraction(10.0) == pytest.approx(1.0)
