"""The fifth credit domain: the LLC's DDIO slice (llc.ddio).

Covers the env knobs (REPRO_DDIO / REPRO_BANK_REG), the DomainSnapshot
surfaced on RunResult, the pool-occupancy == dma_lines identity, the
validator probes under REPRO_VALIDATE=1, and the §6 what-if helpers.
"""

import dataclasses

import pytest

from repro.core.domain import DomainKind
from repro.dram.regulator import bank_reg_forced
from repro.model.inputs import ddio_credits, ddio_throughput_bound
from repro.topology.host import Host
from repro.topology.presets import cascade_lake
from repro.uncore.llc import ddio_forced
from repro.sim.records import RequestKind

WARMUP = 5_000.0
MEASURE = 20_000.0


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_DDIO", raising=False)
    monkeypatch.delenv("REPRO_BANK_REG", raising=False)
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)


def ddio_config(**overrides):
    """cascade_lake with DDIO on and an LLC small enough to thrash."""
    defaults = dict(
        ddio_enabled=True,
        llc_size_bytes=256 * 1024,
        llc_ways=8,
        ddio_ways=2,
    )
    defaults.update(overrides)
    return dataclasses.replace(cascade_lake(), **defaults)


def run_p2m(config, validate=None):
    host = Host(config, validate=validate)
    host.add_raw_dma(RequestKind.WRITE)
    return host, host.run(WARMUP, MEASURE)


class TestKnobParsing:
    @pytest.mark.parametrize("value,expected", [
        ("", None), ("config", None),
        ("1", True), ("on", True), ("yes", True), ("true", True),
        ("0", False), ("off", False), ("no", False), ("false", False),
    ])
    def test_ddio_forced_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_DDIO", value)
        assert ddio_forced() is expected

    def test_ddio_forced_unset(self):
        assert ddio_forced() is None

    def test_ddio_forced_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_DDIO", "maybe")
        with pytest.raises(ValueError, match="REPRO_DDIO"):
            ddio_forced()

    @pytest.mark.parametrize("value,expected", [
        ("config", None), ("ON", True), ("Off", False),
    ])
    def test_bank_reg_forced_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_BANK_REG", value)
        assert bank_reg_forced() is expected

    def test_bank_reg_forced_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BANK_REG", "2")
        with pytest.raises(ValueError, match="REPRO_BANK_REG"):
            bank_reg_forced()


class TestDomainKind:
    def test_llc_ddio_member(self):
        assert DomainKind.LLC_DDIO.value == "llc.ddio"

    def test_llc_ddio_excludes_mc_and_dram(self):
        """Residency in the DDIO slice ends at eviction — the domain
        covers the cache, not the memory path behind it."""
        assert not DomainKind.LLC_DDIO.includes_mc
        assert not DomainKind.LLC_DDIO.includes_dram


class TestFifthSnapshot:
    def test_config_enables_fifth_domain(self):
        _, result = run_p2m(ddio_config())
        snapshot = result.domain_snapshots.get("llc.ddio")
        assert snapshot is not None
        assert snapshot.credits == pytest.approx(256 * 1024 // 8 // 64 * 2)
        assert "llc.ddio" in result.domains()

    def test_off_by_default(self):
        _, result = run_p2m(cascade_lake())
        assert "llc.ddio" not in result.domain_snapshots

    def test_env_knob_forces_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_DDIO", "1")
        host, result = run_p2m(cascade_lake())
        assert host.ddio_enabled
        assert "llc.ddio" in result.domain_snapshots

    def test_env_knob_forces_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_DDIO", "0")
        host, result = run_p2m(ddio_config())
        assert not host.ddio_enabled
        assert "llc.ddio" not in result.domain_snapshots

    def test_thrash_bound_utilization_near_one(self):
        """A DMA buffer much larger than the slice thrashes it: T·L
        saturates C·64 (§4.1 applied to the fifth domain)."""
        _, result = run_p2m(ddio_config())
        snapshot = result.domain_snapshots["llc.ddio"]
        assert snapshot.completions > 0
        # Window-boundary transients (lines resident across the window
        # edges) shave a few percent off the ideal 1.0.
        assert 0.9 <= snapshot.bound_utilization <= 1.01

    def test_pool_occupancy_matches_tag_store(self):
        host, _ = run_p2m(ddio_config())
        assert host.llc_ddio_pool is not None
        assert host.llc_ddio_pool.occ.value == host.llc.dma_lines()


class TestValidatedRun:
    def test_probes_pass_with_ddio_domain(self):
        """The full REPRO_VALIDATE probe walk — verify_tags, occupancy
        accounting, conservation, Little's law, check_domains — stays
        green with the fifth domain live and thrashing."""
        _, result = run_p2m(ddio_config(), validate=True)
        assert result.invariant_checks > 0
        assert "llc.ddio" in result.domain_snapshots


class TestWhatIfHelpers:
    def test_ddio_credits(self):
        _, result = run_p2m(ddio_config())
        assert ddio_credits(result) == pytest.approx(1024.0)

    def test_ddio_credits_none_without_ddio(self):
        _, result = run_p2m(cascade_lake())
        assert ddio_credits(result) is None

    def test_throughput_bound_matches_snapshot(self):
        _, result = run_p2m(ddio_config())
        snapshot = result.domain_snapshots["llc.ddio"]
        bound = ddio_throughput_bound(result)
        assert bound == pytest.approx(snapshot.credits * 64 / snapshot.latency_ns)

    def test_throughput_bound_what_if_scales_linearly(self):
        """Doubling the slice doubles the C·64/L bound — the §6 what-if
        the helper exists for."""
        _, result = run_p2m(ddio_config())
        base = ddio_throughput_bound(result)
        doubled = ddio_throughput_bound(result, credits=2 * ddio_credits(result))
        assert doubled == pytest.approx(2 * base)

    def test_throughput_bound_none_without_snapshot(self):
        _, result = run_p2m(cascade_lake())
        assert ddio_throughput_bound(result) is None
