"""Unit tests for the CHA and IIO."""

import pytest

from repro.dram.controller import MemoryController
from repro.dram.timing import DDR4_2933
from repro.sim.engine import Simulator
from repro.sim.records import Request, RequestKind, RequestSource
from repro.telemetry.counters import CounterHub
from repro.uncore.cha import CHA
from repro.uncore.iio import IIO


def make_cha(**kw):
    sim = Simulator()
    hub = CounterHub()
    mc = MemoryController(sim, hub, DDR4_2933, n_channels=1, n_banks=4)
    defaults = dict(write_capacity=8, read_capacity=8, t_cha_to_mc=5.0)
    defaults.update(kw)
    cha = CHA(sim, hub, mc, **defaults)
    return sim, hub, mc, cha


def request(kind, line=0, source=RequestSource.C2M, tc=None):
    req = Request(source, kind, line, traffic_class=tc)
    req.t_alloc = 0.0
    return req


class TestChaReads:
    def test_read_flows_to_rpq_and_completes(self):
        sim, hub, mc, cha = make_cha()
        done = []
        req = request(RequestKind.READ)
        mc.assign(req)
        req.on_complete = lambda r: done.append(sim.now)
        cha.request_admission(req)
        sim.run_until(1000.0)
        assert done
        assert req.t_cha_admit is not None
        assert req.t_queue_admit > req.t_cha_admit

    def test_cha_to_dram_latency_recorded(self):
        sim, hub, mc, cha = make_cha()
        req = request(RequestKind.READ)
        mc.assign(req)
        cha.request_admission(req)
        sim.run_until(1000.0)
        stat = hub.latency("cha_to_dram_read.c2m")
        assert stat.count == 1
        assert stat.average > 0

    def test_read_backlog_waits_for_rpq_space(self):
        sim, hub, mc, cha = make_cha()
        mc.channels[0].rpq_size = 1
        done = []
        for i in range(3):
            req = request(RequestKind.READ, line=i)
            mc.assign(req)
            req.on_complete = lambda r: done.append(sim.now)
            cha.request_admission(req)
        sim.run_until(5000.0)
        assert len(done) == 3

    def test_inflight_read_tracking(self):
        sim, hub, mc, cha = make_cha()
        req = request(RequestKind.READ, source=RequestSource.P2M)
        mc.assign(req)
        cha.request_admission(req)
        counter = hub.occupancy("cha.inflight_reads.p2m")
        sim.run_until(1.0)
        assert counter.value == 1
        sim.run_until(1000.0)
        assert counter.value == 0


class TestChaWrites:
    def test_write_waiting_accounting(self):
        sim, hub, mc, cha = make_cha()
        req = request(RequestKind.WRITE)
        mc.assign(req)
        cha.request_admission(req)
        assert cha.write_waiting.value == 1
        sim.run_until(1000.0)
        assert cha.write_waiting.value == 0

    def test_write_completes_at_wpq_admission(self):
        sim, hub, mc, cha = make_cha()
        admitted = []
        req = request(RequestKind.WRITE)
        mc.assign(req)
        req.on_complete = lambda r: admitted.append(sim.now)
        cha.request_admission(req)
        sim.run_until(1000.0)
        assert admitted
        stat = hub.latency("cha_to_mc_write.c2m")
        assert stat.count == 1

    def test_on_cha_admit_hook_fires(self):
        sim, hub, mc, cha = make_cha()
        hook = []
        req = request(RequestKind.WRITE)
        mc.assign(req)
        req.on_cha_admit = lambda r: hook.append(sim.now)
        cha.request_admission(req)
        assert hook == [0.0]

    def test_write_backlog_when_wpq_full(self):
        sim, hub, mc, cha = make_cha()
        mc.channels[0].wpq_size = 2
        for i in range(6):
            req = request(RequestKind.WRITE, line=i)
            mc.assign(req)
            cha.request_admission(req)
        assert cha.write_backlog_len > 0
        sim.run_until(5000.0)
        assert cha.write_backlog_len == 0


class TestChaIngress:
    def test_write_stage_full_blocks_everything_fcfs(self):
        """Red-regime HoL: a blocked write delays later reads (§5.2)."""
        sim, hub, mc, cha = make_cha(write_capacity=2)
        mc.channels[0].wpq_size = 1
        # Saturate WPQ + write stage.
        for i in range(4):
            req = request(RequestKind.WRITE, line=i)
            mc.assign(req)
            cha.request_admission(req)
        read = request(RequestKind.READ, line=99)
        mc.assign(read)
        cha.request_admission(read)
        # The read is stuck behind blocked writes in the ingress.
        assert cha.admission_queue_len > 0
        assert read.t_cha_admit is None
        sim.run_until(5000.0)
        assert read.t_cha_admit is not None

    def test_admission_delay_recorded_per_class(self):
        sim, hub, mc, cha = make_cha(write_capacity=1)
        mc.channels[0].wpq_size = 1
        for i in range(3):
            req = request(RequestKind.WRITE, line=i, source=RequestSource.P2M)
            mc.assign(req)
            cha.request_admission(req)
        sim.run_until(5000.0)
        stat = hub.latency("cha.admission_delay.p2m")
        assert stat.count == 3
        assert stat.max_seen > 0

    def test_reads_flow_while_writes_backlog_below_capacity(self):
        """Blue-to-red boundary: with write-stage room, reads are never
        blocked by waiting writes."""
        sim, hub, mc, cha = make_cha(write_capacity=8)
        mc.channels[0].wpq_size = 1
        for i in range(5):
            req = request(RequestKind.WRITE, line=i)
            mc.assign(req)
            cha.request_admission(req)
        read = request(RequestKind.READ, line=99)
        mc.assign(read)
        cha.request_admission(read)
        assert read.t_cha_admit == sim.now  # admitted immediately


class TestIio:
    def make_iio(self, **kw):
        sim = Simulator()
        hub = CounterHub()
        defaults = dict(write_entries=4, read_entries=4, t_iio_to_cha=5.0)
        defaults.update(kw)
        return sim, hub, IIO(sim, hub, **defaults)

    def test_credit_accounting(self):
        sim, hub, iio = self.make_iio()
        req = request(RequestKind.WRITE, source=RequestSource.P2M)
        assert iio.has_credit(RequestKind.WRITE)
        iio.alloc(req)
        assert iio.write_occ.value == 1
        iio.release(req)
        assert iio.write_occ.value == 0

    def test_credits_exhaust_at_capacity(self):
        sim, hub, iio = self.make_iio(write_entries=2)
        for i in range(2):
            iio.alloc(request(RequestKind.WRITE, line=i, source=RequestSource.P2M))
        assert not iio.has_credit(RequestKind.WRITE)
        assert iio.has_credit(RequestKind.READ)

    def test_release_records_domain_latency(self):
        sim, hub, iio = self.make_iio()
        req = request(RequestKind.WRITE, source=RequestSource.P2M, tc="p2m")
        iio.alloc(req)
        sim.now = 300.0  # advance clock directly for the unit test
        iio.release(req)
        stat = hub.latency("domain.p2m_write.p2m")
        assert stat.average == pytest.approx(300.0)

    def test_credit_waiters_notified(self):
        sim, hub, iio = self.make_iio()
        notified = []
        iio.read_pool.add_waiter(lambda: notified.append(1))
        req = request(RequestKind.READ, source=RequestSource.P2M)
        iio.alloc(req)
        iio.release(req)
        assert notified == [1]
        # One-shot semantics: a later release must not re-fire it.
        req2 = request(RequestKind.READ, source=RequestSource.P2M)
        iio.alloc(req2)
        iio.release(req2)
        assert notified == [1]

    def test_credit_waiters_served_in_registration_order(self):
        """Fairness regression: FIFO wakeups, not broadcast."""
        sim, hub, iio = self.make_iio()
        order = []
        for i in range(5):
            iio.write_pool.add_waiter(lambda i=i: order.append(i))
        assert iio.write_pool.waiter_count == 5
        req = request(RequestKind.WRITE, source=RequestSource.P2M)
        iio.alloc(req)
        iio.release(req)
        assert order == [0, 1, 2, 3, 4]
        assert iio.write_pool.waiter_count == 0

    def test_waiter_reregistration_waits_for_next_release(self):
        """A still-blocked waiter re-registering from its callback is
        deferred to the *next* release (no same-release spin)."""
        sim, hub, iio = self.make_iio()
        fired = []
        pool = iio.write_pool

        def waiter():
            fired.append(sim.now)
            pool.add_waiter(waiter)

        pool.add_waiter(waiter)
        req = request(RequestKind.WRITE, source=RequestSource.P2M)
        iio.alloc(req)
        iio.release(req)
        assert len(fired) == 1
        assert pool.waiter_count == 1
        req2 = request(RequestKind.WRITE, source=RequestSource.P2M)
        iio.alloc(req2)
        iio.release(req2)
        assert len(fired) == 2

    def test_rejects_c2m_traffic(self):
        sim, hub, iio = self.make_iio()
        iio.cha_admission = lambda r: None
        with pytest.raises(ValueError):
            iio.on_dma_arrival(request(RequestKind.WRITE, source=RequestSource.C2M))

    def test_requires_wiring(self):
        sim, hub, iio = self.make_iio()
        with pytest.raises(RuntimeError):
            iio.on_dma_arrival(request(RequestKind.WRITE, source=RequestSource.P2M))
