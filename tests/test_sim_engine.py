"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.sim.engine import (
    Event,
    Simulator,
    WheelSimulator,
    make_simulator,
    wheel_enabled,
)


def test_schedule_and_run_until_executes_in_order():
    sim = Simulator()
    order = []
    sim.schedule(5.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(9.0, order.append, "c")
    sim.run_until(10.0)
    assert order == ["a", "b", "c"]
    assert sim.now == 10.0


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(3.0, order.append, tag)
    sim.run_until(4.0)
    assert order == [0, 1, 2, 3, 4]


def test_run_until_excludes_boundary_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, 1)
    sim.run_until(10.0)
    assert fired == []
    sim.run_until(10.0001)
    assert fired == [1]


def test_clock_advances_to_event_time_during_execution():
    sim = Simulator()
    seen = []
    sim.schedule(7.5, lambda: seen.append(sim.now))
    sim.run_until(100.0)
    assert seen == [7.5]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until(5.0)
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at(4.0, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_cancellable(-1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at_cancellable(4.0, lambda: None)


@pytest.mark.parametrize("bad", [float("nan"), float("inf")])
def test_schedule_rejects_non_finite_delay(bad):
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(bad, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at(bad, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_cancellable(bad, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at_cancellable(bad, lambda: None)
    assert sim.pending == 0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule_cancellable(1.0, fired.append, "x")
    event.cancel()
    sim.run_until(10.0)
    assert fired == []
    assert sim.events_processed == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule_cancellable(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run_until(2.0)


def test_cancellable_event_fires_when_not_cancelled():
    sim = Simulator()
    got = []
    event = sim.schedule_cancellable(2.0, got.append, "y")
    assert isinstance(event, Event)
    assert event.time == 2.0
    sim.run_until(5.0)
    assert got == ["y"]


def test_fast_path_and_cancellable_interleave_in_seq_order():
    """Tuple entries and Event entries share one heap and one total
    order: (time, scheduling sequence), regardless of entry kind."""
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "t1")
    sim.schedule_cancellable(3.0, order.append, "c1")
    sim.schedule(3.0, order.append, "t2")
    cancelled = sim.schedule_cancellable(3.0, order.append, "c2")
    sim.schedule(1.0, order.append, "early")
    cancelled.cancel()
    sim.run_until(10.0)
    assert order == ["early", "t1", "c1", "t2"]


def test_events_scheduled_during_execution_run_same_pass():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("second"))

    sim.schedule(1.0, first)
    sim.run_until(10.0)
    assert order == ["first", "second"]


def test_zero_delay_events_scheduled_during_execution_fire_same_timestamp():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(0.0, lambda: order.append("zero"))

    sim.schedule(1.0, first)
    sim.schedule(1.0, order.append, "peer")
    sim.run_until(10.0)
    # The zero-delay event lands at the same timestamp but a later
    # sequence number, so it fires after the already-queued peer.
    assert order == ["first", "peer", "zero"]


def test_run_executes_everything():
    sim = Simulator()
    count = []
    for i in range(10):
        sim.schedule(float(i), count.append, i)
    sim.run()
    assert len(count) == 10


def test_run_skips_cancelled_events():
    sim = Simulator()
    fired = []
    keep = sim.schedule_cancellable(1.0, fired.append, "keep")
    drop = sim.schedule_cancellable(2.0, fired.append, "drop")
    drop.cancel()
    sim.run()
    assert fired == ["keep"]
    assert not keep.cancelled


def test_run_max_events_guard():
    sim = Simulator()

    def rearm():
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(RuntimeError):
        sim.run(max_events=100)


def test_events_processed_counter():
    sim = Simulator()
    for i in range(3):
        sim.schedule(float(i + 1), lambda: None)
    sim.run_until(10.0)
    assert sim.events_processed == 3


def test_pending_counts_heap_entries():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule_cancellable(2.0, lambda: None)
    assert sim.pending == 2


def test_event_args_passed_through():
    sim = Simulator()
    got = []
    sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "two")
    sim.schedule_cancellable(2.0, lambda a: got.append(a), "three")
    sim.run_until(3.0)
    assert got == [(1, "two"), "three"]


def test_back_to_back_windows_compose():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "a")
    sim.schedule(15.0, fired.append, "b")
    sim.run_until(10.0)
    assert fired == ["a"]
    sim.run_until(20.0)
    assert fired == ["a", "b"]


def test_fast_path_matches_event_path_ordering():
    """The same workload scheduled through either API produces the
    identical execution order (the fast path changed representation,
    not semantics)."""
    delays = [5.0, 1.0, 1.0, 3.0, 1.0, 9.0, 3.0]

    fast = Simulator()
    fast_order = []
    for i, d in enumerate(delays):
        fast.schedule(d, fast_order.append, i)
    fast.run_until(100.0)

    slow = Simulator()
    slow_order = []
    for i, d in enumerate(delays):
        slow.schedule_cancellable(d, slow_order.append, i)
    slow.run_until(100.0)

    assert fast_order == slow_order
    assert fast.events_processed == slow.events_processed


def test_now_is_finite_after_windows():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until(50.0)
    assert math.isfinite(sim.now)


def test_run_until_backwards_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until(10.0)
    with pytest.raises(ValueError):
        sim.run_until(5.0)
    # The failed call must not have rewound the clock.
    assert sim.now == 10.0


def test_run_until_rejects_nan_boundary():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.run_until(float("nan"))


def test_run_until_same_time_is_noop():
    sim = Simulator()
    sim.run_until(10.0)
    sim.run_until(10.0)
    assert sim.now == 10.0


def test_run_max_events_exact_with_cancelled_residue():
    """Exactly max_events live events plus trailing cancelled entries
    must not trip the runaway guard: lazily-deleted events are not
    pending work."""
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    for _ in range(3):
        sim.schedule_cancellable(100.0, fired.append, "never").cancel()
    sim.run(max_events=5)
    assert fired == [0, 1, 2, 3, 4]
    assert sim.pending == 0


def test_run_max_events_still_raises_with_live_remainder():
    sim = Simulator()
    for i in range(6):
        sim.schedule(float(i + 1), lambda: None)
    with pytest.raises(RuntimeError):
        sim.run(max_events=5)


# ---------------------------------------------------------------------------
# Calendar-queue (time-wheel) instant index: REPRO_WHEEL / WheelSimulator
# ---------------------------------------------------------------------------


class TestWheelSimulator:
    """The wheel is an alternative *instant index* over the same
    buckets, so dispatch order, the processed counter and the clock
    trajectory must be bit-identical to the binary-heap index."""

    def _drive(self, sim):
        import random

        order = []
        rng = random.Random(11)
        handles = []

        def cb(i):
            order.append((sim.now, i))
            if rng.random() < 0.3:
                sim.schedule(
                    rng.choice([0.0, 0.63, 15.0, 33.0, 1500.0]), cb, 10_000 + i
                )
            if rng.random() < 0.1 and handles:
                handles.pop(rng.randrange(len(handles))).cancel()

        for i in range(400):
            d = rng.choice([0.0, 0.2, 0.63, 1.0, 10.0, 33.0, 250.0, 5000.0])
            if i % 7 == 0:
                handles.append(sim.schedule_cancellable(d, cb, i))
            elif i % 11 == 0:
                sim.schedule_many(d, cb, [(i,), (i + 1,), (i + 2,)])
            else:
                sim.schedule(d, cb, i)
        sim.run_until(40.0)
        sim._drain_limited(200.0, 97)  # budgeted drain mid-stream
        sim.run_until(600.0)
        sim.run()
        return order, sim.events_processed, sim.now

    def test_dispatch_identical_to_heap(self):
        assert self._drive(Simulator()) == self._drive(WheelSimulator())

    def test_dispatch_identical_with_tiny_horizon(self):
        """A 64-slot, quarter-ns wheel forces constant overflow to the
        fallback heap, lazy migration and cursor jumps — the order must
        still match."""
        assert self._drive(Simulator()) == self._drive(
            WheelSimulator(slot_width=0.25, n_slots=64)
        )

    def test_far_future_overflow_round_trip(self):
        sim = WheelSimulator(slot_width=0.5, n_slots=16)
        fired = []
        sim.schedule(1e6, fired.append, "far")
        sim.schedule(1.0, fired.append, "near")
        assert len(sim._heap) == 1  # far instant parked in the overflow heap
        sim.run()
        assert fired == ["near", "far"]
        assert sim._n_wheel == 0 and not sim._heap

    def test_run_until_advances_cursor(self):
        sim = WheelSimulator(slot_width=0.5, n_slots=16)
        sim.run_until(1000.0)
        assert sim._cursor == 2000
        sim.schedule(0.5, lambda: None)  # lands in the wheel, not overflow
        assert sim._n_wheel == 1 and not sim._heap

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            WheelSimulator(slot_width=0.0)
        with pytest.raises(ValueError):
            WheelSimulator(n_slots=1)

    def test_filing_into_scanned_gap_between_windows(self):
        """Regression: a drain scans empty slots up to a far-future
        in-wheel instant before discovering it lies beyond ``t_end``,
        parking the cursor way past the window. An instant filed
        *between* windows into that scanned gap must still dispatch in
        time order (it used to be misfiled behind the cursor and fire
        only after the wheel wrapped, clock running backwards)."""

        def drive(sim):
            fired = []
            cb = lambda t: fired.append((sim.now, t))
            sim.schedule_at(500.0, cb, 500.0)  # in-wheel, far slot
            sim.run_until(10.0)  # scan parks the cursor at 500's slot
            sim.schedule_at(20.0, cb, 20.0)  # files into the gap
            sim.run_until(600.0)
            return fired, sim.now, sim.events_processed

        fired, now, _ = drive(WheelSimulator())
        assert fired == [(20.0, 20.0), (500.0, 500.0)]
        assert now == 600.0
        assert drive(WheelSimulator()) == drive(Simulator())

    def test_filing_behind_cursor_after_run(self):
        """Same family as the scanned-gap regression, via :meth:`run`:
        a completed drain leaves the cursor one past the last
        dispatched slot while ``now`` is still mid-slot, so a new
        instant in that same slot lands behind the cursor."""
        sim = WheelSimulator(slot_width=0.5, n_slots=16)
        fired = []
        sim.schedule_at(0.1, fired.append, 0.1)
        sim.run()  # cursor parked one past slot 0, now == 0.1
        sim.schedule_at(0.2, fired.append, 0.2)  # slot the cursor passed
        sim.schedule_at(5.0, fired.append, 5.0)
        sim.run()
        assert fired == [0.1, 0.2, 5.0]

    @pytest.mark.parametrize(
        "make_wheel",
        [WheelSimulator, lambda: WheelSimulator(slot_width=0.25, n_slots=64)],
        ids=["default", "tiny-horizon"],
    )
    def test_dispatch_identical_with_between_window_filing(self, make_wheel):
        """Randomized differential over interleaved schedule/run_until
        windows — the pattern the up-front ``_drive`` harness misses:
        every window can park the cursor ahead of instants that are
        filed afterwards."""
        import random

        def drive(sim):
            rng = random.Random(7)
            order = []

            def cb(i):
                order.append((sim.now, i))

            k = 0
            for _ in range(60):
                for _ in range(rng.randrange(4)):
                    d = rng.choice([0.0, 0.4, 3.0, 40.0, 700.0, 3000.0])
                    sim.schedule(d, cb, k)
                    k += 1
                sim.run_until(sim.now + rng.choice([0.3, 2.0, 25.0, 400.0]))
            sim.run()
            return order, sim.events_processed, sim.now

        assert drive(Simulator()) == drive(make_wheel())

    def test_run_max_events_guard_clears_wheel(self):
        sim = WheelSimulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        for _ in range(3):
            sim.schedule_cancellable(100.0, fired.append, "never").cancel()
        sim.run(max_events=5)
        assert fired == [0, 1, 2, 3, 4]
        assert sim.pending == 0 and sim._n_wheel == 0


class TestWheelKnob:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_WHEEL", raising=False)
        assert wheel_enabled() is False
        assert type(make_simulator()) is Simulator

    @pytest.mark.parametrize("raw", ["on", "1", "yes", "true"])
    def test_enabled_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WHEEL", raw)
        assert wheel_enabled() is True
        assert type(make_simulator()) is WheelSimulator

    @pytest.mark.parametrize("raw", ["off", "0", "no", "false", ""])
    def test_disabled_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WHEEL", raw)
        assert wheel_enabled() is False

    def test_invalid_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WHEEL", "maybe")
        with pytest.raises(ValueError, match="REPRO_WHEEL"):
            wheel_enabled()
