"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


def test_schedule_and_run_until_executes_in_order():
    sim = Simulator()
    order = []
    sim.schedule(5.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(9.0, order.append, "c")
    sim.run_until(10.0)
    assert order == ["a", "b", "c"]
    assert sim.now == 10.0


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(3.0, order.append, tag)
    sim.run_until(4.0)
    assert order == [0, 1, 2, 3, 4]


def test_run_until_excludes_boundary_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, 1)
    sim.run_until(10.0)
    assert fired == []
    sim.run_until(10.0001)
    assert fired == [1]


def test_clock_advances_to_event_time_during_execution():
    sim = Simulator()
    seen = []
    sim.schedule(7.5, lambda: seen.append(sim.now))
    sim.run_until(100.0)
    assert seen == [7.5]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until(5.0)
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at(4.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run_until(10.0)
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run_until(2.0)


def test_events_scheduled_during_execution_run_same_pass():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("second"))

    sim.schedule(1.0, first)
    sim.run_until(10.0)
    assert order == ["first", "second"]


def test_run_executes_everything():
    sim = Simulator()
    count = []
    for i in range(10):
        sim.schedule(float(i), count.append, i)
    sim.run()
    assert len(count) == 10


def test_run_max_events_guard():
    sim = Simulator()

    def rearm():
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(RuntimeError):
        sim.run(max_events=100)


def test_events_processed_counter():
    sim = Simulator()
    for i in range(3):
        sim.schedule(float(i + 1), lambda: None)
    sim.run_until(10.0)
    assert sim.events_processed == 3


def test_pending_counts_heap_entries():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2


def test_event_args_passed_through():
    sim = Simulator()
    got = []
    sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "two")
    sim.run_until(2.0)
    assert got == [(1, "two")]


def test_back_to_back_windows_compose():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "a")
    sim.schedule(15.0, fired.append, "b")
    sim.run_until(10.0)
    assert fired == ["a"]
    sim.run_until(20.0)
    assert fired == ["a", "b"]
