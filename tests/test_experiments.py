"""Tests for the experiment harness: runner, quadrants, reporting,
and light figure builders."""

import pytest

from repro import Host, cascade_lake
from repro.experiments.figures import FigureData, table1
from repro.experiments.quadrants import QUADRANTS, quadrant_experiment, run_quadrant
from repro.experiments.reporting import render_series, render_table
from repro.experiments.runner import (
    ColocationExperiment,
    c2m_bandwidth_metric,
    device_bandwidth_metric,
    workload_ops_metric,
)
from repro.sim.records import RequestKind

FAST = dict(warmup=8_000.0, measure=20_000.0)


class TestMetrics:
    def make_result(self):
        host = Host(cascade_lake())
        host.add_stream_cores(1, store_fraction=0.0)
        host.add_raw_dma(RequestKind.WRITE, name="dma")
        return host.run(FAST["warmup"], FAST["measure"])

    def test_c2m_bandwidth_metric(self):
        result = self.make_result()
        assert c2m_bandwidth_metric()(result) == result.class_bandwidth("c2m")

    def test_device_bandwidth_metric(self):
        result = self.make_result()
        assert device_bandwidth_metric("dma")(result) == result.device_bandwidth("dma")

    def test_workload_ops_metric(self):
        result = self.make_result()
        assert workload_ops_metric("c2m")(result) == result.ops_rate("c2m")


class TestColocationExperiment:
    def make_experiment(self):
        def build_c2m(host, n):
            host.add_stream_cores(n, store_fraction=0.0)

        def build_p2m(host):
            host.add_raw_dma(RequestKind.WRITE, name="dma")

        return ColocationExperiment(cascade_lake(), build_c2m, build_p2m)

    def test_point_fields(self):
        point = self.make_experiment().point(2, **FAST)
        assert point.n_c2m_cores == 2
        assert point.c2m_isolated > 0
        assert point.p2m_isolated > 0
        assert point.c2m_degradation >= 1.0
        assert 0.9 <= point.p2m_degradation <= 1.1

    def test_sweep_shares_p2m_isolation_run(self):
        points = self.make_experiment().sweep((1, 2), **FAST)
        assert points[0].p2m_isolated_run is points[1].p2m_isolated_run

    def test_degradation_handles_zero(self):
        point = self.make_experiment().point(1, **FAST)
        point.c2m_colocated = 0.0
        assert point.c2m_degradation == float("inf")


class TestQuadrants:
    def test_specs_cover_four_combinations(self):
        combos = {
            (spec.store_fraction, spec.p2m_kind) for spec in QUADRANTS.values()
        }
        assert combos == {
            (0.0, RequestKind.WRITE),
            (0.0, RequestKind.READ),
            (1.0, RequestKind.WRITE),
            (1.0, RequestKind.READ),
        }

    def test_describe(self):
        assert QUADRANTS[3].describe() == "Q3: C2M-ReadWrite + P2M-Write"

    def test_run_quadrant_returns_points(self):
        points = run_quadrant(2, core_counts=(1,), **FAST)
        assert len(points) == 1
        assert points[0].colocated.class_bandwidth("p2m") > 0

    def test_quadrant_experiment_p2m_direction(self):
        experiment = quadrant_experiment(QUADRANTS[4])
        run = experiment.run_p2m_isolated(**FAST)
        assert run.lines_read_by_class["p2m"] > 0
        assert run.lines_written_by_class.get("p2m", 0) == 0


class TestReporting:
    def test_render_table_alignment(self):
        out = render_table("T", ["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 7

    def test_render_series(self):
        out = render_series(
            "S", "x", {"y1": [1.0, 2.0], "y2": [3.0, 4.0]}, [10, 20]
        )
        assert "y1" in out and "y2" in out
        assert "10" in out and "20" in out

    def test_float_formatting(self):
        out = render_table("T", ["v"], [[123.456], [1.234], [0.0123], [0]])
        assert "123" in out
        assert "1.23" in out
        assert "0.012" in out


class TestFigureBuilders:
    def test_table1_series(self):
        data = table1()
        assert set(data.series) == {"ice-lake", "cascade-lake"}
        assert data.series["cascade-lake"][0] == 8  # cores
        assert data.series["ice-lake"][3] == pytest.approx(102.4, abs=0.5)

    def test_figure_data_add(self):
        data = FigureData("figX", "t", "x", [1, 2])
        data.add("s", (1.0, 2.0))
        assert data.series["s"] == [1.0, 2.0]


class TestBankRegulation:
    @pytest.fixture(scope="class")
    def comparison(self):
        import dataclasses

        from repro.experiments.bankreg import BankRegSpec, run_comparison

        spec = dataclasses.replace(
            BankRegSpec(), warmup_ns=5_000.0, measure_ns=15_000.0
        )
        return run_comparison(spec)

    def test_regulation_shrinks_deviation_tail(self, comparison):
        """The experiment's headline claim: the P(dev >= 8) tail of the
        bank-deviation CDF shrinks clearly under regulation."""
        tail_base, tail_reg = comparison.tails()
        assert tail_base[8.0] > 0.3  # the aggressor really fattens it
        assert tail_reg[8.0] < 0.6 * tail_base[8.0]

    def test_aggressor_not_throttled_overall(self, comparison):
        """Its per-bank caps sum far above the device rate."""
        base = comparison.baseline.device_bandwidth("hog")
        reg = comparison.regulated.device_bandwidth("hog")
        assert reg == pytest.approx(base, rel=0.05)

    def test_cdfs_share_grid_and_are_monotone(self, comparison):
        (bx, bf), (rx, rf) = comparison.cdfs()
        assert list(bx) == list(rx)
        assert all(bf[i] <= bf[i + 1] for i in range(len(bf) - 1))
        assert all(rf[i] <= rf[i + 1] for i in range(len(rf) - 1))

    def test_spec_config_knobs(self):
        from repro.experiments.bankreg import BankRegSpec

        spec = BankRegSpec(share=0.25, burst_lines=8, partition_classes=2)
        off = spec.config(regulated=False)
        on = spec.config(regulated=True)
        assert not off.bank_reg_enabled
        assert on.bank_reg_enabled
        assert on.bank_reg_share == 0.25
        assert on.bank_reg_burst_lines == 8
        assert on.bank_partition_classes == 2
        assert on.bank_sample_every == off.bank_sample_every == 100

    def test_tail_fractions_empty(self):
        from repro.experiments.bankreg import tail_fractions

        assert tail_fractions([]) == {4.0: 0.0, 6.0: 0.0, 8.0: 0.0, 10.0: 0.0}
