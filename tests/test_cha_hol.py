"""CHA head-of-line semantics, pinned as an explicit oracle.

The paper's §5.2 red-regime mechanics hinge on two CHA behaviours:

* **HoL blocking in ingress** — the shared FCFS ingress queue admits
  strictly in arrival order, so a write blocked on a full write stage
  delays every *later* arrival, including reads (the equitable latency
  increase at 5-6 C2M cores);
* **read bypass of a full write stage** — a read arriving at an empty
  ingress is admitted through the separate read stage even while the
  write stage is full ("reads can be processed concurrently at the CHA
  even when writes are blocked").

These tests pin both on the reference path AND on the SoA uncore
kernel (``REPRO_UNCORE``), so the kernel differential harness
(tests/test_uncore_kernel.py) always has an explicitly-tested oracle
for the semantics it must preserve.
"""

import pytest

from repro.dram.controller import MemoryController
from repro.dram.timing import DDR4_2933
from repro.sim.engine import Simulator
from repro.sim.records import Request, RequestKind, RequestSource
from repro.telemetry.counters import CounterHub
from repro.uncore.cha import CHA
from repro.uncore.iio import IIO
from repro.uncore.kernel import UncoreKernel


def build_cha(kernel: bool, write_capacity=1, read_capacity=8):
    """A standalone CHA over a small MC, write stage squeezed to
    ``write_capacity`` lines so one write fills it."""
    sim = Simulator()
    hub = CounterHub()
    mc = MemoryController(
        sim, hub, timing=DDR4_2933, n_channels=1, n_banks=4
    )
    cha = CHA(
        sim,
        hub,
        mc,
        write_capacity=write_capacity,
        read_capacity=read_capacity,
    )
    iio = IIO(sim, hub)
    if kernel:
        UncoreKernel(cha, iio)
        assert cha.kernel is not None
    else:
        assert cha.kernel is None
    return sim, mc, cha


def make_request(mc, kind, addr, log=None):
    req = Request(RequestSource.C2M, kind, addr, traffic_class="c2m")
    mc.assign(req)
    if log is not None:
        req.on_cha_admit = lambda r: log.append(r.line_addr)
    return req


@pytest.mark.parametrize("kernel", [False, True], ids=["reference", "uncore"])
class TestHeadOfLine:
    def test_blocked_write_head_delays_later_read(self, kernel):
        """With the write stage full, a queued write head-of-line
        blocks a read that arrives behind it in ingress — the read is
        NOT admitted early even though its own stage has room."""
        sim, mc, cha = build_cha(kernel)
        admitted = []
        w1 = make_request(mc, RequestKind.WRITE, 0, admitted)
        w2 = make_request(mc, RequestKind.WRITE, 1, admitted)
        r1 = make_request(mc, RequestKind.READ, 2, admitted)
        cha.request_admission(w1)  # fills the 1-line write stage
        cha.request_admission(w2)  # stage full -> waits in ingress
        cha.request_admission(r1)  # queued BEHIND the blocked write
        assert admitted == [0]
        assert cha.admission_queue_len == 2
        assert cha.read_stage.value == 0  # the read did not sneak past
        assert cha.ingress_occ.value == 2
        # Draining the stage (w1 delivered to the WPQ) unblocks the
        # head, and admission replays in strict FCFS order.
        sim.run_until(100_000.0)
        assert admitted == [0, 1, 2]
        assert cha.admission_queue_len == 0

    def test_read_bypasses_full_write_stage(self, kernel):
        """A read arriving at an EMPTY ingress is admitted through the
        read stage immediately, even while the write stage is full —
        stages are independent; only ingress order is shared."""
        sim, mc, cha = build_cha(kernel)
        admitted = []
        w1 = make_request(mc, RequestKind.WRITE, 0, admitted)
        r1 = make_request(mc, RequestKind.READ, 1, admitted)
        cha.request_admission(w1)  # fills the 1-line write stage
        cha.request_admission(r1)  # ingress empty -> synchronous admit
        assert admitted == [0, 1]
        assert cha.admission_queue_len == 0
        assert cha.read_stage.value == 1
        sim.run_until(100_000.0)
        assert cha.read_stage.value == 0  # delivered to the RPQ

    def test_full_read_stage_blocks_reads_not_writes(self, kernel):
        """Symmetry check: a read blocked on a full read stage also
        HoL-blocks later writes in ingress."""
        sim, mc, cha = build_cha(kernel, write_capacity=64, read_capacity=1)
        admitted = []
        r1 = make_request(mc, RequestKind.READ, 0, admitted)
        r2 = make_request(mc, RequestKind.READ, 1, admitted)
        w1 = make_request(mc, RequestKind.WRITE, 2, admitted)
        cha.request_admission(r1)  # fills the 1-line read stage
        cha.request_admission(r2)  # stage full -> waits in ingress
        cha.request_admission(w1)  # HoL-blocked behind the read
        assert admitted == [0]
        assert cha.admission_queue_len == 2
        assert cha.write_waiting.value == 0
        sim.run_until(100_000.0)
        assert admitted == [0, 1, 2]

    def test_paths_agree_on_interleaved_traffic(self, kernel):
        """Both implementations drain an interleaved backlog to the
        same terminal pool state (belt-and-braces next to the
        host-level differential)."""
        sim, mc, cha = build_cha(kernel, write_capacity=2, read_capacity=2)
        admitted = []
        for i in range(24):
            kind = RequestKind.WRITE if i % 3 else RequestKind.READ
            req = make_request(mc, kind, i, admitted)
            sim.schedule_at(float(i), cha.request_admission, req)
        sim.run_until(500_000.0)
        assert admitted == list(range(24))  # strict FCFS through ingress
        assert cha.admission_queue_len == 0
        assert cha.read_stage.value == 0
        assert cha.write_waiting.value == 0
        if cha.kernel is not None:
            assert cha.kernel.verify_consistency() >= 11
