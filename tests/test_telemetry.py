"""Unit tests for the simulated uncore counters and Little's law."""

import pytest

from repro.telemetry.bankstats import BankLoadSampler, bank_deviation_cdf
from repro.telemetry.counters import (
    CounterHub,
    LatencyStat,
    OccupancyCounter,
    RateCounter,
)
from repro.telemetry.littleslaw import littles_law_latency, littles_law_occupancy


class TestOccupancyCounter:
    def test_average_is_time_weighted(self):
        counter = OccupancyCounter()
        counter.update(0.0, +2)  # occupancy 2 over [0, 10)
        counter.update(10.0, +2)  # occupancy 4 over [10, 20)
        assert counter.average(20.0) == pytest.approx(3.0)

    def test_average_with_idle_tail(self):
        counter = OccupancyCounter()
        counter.update(0.0, +4)
        counter.update(5.0, -4)
        assert counter.average(10.0) == pytest.approx(2.0)

    def test_negative_occupancy_raises(self):
        counter = OccupancyCounter()
        with pytest.raises(ValueError):
            counter.update(0.0, -1)

    def test_capacity_overflow_raises(self):
        counter = OccupancyCounter(capacity=2)
        counter.update(0.0, +2)
        with pytest.raises(ValueError):
            counter.update(1.0, +1)

    def test_full_fraction(self):
        counter = OccupancyCounter(capacity=2)
        counter.update(0.0, +2)  # full over [0, 4)
        counter.update(4.0, -1)
        assert counter.full_fraction(8.0) == pytest.approx(0.5)

    def test_reset_starts_fresh_window_preserving_value(self):
        counter = OccupancyCounter()
        counter.update(0.0, +6)
        counter.reset(10.0)
        assert counter.value == 6
        assert counter.average(20.0) == pytest.approx(6.0)

    def test_max_seen_tracks_peak(self):
        counter = OccupancyCounter()
        counter.update(0.0, +5)
        counter.update(1.0, -3)
        assert counter.max_seen == 5

    def test_max_seen_reset_to_current(self):
        counter = OccupancyCounter()
        counter.update(0.0, +5)
        counter.update(1.0, -3)
        counter.reset(2.0)
        assert counter.max_seen == 2

    def test_zero_elapsed_returns_current_value(self):
        counter = OccupancyCounter()
        counter.update(0.0, +3)
        assert counter.average(0.0) == 3.0


class TestRateCounter:
    def test_rate_over_window(self):
        counter = RateCounter()
        counter.reset(0.0)
        for _ in range(10):
            counter.increment()
        assert counter.rate(5.0) == pytest.approx(2.0)

    def test_increment_by_n(self):
        counter = RateCounter()
        counter.increment(7)
        assert counter.count == 7

    def test_zero_elapsed_rate_is_zero(self):
        counter = RateCounter()
        counter.reset(3.0)
        counter.increment()
        assert counter.rate(3.0) == 0.0


class TestLatencyStat:
    def test_average(self):
        stat = LatencyStat()
        stat.record(10.0)
        stat.record(30.0)
        assert stat.average == pytest.approx(20.0)
        assert stat.max_seen == 30.0

    def test_empty_average_is_zero(self):
        assert LatencyStat().average == 0.0

    def test_negative_latency_raises(self):
        with pytest.raises(ValueError):
            LatencyStat().record(-1.0)

    def test_reset(self):
        stat = LatencyStat()
        stat.record(5.0)
        stat.reset()
        assert stat.count == 0
        assert stat.average == 0.0


class TestCounterHub:
    def test_counters_are_memoized(self):
        hub = CounterHub()
        assert hub.occupancy("x") is hub.occupancy("x")
        assert hub.rate("y") is hub.rate("y")
        assert hub.latency("z") is hub.latency("z")
        assert hub.traffic_class("c") is hub.traffic_class("c")

    def test_reset_covers_all_counters(self):
        hub = CounterHub()
        hub.occupancy("o").update(0.0, +3)
        hub.rate("r").increment(5)
        hub.latency("l").record(7.0)
        hub.traffic_class("t").arrivals.increment()
        hub.reset(100.0)
        assert hub.rate("r").count == 0
        assert hub.latency("l").count == 0
        assert hub.traffic_class("t").arrivals.count == 0
        assert hub.occupancy("o").average(200.0) == pytest.approx(3.0)

    def test_names_enumerates_registered(self):
        hub = CounterHub()
        hub.occupancy("a")
        hub.rate("b")
        assert set(hub.names()) >= {"a", "b"}


class TestLittlesLaw:
    def test_latency_from_occupancy_and_rate(self):
        assert littles_law_latency(10.0, 0.1) == pytest.approx(100.0)

    def test_zero_rate_gives_zero_latency(self):
        assert littles_law_latency(5.0, 0.0) == 0.0

    def test_occupancy_inverse(self):
        latency = littles_law_latency(8.0, 0.05)
        assert littles_law_occupancy(latency, 0.05) == pytest.approx(8.0)

    def test_negative_inputs_raise(self):
        with pytest.raises(ValueError):
            littles_law_occupancy(-1.0, 0.1)

    def test_negative_occupancy_raises(self):
        with pytest.raises(ValueError, match="occupancy"):
            littles_law_latency(-0.5, 0.1)

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError, match="rate"):
            littles_law_latency(1.0, -0.1)

    def test_zero_occupancy_zero_latency(self):
        assert littles_law_latency(0.0, 0.25) == 0.0


class TestBankLoadSampler:
    def test_uniform_load_has_deviation_one(self):
        sampler = BankLoadSampler(n_banks=4, sample_every=8)
        for _ in range(2):
            for bank in range(4):
                sampler.record(bank)
        assert sampler.deviations == [pytest.approx(1.0)]

    def test_skewed_load_has_high_deviation(self):
        sampler = BankLoadSampler(n_banks=4, sample_every=8)
        for _ in range(8):
            sampler.record(0)
        assert sampler.deviations == [pytest.approx(4.0)]

    def test_fraction_at_least(self):
        sampler = BankLoadSampler(n_banks=2, sample_every=4)
        for _ in range(4):
            sampler.record(0)  # deviation 2.0
        for _ in range(2):
            sampler.record(0)
            sampler.record(1)  # deviation 1.0
        assert sampler.fraction_at_least(1.5) == pytest.approx(0.5)

    def test_incomplete_sample_not_flushed(self):
        sampler = BankLoadSampler(n_banks=2, sample_every=100)
        sampler.record(0)
        assert sampler.deviations == []

    def test_reset_clears_samples(self):
        sampler = BankLoadSampler(n_banks=2, sample_every=2)
        sampler.record(0)
        sampler.record(0)
        sampler.reset()
        assert sampler.deviations == []

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BankLoadSampler(0)
        with pytest.raises(ValueError):
            BankLoadSampler(4, sample_every=0)


class TestBankDeviationCdf:
    def test_empty(self):
        x, f = bank_deviation_cdf([])
        assert len(x) == 0 and len(f) == 0

    def test_cdf_reaches_one(self):
        x, f = bank_deviation_cdf([1.0, 1.5, 2.0])
        assert f[-1] == pytest.approx(1.0)

    def test_cdf_on_grid(self):
        x, f = bank_deviation_cdf([1.0, 2.0, 3.0, 4.0], grid=[2.5])
        assert f[0] == pytest.approx(0.5)

    def test_cdf_monotone(self):
        samples = [1.0, 1.2, 1.7, 2.3, 3.1]
        _, f = bank_deviation_cdf(samples, grid=[1.0, 1.5, 2.0, 2.5, 3.0, 3.5])
        assert all(f[i] <= f[i + 1] for i in range(len(f) - 1))

    def test_numpy_off_path_with_grid(self, monkeypatch):
        """The pure-python fallback must agree with numpy on an
        explicit grid and return plain lists."""
        import repro.telemetry.bankstats as bankstats

        samples = [1.0, 2.0, 3.0, 4.0]
        grid = [0.5, 2.5, 4.0, 5.0]
        ref_x, ref_f = bank_deviation_cdf(samples, grid=grid)
        monkeypatch.setattr(bankstats, "np", None)
        x, f = bank_deviation_cdf(samples, grid=grid)
        assert isinstance(x, list) and isinstance(f, list)
        assert x == [0.5, 2.5, 4.0, 5.0]
        assert f == [0.0, 0.5, 1.0, 1.0]
        assert list(ref_x) == x and [float(v) for v in ref_f] == f

    def test_numpy_off_path_without_grid(self, monkeypatch):
        import repro.telemetry.bankstats as bankstats

        monkeypatch.setattr(bankstats, "np", None)
        x, f = bank_deviation_cdf([3.0, 1.0, 2.0])
        assert x == [1.0, 2.0, 3.0]
        assert f == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]
        assert bank_deviation_cdf([]) == ([], [])
