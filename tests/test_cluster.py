"""Cluster coupling tests: the shared-clock composition contract.

The load-bearing guarantee is differential: a 1-host cluster running a
fig03 workload must be **bit-identical** to the bare-host run, so the
multi-host refactor (engine injection, counter namespacing, extracted
measurement windows) provably changed nothing for every existing
experiment. On top of that, the 2-host tests pin the new physics: PFC
pauses and ECN marks must originate in modelled switch queues.
"""

import pytest

from repro import Cluster, Host, cascade_lake
from repro.experiments.quadrants import RawDmaP2MBuilder, StreamC2MBuilder
from repro.net.dctcp import add_dctcp_flow
from repro.net.rdma import add_rdma_write_flow
from repro.sim.checkpoint import CheckpointError
from repro.sim.records import RequestKind
from repro.validate.harness import (
    FIG03_FINGERPRINT_WINDOWS,
    assert_results_identical,
)

WARMUP, MEASURE = FIG03_FINGERPRINT_WINDOWS


def build_fig03_workload(host: Host) -> None:
    """The fig03 q1.n1 colocated workload (C2M-Read + DMA writes)."""
    StreamC2MBuilder(store_fraction=0.0)(host, 1)
    RawDmaP2MBuilder(RequestKind.WRITE)(host)


class TestOneHostDifferential:
    def test_fig03_point_bit_identical_to_bare_host(self):
        bare_host = Host(cascade_lake(), seed=1)
        build_fig03_workload(bare_host)
        bare = bare_host.run(WARMUP, MEASURE)

        cluster = Cluster(cascade_lake(), n_hosts=1, seed=1)
        build_fig03_workload(cluster.hosts[0])
        clustered = cluster.run(WARMUP, MEASURE)

        assert_results_identical(
            bare, clustered.host(0), context="bare vs 1-host cluster"
        )
        assert clustered.fabric_checks == 0  # no flows, no ports
        assert clustered.elapsed_ns == pytest.approx(MEASURE)

    def test_shared_engine_and_namespaces(self):
        cluster = Cluster(cascade_lake(), n_hosts=2)
        h0, h1 = cluster.hosts
        assert h0.sim is h1.sim is cluster.sim
        assert h0.hub is not h1.hub
        assert h0.hub.scoped("iio.wr") == "h0.iio.wr"
        assert h1.hub.scoped("iio.wr") == "h1.iio.wr"
        assert h0.hub.local("h0.iio.wr") == "iio.wr"
        # A bare host keeps the historical (unprefixed) names.
        assert Host(cascade_lake()).hub.scoped("iio.wr") == "iio.wr"

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            Cluster(cascade_lake(), n_hosts=0)


class TestRdmaCoupling:
    def test_two_host_flow_reaches_line_rate(self):
        cluster = Cluster(cascade_lake(), n_hosts=2)
        add_rdma_write_flow(cluster, src=1, dst=0, rate_gbps=98.0)
        result = cluster.run(warmup_ns=10_000.0, measure_ns=30_000.0)
        goodput = result.flow_goodput[0]
        assert 11.0 < goodput <= 12.5  # ~98 Gb/s in bytes/ns
        # Receive side: DMA writes into host 0's memory.
        assert result.host(0).class_bandwidth("p2m") > 10.0
        # Transmit side: the tx NIC DMA-reads the payload on host 1 —
        # the sender-side host network the single-host model omitted.
        assert result.host(1).class_bandwidth("p2m") > 10.0
        assert result.fabric.lines_dropped == 0
        assert result.fabric_checks >= 1

    def test_incast_pfc_originates_in_switch_queue(self):
        cluster = Cluster(
            cascade_lake(),
            n_hosts=3,
            n_leaves=1,
            queue_capacity_lines=512,
            pfc_enabled=True,
        )
        for src in (1, 2):
            add_rdma_write_flow(cluster, src=src, dst=0, rate_gbps=98.0)
        result = cluster.run(warmup_ns=10_000.0, measure_ns=30_000.0)
        # 2 x 98 Gb/s offered into one 100 Gb/s edge link: the switch
        # queue (not the hosts) is the bottleneck. PFC keeps it
        # lossless and pauses both senders to their fair share.
        assert result.fabric.lines_dropped == 0
        edge = result.fabric.ports["leaf0.down.h0"]
        assert edge.pause_fraction > 0.1
        now = cluster.sim.now
        for sender in cluster.fabric.senders:
            assert sender.pause_fraction(now) > 0.1
        a, b = result.flow_goodput
        assert abs(a - b) / max(a, b) < 0.1  # fair sharing
        assert sum(result.flow_goodput) <= 12.5 + 0.5
        assert result.fabric_checks == 1  # same-leaf: edge port only


class TestDctcpCoupling:
    def test_ecn_marks_originate_in_switch_queue(self):
        cluster = Cluster(
            cascade_lake(),
            n_hosts=3,
            n_leaves=1,
            ecn_threshold_lines=64,
            pfc_enabled=False,
        )
        receivers = [
            add_dctcp_flow(cluster, src=src, dst=0) for src in (1, 2)
        ]
        # Short warmup: both senders still pace near line rate when the
        # window opens, so the shared queue's congestion transient (and
        # its CE marks) lands inside the measurement.
        result = cluster.run(warmup_ns=5_000.0, measure_ns=40_000.0)
        # Two 100 Gb/s flows share the edge queue: it congests past the
        # ECN threshold, CE marks arrive at the receivers, and each
        # control loop cuts its *remote* sender below line rate.
        assert result.fabric.lines_marked > 0
        for receiver in receivers:
            assert receiver.mark_fraction() > 0.0
            assert receiver.rate < receiver.max_rate
            assert receiver.sender is not None
            assert receiver.sender.rate == receiver.rate
        assert result.fabric.lines_dropped == 0
        goodputs = [r.goodput(result.elapsed_ns) for r in receivers]
        assert all(g > 2.0 for g in goodputs)
        assert sum(goodputs) <= 12.5 + 0.5


class TestClusterCheckpoint:
    def test_roundtrip_resumes_mid_run(self, tmp_path):
        cluster = Cluster(cascade_lake(), n_hosts=2)
        add_rdma_write_flow(cluster, src=1, dst=0)
        cluster.start()
        cluster.sim.run_until(5_000.0)
        path = tmp_path / "rack.ckpt"
        cluster.save(path)

        restored = Cluster.restore(path)
        assert restored.sim.now == pytest.approx(5_000.0)
        assert restored.n_hosts == 2
        result = restored.run(warmup_ns=5_000.0, measure_ns=20_000.0)
        assert result.flow_goodput[0] > 10.0
        assert result.fabric.lines_dropped == 0

    def test_knob_gate_refuses_mismatch(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BURST", raising=False)
        cluster = Cluster(cascade_lake(), n_hosts=2)
        path = tmp_path / "rack.ckpt"
        cluster.save(path)
        monkeypatch.setenv("REPRO_BURST", "4")
        with pytest.raises(CheckpointError, match="knobs changed"):
            Cluster.restore(path)

    def test_rejects_non_cluster_blob(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError):
            Cluster.restore(path)


class TestFlowWiring:
    def test_add_flow_rejects_non_nic_device(self):
        cluster = Cluster(cascade_lake(), n_hosts=2)
        cluster.hosts[0].add_raw_dma(RequestKind.WRITE, name="dma")
        with pytest.raises(ValueError, match="not a NIC"):
            cluster.add_flow(1, 0, 98.0, nic_name="dma")

    def test_flows_to_one_host_share_the_receive_nic(self):
        cluster = Cluster(cascade_lake(), n_hosts=3)
        first = cluster.add_flow(1, 0, 50.0)
        second = cluster.add_flow(2, 0, 50.0)
        assert first.nic is second.nic  # incast: shared buffer + edge

    def test_flow_added_after_start_begins_pacing(self):
        cluster = Cluster(cascade_lake(), n_hosts=2)
        cluster.start()
        flow = cluster.add_flow(1, 0, 98.0)
        cluster.sim.run_until(2_000.0)
        assert flow.sender.total_sent > 0
