"""The unified credit runtime: CreditPool semantics, weighted (burst)
credit conservation across all four Fig. 5 pools, live DomainSnapshots
and the ``T <= C * 64 / L`` bound, Domain.from_snapshot, and the fig03
bit-exactness fingerprint."""

from pathlib import Path

import pytest

from repro import Host, RequestKind, cascade_lake
from repro.core.domain import Domain, DomainKind
from repro.model.inputs import domain_credits
from repro.model.validation import (
    calibrate_read_constant,
    estimate_c2m_throughput,
)
from repro.sim import records
from repro.sim.credit import CreditPool, DomainSnapshot
from repro.sim.records import CACHELINE_BYTES
from repro.telemetry.counters import OccupancyCounter
from repro.validate import DEFAULT_TOLERANCE
from repro.validate.harness import assert_fig03_matches

FINGERPRINT = Path(__file__).parent / "data" / "fig03_fingerprint.json"

WARMUP = 2_000.0
MEASURE = 8_000.0


def make_pool(capacity=8, soft=False, name="test.pool"):
    # Mirrors CounterHub.pool: soft pools get an uncapped occupancy
    # counter (their occupancy may overshoot the admission threshold).
    occ = OccupancyCounter(None if soft else capacity)
    return CreditPool(name, occ, capacity=capacity, soft=soft)


def colocated_host(**kwargs):
    """All four domains active: C2M-ReadWrite cores + DMA write + read."""
    host = Host(cascade_lake(), seed=1, **kwargs)
    host.add_stream_cores(2, store_fraction=1.0)
    host.add_raw_dma(RequestKind.WRITE, name="dma_write")
    host.add_raw_dma(RequestKind.READ, name="dma_read")
    return host


class TestCreditPool:
    def test_acquire_release_move_counters_and_occupancy(self):
        pool = make_pool(capacity=4)
        pool.acquire(1.0, 2)
        assert pool.in_use == 2
        assert pool.alloc_count == 2 and pool.free_count == 0
        assert pool.free_credits == 2
        pool.release(3.0, 2)
        assert pool.in_use == 0
        assert pool.free_count == 2

    def test_weighted_moves_count_lines_not_calls(self):
        pool = make_pool(capacity=64)
        pool.acquire(0.0, 16)
        pool.acquire(0.0, 16)
        assert pool.alloc_count == 32
        assert pool.in_use == 32

    def test_has_room_and_can_accept_track_reservations(self):
        pool = make_pool(capacity=4)
        pool.acquire(0.0, 2)
        assert pool.has_room(2)
        assert not pool.has_room(3)
        pool.reserve(2)
        # has_room ignores reservations; can_accept counts them.
        assert pool.has_room(2)
        assert not pool.can_accept(1)
        pool.commit(1.0, 2)
        assert pool.reserved == 0
        assert pool.in_use == 4
        assert not pool.has_room(1)

    def test_commit_counts_alloc_reserve_does_not(self):
        pool = make_pool(capacity=4)
        pool.reserve(3)
        assert pool.alloc_count == 0
        pool.commit(0.5, 3)
        assert pool.alloc_count == 3

    def test_release_held_accumulates_domain_latency(self):
        pool = make_pool(capacity=8)
        pool.acquire(10.0, 4)
        pool.release_held(110.0, 10.0, 4)
        # 4 lines each held 100 ns -> lines-weighted mean is 100.
        assert pool.latency.count == 4
        assert pool.latency.average == pytest.approx(100.0)
        assert pool.in_use == 0 and pool.free_count == 4

    def test_occupancy_integral_time_weighted(self):
        pool = make_pool(capacity=8)
        pool.acquire(0.0, 4)  # 4 held over [0, 10)
        pool.release(10.0, 2)  # 2 held over [10, 20)
        assert pool.average(20.0) == pytest.approx(3.0)

    def test_soft_pool_admission_vs_occupancy(self):
        pool = make_pool(capacity=2, soft=True)
        pool.acquire(0.0, 5)  # overshoot is legal (DDIO writebacks)
        assert pool.in_use == 5
        assert not pool.has_room(1)  # but admission is still gated

    def test_unbounded_pool(self):
        pool = CreditPool("unbounded", OccupancyCounter())
        assert pool.capacity is None
        assert pool.has_room(10**9)
        assert pool.can_accept(10**9)
        assert pool.free_credits == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            make_pool(capacity=0)


class TestWaiters:
    """FIFO one-shot waiter semantics (the IIO broadcast replacement)."""

    def test_fired_in_registration_order_exactly_once(self):
        pool = make_pool(capacity=2)
        pool.acquire(0.0, 2)
        fired = []
        for i in range(4):
            pool.add_waiter(lambda i=i: fired.append(i))
        pool.release(1.0, 1)
        assert fired == [0, 1, 2, 3]
        assert pool.waiter_count == 0
        pool.acquire(2.0, 1)
        pool.release(3.0, 1)  # nobody registered: no re-fire
        assert fired == [0, 1, 2, 3]

    def test_reregistration_from_callback_waits_for_next_release(self):
        pool = make_pool(capacity=1)
        pool.acquire(0.0, 1)
        fires = []

        def still_blocked():
            fires.append(len(fires))
            pool.add_waiter(still_blocked)

        pool.add_waiter(still_blocked)
        pool.release(1.0, 1)
        # One fire per release — the re-registration must not be
        # drained by the release that triggered it.
        assert fires == [0]
        assert pool.waiter_count == 1
        pool.acquire(2.0, 1)
        pool.release(3.0, 1)
        assert fires == [0, 1]


class TestInlinedFastPaths:
    """Pin the hand-inlined CreditPool/BankLoadSampler copies to the
    canonical methods.

    The hot paths in ``uncore/cha.py`` (``_deliver_read`` /
    ``_deliver_write``), ``uncore/kernel.py`` (the fused CHA/IIO
    admission chain: stage acquires, IIO alloc/release-held, the
    batched per-train acquires in ``pcie/device.py`` / ``cpu/core.py``)
    and ``dram/kernel.py`` (``enqueue_read`` / ``enqueue_write`` /
    ``_on_transmit_done_*`` / ``_transmit_read``) inline
    ``CreditPool.acquire``, ``CreditPool.release``,
    ``CreditPool.release_held``, ``CreditPool.commit`` and
    ``BankLoadSampler.record`` statement-for-statement. These tests
    replay the *exact inlined statement sequences* next to the
    canonical method calls and assert identical observable state — so
    any future change to the canonical semantics (say, ``release``
    growing latency recording the way ``release_held`` has it) fails
    here and points at the inline sites that must be updated in
    lockstep.
    """

    @staticmethod
    def _pool_state(pool):
        return (
            pool.occ.value,
            pool.occ.average(99.0),
            pool.free_count,
            pool.alloc_count,
            pool.reserved,
            pool.waiter_count,
        )

    def test_inlined_release_matches_canonical(self):
        canonical, inlined = make_pool(), make_pool()
        fired = []
        for tag, pool in (("canonical", canonical), ("inlined", inlined)):
            pool.acquire(0.0, 3)
            pool.add_waiter(lambda tag=tag: fired.append(tag))
        canonical.release(1.0, 3)
        # The inlined recipe, verbatim from cha._deliver_read/_deliver_write
        # and kernel._on_transmit_done_read/_on_transmit_done_write:
        lines = 3
        pool = inlined
        pool.free_count += lines
        pool._occ_update(1.0, -lines)
        if pool._waiters:
            pool._drain_waiters()
        assert self._pool_state(inlined) == self._pool_state(canonical)
        assert fired == ["canonical", "inlined"]

    def test_inlined_commit_matches_canonical(self):
        canonical, inlined = make_pool(), make_pool()
        for pool in (canonical, inlined):
            pool.reserve(2)
        canonical.commit(1.0, 2)
        # The inlined recipe, verbatim from kernel.enqueue_read/enqueue_write:
        lines = 2
        pool = inlined
        pool.reserved -= lines
        pool.alloc_count += lines
        pool._occ_update(1.0, lines)
        assert self._pool_state(inlined) == self._pool_state(canonical)

    def test_inlined_acquire_matches_canonical_soft(self):
        # The inlined recipe, verbatim from the uncore kernel's
        # _admit_read/_admit_write stage acquires (soft pool: occupancy
        # counter is uncapped, so no full-time/capacity branches).
        canonical, inlined = make_pool(soft=True), make_pool(soft=True)
        canonical.acquire(2.0, 3)
        lines = 3
        pool = inlined
        pool.alloc_count += lines
        occ = pool.occ
        dt = 2.0 - occ._last_t
        if dt > 0:
            occ._integral += occ.value * dt
            occ._last_t = 2.0
        value = occ.value + lines
        occ.value = value
        if value > occ.max_seen:
            occ.max_seen = value
        assert self._pool_state(inlined) == self._pool_state(canonical)
        assert inlined.occ._integral == canonical.occ._integral
        assert inlined.occ.max_seen == canonical.occ.max_seen

    def test_inlined_acquire_matches_canonical_hard(self):
        # The inlined recipe, verbatim from the uncore kernel's
        # iio_alloc (hard pool: full-time tracking + capacity guard).
        canonical, inlined = make_pool(capacity=8), make_pool(capacity=8)
        for pool in (canonical, inlined):
            pool.acquire(0.0, 8)  # sit at capacity so full-time accrues
            pool.release(3.0, 2)
        canonical.acquire(5.0, 2)
        lines = 2
        pool = inlined
        pool.alloc_count += lines
        occ = pool.occ
        value = occ.value
        capacity = occ.capacity
        dt = 5.0 - occ._last_t
        if dt > 0:
            occ._integral += value * dt
            if value >= capacity:
                occ._full_time += dt
            occ._last_t = 5.0
        value += lines
        occ.value = value
        if value > capacity:
            raise ValueError(f"occupancy {value} exceeds capacity {capacity}")
        if value > occ.max_seen:
            occ.max_seen = value
        assert self._pool_state(inlined) == self._pool_state(canonical)
        assert inlined.occ._integral == canonical.occ._integral
        assert inlined.occ._full_time == canonical.occ._full_time

    def test_weighted_train_acquire_matches_sequential(self):
        # The REPRO_UNCORE batching in pcie/device.py and cpu/core.py:
        # one weighted pool transaction per REPRO_BURST train must be
        # bit-identical to the per-channel-group acquires it replaces
        # (all at one instant: dt=0 after the first, monotone
        # high-water mark, alloc counts sum).
        sequential, batched = make_pool(capacity=32), make_pool(capacity=32)
        for pool in (sequential, batched):
            pool.acquire(0.0, 4)  # pre-existing occupancy + integral
        groups = (3, 1, 2)
        for lines in groups:
            sequential.acquire(7.5, lines)
        batched.acquire(7.5, sum(groups))
        assert self._pool_state(batched) == self._pool_state(sequential)
        assert batched.occ._integral == sequential.occ._integral
        assert batched.occ._full_time == sequential.occ._full_time
        assert batched.occ.max_seen == sequential.occ.max_seen
        assert batched.occ._last_t == sequential.occ._last_t

    def test_inlined_release_held_matches_canonical(self):
        # The inlined recipe, verbatim from the uncore kernel's
        # iio_release: hold-time stat record, then the release tail
        # (hard pool), waiters after stats.
        canonical, inlined = make_pool(capacity=8), make_pool(capacity=8)
        fired = []
        for tag, pool in (("canonical", canonical), ("inlined", inlined)):
            pool.acquire(0.0, 8)
            pool.add_waiter(lambda tag=tag: fired.append(tag))
        canonical.release_held(6.0, 2.0, 3)
        lines = 3
        t_alloc = 2.0
        pool = inlined
        latency = 6.0 - t_alloc
        held = pool.latency
        if lines == 1:
            held.total += latency
            held.count += 1
        else:
            held.total += latency * lines
            held.count += lines
        if latency > held.max_seen:
            held.max_seen = latency
        pool.free_count += lines
        occ = pool.occ
        value = occ.value
        dt = 6.0 - occ._last_t
        if dt > 0:
            occ._integral += value * dt
            if value >= occ.capacity:
                occ._full_time += dt
            occ._last_t = 6.0
        occ.value = value - lines
        if pool._waiters:
            pool._drain_waiters()
        assert self._pool_state(inlined) == self._pool_state(canonical)
        assert inlined.occ._integral == canonical.occ._integral
        assert inlined.occ._full_time == canonical.occ._full_time
        assert (
            inlined.latency.total,
            inlined.latency.count,
            inlined.latency.max_seen,
        ) == (
            canonical.latency.total,
            canonical.latency.count,
            canonical.latency.max_seen,
        )
        assert fired == ["canonical", "inlined"]

    def test_inlined_sampler_record_matches_canonical(self):
        from repro.telemetry.bankstats import BankLoadSampler

        canonical = BankLoadSampler(n_banks=4, sample_every=3)
        inlined = BankLoadSampler(n_banks=4, sample_every=3)
        samp_counts = inlined.counts  # kernel holds a direct reference
        samp_every = inlined.sample_every
        for b in (0, 0, 1, 2, 2, 2, 3):
            canonical.record(b)
            # The inlined recipe, verbatim from kernel._transmit_read:
            sampler = inlined
            samp_counts[b] += 1
            seen = sampler.seen + 1
            if seen >= samp_every:
                sampler._flush()
            else:
                sampler.seen = seen
        assert inlined.counts == canonical.counts
        assert inlined.seen == canonical.seen
        assert inlined.deviations == canonical.deviations


class TestWeightedConservation:
    """REPRO_BURST moves ``lines`` credits per call; conservation must
    hold line-for-line across all four pool families, with runtime
    validation on and the request free-list pool disabled."""

    @pytest.mark.parametrize("burst", [4, 16])
    def test_all_pools_conserve_under_burst(self, burst, monkeypatch):
        monkeypatch.setattr(records, "_POOL", [])
        monkeypatch.setattr(records, "_POOL_ENABLED", False)  # REPRO_POOL=off
        host = colocated_host(burst=burst, validate=True)  # REPRO_VALIDATE=1
        result = host.run(WARMUP, MEASURE)
        assert result.invariant_checks > 0

        pools = host.domains.pools()
        families = {pool.name.split(".")[0] for pool in pools}
        # LFB (cores), IIO buffers, CHA stages, memory-controller queues.
        assert {"core0", "iio", "cha", "mc"} <= families
        for pool in pools:
            drift = pool.alloc_count - pool.free_count
            assert drift == pool.in_use, (
                f"{pool.name}: allocs({pool.alloc_count}) - "
                f"frees({pool.free_count}) != occupancy({pool.in_use})"
            )
            assert pool.reserved >= 0
            if pool.capacity is not None and not pool.soft:
                assert 0 <= pool.in_use <= pool.capacity

    @pytest.mark.parametrize("burst", [4, 16])
    def test_burst_moves_weighted_credits(self, burst, monkeypatch):
        monkeypatch.setattr(records, "_POOL", [])
        monkeypatch.setattr(records, "_POOL_ENABLED", False)
        host = colocated_host(burst=burst, validate=True)
        host.run(WARMUP, MEASURE)
        for kind in (DomainKind.C2M_READ, DomainKind.P2M_WRITE, DomainKind.P2M_READ):
            pools = host.domains.domain_pools(kind)
            assert pools, f"no pools registered for {kind}"
            assert sum(p.alloc_count for p in pools) >= burst


class TestDomainSnapshots:
    @pytest.fixture(scope="class")
    def result(self):
        return colocated_host(validate=True).run(WARMUP, MEASURE)

    def test_all_four_domains_snapshotted(self, result):
        assert set(result.domain_snapshots) == {
            "c2m_read",
            "c2m_write",
            "p2m_read",
            "p2m_write",
        }

    def test_bound_holds_live(self, result):
        """Every measured domain satisfies T <= C * 64 / L within the
        validator tolerance (the §4.1 bound, checked on live data)."""
        for snapshot in result.domain_snapshots.values():
            if snapshot.completions == 0:
                continue
            assert snapshot.bound_utilization <= 1.0 + DEFAULT_TOLERANCE, (
                f"{snapshot.kind}: T*L/(C*64) = {snapshot.bound_utilization}"
            )
            assert (
                snapshot.throughput_bytes_per_ns
                <= snapshot.bound_bytes_per_ns * (1.0 + DEFAULT_TOLERANCE)
            )

    def test_throughput_is_completions_over_window(self, result):
        elapsed = MEASURE
        for snapshot in result.domain_snapshots.values():
            assert snapshot.throughput_bytes_per_ns == pytest.approx(
                snapshot.completions * CACHELINE_BYTES / elapsed
            )

    def test_occupancy_within_credits(self, result):
        for snapshot in result.domain_snapshots.values():
            # The integral accumulates float dt terms, so a fully
            # saturated pool can land an ulp above its capacity.
            assert 0.0 <= snapshot.credits_in_use
            assert snapshot.credits_in_use <= snapshot.credits * (1 + 1e-9)

    def test_lfb_shared_between_c2m_domains(self, result):
        """One LFB pool backs both C2M domains, so they report the
        same credits and the same (shared) alloc/free counts."""
        read = result.domain_snapshots["c2m_read"]
        write = result.domain_snapshots["c2m_write"]
        assert read.credits == write.credits
        assert (read.allocs, read.frees) == (write.allocs, write.frees)

    def test_run_result_domains_builds_domain_objects(self, result):
        domains = result.domains()
        assert "c2m_read" in domains
        for kind_value, domain in domains.items():
            snapshot = result.domain_snapshots[kind_value]
            assert domain.kind is DomainKind(kind_value)
            assert domain.credits == snapshot.credits
            assert domain.latency == snapshot.latency_ns
        single = result.domain("p2m_write")
        assert single is result.domain_snapshots["p2m_write"]


class TestDomainFromSnapshot:
    def snapshot(self, **overrides):
        values = dict(
            kind="p2m_write",
            credits=92.0,
            credits_in_use=60.0,
            occupancy_now=58,
            allocs=1000,
            frees=990,
            latency_ns=400.0,
            completions=990,
            throughput_bytes_per_ns=9.0,
        )
        values.update(overrides)
        return DomainSnapshot(**values)

    def test_maps_measured_fields(self):
        domain = Domain.from_snapshot(self.snapshot(), unloaded_latency_ns=300.0)
        assert domain.kind is DomainKind.P2M_WRITE
        assert domain.credits == 92.0
        assert domain.credits_in_use == 60.0
        assert domain.latency == 400.0  # loaded = measured
        assert domain.unloaded_latency_ns == 300.0
        assert domain.latency_inflation == pytest.approx(400.0 / 300.0)

    def test_unloaded_defaults_to_measured(self):
        domain = Domain.from_snapshot(self.snapshot())
        assert domain.unloaded_latency_ns == 400.0
        assert domain.latency_inflation == pytest.approx(1.0)

    def test_rejects_unmeasured_latency(self):
        with pytest.raises(ValueError, match="latency"):
            Domain.from_snapshot(self.snapshot(latency_ns=0.0))

    def test_saturation_threshold_parameterized(self):
        snapshot = self.snapshot(credits_in_use=80.0)  # 87% of 92
        default = Domain.from_snapshot(snapshot)
        assert not default.credits_saturated  # 0.95 threshold
        strict = Domain.from_snapshot(snapshot, saturation_threshold=0.80)
        assert strict.credits_saturated

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.2])
    def test_rejects_bad_threshold(self, bad):
        with pytest.raises(ValueError, match="saturation threshold"):
            Domain.from_snapshot(self.snapshot(), saturation_threshold=bad)


class TestModelFromSnapshots:
    def test_snapshot_credits_match_config_for_homogeneous_cores(self):
        """domain_credits(result, 'c2m_read') is the live sum of LFB
        capacities — for homogeneous cores exactly the model's
        ``n_cores * effective_lfb_size``, so the estimator fed from
        snapshots reproduces the config-fed estimate (and its error
        bound) bit-for-bit."""
        n_cores = 2
        config = cascade_lake()
        host = Host(config, seed=1)
        host.add_stream_cores(1, store_fraction=0.0)
        c_read = calibrate_read_constant(
            host.run(10_000.0, 30_000.0), config.dram_timing
        )
        host = Host(config, seed=1)
        host.add_stream_cores(n_cores, store_fraction=0.0)
        host.add_raw_dma(RequestKind.WRITE)
        run = host.run(10_000.0, 30_000.0)

        live = domain_credits(run, "c2m_read")
        assert live == n_cores * config.effective_lfb_size

        from_config = estimate_c2m_throughput(run, c_read, n_cores)
        from_snapshot = estimate_c2m_throughput(
            run, c_read, n_cores, credits=live
        )
        assert from_snapshot.estimated == from_config.estimated
        assert abs(from_snapshot.error) <= abs(from_config.error) + 1e-12

    def test_domain_credits_missing_kind_is_none(self):
        host = Host(cascade_lake(), seed=1)
        host.add_stream_cores(1, store_fraction=0.0)
        run = host.run(WARMUP, MEASURE)
        assert domain_credits(run, "p2m_write") is None or (
            domain_credits(run, "p2m_write") > 0
        )
        assert domain_credits(run, "no_such_domain") is None


class TestFig03Fingerprint:
    def test_bit_identical_to_committed_baseline(self):
        """The refactor contract: fig03 RunResults are float-identical
        to the committed pre-refactor fingerprint."""
        assert assert_fig03_matches(str(FINGERPRINT)) == 9
