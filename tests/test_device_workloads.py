"""Unit tests for device-side workload state machines and host helpers."""

import pytest

from repro import Host, RequestKind, cascade_lake
from repro.dram.region import ContiguousRegion
from repro.pcie.device import DmaWorkload, SequentialDmaWorkload
from repro.pcie.nic import NicWorkload
from repro.pcie.nvme import NvmeWorkload


class TestDmaWorkloadBase:
    def test_base_has_no_demand(self):
        workload = DmaWorkload()
        assert workload.next_write(0.0) is None
        assert workload.next_read(0.0) is None
        assert workload.wake_time(0.0) is None
        # Completion hooks are no-ops by default.
        workload.on_write_posted(0, 0.0)
        workload.on_read_data(0, 0.0)
        workload.reset_stats(0.0)


class TestSequentialDmaWorkload:
    def test_write_kind_only_serves_writes(self):
        workload = SequentialDmaWorkload(ContiguousRegion(0, 4), RequestKind.WRITE)
        assert workload.next_read(0.0) is None
        assert workload.next_write(0.0) == 0

    def test_wraps_around_region(self):
        workload = SequentialDmaWorkload(ContiguousRegion(10, 3), RequestKind.WRITE)
        addrs = [workload.next_write(0.0) for _ in range(5)]
        assert addrs == [10, 11, 12, 10, 11]

    def test_lines_done_counts_both_directions(self):
        workload = SequentialDmaWorkload(ContiguousRegion(0, 8), RequestKind.READ)
        workload.on_read_data(0, 0.0)
        workload.on_write_posted(1, 0.0)
        assert workload.lines_done == 2
        workload.reset_stats(0.0)
        assert workload.lines_done == 0


class TestNvmeWorkloadStateMachine:
    def make(self, qd=2, io_lines=4, gap=0.0):
        return NvmeWorkload(
            ContiguousRegion(0, 1 << 12),
            io_size_bytes=io_lines * 64,
            queue_depth=qd,
            kind=RequestKind.WRITE,
            t_io_gap=gap,
        )

    def test_queue_depth_bounds_inflight_ios(self):
        workload = self.make(qd=2, io_lines=2)
        addrs = [workload.next_write(0.0) for _ in range(5)]
        # 2 IOs x 2 lines issueable; the 5th line belongs to IO #3.
        assert addrs[:4] == [0, 1, 2, 3]
        assert addrs[4] is None

    def test_completion_frees_io_slot(self):
        workload = self.make(qd=1, io_lines=2)
        workload.next_write(0.0)
        workload.next_write(0.0)
        assert workload.next_write(0.0) is None
        workload.on_write_posted(0, 1.0)
        workload.on_write_posted(1, 2.0)
        assert workload.ios_completed == 1
        assert workload.next_write(2.0) is not None

    def test_io_gap_enforced(self):
        workload = self.make(qd=1, io_lines=1, gap=100.0)
        workload.next_write(0.0)
        workload.on_write_posted(0, 10.0)
        assert workload.next_write(10.0) is None
        assert workload.wake_time(10.0) == pytest.approx(110.0)
        assert workload.next_write(111.0) is not None

    def test_spurious_completion_raises(self):
        workload = self.make()
        with pytest.raises(RuntimeError):
            workload.on_write_posted(0, 0.0)


class TestNicWorkloadPauseHysteresis:
    def make(self, buffer_lines=8, pfc=True):
        return NicWorkload(
            ContiguousRegion(0, 1 << 12),
            buffer_bytes=buffer_lines * 64,
            pfc_enabled=pfc,
        )

    def test_pause_then_resume_cycle(self):
        workload = self.make(buffer_lines=8)  # hi=6, lo=2
        for _ in range(6):
            workload.on_ingress_line(0.0)
        assert workload.paused
        # Drain to the resume threshold.
        drained = 0
        while workload.paused:
            assert workload.next_write(10.0 + drained) is not None
            drained += 1
        assert workload.queued_lines <= workload.pause_lo
        assert workload.paused_time >= 0.0

    def test_lossy_mode_never_pauses(self):
        workload = self.make(buffer_lines=4, pfc=False)
        for _ in range(10):
            workload.on_ingress_line(0.0)
        assert not workload.paused
        assert workload.lines_dropped == 6
        assert workload.loss_rate() == pytest.approx(0.6)

    def test_reset_preserves_pause_state(self):
        workload = self.make(buffer_lines=8)
        for _ in range(6):
            workload.on_ingress_line(5.0)
        assert workload.paused
        workload.reset_stats(100.0)
        assert workload.paused  # state kept, accounting restarted
        assert workload.pause_fraction(200.0) == pytest.approx(1.0)


class TestHostHelpers:
    def test_contiguous_regions_do_not_overlap(self):
        host = Host(cascade_lake(page_scatter=False))
        regions = [host.alloc_region(1000) for _ in range(5)]
        spans = sorted(
            (r.start_line, r.start_line + r.n_lines) for r in regions
        )
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_add_core_lfb_override(self):
        from repro.cpu.workloads import SequentialStreamWorkload

        host = Host(cascade_lake())
        workload = SequentialStreamWorkload(host.alloc_region(1000))
        core = host.add_core(workload, lfb_size=17)
        assert core.lfb.size == 17

    def test_device_names_are_registry_keys(self):
        host = Host(cascade_lake())
        host.add_raw_dma(RequestKind.WRITE, name="a")
        host.add_nvme(name="b")
        host.add_nic(ingress_rate=1.0, name="c")
        assert set(host.devices) == {"a", "b", "c"}

    def test_run_twice_extends_measurement(self):
        host = Host(cascade_lake())
        host.add_stream_cores(1, store_fraction=0.0)
        first = host.run(2_000.0, 5_000.0)
        second = host.run(0.0, 5_000.0)  # continues from current time
        assert second.elapsed_ns == pytest.approx(5_000.0)
        assert second.lines_read > 0
        assert host.sim.now == pytest.approx(12_000.0)
