"""Unit tests for the LLC with DDIO way restriction."""

import pytest

from repro.uncore.llc import LastLevelCache


def make(size_kb=64, ways=4, ddio_ways=2):
    return LastLevelCache(size_kb * 1024, ways, ddio_ways)


class TestBasics:
    def test_geometry(self):
        llc = make(size_kb=64, ways=4)
        assert llc.size_bytes == 64 * 1024
        assert llc.n_sets == 64 * 1024 // (4 * 64)

    def test_ddio_capacity(self):
        llc = make(size_kb=64, ways=4, ddio_ways=2)
        assert llc.ddio_capacity_bytes == llc.size_bytes // 2

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            LastLevelCache(0, 4)
        with pytest.raises(ValueError):
            LastLevelCache(1024, 4, ddio_ways=5)


class TestReads:
    def test_miss_then_hit(self):
        llc = make()
        hit, _ = llc.lookup_read(42)
        assert not hit
        hit, _ = llc.lookup_read(42)
        assert hit

    def test_no_allocate_leaves_cache_unchanged(self):
        llc = make()
        llc.lookup_read(42, allocate=False)
        hit, _ = llc.lookup_read(42)
        assert not hit

    def test_lru_eviction(self):
        llc = make(size_kb=1, ways=2)  # 8 sets
        n_sets = llc.n_sets
        a, b, c = 0, n_sets, 2 * n_sets  # same set
        llc.lookup_read(a)
        llc.lookup_read(b)
        llc.lookup_read(c)  # evicts a (LRU)
        assert not llc.lookup_read(a)[0]
        # b was made MRU... then a's re-install evicted it? touch order:
        # after c: set = [c, b]; a misses and evicts b.

    def test_clean_eviction_returns_none(self):
        llc = make(size_kb=1, ways=1, ddio_ways=1)
        _, evicted = llc.lookup_read(0)
        _, evicted = llc.lookup_read(llc.n_sets)  # evicts line 0, clean
        assert evicted is None

    def test_miss_ratio(self):
        llc = make()
        llc.lookup_read(1)
        llc.lookup_read(1)
        assert llc.miss_ratio == pytest.approx(0.5)

    def test_reset_stats(self):
        llc = make()
        llc.lookup_read(1)
        llc.reset_stats()
        assert llc.hits == 0 and llc.misses == 0


class TestDdioWrites:
    def test_alloc_then_hit(self):
        llc = make()
        outcome, evicted = llc.write_allocate_ddio(7)
        assert outcome == "alloc" and evicted is None
        outcome, _ = llc.write_allocate_ddio(7)
        assert outcome == "hit"

    def test_ddio_way_budget_evicts_dma_lines(self):
        llc = make(size_kb=1, ways=4, ddio_ways=2)
        n_sets = llc.n_sets
        lines = [i * n_sets for i in range(3)]  # same set
        llc.write_allocate_ddio(lines[0])
        llc.write_allocate_ddio(lines[1])
        _, evicted = llc.write_allocate_ddio(lines[2])
        # Third DMA line exceeds the 2-way budget: the LRU DMA line
        # (lines[0]) is evicted dirty even though plain ways are free.
        assert evicted == lines[0]

    def test_core_lines_not_victimized_by_ddio_budget(self):
        llc = make(size_kb=1, ways=4, ddio_ways=2)
        n_sets = llc.n_sets
        core_line = 5 * n_sets
        llc.lookup_read(core_line)
        llc.write_allocate_ddio(0)
        llc.write_allocate_ddio(n_sets)
        _, evicted = llc.write_allocate_ddio(2 * n_sets)
        assert evicted != core_line
        assert llc.lookup_read(core_line)[0]

    def test_thrash_generates_one_eviction_per_write(self):
        """Steady state for buffers larger than the DDIO slice: every
        DMA write evicts a dirty DMA line (same memory write volume as
        DDIO-off, §2.1)."""
        llc = make(size_kb=1, ways=4, ddio_ways=1)
        n_sets = llc.n_sets
        evictions = 0
        for i in range(1, 50):
            _, evicted = llc.write_allocate_ddio(i * n_sets)
            if evicted is not None:
                evictions += 1
        assert evictions == 48  # all but the first

    def test_small_buffer_fully_absorbed(self):
        """A buffer within the DDIO slice hits after the first pass."""
        llc = make(size_kb=64, ways=4, ddio_ways=2)
        lines = range(0, 100)
        for line in lines:
            llc.write_allocate_ddio(line)
        outcomes = [llc.write_allocate_ddio(line)[0] for line in lines]
        assert all(o == "hit" for o in outcomes)


class TestInstallDmaEdgeCases:
    def test_budget_victim_with_free_ways(self):
        """dma_count at budget but the set is not full: the victim must
        still come from the DMA slice — free ways don't grow it."""
        llc = make(size_kb=1, ways=8, ddio_ways=2)
        n_sets = llc.n_sets
        core = 10 * n_sets
        llc.lookup_read(core)
        llc.write_allocate_ddio(0)
        llc.write_allocate_ddio(n_sets)
        # 4 of 8 ways used; budget full. Next DMA alloc evicts DMA LRU.
        _, evicted = llc.write_allocate_ddio(2 * n_sets)
        assert evicted == 0
        lines = llc._set_for(0)
        assert len(lines) == 3  # swap within the slice, no growth
        assert llc.lookup_read(core)[0]

    def test_plain_lru_branch_returns_dirty_core_victim(self):
        """Set full but DMA budget free: plain LRU runs, and a dirty
        *core* victim's address is surfaced for the writeback."""
        llc = make(size_kb=1, ways=2, ddio_ways=2)
        n_sets = llc.n_sets
        dirty_core, clean_core = 5 * n_sets, 6 * n_sets
        llc.lookup_read(dirty_core)
        llc.writeback_update(dirty_core)
        llc.lookup_read(clean_core)  # MRU; dirty_core now LRU
        _, evicted = llc.write_allocate_ddio(0)
        assert evicted == dirty_core


class TestPrewarm:
    def test_prewarm_fills_every_set_with_dirty_dma_lines(self):
        """Regression: prewarming a cache whose sets are already full
        of core lines must still leave ``ddio_ways`` dirty DMA lines in
        every set (the old code trimmed the tail *after* installing,
        deleting the lines it had just added)."""
        llc = make(size_kb=4, ways=4, ddio_ways=2)
        n_sets = llc.n_sets
        for s in range(n_sets):  # fill every way of every set
            for w in range(llc.ways):
                llc.lookup_read(s + w * n_sets)
        llc.prewarm_ddio(base_line=1 << 20)
        for s, lines in enumerate(llc._sets):
            dma = [ln for ln in lines if ln.is_dma]
            assert len(lines) <= llc.ways
            assert len(dma) == llc.ddio_ways, f"set {s}: {len(dma)} DMA lines"
            assert all(ln.dirty for ln in dma)

    def test_prewarm_addresses_are_set_congruent(self):
        """Regression: synthetic prewarm addresses must map to the set
        they are installed in (the old sequential ``addr += 1`` walk
        put almost every line in a foreign set)."""
        llc = make(size_kb=4, ways=4, ddio_ways=2)
        llc.prewarm_ddio(base_line=(1 << 20) + 13)  # non-aligned base
        assert llc.verify_tags() == llc.n_sets * llc.ddio_ways

    def test_prewarm_is_idempotent(self):
        llc = make(size_kb=4, ways=4, ddio_ways=2)
        llc.prewarm_ddio(base_line=1 << 20)
        first = llc.dma_lines()
        llc.prewarm_ddio(base_line=1 << 20)
        assert llc.dma_lines() == first == llc.n_sets * llc.ddio_ways
        llc.verify_tags()

    def test_prewarm_evicts_core_lru_not_mru(self):
        llc = make(size_kb=1, ways=2, ddio_ways=1)
        n_sets = llc.n_sets
        lru, mru = 3 * n_sets, 4 * n_sets
        llc.lookup_read(lru)
        llc.lookup_read(mru)
        llc.prewarm_ddio(base_line=1 << 20)
        assert llc.lookup_read(mru)[0]  # survivor
        assert not llc.lookup_read(lru)[0]


class TestVerifyTags:
    def test_clean_cache_passes(self):
        llc = make()
        llc.lookup_read(17)
        llc.write_allocate_ddio(23)
        assert llc.verify_tags() == 2

    def test_foreign_set_line_raises(self):
        llc = make(size_kb=1, ways=2)
        llc.lookup_read(0)
        llc._sets[1].append(llc._sets[0].pop(0))  # corrupt: wrong set
        with pytest.raises(AssertionError):
            llc.verify_tags()

    def test_duplicate_tag_raises(self):
        llc = make(size_kb=1, ways=2)
        llc.lookup_read(0)
        from repro.uncore.llc import _Line

        llc._sets[0].append(_Line(0, dirty=False, is_dma=False))
        with pytest.raises(AssertionError):
            llc.verify_tags()


class TestWritebackUpdate:
    def test_resident_line_marked_dirty(self):
        llc = make(size_kb=1, ways=1, ddio_ways=1)
        llc.lookup_read(3)
        assert llc.writeback_update(3)
        _, evicted = llc.lookup_read(3 + llc.n_sets)
        assert evicted == 3  # dirty eviction

    def test_absent_line_returns_false(self):
        llc = make()
        assert not llc.writeback_update(99)
