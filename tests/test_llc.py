"""Unit tests for the LLC with DDIO way restriction."""

import pytest

from repro.uncore.llc import LastLevelCache


def make(size_kb=64, ways=4, ddio_ways=2):
    return LastLevelCache(size_kb * 1024, ways, ddio_ways)


class TestBasics:
    def test_geometry(self):
        llc = make(size_kb=64, ways=4)
        assert llc.size_bytes == 64 * 1024
        assert llc.n_sets == 64 * 1024 // (4 * 64)

    def test_ddio_capacity(self):
        llc = make(size_kb=64, ways=4, ddio_ways=2)
        assert llc.ddio_capacity_bytes == llc.size_bytes // 2

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            LastLevelCache(0, 4)
        with pytest.raises(ValueError):
            LastLevelCache(1024, 4, ddio_ways=5)


class TestReads:
    def test_miss_then_hit(self):
        llc = make()
        hit, _ = llc.lookup_read(42)
        assert not hit
        hit, _ = llc.lookup_read(42)
        assert hit

    def test_no_allocate_leaves_cache_unchanged(self):
        llc = make()
        llc.lookup_read(42, allocate=False)
        hit, _ = llc.lookup_read(42)
        assert not hit

    def test_lru_eviction(self):
        llc = make(size_kb=1, ways=2)  # 8 sets
        n_sets = llc.n_sets
        a, b, c = 0, n_sets, 2 * n_sets  # same set
        llc.lookup_read(a)
        llc.lookup_read(b)
        llc.lookup_read(c)  # evicts a (LRU)
        assert not llc.lookup_read(a)[0]
        # b was made MRU... then a's re-install evicted it? touch order:
        # after c: set = [c, b]; a misses and evicts b.

    def test_clean_eviction_returns_none(self):
        llc = make(size_kb=1, ways=1, ddio_ways=1)
        _, evicted = llc.lookup_read(0)
        _, evicted = llc.lookup_read(llc.n_sets)  # evicts line 0, clean
        assert evicted is None

    def test_miss_ratio(self):
        llc = make()
        llc.lookup_read(1)
        llc.lookup_read(1)
        assert llc.miss_ratio == pytest.approx(0.5)

    def test_reset_stats(self):
        llc = make()
        llc.lookup_read(1)
        llc.reset_stats()
        assert llc.hits == 0 and llc.misses == 0


class TestDdioWrites:
    def test_alloc_then_hit(self):
        llc = make()
        outcome, evicted = llc.write_allocate_ddio(7)
        assert outcome == "alloc" and evicted is None
        outcome, _ = llc.write_allocate_ddio(7)
        assert outcome == "hit"

    def test_ddio_way_budget_evicts_dma_lines(self):
        llc = make(size_kb=1, ways=4, ddio_ways=2)
        n_sets = llc.n_sets
        lines = [i * n_sets for i in range(3)]  # same set
        llc.write_allocate_ddio(lines[0])
        llc.write_allocate_ddio(lines[1])
        _, evicted = llc.write_allocate_ddio(lines[2])
        # Third DMA line exceeds the 2-way budget: the LRU DMA line
        # (lines[0]) is evicted dirty even though plain ways are free.
        assert evicted == lines[0]

    def test_core_lines_not_victimized_by_ddio_budget(self):
        llc = make(size_kb=1, ways=4, ddio_ways=2)
        n_sets = llc.n_sets
        core_line = 5 * n_sets
        llc.lookup_read(core_line)
        llc.write_allocate_ddio(0)
        llc.write_allocate_ddio(n_sets)
        _, evicted = llc.write_allocate_ddio(2 * n_sets)
        assert evicted != core_line
        assert llc.lookup_read(core_line)[0]

    def test_thrash_generates_one_eviction_per_write(self):
        """Steady state for buffers larger than the DDIO slice: every
        DMA write evicts a dirty DMA line (same memory write volume as
        DDIO-off, §2.1)."""
        llc = make(size_kb=1, ways=4, ddio_ways=1)
        n_sets = llc.n_sets
        evictions = 0
        for i in range(1, 50):
            _, evicted = llc.write_allocate_ddio(i * n_sets)
            if evicted is not None:
                evictions += 1
        assert evictions == 48  # all but the first

    def test_small_buffer_fully_absorbed(self):
        """A buffer within the DDIO slice hits after the first pass."""
        llc = make(size_kb=64, ways=4, ddio_ways=2)
        lines = range(0, 100)
        for line in lines:
            llc.write_allocate_ddio(line)
        outcomes = [llc.write_allocate_ddio(line)[0] for line in lines]
        assert all(o == "hit" for o in outcomes)


class TestWritebackUpdate:
    def test_resident_line_marked_dirty(self):
        llc = make(size_kb=1, ways=1, ddio_ways=1)
        llc.lookup_read(3)
        assert llc.writeback_update(3)
        _, evicted = llc.lookup_read(3 + llc.n_sets)
        assert evicted == 3  # dirty eviction

    def test_absent_line_returns_false(self):
        llc = make()
        assert not llc.writeback_update(99)
