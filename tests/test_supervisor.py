"""Supervised sweep executor: retries, timeouts, crashes, journal."""

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments import runcache
from repro.experiments.reporting import render_failures
from repro.experiments.supervisor import (
    Journal,
    SupervisorConfig,
    SweepError,
    _backoff_delay,
    _Task,
    run_supervised,
    stats,
)


@pytest.fixture(autouse=True)
def isolated_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for name in (
        "REPRO_CACHE",
        "REPRO_JOBS",
        "REPRO_RETRIES",
        "REPRO_BACKOFF",
        "REPRO_TASK_TIMEOUT",
        "REPRO_JOURNAL_DIR",
        "REPRO_CHAOS",
    ):
        monkeypatch.delenv(name, raising=False)


# Fast-retrying config for tests; pool_failure_limit generous so crash
# tests exercise isolation rather than degradation unless they mean to.
def _config(**kwargs):
    kwargs.setdefault("backoff_s", 0.01)
    kwargs.setdefault("pool_failure_limit", 10)
    return SupervisorConfig(**kwargs)


def _bump(path):
    """Cross-process execution counter: append a byte, return the count."""
    with open(path, "ab") as fh:
        fh.write(b"x")
    return os.path.getsize(path)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _fail_n_times(n, path, x):
    """Raise on the first ``n`` executions, then return ``x * x``."""
    if _bump(path) <= n:
        raise ValueError(f"transient {x}")
    return x * x


def _exit_n_times(n, path, x):
    """Hard-kill the executing process on the first ``n`` executions."""
    if _bump(path) <= n:
        os._exit(9)
    return x * x


def _exit_always(x):
    os._exit(9)


def _hang_n_times(n, path, x):
    """Sleep far past any test timeout on the first ``n`` executions."""
    if _bump(path) <= n:
        time.sleep(60)
    return x * x


def _count_square(x, path):
    _bump(path)
    return x * x


class _Throttle:
    """Sim callback that wall-sleeps while ``flag`` records attempt 0.

    Scheduled into the host's simulator, so it rides along in mid-run
    checkpoints; the resumed attempt sees the bumped flag and runs at
    full speed.
    """

    def __init__(self, sim, flag, interval_ns, sleep_s):
        self.sim = sim
        self.flag = flag
        self.interval_ns = interval_ns
        self.sleep_s = sleep_s

    def tick(self):
        if os.path.getsize(self.flag) <= 1:
            time.sleep(self.sleep_s)
        self.sim.schedule(self.interval_ns, self.tick)


def _sim_run(flag, preempt_at=0, exit_process=False, throttle=None,
             warmup=1_000.0, measure=20_000.0):
    """A real (small) simulation task for preemption/resume tests.

    On its first execution (tracked via ``flag``) it arms an in-run
    checkpoint preemption at ``preempt_at`` events and/or slows the
    simulation down with a :class:`_Throttle`; later executions run
    clean and resume from whatever checkpoint the first one left.
    """
    from repro import Host, cascade_lake
    from repro.sim import checkpoint

    attempt = _bump(flag)
    host = Host(cascade_lake())
    host.add_stream_cores(1, store_fraction=0.0)
    if attempt == 1 and preempt_at:
        checkpoint.arm_preempt(preempt_at, exit_process=exit_process)
    if throttle is not None:
        interval_ns, sleep_s = throttle
        host.sim.schedule(0.0, _Throttle(host.sim, flag, interval_ns, sleep_s).tick)
    return host.run(warmup, measure)


class TestRetries:
    def test_transient_exception_recovered_serial(self, tmp_path):
        counter = tmp_path / "fails"
        batch = run_supervised(
            [(_square, (2,), {}), (_fail_n_times, (1, str(counter), 3), {})],
            jobs=1,
            config=_config(retries=1),
        )
        assert batch.results == [4, 9]
        assert len(batch.failures) == 1
        failure = batch.failures[0]
        assert failure.recovered and failure.kind == "error"
        assert failure.attempts == 2
        assert "ValueError: transient 3" in failure.outcomes[0]
        assert failure.outcomes[-1] == "ok"

    def test_transient_exception_recovered_parallel(self, tmp_path):
        counter = tmp_path / "fails"
        calls = [(_square, (i,), {}) for i in range(3)]
        calls.append((_fail_n_times, (1, str(counter), 5), {}))
        before = stats.snapshot()
        batch = run_supervised(calls, jobs=2, config=_config(retries=2))
        assert batch.results == [0, 1, 4, 25]
        assert [f.recovered for f in batch.failures] == [True]
        assert stats.delta(before)["retries"] == 1

    def test_retries_exhausted_raises_original_exception(self, tmp_path):
        counter = tmp_path / "fails"
        with pytest.raises(ValueError, match="transient") as excinfo:
            run_supervised(
                [(_fail_n_times, (10, str(counter), 3), {})],
                jobs=1,
                config=_config(retries=2),
            )
        # Three executions: the original attempt plus two retries.
        assert os.path.getsize(counter) == 3
        failures = excinfo.value.sweep_failures
        assert len(failures) == 1 and not failures[0].recovered
        assert failures[0].attempts == 3
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("attempt 3 of 3" in note for note in notes)

    def test_no_retries_by_default(self, tmp_path):
        counter = tmp_path / "fails"
        with pytest.raises(ValueError):
            run_supervised(
                [(_fail_n_times, (1, str(counter), 3), {})], jobs=1
            )
        assert os.path.getsize(counter) == 1

    def test_backoff_is_deterministic_and_bounded(self):
        task = _Task(0, (_square, (1,), {}), "_square(1)")
        task.digest = "abc123"
        cfg = _config(retries=5, backoff_s=0.1)
        task.failures = 1
        first = _backoff_delay(cfg, task)
        assert first == _backoff_delay(cfg, task)
        assert 0.1 <= first <= 0.2  # base * (1 + jitter), jitter in [0, 1)
        task.failures = 3
        assert 0.4 <= _backoff_delay(cfg, task) <= 0.8
        task.failures = 100
        assert _backoff_delay(cfg, task) == 10.0  # hard cap


class TestCrashIsolation:
    def test_killed_worker_recovered_and_batch_completes(self, tmp_path):
        counter = tmp_path / "kills"
        calls = [(_square, (i,), {}) for i in range(3)]
        calls.append((_exit_n_times, (1, str(counter), 7), {}))
        before = stats.snapshot()
        batch = run_supervised(calls, jobs=2, config=_config(retries=2))
        assert batch.results == [0, 1, 4, 49]
        assert [f.kind for f in batch.failures] == ["crash"]
        assert batch.failures[0].attempts == 2
        delta = stats.delta(before)
        assert delta["pool_failures"] >= 1 and delta["crashes"] >= 1

    def test_crash_blames_culprit_and_persists_siblings(self):
        calls = [
            (_square, (11,), {}),
            (_exit_always, (1,), {}),
            (_square, (12,), {}),
        ]
        with pytest.raises(SweepError) as excinfo:
            run_supervised(calls, jobs=2, config=_config(retries=0))
        assert "_exit_always" in str(excinfo.value)
        assert "REPRO_JOBS=1" in str(excinfo.value)
        assert [f.task for f in excinfo.value.failures] == ["_exit_always(1)"]
        # The innocent siblings completed and were persisted despite
        # sharing a pool with the crashing task.
        for arg in (11, 12):
            hit, value = runcache.get(runcache.key_for(_square, (arg,), {}))
            assert hit and value == arg * arg

    def test_degrades_to_serial_after_repeated_pool_failures(self, tmp_path):
        counter = tmp_path / "kills"
        calls = [
            (_square, (5,), {}),
            (_exit_n_times, (2, str(counter), 6), {}),
        ]
        before = stats.snapshot()
        batch = run_supervised(
            calls,
            jobs=2,
            config=_config(retries=5, pool_failure_limit=2),
        )
        assert batch.results == [25, 36]
        assert stats.delta(before)["degraded"] == 1
        # The surviving attempt ran in-process after degradation.
        assert any(f.kind == "crash" and f.recovered for f in batch.failures)


class TestTimeouts:
    def test_hung_task_times_out_and_recovers(self, tmp_path):
        counter = tmp_path / "hangs"
        calls = [
            (_square, (3,), {}),
            (_hang_n_times, (1, str(counter), 4), {}),
        ]
        before = stats.snapshot()
        start = time.monotonic()
        batch = run_supervised(
            calls, jobs=2, config=_config(retries=1, task_timeout_s=1.5)
        )
        elapsed = time.monotonic() - start
        assert batch.results == [9, 16]
        assert [f.kind for f in batch.failures] == ["timeout"]
        assert batch.failures[0].attempts == 2
        assert "REPRO_TASK_TIMEOUT=1.5" in batch.failures[0].outcomes[0]
        assert stats.delta(before)["timeouts"] == 1
        assert elapsed < 30.0  # the 60 s hang was cut off, not awaited

    def test_timeout_exhausted_raises_sweep_error(self, tmp_path):
        counter = tmp_path / "hangs"
        calls = [
            (_square, (3,), {}),
            (_hang_n_times, (10, str(counter), 4), {}),
        ]
        with pytest.raises(SweepError, match="REPRO_TASK_TIMEOUT") as excinfo:
            run_supervised(
                calls, jobs=2, config=_config(retries=0, task_timeout_s=1.0)
            )
        assert excinfo.value.failures[0].kind == "timeout"
        # The innocent sibling still completed and was persisted.
        hit, value = runcache.get(runcache.key_for(_square, (3,), {}))
        assert hit and value == 9


class TestJournal:
    def test_interrupted_sweep_resumes_without_recompute(self, tmp_path):
        journal_dir = tmp_path / "journal"
        counters = [tmp_path / f"count{i}" for i in range(3)]
        flag = tmp_path / "flaky"
        calls = [
            (_count_square, (i, str(counters[i])), {}) for i in range(3)
        ]
        calls.append((_fail_n_times, (1, str(flag), 9), {}))
        cfg = _config(retries=0, journal_dir=journal_dir)
        # First invocation: the flaky task aborts the sweep, but the
        # three finished tasks are checkpointed.
        with pytest.raises(ValueError, match="transient"):
            run_supervised(calls, jobs=1, cache=False, config=cfg)
        assert [os.path.getsize(c) for c in counters] == [1, 1, 1]
        # Second invocation resumes: only the failed task re-executes.
        before = stats.snapshot()
        batch = run_supervised(calls, jobs=1, cache=False, config=cfg)
        assert batch.results == [0, 1, 4, 81]
        assert batch.resumed == 3
        assert stats.delta(before)["journal_hits"] == 3
        assert [os.path.getsize(c) for c in counters] == [1, 1, 1]

    def test_journal_resumes_parallel_batches(self, tmp_path):
        journal_dir = tmp_path / "journal"
        counters = [tmp_path / f"count{i}" for i in range(4)]
        calls = [
            (_count_square, (i, str(counters[i])), {}) for i in range(4)
        ]
        cfg = _config(journal_dir=journal_dir)
        first = run_supervised(calls, jobs=2, cache=False, config=cfg)
        second = run_supervised(calls, jobs=2, cache=False, config=cfg)
        assert first.results == second.results == [0, 1, 4, 9]
        assert second.resumed == 4
        assert [os.path.getsize(c) for c in counters] == [1, 1, 1, 1]

    def test_journal_records_failures_and_attempts(self, tmp_path):
        journal_dir = tmp_path / "journal"
        flag = tmp_path / "flaky"
        cfg = _config(retries=1, journal_dir=journal_dir)
        batch = run_supervised(
            [(_fail_n_times, (1, str(flag), 3), {})], jobs=1, cache=False, config=cfg
        )
        assert batch.results == [9]
        records = [
            json.loads(line)
            for line in (journal_dir / "journal.jsonl").read_text().splitlines()
        ]
        assert records[-1]["status"] == "done"
        assert records[-1]["attempts"] == 2
        assert any("transient" in o for o in records[-1]["outcomes"])

    def test_torn_journal_tail_is_ignored(self, tmp_path):
        journal_dir = tmp_path / "journal"
        journal_dir.mkdir()
        good = json.dumps({"task": "aa", "status": "done", "stored": True})
        (journal_dir / "journal.jsonl").write_text(
            good + "\n" + '{"task": "bb", "status": "do'
        )
        journal = Journal(journal_dir)
        assert journal.completed("aa") is True
        assert journal.load_result("aa") == (False, None)  # no result file
        assert "bb" not in journal._records  # torn line dropped

    def test_corrupt_journal_result_forces_recompute(self, tmp_path):
        journal_dir = tmp_path / "journal"
        counter = tmp_path / "count"
        calls = [(_count_square, (6, str(counter)), {}), (_square, (8,), {})]
        cfg = _config(journal_dir=journal_dir)
        run_supervised(calls, jobs=1, cache=False, config=cfg)
        # Truncate every checkpointed result: the checksum fails, so
        # the resume recomputes instead of returning garbage.
        for path in journal_dir.glob("*.pkl"):
            path.write_bytes(path.read_bytes()[:10])
        batch = run_supervised(calls, jobs=1, cache=False, config=cfg)
        assert batch.results == [36, 64]
        assert batch.resumed == 0
        assert os.path.getsize(counter) == 2


class TestSerialSemantics:
    def test_serial_batch_runs_all_tasks_despite_failure(self, tmp_path):
        """Serial and parallel agree: a failing task does not abandon
        its unstarted siblings (regression — serial used to stop at
        the first error)."""
        counter = tmp_path / "after"
        calls = [
            (_square, (2,), {}),
            (_boom, (1,), {}),
            (_count_square, (9, str(counter)), {}),
        ]
        with pytest.raises(ValueError, match="boom"):
            run_supervised(calls, jobs=1, config=_config())
        # The task *after* the failure still executed and persisted.
        assert os.path.getsize(counter) == 1
        hit, value = runcache.get(runcache.key_for(_square, (2,), {}))
        assert hit and value == 4

    def test_multiple_failures_report_first_and_count_rest(self):
        with pytest.raises(ValueError, match="boom 1") as excinfo:
            run_supervised(
                [(_boom, (1,), {}), (_boom, (2,), {})], jobs=1, config=_config()
            )
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("1 other task(s)" in note for note in notes)
        assert len(excinfo.value.sweep_failures) == 2


class TestPreemption:
    """Mid-run checkpoint preemption: interrupted tasks resume, not rerun."""

    def _baseline(self, tmp_path, **kwargs):
        flag = tmp_path / "baseline-flag"
        flag.write_bytes(b"xx")  # attempt >= 2: no preemption, no throttle
        batch = run_supervised(
            [(_sim_run, (str(flag),), kwargs)], jobs=1, cache=False, config=_config()
        )
        return batch.results[0]

    def test_serial_preempt_checkpoints_and_resumes(self, tmp_path):
        from repro.validate.harness import assert_results_identical

        baseline = self._baseline(tmp_path)
        journal_dir = tmp_path / "journal"
        flag = tmp_path / "flag"
        cfg = _config(retries=1, journal_dir=journal_dir, task_timeout_s=60.0)
        before = stats.snapshot()
        batch = run_supervised(
            [(_sim_run, (str(flag),), {"preempt_at": 6_000})],
            jobs=1,
            cache=False,
            config=cfg,
        )
        assert_results_identical(
            baseline, batch.results[0], context="serial preempt resume"
        )
        # One preempted attempt, resumed and recovered on the retry.
        assert os.path.getsize(flag) == 2
        assert stats.delta(before)["retries"] == 1
        assert [f.recovered for f in batch.failures] == [True]
        assert "Preempted" in batch.failures[0].outcomes[0]
        # The journal recorded the checkpoint lineage...
        records = [
            json.loads(line)
            for line in (journal_dir / "journal.jsonl").read_text().splitlines()
        ]
        preempted = [r for r in records if r["status"] == "preempted"]
        assert preempted and preempted[0]["ckpt"].endswith(".ckpt")
        assert records[-1]["status"] == "done"
        # ...and the blob was cleaned up once the task completed.
        assert not list(journal_dir.glob("*.ckpt"))

    def test_worker_preempt_exit_resumes(self, tmp_path):
        from repro.validate.harness import assert_results_identical

        baseline = self._baseline(tmp_path)
        journal_dir = tmp_path / "journal"
        flag = tmp_path / "flag"
        cfg = _config(retries=2, journal_dir=journal_dir, task_timeout_s=60.0)
        batch = run_supervised(
            [
                (_square, (4,), {}),
                (_sim_run, (str(flag),), {"preempt_at": 6_000, "exit_process": True}),
            ],
            jobs=2,
            cache=False,
            config=cfg,
        )
        assert batch.results[0] == 16
        assert_results_identical(
            baseline, batch.results[1], context="worker preempt resume"
        )
        # The worker exited with PREEMPT_EXIT_CODE (a pool break), so
        # the failure surfaces as a recovered crash; the flag proves the
        # retry resumed instead of simulating from scratch a third time.
        assert any(f.kind == "crash" and f.recovered for f in batch.failures)
        records = [
            json.loads(line)
            for line in (journal_dir / "journal.jsonl").read_text().splitlines()
        ]
        assert any(r["status"] == "preempted" for r in records)
        assert not list(journal_dir.glob("*.ckpt"))

    def test_timed_out_task_checkpoints_and_resumes(self, tmp_path):
        from repro.validate.harness import assert_results_identical

        throttle = (100.0, 0.02)  # ~0.8 s of wall-sleep on attempt 0
        baseline = self._baseline(
            tmp_path, throttle=throttle, warmup=1_000.0, measure=3_000.0
        )
        journal_dir = tmp_path / "journal"
        flag = tmp_path / "flag"
        cfg = _config(retries=2, journal_dir=journal_dir, task_timeout_s=0.3)
        before = stats.snapshot()
        batch = run_supervised(
            [
                (_square, (5,), {}),
                (
                    _sim_run,
                    (str(flag),),
                    {"throttle": throttle, "warmup": 1_000.0, "measure": 3_000.0},
                ),
            ],
            jobs=2,
            cache=False,
            config=cfg,
        )
        assert batch.results[0] == 25
        assert_results_identical(
            baseline, batch.results[1], context="timeout preempt resume"
        )
        assert stats.delta(before)["timeouts"] >= 1
        assert any(f.kind == "timeout" and f.recovered for f in batch.failures)
        # The pool teardown's SIGTERM made the worker checkpoint: the
        # journal carries the lineage and the retry resumed from it.
        records = [
            json.loads(line)
            for line in (journal_dir / "journal.jsonl").read_text().splitlines()
        ]
        assert any(r["status"] == "preempted" for r in records)
        assert not list(journal_dir.glob("*.ckpt"))


class TestConfig:
    def test_from_env_defaults_are_conservative(self):
        cfg = SupervisorConfig.from_env()
        assert cfg.retries == 0
        assert cfg.task_timeout_s == 0.0
        assert cfg.journal_dir is None

    def test_from_env_reads_knobs(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RETRIES", "4")
        monkeypatch.setenv("REPRO_BACKOFF", "0.5")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path))
        cfg = SupervisorConfig.from_env()
        assert cfg.retries == 4
        assert cfg.backoff_s == 0.5
        assert cfg.task_timeout_s == 12.5
        assert cfg.journal_dir == Path(tmp_path)

    @pytest.mark.parametrize(
        "name,value",
        [
            ("REPRO_RETRIES", "many"),
            ("REPRO_RETRIES", "-1"),
            ("REPRO_TASK_TIMEOUT", "soon"),
            ("REPRO_BACKOFF", "-0.5"),
        ],
    )
    def test_from_env_rejects_garbage(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        with pytest.raises(ValueError, match=name):
            SupervisorConfig.from_env()


class TestReporting:
    def test_render_failures_lists_attempts_and_kind(self, tmp_path):
        counter = tmp_path / "fails"
        batch = run_supervised(
            [(_fail_n_times, (1, str(counter), 3), {})],
            jobs=1,
            config=_config(retries=1),
        )
        text = render_failures(batch.failures)
        assert "_fail_n_times" in text
        assert "error" in text
        assert "yes" in text  # recovered column
        lines = text.splitlines()
        assert any(" 2 " in line for line in lines)  # attempt count
