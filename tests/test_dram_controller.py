"""Unit tests for the bank state machine and memory-controller channel."""

import pytest

from repro.dram.controller import Channel, MemoryController
from repro.dram.timing import DDR4_2933
from repro.sim.engine import Simulator
from repro.sim.records import Request, RequestKind, RequestSource
from repro.telemetry.counters import CounterHub


def make_channel(**kw):
    sim = Simulator()
    hub = CounterHub()
    defaults = dict(
        channel_id=0,
        timing=DDR4_2933,
        n_banks=4,
        rpq_size=16,
        wpq_size=16,
    )
    defaults.update(kw)
    channel = Channel(sim, hub, **defaults)
    return sim, hub, channel


def make_read(line=0, bank=0, row=0, tc="c2m"):
    req = Request(RequestSource.C2M, RequestKind.READ, line, traffic_class=tc)
    req.channel_id = 0
    req.bank_id = bank
    req.row_id = row
    return req


def make_write(line=0, bank=0, row=0, tc="c2m"):
    req = Request(RequestSource.C2M, RequestKind.WRITE, line, traffic_class=tc)
    req.channel_id = 0
    req.bank_id = bank
    req.row_id = row
    return req


class TestChannelReads:
    def test_single_read_services_and_completes(self):
        sim, hub, channel = make_channel()
        done = []
        req = make_read()
        req.on_complete = lambda r: done.append(sim.now)
        channel.reserve_read()
        channel.enqueue_read(req)
        sim.run_until(1000.0)
        assert done, "read never completed"
        # Cold bank: ACT + CAS prep, then one transmission.
        expected = DDR4_2933.t_act + DDR4_2933.t_cas + DDR4_2933.t_trans
        assert done[0] == pytest.approx(expected, abs=0.01)
        assert req.row_outcome == "miss"

    def test_row_hit_skips_preparation(self):
        sim, hub, channel = make_channel()
        times = []
        first = make_read(row=0)
        second = make_read(line=1, row=0)
        for req in (first, second):
            req.on_complete = lambda r: times.append(sim.now)
            channel.reserve_read()
            channel.enqueue_read(req)
        sim.run_until(1000.0)
        assert second.row_outcome == "hit"
        # Back-to-back transmissions: exactly one t_trans apart.
        assert times[1] - times[0] == pytest.approx(DDR4_2933.t_trans, abs=0.01)

    def test_row_conflict_pays_precharge(self):
        sim, hub, channel = make_channel()
        first = make_read(row=0)
        second = make_read(line=1, row=1)  # same bank, different row
        done = []
        for req in (first, second):
            req.on_complete = lambda r: done.append(sim.now)
            channel.reserve_read()
            channel.enqueue_read(req)
        sim.run_until(1000.0)
        assert second.row_outcome == "conflict"
        assert channel.stats.pre_conflict_read == 1
        assert channel.stats.act_read == 2

    def test_bank_prep_overlaps_other_banks_transmission(self):
        # Two reads to different banks, different rows: the second
        # bank's ACT overlaps the first's prep + transmission, so the
        # pair finishes in prep + 2 transfers, not 2 preps + 2 transfers.
        sim, hub, channel = make_channel()
        done = []
        for bank in (0, 1):
            req = make_read(line=bank, bank=bank, row=5)
            req.on_complete = lambda r: done.append(sim.now)
            channel.reserve_read()
            channel.enqueue_read(req)
        sim.run_until(1000.0)
        prep = DDR4_2933.t_act + DDR4_2933.t_cas
        assert done[-1] == pytest.approx(prep + 2 * DDR4_2933.t_trans, abs=0.1)

    def test_same_bank_preps_serialize(self):
        sim, hub, channel = make_channel()
        done = []
        for row in (0, 1):
            req = make_read(line=row, bank=0, row=row)
            req.on_complete = lambda r: done.append(sim.now)
            channel.reserve_read()
            channel.enqueue_read(req)
        sim.run_until(1000.0)
        prep1 = DDR4_2933.t_act + DDR4_2933.t_cas
        prep2 = prep1 + DDR4_2933.t_pre
        minimum = prep1 + DDR4_2933.t_trans + prep2 + DDR4_2933.t_trans
        assert done[-1] >= minimum - 0.1

    def test_oldest_ready_first_across_banks(self):
        sim, hub, channel = make_channel()
        order = []
        for i, bank in enumerate((2, 1)):
            req = make_read(line=i, bank=bank, row=0)
            req.on_complete = lambda r, b=bank: order.append(b)
            channel.reserve_read()
            channel.enqueue_read(req)
        sim.run_until(1000.0)
        assert order == [2, 1]  # arrival order, both ready simultaneously

    def test_rpq_capacity_enforced(self):
        sim, hub, channel = make_channel(rpq_size=2)
        channel.reserve_read()
        channel.reserve_read()
        assert not channel.can_accept_read()
        with pytest.raises(RuntimeError):
            channel.reserve_read()


class TestChannelWrites:
    def test_write_completes_at_wpq_admission(self):
        sim, hub, channel = make_channel()
        admitted = []
        req = make_write()
        req.on_complete = lambda r: admitted.append(sim.now)
        channel.reserve_write()
        channel.enqueue_write(req)
        # Completion callback fires synchronously at admission.
        assert admitted == [0.0]
        sim.run_until(1000.0)
        assert channel.stats.lines_written == 1

    def test_wpq_space_callback_fires_after_drain(self):
        sim, hub, channel = make_channel()
        freed = []
        channel.on_wpq_space = lambda ch: freed.append(sim.now)
        channel.reserve_write()
        channel.enqueue_write(make_write())
        sim.run_until(1000.0)
        assert len(freed) == 1

    def test_channel_switches_to_write_when_no_reads(self):
        sim, hub, channel = make_channel()
        channel.reserve_write()
        channel.enqueue_write(make_write())
        sim.run_until(1000.0)
        assert channel.stats.switches_rtw == 1
        assert channel.stats.lines_written == 1

    def test_mode_returns_to_read_when_reads_arrive(self):
        sim, hub, channel = make_channel()
        channel.reserve_write()
        channel.enqueue_write(make_write())
        sim.run_until(1000.0)
        assert channel.mode is RequestKind.WRITE
        done = []
        req = make_read()
        req.on_complete = lambda r: done.append(sim.now)
        channel.reserve_read()
        channel.enqueue_read(req)
        sim.run_until(2000.0)
        assert done and channel.stats.switches_wtr == 1


class TestReadPriority:
    def test_reads_not_preempted_until_wpq_critical(self):
        """A trickle of writes must not steal the channel from reads."""
        sim, hub, channel = make_channel(wpq_size=16)
        reads_done = []
        for i in range(8):
            req = make_read(line=i, bank=i % 4, row=0)
            req.on_complete = lambda r: reads_done.append(sim.now)
            channel.reserve_read()
            channel.enqueue_read(req)
        channel.reserve_write()
        channel.enqueue_write(make_write(bank=3, row=9))
        sim.run_until(5000.0)
        assert len(reads_done) == 8
        # The single write drains only after reads are exhausted.
        assert channel.stats.lines_written == 1

    def test_write_overload_backpressures_not_starves(self):
        sim, hub, channel = make_channel(wpq_size=8)
        for i in range(8):
            channel.reserve_write()
            channel.enqueue_write(make_write(line=i, bank=i % 4, row=i))
        assert not channel.can_accept_write()
        sim.run_until(5000.0)
        assert channel.can_accept_write()
        assert channel.stats.lines_written == 8


class TestMemoryController:
    def test_assign_decodes_address(self):
        sim = Simulator()
        hub = CounterHub()
        mc = MemoryController(sim, hub, DDR4_2933, n_channels=2, n_banks=16)
        req = make_read(line=12345)
        channel = mc.assign(req)
        assert channel is mc.channels[req.channel_id]
        assert req.bank_id >= 0 and req.row_id >= 0

    def test_theoretical_bandwidth(self):
        sim = Simulator()
        hub = CounterHub()
        mc = MemoryController(sim, hub, DDR4_2933, n_channels=2, n_banks=16)
        assert mc.theoretical_bandwidth == pytest.approx(46.9, abs=0.1)

    def test_class_lines_aggregate(self):
        sim = Simulator()
        hub = CounterHub()
        mc = MemoryController(sim, hub, DDR4_2933, n_channels=1, n_banks=4)
        req = make_read(tc="p2m")
        mc.assign(req)
        channel = mc.channels[0]
        channel.reserve_read()
        channel.enqueue_read(req)
        sim.run_until(1000.0)
        assert mc.class_lines("p2m", RequestKind.READ) == 1
        assert mc.class_lines("p2m", RequestKind.WRITE) == 0

    def test_row_miss_ratio_aggregation(self):
        sim = Simulator()
        hub = CounterHub()
        mc = MemoryController(sim, hub, DDR4_2933, n_channels=1, n_banks=4)
        channel = mc.channels[0]
        for i, row in enumerate((0, 0, 0, 1)):
            req = make_read(line=i, row=row)
            channel.reserve_read()
            channel.enqueue_read(req)
            sim.run_until(sim.now + 200.0)
        ratio = mc.row_miss_ratio("c2m", RequestKind.READ)
        assert ratio == pytest.approx(0.5)  # first (miss) + last (conflict)

    def test_reset_stats_clears_counts(self):
        sim = Simulator()
        hub = CounterHub()
        mc = MemoryController(sim, hub, DDR4_2933, n_channels=1, n_banks=4)
        channel = mc.channels[0]
        channel.reserve_read()
        channel.enqueue_read(make_read())
        sim.run_until(1000.0)
        mc.reset_stats(sim.now)
        assert mc.total("lines_read") == 0
