"""Integration tests for the paper's headline phenomena.

Each test reproduces one claim from §2/§5 on a small measurement
window; these are the load-bearing assertions of the reproduction.
"""

import pytest

from repro import Host, RequestKind, cascade_lake
from repro.core.regimes import Regime
from repro.experiments.quadrants import run_quadrant

WARMUP = 15_000.0
MEASURE = 40_000.0


def run_pair(n_cores, store_fraction, p2m_kind, warmup=WARMUP, measure=MEASURE):
    """(isolated C2M, isolated P2M, colocated) runs for one point."""
    host = Host(cascade_lake())
    host.add_stream_cores(n_cores, store_fraction)
    iso_c2m = host.run(warmup, measure)
    host = Host(cascade_lake())
    host.add_raw_dma(p2m_kind)
    iso_p2m = host.run(warmup, measure)
    host = Host(cascade_lake())
    host.add_stream_cores(n_cores, store_fraction)
    host.add_raw_dma(p2m_kind)
    colocated = host.run(warmup, measure)
    return iso_c2m, iso_p2m, colocated


class TestBlueRegime:
    """Quadrant 1 at low load: C2M degrades, P2M does not, memory
    bandwidth is far from saturated (§2.2, §5.1)."""

    @pytest.fixture(scope="class")
    def q1_two_cores(self):
        return run_pair(2, 0.0, RequestKind.WRITE)

    def test_c2m_degrades(self, q1_two_cores):
        iso, _, co = q1_two_cores
        degradation = iso.class_bandwidth("c2m") / co.class_bandwidth("c2m")
        assert 1.15 <= degradation <= 2.2

    def test_p2m_unaffected(self, q1_two_cores):
        _, iso_p2m, co = q1_two_cores
        degradation = iso_p2m.device_bandwidth("dma") / co.device_bandwidth("dma")
        assert degradation == pytest.approx(1.0, abs=0.05)

    def test_memory_bandwidth_unsaturated(self, q1_two_cores):
        _, _, co = q1_two_cores
        assert co.mem_bw_utilization < 0.75

    def test_c2m_read_latency_inflates(self, q1_two_cores):
        iso, _, co = q1_two_cores
        inflation = co.latency("c2m_read") / iso.latency("c2m_read")
        assert 1.1 <= inflation <= 2.2

    def test_p2m_write_latency_does_not_inflate_much(self, q1_two_cores):
        """§5.1: the P2M-Write domain excludes DRAM execution, so its
        latency stays near the unloaded ~300 ns at low C2M load."""
        _, iso_p2m, co = q1_two_cores
        bump = co.latency("p2m_write", "p2m") - iso_p2m.latency("p2m_write", "p2m")
        assert bump < 40.0

    def test_spare_credits_mask_inflation(self, q1_two_cores):
        _, _, co = q1_two_cores
        assert co.iio_write_avg_occupancy < 0.95 * co.config.iio_write_entries

    def test_row_miss_ratio_increases_when_colocated(self, q1_two_cores):
        iso, _, co = q1_two_cores
        assert (
            co.row_miss_ratio["c2m.read"] > iso.row_miss_ratio["c2m.read"]
        )


class TestRedRegime:
    """Quadrant 3 at high load: both sides degrade; WPQ backpressure
    hits the P2M-Write domain; CHA admission delays appear (§5.2)."""

    @pytest.fixture(scope="class")
    def q3_six_cores(self):
        # The write backlog that defines the red regime accumulates
        # over tens of microseconds; use a longer window.
        return run_pair(6, 1.0, RequestKind.WRITE, warmup=40_000.0, measure=80_000.0)

    def test_p2m_degrades(self, q3_six_cores):
        _, iso_p2m, co = q3_six_cores
        degradation = iso_p2m.device_bandwidth("dma") / co.device_bandwidth("dma")
        assert degradation > 1.15

    def test_p2m_write_latency_inflates_substantially(self, q3_six_cores):
        _, iso_p2m, co = q3_six_cores
        inflation = co.latency("p2m_write", "p2m") / iso_p2m.latency(
            "p2m_write", "p2m"
        )
        assert inflation > 1.3

    def test_wpq_fills_persistently(self, q3_six_cores):
        _, _, co = q3_six_cores
        assert co.wpq_full_fraction > 0.4

    def test_write_backlog_builds_at_cha(self, q3_six_cores):
        """N_waiting grows far beyond the blue-regime handful."""
        _, _, co = q3_six_cores
        assert co.cha_write_waiting_avg > 30.0

    def test_iio_write_credits_near_exhaustion(self, q3_six_cores):
        _, _, co = q3_six_cores
        assert co.iio_write_avg_occupancy > 0.8 * co.config.iio_write_entries

    def test_c2m_write_latency_stays_low_until_cha_pressure(self, q3_six_cores):
        """The asymmetry of §5.2: the C2M-Write domain (ending at the
        CHA) inflates far less than the P2M-Write domain (ending at
        the MC)."""
        _, iso_p2m, co = q3_six_cores
        c2m_write = co.latency("c2m_write")
        p2m_bump = co.latency("p2m_write", "p2m") - iso_p2m.latency(
            "p2m_write", "p2m"
        )
        assert c2m_write < p2m_bump

    def test_blue_at_low_core_counts_in_q3(self):
        iso, iso_p2m, co = run_pair(1, 1.0, RequestKind.WRITE)
        p2m_deg = iso_p2m.device_bandwidth("dma") / co.device_bandwidth("dma")
        c2m_deg = iso.class_bandwidth("c2m") / co.class_bandwidth("c2m")
        assert p2m_deg == pytest.approx(1.0, abs=0.05)
        assert c2m_deg > 1.05


class TestQuadrants2And4:
    """P2M-Read quadrants: C2M degrades, P2M reads tolerate latency
    inflation through their larger credit pool (§4.2, Appendix A)."""

    @pytest.mark.parametrize("store_fraction", [0.0, 1.0])
    def test_p2m_read_unaffected(self, store_fraction):
        iso, iso_p2m, co = run_pair(4, store_fraction, RequestKind.READ)
        p2m_deg = iso_p2m.device_bandwidth("dma") / co.device_bandwidth("dma")
        assert p2m_deg == pytest.approx(1.0, abs=0.06)

    def test_p2m_read_latency_inflates_but_credits_absorb(self):
        iso, iso_p2m, co = run_pair(4, 0.0, RequestKind.READ)
        assert co.latency("p2m_read", "p2m") > iso_p2m.latency("p2m_read", "p2m")
        assert co.iio_read_avg_occupancy < co.config.iio_read_entries

    def test_inflight_p2m_reads_grow_with_load(self):
        _, iso_p2m, co = run_pair(5, 1.0, RequestKind.READ)
        assert co.cha_inflight_p2m_reads_avg > 0


class TestQuadrantSweepClassification:
    def test_quadrant1_sweep_is_blue(self):
        points = run_quadrant(1, core_counts=(2, 4), warmup=10_000, measure=25_000)
        for point in points:
            assert point.regime is Regime.BLUE

    def test_quadrant3_high_load_turns_red(self):
        points = run_quadrant(3, core_counts=(6,), warmup=40_000, measure=80_000)
        assert points[-1].regime is Regime.RED

    def test_quadrant2_p2m_never_degrades(self):
        points = run_quadrant(2, core_counts=(3,), warmup=10_000, measure=25_000)
        assert points[0].p2m_degradation == pytest.approx(1.0, abs=0.06)
