"""Randomized stress tests for the memory-controller channel.

Hypothesis drives random request mixes through a channel and checks
global invariants: everything completes, conservation of counts, and
occupancies return to zero.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.controller import Channel
from repro.dram.timing import DDR4_2933
from repro.sim.engine import Simulator
from repro.sim.records import Request, RequestKind, RequestSource
from repro.telemetry.counters import CounterHub

request_strategy = st.tuples(
    st.booleans(),  # is_write
    st.integers(min_value=0, max_value=7),  # bank
    st.integers(min_value=0, max_value=3),  # row
    st.floats(min_value=0.0, max_value=50.0),  # inter-arrival gap
)


def build_channel(rpq=64, wpq=64):
    sim = Simulator()
    hub = CounterHub()
    channel = Channel(
        sim,
        hub,
        channel_id=0,
        timing=DDR4_2933,
        n_banks=8,
        rpq_size=rpq,
        wpq_size=wpq,
    )
    return sim, channel


class TestChannelStress:
    @given(st.lists(request_strategy, min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_every_request_completes(self, specs):
        sim, channel = build_channel()
        completed = []
        t = 0.0
        pending = []

        def submit(req):
            if req.kind is RequestKind.READ:
                channel.reserve_read()
                channel.enqueue_read(req)
            else:
                channel.reserve_write()
                channel.enqueue_write(req)

        for i, (is_write, bank, row, gap) in enumerate(specs):
            kind = RequestKind.WRITE if is_write else RequestKind.READ
            req = Request(RequestSource.C2M, kind, i)
            req.channel_id = 0
            req.bank_id = bank
            req.row_id = row
            if kind is RequestKind.READ:
                req.on_complete = lambda r: completed.append(r)
            t += gap
            pending.append((t, req))

        for at, req in pending:
            sim.schedule_at(at, submit, req)
        sim.run_until(t + 500_000.0)

        n_reads = sum(1 for s in specs if not s[0])
        n_writes = len(specs) - n_reads
        assert len(completed) == n_reads
        assert channel.stats.lines_read == n_reads
        assert channel.stats.lines_written == n_writes
        assert channel.rpq_count == 0
        assert channel.wpq_count == 0
        # Every serviced request carries a service timestamp and a
        # recorded row outcome.
        for req in completed:
            assert req.t_service is not None
            assert req.row_outcome in ("hit", "miss", "conflict")

    @given(st.lists(request_strategy, min_size=5, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_busy_time_bounded_by_elapsed(self, specs):
        sim, channel = build_channel()
        for i, (is_write, bank, row, _gap) in enumerate(specs):
            kind = RequestKind.WRITE if is_write else RequestKind.READ
            req = Request(RequestSource.C2M, kind, i)
            req.channel_id = 0
            req.bank_id = bank
            req.row_id = row
            if kind is RequestKind.READ:
                channel.reserve_read()
                channel.enqueue_read(req)
            else:
                channel.reserve_write()
                channel.enqueue_write(req)
        sim.run_until(500_000.0)
        stats = channel.stats
        total_busy = stats.busy_read_time + stats.busy_write_time + stats.turnaround_time
        assert total_busy <= sim.now + 1e-6
        assert stats.lines_read + stats.lines_written == len(specs)

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=20, deadline=None)
    def test_row_outcome_conservation(self, n_reads, n_writes):
        """hits + misses + conflicts == lines moved, per direction."""
        sim, channel = build_channel()
        for i in range(n_reads):
            req = Request(RequestSource.C2M, RequestKind.READ, i)
            req.channel_id, req.bank_id, req.row_id = 0, i % 8, i % 3
            channel.reserve_read()
            channel.enqueue_read(req)
        for i in range(n_writes):
            req = Request(RequestSource.C2M, RequestKind.WRITE, 1000 + i)
            req.channel_id, req.bank_id, req.row_id = 0, i % 8, 2 - (i % 3)
            channel.reserve_write()
            channel.enqueue_write(req)
        sim.run_until(500_000.0)
        outcomes = channel.stats.class_row_outcomes
        read_total = sum(
            outcomes[("c2m", "read", o)] for o in ("hit", "miss", "conflict")
        )
        write_total = sum(
            outcomes[("c2m", "write", o)] for o in ("hit", "miss", "conflict")
        )
        assert read_total == n_reads
        assert write_total == n_writes
        # Precharges never exceed activations.
        assert channel.stats.pre_conflict_read <= channel.stats.act_read
        assert channel.stats.pre_conflict_write <= channel.stats.act_write
