"""Tests for the Redis / GAPBS / FIO application models."""

import pytest

from repro import Host, cascade_lake
from repro.apps.fio import add_fio
from repro.apps.gapbs import GapbsWorkload, add_gapbs_cores
from repro.apps.redis import RedisWorkload, add_redis_cores
from repro.dram.region import ContiguousRegion

WARMUP = 10_000.0
MEASURE = 30_000.0


def app_config():
    return cascade_lake(llc_mode="full", ddio_enabled=True)


class TestRedisWorkload:
    def test_query_lifecycle(self):
        workload = RedisWorkload(ContiguousRegion(0, 10_000), lines_per_query=4, mlp=2)
        ops = []
        for _ in range(2):
            op = workload.try_next(0.0)
            assert op is not None
            ops.append(op)
        assert workload.try_next(0.0) is None  # mlp limit
        workload.on_complete(0.0)
        workload.on_complete(0.0)
        assert workload.try_next(0.0) is not None  # remaining issues

    def test_compute_gap_after_query(self):
        workload = RedisWorkload(
            ContiguousRegion(0, 10_000), lines_per_query=1, mlp=1, compute_ns=500.0
        )
        workload.try_next(0.0)
        workload.on_complete(10.0)
        assert workload.queries_completed == 1
        assert workload.try_next(10.0) is None
        assert workload.wake_time(10.0) == pytest.approx(510.0)
        assert workload.try_next(600.0) is not None

    def test_set_mix_issues_stores(self):
        workload = RedisWorkload(
            ContiguousRegion(0, 10_000), lines_per_query=2, query_mix="set"
        )
        _, is_store = workload.try_next(0.0)
        assert is_store

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RedisWorkload(ContiguousRegion(0, 100), lines_per_query=0)
        with pytest.raises(ValueError):
            RedisWorkload(ContiguousRegion(0, 100), query_mix="scan")

    def test_throughput_on_host(self):
        host = Host(app_config())
        workloads = add_redis_cores(host, 2)
        result = host.run(WARMUP, MEASURE)
        queries = sum(w.queries_completed for w in workloads)
        assert queries > 20
        assert result.workload_ops["redis-get"] > 0

    def test_degrades_under_p2m_contention(self):
        """The Fig. 1 phenomenon at app level."""

        def run(colocated):
            host = Host(app_config())
            workloads = add_redis_cores(host, 2)
            if colocated:
                add_fio(host, mode="read", name="fio")
            host.run(WARMUP, MEASURE)
            return sum(w.queries_completed for w in workloads)

        isolated, colocated = run(False), run(True)
        degradation = isolated / colocated
        assert 1.05 <= degradation <= 2.0


class TestGapbsWorkload:
    def test_pr_is_read_only(self):
        workload = GapbsWorkload(ContiguousRegion(0, 100_000), "pr", seed=1)
        ops = [workload.try_next(0.0) for _ in range(workload.mlp)]
        assert all(not is_store for _, is_store in ops)

    def test_bc_issues_stores(self):
        workload = GapbsWorkload(ContiguousRegion(0, 100_000), "bc", seed=1)
        stores = 0
        for _ in range(200):
            op = workload.try_next(0.0)
            if op is None:
                workload.on_complete(0.0)
                continue
            stores += op[1]
        assert stores > 0

    def test_mlp_limit(self):
        workload = GapbsWorkload(ContiguousRegion(0, 1000), "pr")
        for _ in range(workload.mlp):
            assert workload.try_next(0.0) is not None
        assert workload.try_next(0.0) is None

    def test_invalid_algorithm(self):
        with pytest.raises(ValueError):
            GapbsWorkload(ContiguousRegion(0, 100), "sssp")

    def test_pr_slowdown_tracks_latency_inflation(self):
        """PR is memory-bound: its slowdown approximately equals the
        C2M-Read latency inflation (§2.1)."""

        def run(colocated):
            host = Host(app_config())
            workloads = add_gapbs_cores(host, 2, "pr")
            if colocated:
                add_fio(host, mode="read", name="fio")
            result = host.run(WARMUP, MEASURE)
            edges = sum(w.edges_processed for w in workloads)
            return edges, result.latency("c2m_read")

        (e_iso, l_iso), (e_co, l_co) = run(False), run(True)
        slowdown = e_iso / e_co
        inflation = l_co / l_iso
        assert slowdown == pytest.approx(inflation, rel=0.25)
        assert slowdown > 1.1

    def test_shared_graph_region(self):
        host = Host(app_config())
        workloads = add_gapbs_cores(host, 3, "pr")
        assert len({id(w.region) for w in workloads}) == 1


class TestFio:
    def test_read_job_generates_memory_writes(self):
        host = Host(cascade_lake())
        job = add_fio(host, mode="read")
        result = host.run(WARMUP, MEASURE)
        assert result.lines_written_by_class["p2m"] > 0
        assert result.lines_read_by_class.get("p2m", 0) == 0
        assert job.bandwidth(result.elapsed_ns) == pytest.approx(
            result.config.device_rate, rel=0.05
        )

    def test_write_job_generates_memory_reads(self):
        host = Host(cascade_lake())
        add_fio(host, mode="write")
        result = host.run(WARMUP, MEASURE)
        assert result.lines_read_by_class["p2m"] > 0
        assert result.lines_written_by_class.get("p2m", 0) == 0

    def test_iops_reporting(self):
        host = Host(cascade_lake())
        job = add_fio(host, mode="read", io_size_bytes=64 << 10)
        result = host.run(WARMUP, MEASURE)
        expected = job.bandwidth(result.elapsed_ns) / (64 << 10) * 1e9
        assert job.iops(result.elapsed_ns) == pytest.approx(expected, rel=0.2)

    def test_invalid_mode(self):
        host = Host(cascade_lake())
        with pytest.raises(ValueError):
            add_fio(host, mode="randrw")

    def test_ddio_absorbs_small_buffers(self):
        """A FIO buffer inside the DDIO slice is served by the LLC:
        almost no memory writes in steady state."""
        config = cascade_lake(llc_mode="full", ddio_enabled=True)
        host = Host(config)
        add_fio(host, mode="read", region_bytes=256 << 10)  # 256 KB ring
        # Warm until the ring is fully resident in the DDIO ways.
        result = host.run(40_000.0, MEASURE)
        absorbed = result.device_bandwidth("fio")
        memory = result.class_bandwidth("p2m")
        assert memory < 0.25 * absorbed

    def test_large_buffers_thrash_ddio(self):
        """The paper's 8 MB-request workload: same memory write volume
        with DDIO on as off (§2.1)."""
        results = {}
        for ddio in (True, False):
            config = cascade_lake(llc_mode="full", ddio_enabled=ddio)
            host = Host(config)
            add_fio(host, mode="read", region_bytes=1 << 30)
            results[ddio] = host.run(WARMUP, MEASURE).class_bandwidth("p2m")
        assert results[True] == pytest.approx(results[False], rel=0.1)
