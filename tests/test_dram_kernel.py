"""SoA channel-kernel tests: knob parsing, numpy gating, consistency
probes and the randomized reference-vs-kernel differential harness.

The kernel (``repro.dram.kernel``) claims to be an *exact*
reimplementation of the request-at-a-time reference path, so the
differential tests here demand bit-identical results — integer
counters equal, float accumulators equal with ``==``, per-request
retire timestamps equal — across randomized workloads covering both
directions, row hits/misses/conflicts, multi-line (burst) requests and
the P2M write-priority policy.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.dram.kernel as kernel_mod
from repro.dram.controller import Channel
from repro.dram.kernel import kernel_enabled
from repro.dram.regulator import BankRegulator
from repro.dram.timing import DDR4_2933
from repro.sim.engine import Simulator
from repro.sim.records import Request, RequestKind, RequestSource
from repro.telemetry.counters import CounterHub

request_strategy = st.tuples(
    st.booleans(),  # is_write
    st.integers(min_value=0, max_value=7),  # bank
    st.integers(min_value=0, max_value=3),  # row
    st.floats(min_value=0.0, max_value=50.0),  # inter-arrival gap
    st.integers(min_value=1, max_value=3),  # lines (macro-request burst)
    st.booleans(),  # P2M source (exercises p2m_write_priority)
)


def build_channel(kernel: bool, rpq=256, wpq=256, p2m_priority=False, bank_reg=False):
    """A standalone channel with the kernel forced on or off.

    ``bank_reg`` attaches a deliberately tight per-bank token bucket
    (refill slower than the channel line rate, shallow burst) so the
    regulated differential tests actually exercise token blocking and
    the bucket-refill pump retry.
    """
    prior = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = "on" if kernel else "off"
    try:
        sim = Simulator()
        hub = CounterHub()
        channel = Channel(
            sim,
            hub,
            channel_id=0,
            timing=DDR4_2933,
            n_banks=8,
            rpq_size=rpq,
            wpq_size=wpq,
            p2m_write_priority=p2m_priority,
            bank_reg=(
                BankRegulator(8, rate_lines_per_ns=0.05, burst_lines=4)
                if bank_reg
                else None
            ),
        )
    finally:
        if prior is None:
            del os.environ["REPRO_KERNEL"]
        else:
            os.environ["REPRO_KERNEL"] = prior
    assert (channel.kernel is not None) == kernel
    return sim, channel


def run_workload(specs, kernel: bool, p2m_priority=False, bank_reg=False):
    """Drive one randomized spec list through a channel; return a
    deep observation of everything the differential test compares."""
    sim, channel = build_channel(
        kernel, p2m_priority=p2m_priority, bank_reg=bank_reg
    )
    read_log = []
    t = 0.0

    def submit(req):
        if req.kind is RequestKind.READ:
            channel.reserve_read(req.lines)
            channel.enqueue_read(req)
        else:
            channel.reserve_write(req.lines)
            channel.enqueue_write(req)

    for i, (is_write, bank, row, gap, lines, p2m) in enumerate(specs):
        kind = RequestKind.WRITE if is_write else RequestKind.READ
        source = RequestSource.P2M if p2m else RequestSource.C2M
        tc = "p2m" if p2m else "c2m"
        req = Request(source, kind, i, traffic_class=tc)
        req.channel_id = 0
        req.bank_id = bank
        req.row_id = row
        req.lines = lines
        if kind is RequestKind.READ:
            req.on_complete = lambda r: read_log.append(
                (r.line_addr, r.t_service, r.row_outcome, sim.now)
            )
        t += gap
        sim.schedule_at(t, submit, req)
    sim.run_until(t + 500_000.0)

    stats = channel.stats
    return {
        "read_log": read_log,
        "events": sim.events_processed,
        "now_pending": sim.pending_live,
        "scalars": (
            stats.lines_read,
            stats.lines_written,
            stats.switches_wtr,
            stats.switches_rtw,
            stats.act_read,
            stats.act_write,
            stats.pre_conflict_read,
            stats.pre_conflict_write,
            stats.busy_read_time,
            stats.busy_write_time,
            stats.turnaround_time,
        ),
        "class_lines_read": dict(stats.class_lines_read),
        "class_lines_written": dict(stats.class_lines_written),
        "row_outcomes": dict(stats.class_row_outcomes),
        # Occupancy integrals are float-accumulated per pool event, so
        # equality here proves every admission *and* retire happened at
        # the same instant in both paths (writes included, even though
        # their Request objects are recycled before we could log them).
        "rpq_occ": (
            channel.rpq_pool.occ._integral,
            channel.rpq_pool.occ._full_time,
            channel.rpq_pool.occ.max_seen,
        ),
        "wpq_occ": (
            channel.wpq_pool.occ._integral,
            channel.wpq_pool.occ._full_time,
            channel.wpq_pool.occ.max_seen,
        ),
        "wpq_full_time": (channel._wpq_full_time, channel._wpq_full_since),
        "queued": channel.queued_in_banks(),
    }


class TestKernelKnob:
    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert kernel_enabled() is True

    @pytest.mark.parametrize("raw", ["on", "1", "yes", "true", ""])
    def test_enabled_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_KERNEL", raw)
        assert kernel_enabled() is True

    @pytest.mark.parametrize("raw", ["off", "0", "no", "false", " OFF "])
    def test_disabled_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_KERNEL", raw)
        assert kernel_enabled() is False

    def test_invalid_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "sometimes")
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            kernel_enabled()

    def test_channel_binds_kernel_methods(self):
        _, channel = build_channel(kernel=True)
        assert channel.enqueue_read == channel.kernel.enqueue_read
        assert channel.enqueue_write == channel.kernel.enqueue_write
        _, reference = build_channel(kernel=False)
        assert reference.kernel is None


class TestDifferential:
    """S4: the reference path and the kernel must agree bit-exactly."""

    @given(st.lists(request_strategy, min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_reference_vs_kernel(self, specs):
        ref = run_workload(specs, kernel=False)
        ker = run_workload(specs, kernel=True)
        assert ref == ker

    @given(st.lists(request_strategy, min_size=1, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_reference_vs_kernel_p2m_priority(self, specs):
        ref = run_workload(specs, kernel=False, p2m_priority=True)
        ker = run_workload(specs, kernel=True, p2m_priority=True)
        assert ref == ker

    @given(st.lists(request_strategy, min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_reference_vs_kernel_regulated(self, specs):
        """Per-bank token buckets must not break bit-identity: the
        regulator's ready/next_ready checks are pure and consume only
        fires at transmit, so both paths see the same bucket state."""
        ref = run_workload(specs, kernel=False, bank_reg=True)
        ker = run_workload(specs, kernel=True, bank_reg=True)
        assert ref == ker

    @given(st.lists(request_strategy, min_size=1, max_size=60))
    @settings(max_examples=15, deadline=None)
    def test_reference_vs_kernel_regulated_p2m_priority(self, specs):
        ref = run_workload(specs, kernel=False, p2m_priority=True, bank_reg=True)
        ker = run_workload(specs, kernel=True, p2m_priority=True, bank_reg=True)
        assert ref == ker

    def test_regulation_throttles_hot_bank(self):
        """A single-bank read hammer finishes later with regulation on
        (tokens cap the bank's line rate below the channel rate)."""

        def drain_time(bank_reg):
            sim, channel = build_channel(kernel=True, bank_reg=bank_reg)
            done = []
            for i in range(64):
                req = Request(RequestSource.C2M, RequestKind.READ, i)
                req.channel_id, req.bank_id, req.row_id = 0, 0, 0
                req.on_complete = lambda r: done.append(r.t_service)
                channel.reserve_read()
                channel.enqueue_read(req)
            sim.run_until(500_000.0)
            assert len(done) == 64 and channel.queued_in_banks() == (0, 0)
            return max(done)

        base = drain_time(False)
        reg = drain_time(True)
        # 64 lines at 0.05 lines/ns (minus the 4-line burst) needs
        # ~1.2 us; unregulated the channel drains them in ~0.2 us.
        assert reg > base

    @given(
        st.lists(request_strategy, min_size=1, max_size=40),
        st.floats(min_value=10.0, max_value=2_000.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_mid_flight_window_reset(self, specs, reset_at):
        """reset_stats mid-run must leave both paths in the same state
        (the kernel's flat accumulators zero exactly like the dicts)."""

        def run(kernel):
            sim, channel = build_channel(kernel)
            for i, (is_write, bank, row, gap, lines, _p2m) in enumerate(specs):
                kind = RequestKind.WRITE if is_write else RequestKind.READ
                req = Request(RequestSource.C2M, kind, i)
                req.channel_id, req.bank_id, req.row_id = 0, bank, row
                req.lines = lines
                if kind is RequestKind.READ:
                    channel.reserve_read(lines)
                    channel.enqueue_read(req)
                else:
                    channel.reserve_write(lines)
                    channel.enqueue_write(req)
            sim.schedule_at(reset_at, channel.reset_stats, reset_at)
            sim.run_until(500_000.0)
            s = channel.stats
            return (
                s.lines_read,
                s.lines_written,
                s.busy_read_time,
                s.busy_write_time,
                s.turnaround_time,
                dict(s.class_row_outcomes),
                sim.events_processed,
            )

        assert run(False) == run(True)


class TestNumpyGating:
    """S3: the kernel must run identically with numpy absent."""

    def _drive(self):
        sim, channel = build_channel(kernel=True)
        for i in range(24):
            kind = RequestKind.READ if i % 3 else RequestKind.WRITE
            req = Request(RequestSource.C2M, kind, i)
            req.channel_id, req.bank_id, req.row_id = 0, i % 8, i % 3
            if kind is RequestKind.READ:
                channel.reserve_read()
                channel.enqueue_read(req)
            else:
                channel.reserve_write()
                channel.enqueue_write(req)
        sim.run_until(500_000.0)
        return channel

    @pytest.mark.skipif(kernel_mod.np is None, reason="numpy not installed")
    def test_bank_state_numpy_arrays(self):
        channel = self._drive()
        open_row, busy_until, prep = channel.kernel.bank_state()
        np = kernel_mod.np
        assert isinstance(open_row, np.ndarray) and open_row.dtype == np.int64
        assert busy_until.dtype == np.float64
        assert prep.dtype == np.bool_
        assert len(open_row) == channel.kernel.nb
        assert not prep.any()  # drained channel: no prep in flight

    def test_bank_state_pure_python(self, monkeypatch):
        monkeypatch.setattr(kernel_mod, "np", None)
        channel = self._drive()
        open_row, busy_until, prep = channel.kernel.bank_state()
        assert isinstance(open_row, list)
        assert isinstance(busy_until, list)
        assert prep == [False] * channel.kernel.nb

    def test_workload_identical_without_numpy(self, monkeypatch):
        with_np = self._drive().stats
        monkeypatch.setattr(kernel_mod, "np", None)
        without_np = self._drive().stats
        assert with_np.lines_read == without_np.lines_read
        assert with_np.lines_written == without_np.lines_written
        assert with_np.busy_read_time == without_np.busy_read_time
        assert dict(with_np.class_row_outcomes) == dict(
            without_np.class_row_outcomes
        )


class TestKernelIntrospection:
    @given(st.lists(request_strategy, min_size=1, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_consistency_mid_flight(self, specs):
        """verify_consistency and the cached queue totals must hold at
        arbitrary instants while traffic is in flight, not only at
        quiescence."""
        sim, channel = build_channel(kernel=True)
        kernel = channel.kernel
        checked = []

        def probe():
            checked.append(kernel.verify_consistency())
            assert channel.queued_in_banks() == channel.walk_queued_lines()

        t = 0.0
        for i, (is_write, bank, row, gap, lines, _p2m) in enumerate(specs):
            kind = RequestKind.WRITE if is_write else RequestKind.READ
            req = Request(RequestSource.C2M, kind, i)
            req.channel_id, req.bank_id, req.row_id = 0, bank, row
            req.lines = lines

            def submit(r=req):
                if r.kind is RequestKind.READ:
                    channel.reserve_read(r.lines)
                    channel.enqueue_read(r)
                else:
                    channel.reserve_write(r.lines)
                    channel.enqueue_write(r)

            t += gap
            sim.schedule_at(t, submit)
            sim.schedule_at(t + 7.0, probe)
        sim.run_until(t + 500_000.0)
        probe()
        assert checked and all(n == kernel.nb for n in checked)
        assert channel.queued_in_banks() == (0, 0)

    def test_sync_stats_is_idempotent(self):
        sim, channel = build_channel(kernel=True)
        for i in range(12):
            req = Request(RequestSource.C2M, RequestKind.READ, i)
            req.channel_id, req.bank_id, req.row_id = 0, i % 8, 0
            channel.reserve_read()
            channel.enqueue_read(req)
        sim.run_until(500_000.0)
        first = channel.stats
        snapshot = (
            first.lines_read,
            dict(first.class_row_outcomes),
        )
        again = channel.stats
        assert (again.lines_read, dict(again.class_row_outcomes)) == snapshot

    def test_interning_is_stable_across_windows(self):
        sim, channel = build_channel(kernel=True)
        kernel = channel.kernel
        for i, tc in enumerate(("c2m", "p2m", "c2m", "llc_wb")):
            req = Request(RequestSource.C2M, RequestKind.READ, i, traffic_class=tc)
            req.channel_id, req.bank_id, req.row_id = 0, i % 8, 0
            channel.reserve_read()
            channel.enqueue_read(req)
        sim.run_until(100_000.0)
        ids_before = dict(kernel.cls_ids)
        channel.reset_stats(sim.now)
        assert kernel.cls_ids == ids_before  # interning survives windows
        assert channel.stats.lines_read == 0
