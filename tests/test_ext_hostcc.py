"""Tests for the §7 future-work extensions: hostCC-style congestion
control and the P2M-priority MC write scheduler."""

import pytest

from repro import Host, RequestKind, cascade_lake
from repro.ext import HostCongestionController

WARMUP = 30_000.0
MEASURE = 60_000.0


def red_regime_host(p2m_priority=False):
    host = Host(cascade_lake(p2m_write_priority=p2m_priority))
    host.add_stream_cores(6, store_fraction=1.0)
    host.add_raw_dma(RequestKind.WRITE)
    return host


class TestHostCongestionController:
    def test_invalid_args(self):
        host = red_regime_host()
        with pytest.raises(ValueError):
            HostCongestionController(host, target_latency_ns=0)
        with pytest.raises(ValueError):
            HostCongestionController(host, interval_ns=-1)

    def test_idle_host_never_throttles(self):
        host = Host(cascade_lake())
        host.add_stream_cores(1, store_fraction=0.0)
        host.add_raw_dma(RequestKind.WRITE)
        controller = HostCongestionController(host, target_latency_ns=390.0)
        host.run(10_000.0, 20_000.0)
        assert not controller.throttling_active
        assert controller.average_latency() < 390.0

    def test_red_regime_engages_throttling(self):
        host = red_regime_host()
        controller = HostCongestionController(host, target_latency_ns=360.0)
        host.run(WARMUP, MEASURE)
        assert controller.throttling_active
        assert max(controller.gap_history) > 0

    def test_controller_protects_p2m(self):
        """The hostCC trade: P2M-Write latency capped near target and
        P2M throughput recovered, at C2M's expense."""
        base_host = red_regime_host()
        base = base_host.run(WARMUP, MEASURE)
        ctrl_host = red_regime_host()
        controller = HostCongestionController(ctrl_host, target_latency_ns=360.0)
        ctrl = ctrl_host.run(WARMUP, MEASURE)
        assert ctrl.latency("p2m_write", "p2m") < base.latency("p2m_write", "p2m")
        assert ctrl.device_bandwidth("dma") > base.device_bandwidth("dma")
        assert ctrl.class_bandwidth("c2m") < base.class_bandwidth("c2m")
        assert controller.average_latency() > 0

    def test_gap_bounded(self):
        host = red_regime_host()
        controller = HostCongestionController(
            host, target_latency_ns=310.0, max_gap_ns=50.0
        )
        host.run(WARMUP, MEASURE)
        assert max(controller.gap_history) <= 50.0

    def test_throttles_only_selected_cores(self):
        host = red_regime_host()
        victim = host.cores[:2]
        HostCongestionController(host, target_latency_ns=330.0, cores=victim)
        host.run(WARMUP, MEASURE)
        assert all(core.throttle_gap_ns > 0 for core in victim)
        assert all(core.throttle_gap_ns == 0 for core in host.cores[2:])


class TestP2mWritePriority:
    def test_priority_reduces_p2m_write_latency(self):
        base = red_regime_host(p2m_priority=False).run(WARMUP, MEASURE)
        prio = red_regime_host(p2m_priority=True).run(WARMUP, MEASURE)
        assert prio.latency("p2m_write", "p2m") < base.latency("p2m_write", "p2m")

    def test_priority_off_is_default(self):
        assert cascade_lake().p2m_write_priority is False

    def test_priority_harmless_without_contention(self):
        results = {}
        for prio in (False, True):
            host = Host(cascade_lake(p2m_write_priority=prio))
            host.add_raw_dma(RequestKind.WRITE)
            results[prio] = host.run(10_000.0, 20_000.0)
        assert results[True].device_bandwidth("dma") == pytest.approx(
            results[False].device_bandwidth("dma"), rel=0.02
        )


class TestCoreThrottleHook:
    def test_throttle_gap_paces_issue(self):
        def bandwidth(gap):
            host = Host(cascade_lake())
            (core,) = host.add_stream_cores(1, store_fraction=0.0)
            core.throttle_gap_ns = gap
            return host.run(5_000.0, 20_000.0).class_bandwidth("c2m")

        free = bandwidth(0.0)
        throttled = bandwidth(50.0)
        assert throttled < 0.5 * free
        # 50 ns spacing bounds throughput near 64 B / 50 ns.
        assert throttled == pytest.approx(64 / 50.0, rel=0.15)
