"""Unit tests for address mapping, regions, and DDR4 timing."""

import pytest

from repro.dram.address import AddressMapper
from repro.dram.region import ContiguousRegion, PagedRegion
from repro.dram.timing import DDR4_2933, DDR4_3200, DramTiming, ddr4_timing


class TestDramTiming:
    def test_2933_transmission_delay_matches_paper(self):
        # The paper quotes t_Trans = 2.73 ns for DDR4-2933.
        assert DDR4_2933.t_trans == pytest.approx(2.728, abs=0.01)

    def test_t_proc_matches_paper(self):
        # The paper quotes t_Proc ~= 45 ns.
        assert 40.0 <= DDR4_2933.t_proc <= 50.0

    def test_channel_bandwidth(self):
        # 2933 MT/s x 8 B = 23.46 GB/s per channel.
        assert DDR4_2933.channel_bandwidth_bytes_per_ns == pytest.approx(23.46, abs=0.01)
        assert DDR4_3200.channel_bandwidth_bytes_per_ns == pytest.approx(25.6, abs=0.01)

    def test_invalid_speed_raises(self):
        with pytest.raises(ValueError):
            ddr4_timing(0)

    def test_validate_rejects_nonpositive(self):
        bad = DramTiming(t_trans=0.0, t_act=1, t_pre=1, t_cas=1, t_wtr=1, t_rtw=1)
        with pytest.raises(ValueError):
            bad.validate()

    def test_overlap_condition_holds_with_32_banks(self):
        # §5.1: t_proc / N_b < t_trans for the paper's modules.
        assert DDR4_2933.t_proc / 32 < DDR4_2933.t_trans


class TestAddressMapper:
    def make(self, **kw):
        defaults = dict(n_channels=2, n_banks=16, lines_per_row=128)
        defaults.update(kw)
        return AddressMapper(**defaults)

    def test_consecutive_lines_interleave_channels(self):
        mapper = self.make()
        assert mapper.map(0).channel == 0
        assert mapper.map(1).channel == 1
        assert mapper.map(2).channel == 0

    def test_sequential_lines_fill_a_row_before_moving_banks(self):
        mapper = self.make(xor_hash=False)
        first = mapper.map(0)
        # lines 0, 2, 4, ... are consecutive per-channel lines on channel 0
        same_row = mapper.map(2 * 127)
        next_bank = mapper.map(2 * 128)
        assert same_row.bank == first.bank and same_row.row == first.row
        assert next_bank.bank != first.bank

    def test_fields_within_bounds(self):
        mapper = self.make()
        for line in range(0, 100_000, 977):
            mapped = mapper.map(line)
            assert 0 <= mapped.channel < 2
            assert 0 <= mapped.bank < 16
            assert 0 <= mapped.column < 128
            assert mapped.row >= 0

    def test_mapping_is_injective_per_channel(self):
        mapper = self.make()
        seen = set()
        for line in range(50_000):
            m = mapper.map(line)
            key = (m.channel, m.bank, m.row, m.column)
            assert key not in seen
            seen.add(key)

    def test_xor_hash_permutes_banks_across_rows(self):
        hashed = self.make(xor_hash=True)
        plain = self.make(xor_hash=False)
        # The same (bank-field, column) position one row later maps to a
        # different physical bank with the hash, the same bank without.
        lines_per_row_group = 2 * 128 * 16  # channels * columns * banks
        offset = lines_per_row_group  # exactly one row later
        assert plain.map(0).bank == plain.map(offset).bank
        assert hashed.map(0).bank != hashed.map(offset).bank
        assert hashed.map(0).row != hashed.map(offset).row

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            AddressMapper(n_channels=3, n_banks=16)
        with pytest.raises(ValueError):
            AddressMapper(n_channels=2, n_banks=10)
        with pytest.raises(ValueError):
            AddressMapper(n_channels=2, n_banks=16, lines_per_row=100)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            self.make().map(-1)


class TestRegions:
    def test_contiguous_region_lines(self):
        region = ContiguousRegion(1000, 64)
        assert region.line(0) == 1000
        assert region.line(63) == 1063

    def test_paged_region_is_contiguous_within_a_page(self):
        region = PagedRegion(n_lines=256, page_lines=64, seed=7)
        base = region.line(0)
        for offset in range(64):
            assert region.line(offset) == base + offset

    def test_paged_region_scatters_across_pages(self):
        region = PagedRegion(n_lines=64 * 100, page_lines=64, seed=7)
        frames = {region.line(page * 64) // 64 for page in range(100)}
        # With random placement, consecutive virtual pages are almost
        # never physically adjacent.
        assert len(frames) == 100
        deltas = [
            region.line((p + 1) * 64) - region.line(p * 64) for p in range(99)
        ]
        assert any(abs(d) != 64 for d in deltas)

    def test_paged_region_is_deterministic_per_seed(self):
        a = PagedRegion(n_lines=640, page_lines=64, seed=3)
        b = PagedRegion(n_lines=640, page_lines=64, seed=3)
        assert [a.line(i) for i in range(640)] == [b.line(i) for i in range(640)]

    def test_paged_region_differs_across_seeds(self):
        a = PagedRegion(n_lines=640, page_lines=64, seed=3)
        b = PagedRegion(n_lines=640, page_lines=64, seed=4)
        assert [a.line(i) for i in range(640)] != [b.line(i) for i in range(640)]

    def test_invalid_regions(self):
        with pytest.raises(ValueError):
            ContiguousRegion(-1, 10)
        with pytest.raises(ValueError):
            ContiguousRegion(0, 0)
        with pytest.raises(ValueError):
            PagedRegion(0)
