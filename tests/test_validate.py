"""Runtime invariant checking (REPRO_VALIDATE): probes, engine checks,
differential parity, and violation reporting."""

import dataclasses
import heapq

import pytest

from repro import Host, RequestKind, cascade_lake
from repro.sim.engine import Simulator
from repro.validate import (
    InvariantViolation,
    ValidatingSimulator,
    Validator,
    dispatch_equivalence_selftest,
    enabled,
    tolerance,
    verify_heap,
)
from repro.validate.harness import (
    assert_results_identical,
    differential_point,
    result_payload,
)

WARMUP = 1_000.0
MEASURE = 3_000.0


@pytest.fixture(autouse=True)
def clean_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)
    monkeypatch.delenv("REPRO_VALIDATE_TOL", raising=False)


def _small_host(validate=None):
    host = Host(cascade_lake(), validate=validate)
    host.add_stream_cores(2, store_fraction=0.0)
    host.add_raw_dma(RequestKind.WRITE, name="dma")
    return host


class TestEnableKnobs:
    def test_off_by_default(self):
        assert not enabled()
        result = _small_host().run(WARMUP, MEASURE)
        assert result.invariant_checks == 0

    @pytest.mark.parametrize("value", ["1", "on", "yes", "true", "TRUE"])
    def test_env_values_enable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VALIDATE", value)
        assert enabled()

    @pytest.mark.parametrize("value", ["", "0", "off", "no", "false"])
    def test_env_values_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VALIDATE", value)
        assert not enabled()

    def test_env_knob_builds_validating_host(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        host = _small_host()
        assert isinstance(host.sim, ValidatingSimulator)
        assert host.run(WARMUP, MEASURE).invariant_checks > 0

    def test_explicit_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        host = _small_host(validate=False)
        assert not isinstance(host.sim, ValidatingSimulator)
        assert host.run(WARMUP, MEASURE).invariant_checks == 0

    def test_tolerance_default(self):
        assert tolerance() == 0.25

    def test_tolerance_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE_TOL", "0.5")
        assert tolerance() == 0.5

    @pytest.mark.parametrize("bad", ["zero", "-0.1", "0"])
    def test_tolerance_rejects_bad_values(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_VALIDATE_TOL", bad)
        with pytest.raises(ValueError, match="REPRO_VALIDATE_TOL"):
            tolerance()


class TestValidatedRuns:
    def test_validated_run_passes_checks(self):
        result = _small_host(validate=True).run(WARMUP, MEASURE)
        assert result.invariant_checks > 0

    def test_validated_run_is_float_identical(self):
        """Validation observes; it must never perturb the simulation."""
        validated = _small_host(validate=True).run(WARMUP, MEASURE)
        plain = _small_host(validate=False).run(WARMUP, MEASURE)
        assert_results_identical(validated, plain, "validated vs plain")
        assert validated.events_processed == plain.events_processed

    def test_store_heavy_quadrant_validates(self):
        host = Host(cascade_lake(), validate=True)
        host.add_stream_cores(2, store_fraction=1.0)
        host.add_raw_dma(RequestKind.WRITE, name="dma")
        assert host.run(WARMUP, MEASURE).invariant_checks > 0

    def test_p2m_read_workload_validates(self):
        host = Host(cascade_lake(), validate=True)
        host.add_nvme(kind=RequestKind.READ)
        assert host.run(WARMUP, MEASURE).invariant_checks > 0


class TestSeededCorruption:
    """Tampered state must surface as a structured violation."""

    def _run_validated(self):
        host = _small_host(validate=True)
        host.run(WARMUP, MEASURE)
        return host

    def test_queue_count_tamper_detected(self):
        host = self._run_validated()
        host.mc.channels[0].rpq_pool.occ.value += 1
        with pytest.raises(InvariantViolation) as excinfo:
            host._validator.end_window(host)
        assert "mc.ch0" in str(excinfo.value)

    def test_credit_leak_detected(self):
        host = self._run_validated()
        host.cores[0].lfb.alloc_count += 1  # phantom acquisition
        with pytest.raises(InvariantViolation, match="credit-conservation"):
            host._validator.end_window(host)

    def test_cha_counter_tamper_detected(self):
        host = self._run_validated()
        host.cha.ingress_occ.value += 1
        with pytest.raises(InvariantViolation, match="cha.ingress"):
            host._validator.end_window(host)

    def test_littles_law_disagreement_detected(self):
        checker = Validator(tolerance=0.25, min_samples=1)
        with pytest.raises(InvariantViolation, match="littles-law"):
            # Occupancy says L = 50/10 = 5 ns; timestamps say 1 ns.
            checker._check_littles_law_pool(
                "pool", 50.0, 100.0, 1000, 1.0, 100.0
            )

    def test_throughput_bound_violation_detected(self):
        checker = Validator(tolerance=0.25, min_samples=1)
        with pytest.raises(InvariantViolation, match="throughput-bound"):
            # R * L = 10 credits in flight against a capacity of 5.
            checker._check_littles_law_pool(
                "pool", 10.0, 5.0, 1000, 1.0, 100.0
            )

    def test_statistical_checks_skip_thin_samples(self):
        checker = Validator(tolerance=0.25, min_samples=200)
        checker._check_littles_law_pool("pool", 50.0, 100.0, 10, 1.0, 100.0)
        assert checker.checks_passed == 0


class TestValidatingSimulator:
    def test_matches_base_simulator_exactly(self):
        delays = [5.0, 1.0, 1.0, 3.0, 0.0, 9.0, 3.0]
        base, checking = Simulator(), ValidatingSimulator()
        base_order, checking_order = [], []
        for i, d in enumerate(delays):
            base.schedule(d, base_order.append, i)
            checking.schedule(d, checking_order.append, i)
        base.run_until(100.0)
        checking.run_until(100.0)
        assert base_order == checking_order
        assert base.events_processed == checking.events_processed
        assert base.now == checking.now

    def test_run_until_backwards_raises(self):
        sim = ValidatingSimulator()
        sim.run_until(10.0)
        with pytest.raises(ValueError):
            sim.run_until(5.0)

    def test_malformed_heap_entry_detected(self):
        sim = ValidatingSimulator()
        sim._buckets[1.0] = ("not-callable", ())
        heapq.heappush(sim._heap, 1.0)
        with pytest.raises(InvariantViolation, match="heap-entry-shape"):
            sim.run_until(10.0)

    def test_time_travelling_entry_detected(self):
        sim = ValidatingSimulator()
        sim.run_until(10.0)
        # t < now, bypassing schedule()
        sim._buckets[1.0] = (print, ())
        sim._heap.append(1.0)
        with pytest.raises(InvariantViolation, match="clock-monotonicity"):
            sim.run(max_events=10)

    def test_desynchronised_bucket_detected(self):
        sim = ValidatingSimulator()
        heapq.heappush(sim._heap, 1.0)  # pending instant with no bucket
        with pytest.raises(InvariantViolation, match="heap-bucket-sync"):
            sim.run_until(10.0)
        sim = ValidatingSimulator()
        sim.schedule(1.0, lambda: None)
        sim._heap.clear()  # bucket with no pending instant
        with pytest.raises(InvariantViolation, match="heap-bucket-sync"):
            verify_heap(sim)

    def test_run_drains_cancelled_residue_at_max_events(self):
        sim = ValidatingSimulator()
        fired = []
        for i in range(3):
            sim.schedule(float(i + 1), fired.append, i)
        sim.schedule_cancellable(50.0, fired.append, "never").cancel()
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_verify_heap_counts_entries(self):
        sim = ValidatingSimulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        assert sim.verify_heap() == 5

    def test_verify_heap_detects_corruption(self):
        sim = Simulator()
        for i in range(6):
            sim.schedule(float(i), lambda: None)
        # Break the heap property behind heapq's back.
        sim._heap[0], sim._heap[-1] = sim._heap[-1], sim._heap[0]
        with pytest.raises(InvariantViolation, match="heap-order"):
            verify_heap(sim)

    def test_dispatch_equivalence_selftest_passes(self):
        dispatch_equivalence_selftest()

    def test_verify_heap_understands_the_wheel(self):
        """verify_heap gathers instants from wheel slots *and* the
        overflow heap of a WheelSimulator and checks slot membership."""
        from repro.sim.engine import WheelSimulator

        sim = WheelSimulator(slot_width=0.5, n_slots=16)
        for delay in (0.0, 0.2, 3.0, 3.0, 7.9, 1e6):  # 1e6 overflows
            sim.schedule(delay, lambda: None)
        assert sim._heap and sim._n_wheel  # both halves populated
        assert verify_heap(sim) == 6
        sim.run()
        assert verify_heap(sim) == 0

    def test_verify_heap_detects_misfiled_wheel_instant(self):
        from repro.sim.engine import WheelSimulator

        sim = WheelSimulator(slot_width=0.5, n_slots=16)
        sim.schedule(1.0, lambda: None)
        slot = next(s for s in sim._wheel if s)
        time = slot.pop()
        sim._wheel[(int(time * sim._inv_width) + 1) % 16].append(time)
        with pytest.raises(InvariantViolation, match="wheel-slot-membership"):
            verify_heap(sim)

    def test_verify_heap_accepts_clamped_behind_cursor_instant(self):
        """A behind-cursor instant is clamped into the cursor slot by
        WheelSimulator._file_instant; verify_heap must accept it there
        and flag it anywhere else."""
        from repro.sim.engine import WheelSimulator

        sim = WheelSimulator()  # default geometry: 0.5 ns x 2048 slots
        sim.schedule_at(500.0, lambda: None)
        sim.run_until(10.0)  # scan parks the cursor at 500's slot
        sim.schedule_at(20.0, lambda: None)  # behind the cursor: clamped
        assert sim._cursor > int(20.0 * sim._inv_width)
        assert verify_heap(sim) == 2
        # Move the clamped instant to its "natural" slot — the exact
        # misfile the clamp prevents — and expect a violation.
        slot = sim._wheel[sim._cursor % sim._n_slots]
        slot.remove(20.0)
        heapq.heapify(slot)
        sim._wheel[int(20.0 * sim._inv_width) % sim._n_slots].append(20.0)
        with pytest.raises(InvariantViolation, match="wheel-slot-membership"):
            verify_heap(sim)

    def test_verify_heap_detects_wheel_count_drift(self):
        from repro.sim.engine import WheelSimulator

        sim = WheelSimulator(slot_width=0.5, n_slots=16)
        sim.schedule(1.0, lambda: None)
        sim._n_wheel += 1
        with pytest.raises(InvariantViolation, match="wheel-count"):
            verify_heap(sim)


class TestDifferentialHarness:
    def test_differential_point_quadrant(self):
        from repro.experiments.quadrants import QUADRANTS, quadrant_experiment

        modes = differential_point(
            quadrant_experiment(QUADRANTS[1]), 1, WARMUP, MEASURE
        )
        assert set(modes) == {"serial", "parallel", "cached", "validated"}
        assert modes["validated"][0].colocated.invariant_checks > 0
        assert modes["serial"][0].colocated.invariant_checks == 0

    def test_assert_identical_ignores_diagnostics(self):
        result = _small_host(validate=True).run(WARMUP, MEASURE)
        twin = dataclasses.replace(
            result, sim_wall_s=999.0, events_per_sec=1.0, invariant_checks=0
        )
        assert_results_identical(result, twin)

    def test_assert_identical_names_differing_field(self):
        result = _small_host(validate=False).run(WARMUP, MEASURE)
        twin = dataclasses.replace(
            result, events_processed=result.events_processed + 1
        )
        with pytest.raises(AssertionError, match="events_processed"):
            assert_results_identical(result, twin, "twin")

    def test_result_payload_strips_diagnostics(self):
        result = _small_host(validate=False).run(WARMUP, MEASURE)
        payload = result_payload(result)
        assert "sim_wall_s" not in payload
        assert "events_per_sec" not in payload
        assert "invariant_checks" not in payload
        assert "events_processed" in payload


class TestInvariantViolation:
    def test_message_carries_structure(self):
        violation = InvariantViolation(
            "mc.ch0.wpq",
            "occupancy-bounds",
            "WPQ count 99 outside [0, 64]",
            window=(1000.0, 4000.0),
            details={"count": 99},
        )
        text = str(violation)
        assert "[mc.ch0.wpq]" in text
        assert "occupancy-bounds" in text
        assert "1000.0..4000.0" in text
        assert "count=99" in text
        assert violation.component == "mc.ch0.wpq"
        assert violation.identity == "occupancy-bounds"
        assert isinstance(violation, AssertionError)

    def test_validator_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            Validator(tolerance=0.0)
