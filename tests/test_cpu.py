"""Unit tests for the core, LFB, and C2M workload generators."""

import pytest

from repro.cpu.core import Core
from repro.cpu.lfb import LineFillBuffer
from repro.cpu.workloads import (
    OP_NT_STORE,
    MemoryWorkload,
    RandomAccessWorkload,
    SequentialStreamWorkload,
)
from repro.dram.controller import MemoryController
from repro.dram.region import ContiguousRegion
from repro.dram.timing import DDR4_2933
from repro.sim.engine import Simulator
from repro.telemetry.counters import CounterHub
from repro.uncore.cha import CHA


def make_rig(workload, lfb_size=4):
    sim = Simulator()
    hub = CounterHub()
    mc = MemoryController(sim, hub, DDR4_2933, n_channels=1, n_banks=8)
    cha = CHA(sim, hub, mc, write_capacity=32, read_capacity=32)
    core = Core(
        sim,
        hub,
        core_id=0,
        mc=mc,
        cha_admission=cha.request_admission,
        workload=workload,
        lfb_size=lfb_size,
    )
    return sim, hub, core


class TestLfb:
    def test_alloc_free_cycle(self):
        hub = CounterHub()
        lfb = LineFillBuffer(hub.occupancy("lfb", 2), 2)
        lfb.alloc(0.0)
        lfb.alloc(0.0)
        assert not lfb.has_free_entry
        lfb.free(1.0)
        assert lfb.has_free_entry

    def test_over_allocation_raises(self):
        hub = CounterHub()
        lfb = LineFillBuffer(hub.occupancy("lfb", 1), 1)
        lfb.alloc(0.0)
        with pytest.raises(RuntimeError):
            lfb.alloc(0.0)

    def test_invalid_size(self):
        hub = CounterHub()
        with pytest.raises(ValueError):
            LineFillBuffer(hub.occupancy("lfb"), 0)


class TestSequentialStream:
    def test_pure_read_stream(self):
        workload = SequentialStreamWorkload(ContiguousRegion(0, 8), 0.0)
        ops = [workload.try_next(0.0) for _ in range(10)]
        addrs = [a for a, _ in ops]
        stores = [s for _, s in ops]
        assert addrs == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]  # wraps
        assert not any(stores)

    def test_pure_store_stream(self):
        workload = SequentialStreamWorkload(ContiguousRegion(0, 8), 1.0)
        assert all(workload.try_next(0.0)[1] for _ in range(10))

    def test_fractional_store_mix_is_exact(self):
        workload = SequentialStreamWorkload(ContiguousRegion(0, 1000), 0.25)
        stores = sum(1 for _ in range(1000) if workload.try_next(0.0)[1])
        assert stores == 250

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            SequentialStreamWorkload(ContiguousRegion(0, 8), 1.5)


class TestRandomAccess:
    def test_addresses_within_region(self):
        workload = RandomAccessWorkload(ContiguousRegion(100, 50), seed=1)
        for _ in range(200):
            addr, _ = workload.try_next(0.0)
            assert 100 <= addr < 150

    def test_deterministic_per_seed(self):
        a = RandomAccessWorkload(ContiguousRegion(0, 1000), seed=5)
        b = RandomAccessWorkload(ContiguousRegion(0, 1000), seed=5)
        assert [a.try_next(0.0) for _ in range(50)] == [
            b.try_next(0.0) for _ in range(50)
        ]


class TestCore:
    def test_core_keeps_lfb_full(self):
        workload = SequentialStreamWorkload(ContiguousRegion(0, 10_000), 0.0)
        sim, hub, core = make_rig(workload, lfb_size=4)
        core.start()
        assert core.lfb.in_use == 4  # issues immediately to the limit
        sim.run_until(10_000.0)
        assert core.reads_completed > 0
        assert core.lfb.in_use == 4

    def test_read_domain_latency_recorded(self):
        workload = SequentialStreamWorkload(ContiguousRegion(0, 10_000), 0.0)
        sim, hub, core = make_rig(workload)
        core.start()
        sim.run_until(10_000.0)
        stat = hub.latency("domain.c2m_read.c2m")
        assert stat.count == core.reads_completed
        assert stat.average > 40.0  # at least the unloaded hops

    def test_store_holds_lfb_through_writeback(self):
        workload = SequentialStreamWorkload(ContiguousRegion(0, 10_000), 1.0)
        sim, hub, core = make_rig(workload)
        core.start()
        sim.run_until(10_000.0)
        assert core.stores_completed > 0
        read_stat = hub.latency("domain.c2m_read.c2m")
        write_stat = hub.latency("domain.c2m_write.c2m")
        total_stat = hub.latency("lfb.total.c2m")
        # §4.2: LFB latency == C2M-Read + C2M-Write domain latencies.
        assert total_stat.average == pytest.approx(
            read_stat.average + write_stat.average, rel=0.05
        )

    def test_c2m_write_unloaded_latency_is_small(self):
        """The paper estimates ~10 ns for the unloaded C2M-Write domain."""
        workload = SequentialStreamWorkload(ContiguousRegion(0, 10_000), 1.0)
        sim, hub, core = make_rig(workload)
        core.start()
        sim.run_until(10_000.0)
        assert hub.latency("domain.c2m_write.c2m").average == pytest.approx(
            10.0, abs=3.0
        )

    def test_nt_store_generates_write_without_read(self):
        class NtStream(MemoryWorkload):
            def __init__(self):
                super().__init__("c2m")
                self._pos = 0

            def try_next(self, now):
                self._pos += 1
                return self._pos, OP_NT_STORE

        sim, hub, core = make_rig(NtStream())
        core.start()
        sim.run_until(5_000.0)
        assert core.stores_completed > 0
        assert core.reads_completed == 0
        assert hub.latency("domain.c2m_read.c2m").count == 0

    def test_think_gated_workload_wakes_up(self):
        class OneShotThink(MemoryWorkload):
            def __init__(self):
                super().__init__("c2m")
                self.issued = 0

            def try_next(self, now):
                if now < 500.0:
                    return None
                if self.issued >= 3:
                    return None
                self.issued += 1
                return self.issued, False

            def wake_time(self, now):
                if now < 500.0:
                    return 500.0
                return None

        sim, hub, core = make_rig(OneShotThink())
        core.start()
        sim.run_until(5_000.0)
        assert core.reads_completed == 3

    def test_reset_stats(self):
        workload = SequentialStreamWorkload(ContiguousRegion(0, 10_000), 0.0)
        sim, hub, core = make_rig(workload)
        core.start()
        sim.run_until(2_000.0)
        core.reset_stats(sim.now)
        assert core.reads_completed == 0
        assert workload.ops_completed == 0
