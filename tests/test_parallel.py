"""Parallel sweep executor: determinism parity, fallback, errors."""

import pytest

from repro.experiments.parallel import default_jobs, run_calls
from repro.experiments.quadrants import QUADRANTS, quadrant_experiment

# Short windows: parity cares about equality, not fidelity.
WARMUP = 1_000.0
MEASURE = 3_000.0


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


class TestRunCalls:
    def test_results_in_submission_order(self):
        results = run_calls([(_square, (i,), {}) for i in range(8)], jobs=2)
        assert results == [i * i for i in range(8)]

    def test_serial_jobs_one(self):
        results = run_calls([(_square, (i,), {}) for i in range(3)], jobs=1)
        assert results == [0, 1, 4]

    def test_unpicklable_calls_fall_back_to_serial(self):
        captured = []
        calls = [(lambda i=i: captured.append(i) or i, (), {}) for i in range(3)]
        assert run_calls(calls, jobs=4) == [0, 1, 2]
        assert captured == [0, 1, 2]

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            run_calls([(_square, (1,), {}), (_boom, (2,), {})], jobs=2)

    def test_task_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="boom"):
            run_calls([(_boom, (2,), {})], jobs=1)

    def test_cache_shared_between_batches(self):
        first = run_calls([(_square, (7,), {})], jobs=1)
        second = run_calls([(_square, (7,), {})], jobs=1)
        assert first == second == [49]


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()


class TestSweepParity:
    """Parallel and serial sweeps are exactly identical (same seeds)."""

    def test_quadrant_sweep_parallel_matches_serial_exactly(self):
        experiment = quadrant_experiment(QUADRANTS[1])
        serial = experiment.sweep([1, 2], WARMUP, MEASURE, jobs=1)
        parallel = experiment.sweep([1, 2], WARMUP, MEASURE, jobs=2)
        assert len(serial) == len(parallel)
        for s, p in zip(serial, parallel):
            assert s.n_c2m_cores == p.n_c2m_cores
            # Exact float equality: the runs are pure functions of
            # (config, builders, seed, windows) regardless of process.
            assert s.c2m_isolated == p.c2m_isolated
            assert s.p2m_isolated == p.p2m_isolated
            assert s.c2m_colocated == p.c2m_colocated
            assert s.p2m_colocated == p.p2m_colocated
            assert s.colocated.mem_bw_total == p.colocated.mem_bw_total
            assert s.colocated.mem_bw_by_class == p.colocated.mem_bw_by_class
            assert s.colocated.domain_latency == p.colocated.domain_latency
            assert s.colocated.row_miss_ratio == p.colocated.row_miss_ratio

    def test_parallel_and_cached_rerun_identical(self):
        experiment = quadrant_experiment(QUADRANTS[2])
        first = experiment.sweep([1], WARMUP, MEASURE, jobs=2)
        # Second sweep is served from the run cache.
        second = experiment.sweep([1], WARMUP, MEASURE, jobs=1)
        assert first[0].c2m_colocated == second[0].c2m_colocated
        assert (
            first[0].colocated.mem_bw_by_class
            == second[0].colocated.mem_bw_by_class
        )


class TestPerfStats:
    def test_run_result_reports_engine_throughput(self):
        experiment = quadrant_experiment(QUADRANTS[1])
        result = experiment.run_c2m_isolated(1, WARMUP, MEASURE)
        assert result.events_processed > 0
        assert result.sim_wall_s > 0.0
        assert result.events_per_sec > 0.0
