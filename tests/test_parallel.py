"""Parallel sweep executor: determinism parity, fallback, errors."""

import functools
import os

import pytest

from repro.experiments import runcache
from repro.experiments.parallel import _annotate, _describe, default_jobs, run_calls
from repro.experiments.quadrants import QUADRANTS, quadrant_experiment

# Short windows: parity cares about equality, not fidelity.
WARMUP = 1_000.0
MEASURE = 3_000.0


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


class _Adder:
    """Module-level callable instance (picklable, no __name__)."""

    def __call__(self, x):
        return x + 1


class TestRunCalls:
    def test_results_in_submission_order(self):
        results = run_calls([(_square, (i,), {}) for i in range(8)], jobs=2)
        assert results == [i * i for i in range(8)]

    def test_serial_jobs_one(self):
        results = run_calls([(_square, (i,), {}) for i in range(3)], jobs=1)
        assert results == [0, 1, 4]

    def test_unpicklable_calls_fall_back_to_serial(self):
        captured = []
        calls = [(lambda i=i: captured.append(i) or i, (), {}) for i in range(3)]
        assert run_calls(calls, jobs=4) == [0, 1, 2]
        assert captured == [0, 1, 2]

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            run_calls([(_square, (1,), {}), (_boom, (2,), {})], jobs=2)

    def test_task_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="boom"):
            run_calls([(_boom, (2,), {})], jobs=1)

    def test_cache_shared_between_batches(self):
        first = run_calls([(_square, (7,), {})], jobs=1)
        second = run_calls([(_square, (7,), {})], jobs=1)
        assert first == second == [49]

    def test_failed_batch_persists_completed_siblings(self):
        """A failing task must not discard siblings that finished:
        their results land in the run cache before the error
        propagates, so a rerun only recomputes the failing task."""
        with pytest.raises(ValueError, match="boom"):
            run_calls([(_square, (3,), {}), (_boom, (1,), {})], jobs=2)
        hit, value = runcache.get(runcache.key_for(_square, (3,), {}))
        assert hit and value == 9

    def test_failed_serial_batch_persists_completed_siblings(self):
        with pytest.raises(ValueError, match="boom"):
            run_calls([(_square, (4,), {}), (_boom, (1,), {})], jobs=1)
        hit, value = runcache.get(runcache.key_for(_square, (4,), {}))
        assert hit and value == 16

    def test_serial_batch_continues_past_failure_like_parallel(self):
        """Serial/parallel semantics parity (regression): the serial
        path used to stop at the first error while the parallel path
        kept collecting sibling results. Both now drive the whole
        batch to completion, persist finished siblings, then raise."""
        with pytest.raises(ValueError, match="boom"):
            run_calls(
                [(_square, (6,), {}), (_boom, (1,), {}), (_square, (8,), {})],
                jobs=1,
            )
        # The sibling submitted *after* the failing task still ran.
        hit, value = runcache.get(runcache.key_for(_square, (8,), {}))
        assert hit and value == 64

    def test_task_exception_is_annotated_with_task(self):
        with pytest.raises(ValueError) as excinfo:
            run_calls([(_square, (1,), {}), (_boom, (2,), {})], jobs=2)
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("_boom(2)" in note for note in notes)

    def test_serial_exception_is_annotated_with_task(self):
        with pytest.raises(ValueError) as excinfo:
            run_calls([(_boom, (5,), {})], jobs=1)
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("serial task _boom(5)" in note for note in notes)

    def test_callable_instances_run(self):
        assert run_calls([(_Adder(), (4,), {})], jobs=1) == [5]


class TestDescribe:
    def test_plain_function(self):
        assert _describe((_square, (3,), {})) == "_square(3)"

    def test_kwargs_rendered(self):
        assert _describe((_square, (), {"x": 2})) == "_square(x=2)"

    def test_partial_has_structural_name(self):
        text = _describe((functools.partial(_square, 3), (), {}))
        assert "functools.partial(_square)" in text
        # No memory addresses: the pre-fix fallback embedded the full
        # repr of the callable (`functools.partial(<function ...0x...>)`).
        assert "0x" not in text

    def test_callable_instance_has_type_name(self):
        text = _describe((_Adder(), (4,), {}))
        assert text.startswith("_Adder(")
        assert "0x" not in text

    def test_bound_method_names_owner(self):
        experiment = quadrant_experiment(QUADRANTS[1])
        text = _describe((experiment.run_c2m_isolated, (1, 1.0, 2.0), {}))
        assert text.startswith("ColocationExperiment.run_c2m_isolated(")

    def test_long_call_is_truncated(self):
        text = _describe((_square, ("y" * 500,), {}))
        assert len(text) <= 200
        assert text.endswith("...")


class TestAnnotate:
    def test_annotate_appends_note(self):
        exc = ValueError("x")
        _annotate(exc, "first")
        _annotate(exc, "second")
        assert list(exc.__notes__) == ["first", "second"]

    def test_annotate_without_add_note_sets_notes(self):
        """The 3.10 fallback: no usable add_note, so __notes__ is set
        directly (3.11+ tracebacks render it identically)."""

        class LegacyError(Exception):
            add_note = None  # simulate a pre-3.11 interpreter

        exc = LegacyError("x")
        _annotate(exc, "context")
        assert exc.__notes__ == ["context"]


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()

    def test_respects_cpu_affinity(self, monkeypatch):
        """Containers pin processes to CPU subsets: the scheduler mask,
        not the machine's raw core count, bounds useful workers."""
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 2, 5},
                            raising=False)
        assert default_jobs() == 3

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 7)
        assert default_jobs() == 7

    def test_env_wins_over_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1},
                            raising=False)
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert default_jobs() == 5


class TestSweepParity:
    """Parallel and serial sweeps are exactly identical (same seeds)."""

    def test_quadrant_sweep_parallel_matches_serial_exactly(self):
        experiment = quadrant_experiment(QUADRANTS[1])
        serial = experiment.sweep([1, 2], WARMUP, MEASURE, jobs=1)
        parallel = experiment.sweep([1, 2], WARMUP, MEASURE, jobs=2)
        assert len(serial) == len(parallel)
        for s, p in zip(serial, parallel):
            assert s.n_c2m_cores == p.n_c2m_cores
            # Exact float equality: the runs are pure functions of
            # (config, builders, seed, windows) regardless of process.
            assert s.c2m_isolated == p.c2m_isolated
            assert s.p2m_isolated == p.p2m_isolated
            assert s.c2m_colocated == p.c2m_colocated
            assert s.p2m_colocated == p.p2m_colocated
            assert s.colocated.mem_bw_total == p.colocated.mem_bw_total
            assert s.colocated.mem_bw_by_class == p.colocated.mem_bw_by_class
            assert s.colocated.domain_latency == p.colocated.domain_latency
            assert s.colocated.row_miss_ratio == p.colocated.row_miss_ratio

    def test_parallel_and_cached_rerun_identical(self):
        experiment = quadrant_experiment(QUADRANTS[2])
        first = experiment.sweep([1], WARMUP, MEASURE, jobs=2)
        # Second sweep is served from the run cache.
        second = experiment.sweep([1], WARMUP, MEASURE, jobs=1)
        assert first[0].c2m_colocated == second[0].c2m_colocated
        assert (
            first[0].colocated.mem_bw_by_class
            == second[0].colocated.mem_bw_by_class
        )


class TestPerfStats:
    def test_run_result_reports_engine_throughput(self):
        experiment = quadrant_experiment(QUADRANTS[1])
        result = experiment.run_c2m_isolated(1, WARMUP, MEASURE)
        assert result.events_processed > 0
        assert result.sim_wall_s > 0.0
        assert result.events_per_sec > 0.0
