"""Tests for host configuration presets (Table 1)."""

import pytest

from repro.topology.presets import HostConfig, cascade_lake, ice_lake


class TestCascadeLake:
    def test_matches_table1(self):
        config = cascade_lake()
        assert config.n_cores == 8
        assert config.n_channels == 2
        assert config.dram_speed_mt_s == 2933
        assert config.theoretical_mem_bandwidth == pytest.approx(46.9, abs=0.1)
        assert config.pcie_bandwidth == 16.0
        assert config.llc_size_bytes == 24 << 20

    def test_paper_credit_counts(self):
        config = cascade_lake()
        assert 10 <= config.lfb_size <= 12
        assert config.iio_write_entries == 92
        assert config.iio_read_entries > 164


class TestIceLake:
    def test_matches_table1(self):
        config = ice_lake()
        assert config.n_cores == 32
        assert config.n_channels == 4
        assert config.dram_speed_mt_s == 3200
        assert config.theoretical_mem_bandwidth == pytest.approx(102.4, abs=0.5)
        assert config.pcie_bandwidth == 32.0
        assert config.llc_size_bytes == 48 << 20

    def test_scaled_uncore_resources(self):
        ice, cascade = ice_lake(), cascade_lake()
        assert ice.cha_write_capacity > cascade.cha_write_capacity
        assert ice.iio_write_entries > cascade.iio_write_entries


class TestOverrides:
    def test_kwargs_override(self):
        config = cascade_lake(lfb_size=14, n_banks=64)
        assert config.lfb_size == 14
        assert config.n_banks == 64
        assert config.n_cores == 8  # untouched

    def test_with_overrides_returns_copy(self):
        base = cascade_lake()
        derived = base.with_overrides(wpq_size=24)
        assert derived.wpq_size == 24
        assert base.wpq_size != 24 or base.wpq_size == 48

    def test_config_is_frozen(self):
        config = cascade_lake()
        with pytest.raises(Exception):
            config.n_cores = 99  # type: ignore[misc]


class TestPrefetchModel:
    def test_effective_lfb_without_prefetch(self):
        config = cascade_lake(prefetch_enabled=False)
        assert config.effective_lfb_size == config.lfb_size

    def test_effective_lfb_with_prefetch(self):
        config = cascade_lake(prefetch_enabled=True, prefetch_degree=6)
        assert config.effective_lfb_size == config.lfb_size + 6

    def test_prefetch_shifts_absolute_not_ratio(self):
        """§2.2: prefetching improves isolated and colocated throughput
        but leaves the degradation ratio roughly unchanged."""
        from repro import Host, RequestKind

        def degradation(prefetch):
            config = cascade_lake(prefetch_enabled=prefetch)
            host = Host(config)
            host.add_stream_cores(2, store_fraction=0.0)
            iso = host.run(8_000.0, 20_000.0).class_bandwidth("c2m")
            host = Host(config)
            host.add_stream_cores(2, store_fraction=0.0)
            host.add_raw_dma(RequestKind.WRITE)
            co = host.run(8_000.0, 20_000.0).class_bandwidth("c2m")
            return iso, iso / co

        (iso_off, deg_off), (iso_on, deg_on) = degradation(False), degradation(True)
        assert iso_on > iso_off  # absolute throughput improves
        assert deg_on == pytest.approx(deg_off, abs=0.35)


class TestDramTimingProperty:
    def test_timing_derived_from_speed(self):
        fast = HostConfig(name="x", n_cores=1, core_freq_ghz=3.0, lfb_size=10,
                          dram_speed_mt_s=3200)
        slow = HostConfig(name="y", n_cores=1, core_freq_ghz=3.0, lfb_size=10,
                          dram_speed_mt_s=2400)
        assert fast.dram_timing.t_trans < slow.dram_timing.t_trans
