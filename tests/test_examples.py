"""Smoke tests that the example scripts stay runnable.

Each example is imported as a module with its window constants patched
down so the whole file runs in seconds; stdout is checked for the
headline strings a reader is promised.
"""

import importlib.util
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        module = load_example("quickstart")
        module.WARMUP_NS, module.MEASURE_NS = 5_000.0, 12_000.0
        module.main()
        out = capsys.readouterr().out
        assert "C2M degradation" in out
        assert "Regime" in out
        assert "blue" in out

    def test_domain_calculator(self, capsys):
        module = load_example("domain_calculator")
        module.WARMUP_NS, module.MEASURE_NS = 3_000.0, 9_000.0
        module.main()
        out = capsys.readouterr().out
        assert "T <= C x 64 / L" in out
        assert "spare" in out
        assert "c2m-readwrite" in out
        assert "saturated" in out

    def test_rdma_backpressure(self, capsys):
        module = load_example("rdma_backpressure")
        module.WARMUP_NS, module.MEASURE_NS = 10_000.0, 20_000.0
        module.CORE_COUNTS = (0, 6)
        module.main()
        out = capsys.readouterr().out
        assert "pfc_pause_frac" in out
        assert "ib_write_bw" in out

    def test_bank_regulation(self, capsys):
        import dataclasses

        module = load_example("bank_regulation")
        module.SPEC = dataclasses.replace(
            module.SPEC, warmup_ns=5_000.0, measure_ns=15_000.0
        )
        module.main()
        out = capsys.readouterr().out
        assert "per-bank regulation" in out
        assert "row-miss inflation" in out
        assert "shrinks" in out

    def test_noisy_neighbor_storage(self, capsys):
        module = load_example("noisy_neighbor_storage")
        module.WARMUP_NS, module.MEASURE_NS = 5_000.0, 12_000.0
        module.CORE_COUNTS = (2,)
        module.main()
        out = capsys.readouterr().out
        assert "redis_deg" in out
        assert "Domain analysis" in out

    def test_rack_incast(self, capsys):
        module = load_example("rack_incast")
        module.WARMUP_NS, module.MEASURE_NS = 5_000.0, 15_000.0
        module.SENDER_COUNTS = (2,)
        module.main()
        out = capsys.readouterr().out
        assert "rack incast" in out
        assert "edge_pause_frac" in out
        assert "lossless" in out

    def test_hostcc_mitigation(self, capsys):
        module = load_example("hostcc_mitigation")
        module.WARMUP_NS, module.MEASURE_NS = 10_000.0, 25_000.0
        module.main()
        out = capsys.readouterr().out
        assert "hostcc" in out
        assert "mc-priority" in out
