"""Property-based tests (hypothesis) on core data structures and
invariants: event ordering, counter algebra, address-mapping
bijectivity, LLC invariants, formula monotonicity, and domain bounds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domain import credits_needed, throughput_bound
from repro.dram.address import AddressMapper
from repro.dram.region import PagedRegion
from repro.dram.timing import DDR4_2933
from repro.model.inputs import FormulaInputs
from repro.model.read_latency import read_queueing_delay
from repro.model.write_latency import write_admission_delay
from repro.sim.engine import Simulator
from repro.telemetry.counters import OccupancyCounter
from repro.telemetry.littleslaw import littles_law_latency, littles_law_occupancy
from repro.uncore.llc import LastLevelCache


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_run_until_partitions_cleanly(self, delays):
        """Running in two windows fires exactly the same events as one."""
        boundary = 5e5

        def collect(windows):
            sim = Simulator()
            fired = []
            for delay in delays:
                sim.schedule(delay, lambda: fired.append(round(sim.now, 9)))
            for t_end in windows:
                sim.run_until(t_end)
            return fired

        assert collect([boundary, 1e6 + 1]) == collect([1e6 + 1])


class TestCounterProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=100.0),  # dt
                st.integers(min_value=-3, max_value=3),  # delta
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_occupancy_average_bounded_by_peak(self, steps):
        counter = OccupancyCounter()
        now = 0.0
        value = 0
        peak = 0
        for dt, delta in steps:
            now += dt
            if value + delta < 0:
                delta = -value
            counter.update(now, delta)
            value += delta
            peak = max(peak, value)
        average = counter.average(now + 1.0)
        assert 0.0 <= average <= peak + 1e-9

    @given(
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=1e-6, max_value=10.0),
    )
    def test_littles_law_round_trip(self, occupancy, rate):
        latency = littles_law_latency(occupancy, rate)
        assert littles_law_occupancy(latency, rate) == pytest.approx(
            occupancy, rel=1e-9, abs=1e-9
        )


class TestAddressProperties:
    @given(
        st.integers(min_value=0, max_value=1 << 34),
        st.sampled_from([1, 2, 4]),
        st.sampled_from([8, 16, 32]),
        st.booleans(),
    )
    @settings(max_examples=200)
    def test_mapping_is_invertible(self, line, channels, banks, xor):
        """(channel, bank, row, column) uniquely identifies the line."""
        mapper = AddressMapper(channels, banks, lines_per_row=128, xor_hash=xor)
        m = mapper.map(line)
        # Reconstruct: undo the XOR permutation, then re-pack the bits.
        bank = m.bank ^ (m.row & (banks - 1)) if xor else m.bank
        rest = ((m.row * banks) + bank) * 128 + m.column
        reconstructed = rest * channels + m.channel
        assert reconstructed == line

    @given(st.integers(min_value=0, max_value=1 << 20), st.integers(0, 1 << 30))
    @settings(max_examples=100)
    def test_paged_region_offsets_preserved_within_page(self, index, seed):
        region = PagedRegion(n_lines=1 << 21, page_lines=64, seed=seed)
        addr = region.line(index)
        assert addr % 64 == index % 64

    @given(st.integers(min_value=0, max_value=(1 << 21) - 1), st.integers(0, 1 << 30))
    @settings(max_examples=50)
    def test_paged_region_stable(self, index, seed):
        region = PagedRegion(n_lines=1 << 21, page_lines=64, seed=seed)
        assert region.line(index) == region.line(index)


class TestLlcProperties:
    @given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=300))
    @settings(max_examples=40)
    def test_set_size_never_exceeds_ways(self, addresses):
        llc = LastLevelCache(32 * 1024, ways=4, ddio_ways=2)
        for i, addr in enumerate(addresses):
            if i % 3 == 0:
                llc.write_allocate_ddio(addr)
            else:
                llc.lookup_read(addr)
        for lines in llc._sets:
            assert len(lines) <= llc.ways

    @given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=300))
    @settings(max_examples=40)
    def test_dma_lines_never_exceed_ddio_budget(self, addresses):
        llc = LastLevelCache(32 * 1024, ways=4, ddio_ways=2)
        for addr in addresses:
            llc.write_allocate_ddio(addr)
        for lines in llc._sets:
            assert sum(1 for line in lines if line.is_dma) <= llc.ddio_ways

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_immediate_re_read_always_hits(self, addresses):
        llc = LastLevelCache(64 * 1024, ways=8, ddio_ways=2)
        for addr in addresses:
            llc.lookup_read(addr)
            hit, _ = llc.lookup_read(addr)
            assert hit


class TestDomainBoundProperties:
    @given(
        st.floats(min_value=1.0, max_value=1000.0),
        st.floats(min_value=1.0, max_value=10_000.0),
    )
    def test_bound_credits_inverse(self, credits, latency):
        bound = throughput_bound(credits, latency)
        assert credits_needed(bound, latency) == pytest.approx(credits, rel=1e-9)

    @given(
        st.floats(min_value=1.0, max_value=1000.0),
        st.floats(min_value=1.0, max_value=10_000.0),
        st.floats(min_value=1.01, max_value=10.0),
    )
    def test_bound_decreases_with_latency(self, credits, latency, factor):
        assert throughput_bound(credits, latency * factor) < throughput_bound(
            credits, latency
        )


def make_inputs(o_rpq=1.0, n_waiting=0.0, p_fill=0.0, lines_read=1000,
                lines_written=100, switches=10):
    return FormulaInputs(
        p_fill_wpq=p_fill,
        n_waiting=n_waiting,
        switches_wtr=switches,
        switches_rtw=switches,
        lines_read=lines_read,
        lines_written=lines_written,
        o_rpq=o_rpq,
        act_read=50,
        act_write=20,
        pre_conflict_read=25,
        pre_conflict_write=10,
    )


class TestFormulaProperties:
    @given(
        st.floats(min_value=0.0, max_value=48.0),
        st.floats(min_value=0.0, max_value=40.0),
    )
    @settings(max_examples=60)
    def test_read_delay_monotone_in_rpq_occupancy(self, lo, delta):
        a = read_queueing_delay(make_inputs(o_rpq=lo), DDR4_2933).total
        b = read_queueing_delay(make_inputs(o_rpq=lo + delta), DDR4_2933).total
        assert b >= a - 1e-9

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=300.0),
    )
    @settings(max_examples=60)
    def test_write_delay_monotone_in_fill_and_waiting(self, p_fill, n_waiting):
        base = write_admission_delay(
            make_inputs(p_fill=p_fill, n_waiting=n_waiting), DDR4_2933
        ).total
        more_full = write_admission_delay(
            make_inputs(p_fill=min(1.0, p_fill + 0.1), n_waiting=n_waiting),
            DDR4_2933,
        ).total
        more_waiting = write_admission_delay(
            make_inputs(p_fill=p_fill, n_waiting=n_waiting + 10), DDR4_2933
        ).total
        assert more_full >= base - 1e-9
        assert more_waiting >= base - 1e-9

    @given(st.floats(min_value=0.0, max_value=48.0))
    @settings(max_examples=40)
    def test_read_components_non_negative(self, o_rpq):
        breakdown = read_queueing_delay(make_inputs(o_rpq=o_rpq), DDR4_2933)
        assert breakdown.switching >= 0
        assert breakdown.write_hol >= 0
        assert breakdown.read_hol >= 0
        assert breakdown.top_of_queue >= 0


class TestEndToEndDeterminismProperty:
    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_short_runs_reproducible(self, n_cores, seed):
        from repro import Host, cascade_lake

        def run():
            host = Host(cascade_lake(), seed=seed)
            host.add_stream_cores(n_cores, store_fraction=0.5)
            return host.run(2_000.0, 6_000.0)

        a, b = run(), run()
        assert a.lines_read == b.lines_read
        assert a.lines_written == b.lines_written
