"""Fast-path guarantees: scheduler lane ordering, the Request free-list
pool, and the opt-in REPRO_BURST macro-event mode."""

import heapq
import random

import pytest

from repro import Host, RequestKind, cascade_lake
from repro.experiments import runcache
from repro.sim import records
from repro.sim.engine import Simulator
from repro.sim.records import (
    RequestSource,
    acquire_request,
    burst_factor,
    release_request,
)
from repro.validate.harness import assert_results_identical

WARMUP = 1_000.0
MEASURE = 4_000.0


@pytest.fixture(autouse=True)
def clean_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_BURST", raising=False)
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)


def _host(burst=None, validate=None):
    host = Host(cascade_lake(), validate=validate, burst=burst)
    host.add_stream_cores(2, store_fraction=0.5)
    host.add_raw_dma(RequestKind.WRITE, name="dma")
    return host


class TestFastLaneOrdering:
    """The bucketed FIFO lanes are an optimization of a (time, seq)
    heap, never a semantic fork: a randomized mix of the three
    scheduling APIs must dispatch in exactly the reference order."""

    def test_matches_reference_heap_scheduler(self):
        rng = random.Random(1234)
        sim = Simulator()
        got = []
        ref_heap = []
        seq = 0
        cancelled = set()
        i = 0
        while i < 300:
            delay = rng.choice((0.0, 1.0, 1.0, 2.0, 2.5, 3.0, 7.0))
            roll = rng.random()
            if roll < 0.2:  # a schedule_many train of four members
                members = [i, i + 1, i + 2, i + 3]
                sim.schedule_many(delay, got.append, [(m,) for m in members])
                for m in members:
                    heapq.heappush(ref_heap, (delay, seq, m))
                    seq += 1
                i += 4
            elif roll < 0.4:  # cancellable, sometimes cancelled
                event = sim.schedule_cancellable(delay, got.append, i)
                heapq.heappush(ref_heap, (delay, seq, i))
                seq += 1
                if rng.random() < 0.3:
                    event.cancel()
                    cancelled.add(i)
                i += 1
            else:  # plain fast path
                sim.schedule(delay, got.append, i)
                heapq.heappush(ref_heap, (delay, seq, i))
                seq += 1
                i += 1
        sim.run_until(100.0)
        expected = []
        while ref_heap:
            _, _, member = heapq.heappop(ref_heap)
            if member not in cancelled:
                expected.append(member)
        assert got == expected

    def test_same_timestamp_interleave_across_apis(self):
        """Submission order is the tiebreak at one instant, regardless
        of which API filed each entry."""
        sim = Simulator()
        got = []
        sim.schedule(4.0, got.append, "fast1")
        sim.schedule_many(4.0, got.append, [("train1",), ("train2",)])
        sim.schedule_cancellable(4.0, got.append, "cancellable")
        sim.schedule(4.0, got.append, "fast2")
        sim.run_until(10.0)
        assert got == ["fast1", "train1", "train2", "cancellable", "fast2"]


class TestRequestPool:
    def test_release_then_acquire_recycles_reinitialised(self, monkeypatch):
        monkeypatch.setattr(records, "_POOL", [])
        monkeypatch.setattr(records, "_POOL_ENABLED", True)
        req = acquire_request(RequestSource.C2M, RequestKind.READ, 0x40)
        req.t_alloc = 5.0
        req.t_free = 9.0
        req.channel_id = 3
        req.lines = 4
        req.tag = object()
        req.on_complete = print
        release_request(req)
        again = acquire_request(
            RequestSource.P2M, RequestKind.WRITE, 0x80, traffic_class="p2m"
        )
        assert again is req  # recycled, not reallocated
        assert again.source is RequestSource.P2M
        assert again.kind is RequestKind.WRITE
        assert again.line_addr == 0x80
        assert again.traffic_class == "p2m"
        assert again.t_alloc is None and again.t_free is None
        assert again.channel_id == -1
        assert again.lines == 1
        assert again.tag is None and again.on_complete is None

    def test_pool_never_aliases_a_live_request(self, monkeypatch):
        monkeypatch.setattr(records, "_POOL", [])
        monkeypatch.setattr(records, "_POOL_ENABLED", True)
        live = [
            acquire_request(RequestSource.C2M, RequestKind.READ, 64 * i)
            for i in range(32)
        ]
        assert len({id(r) for r in live}) == 32
        release_request(live.pop(7))
        live_ids = {id(r) for r in live}
        # One recycled object is available; everything past it must be
        # freshly constructed, never a live request.
        fresh = [
            acquire_request(RequestSource.P2M, RequestKind.WRITE, 64 * i)
            for i in range(8)
        ]
        assert all(id(r) not in live_ids for r in fresh)
        assert len({id(r) for r in fresh}) == 8

    def test_pool_off_never_recycles(self, monkeypatch):
        monkeypatch.setattr(records, "_POOL", [])
        monkeypatch.setattr(records, "_POOL_ENABLED", False)
        req = acquire_request(RequestSource.C2M, RequestKind.READ, 0x40)
        release_request(req)
        assert records._POOL == []

    def test_pool_is_capped(self, monkeypatch):
        monkeypatch.setattr(records, "_POOL", [])
        monkeypatch.setattr(records, "_POOL_ENABLED", True)
        monkeypatch.setattr(records, "_POOL_CAP", 4)
        for i in range(8):
            release_request(
                acquire_request(RequestSource.C2M, RequestKind.READ, 64 * i)
            )
        assert len(records._POOL) <= 4

    def test_pooled_run_float_identical_to_unpooled(self, monkeypatch):
        pooled = _host().run(WARMUP, MEASURE)
        monkeypatch.setattr(records, "_POOL", [])
        monkeypatch.setattr(records, "_POOL_ENABLED", False)
        plain = _host().run(WARMUP, MEASURE)
        assert_results_identical(pooled, plain, "pooled vs unpooled")
        assert pooled.events_processed == plain.events_processed


class TestBurstMode:
    def test_off_by_default(self):
        assert burst_factor() == 1
        assert _host().burst == 1

    def test_env_knob_sets_host_burst(self, monkeypatch):
        monkeypatch.setenv("REPRO_BURST", "4")
        assert burst_factor() == 4
        assert _host().burst == 4

    @pytest.mark.parametrize("bad", ["zero", "0", "-3"])
    def test_rejects_bad_values(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_BURST", bad)
        with pytest.raises(ValueError, match="REPRO_BURST"):
            burst_factor()

    def test_burst_within_tolerance_of_exact(self):
        """Macro-events are an approximation; the headline bandwidth
        must stay within the documented tolerance of per-line mode."""
        exact = _host(burst=1).run(2_000.0, 10_000.0)
        for factor in (4, 16):
            approx = _host(burst=factor).run(2_000.0, 10_000.0)
            assert approx.mem_bw_total == pytest.approx(
                exact.mem_bw_total, rel=0.15
            ), f"burst={factor} bandwidth outside tolerance"
            for cls, bw in exact.mem_bw_by_class.items():
                if bw > 0.5:  # skip near-idle classes (relative noise)
                    assert approx.mem_bw_by_class[cls] == pytest.approx(
                        bw, rel=0.20
                    ), f"burst={factor} class {cls} outside tolerance"

    def test_burst_composes_with_validation(self):
        """REPRO_BURST=4 under REPRO_VALIDATE must pass every runtime
        invariant check (credits, conservation, Little's law)."""
        result = _host(burst=4, validate=True).run(WARMUP, MEASURE)
        assert result.invariant_checks > 0

    def test_burst_factor_hashed_into_cache_key(self, monkeypatch):
        base = runcache.key_for(len, ("workload",))
        assert base is not None
        monkeypatch.setenv("REPRO_BURST", "4")
        burst_key = runcache.key_for(len, ("workload",))
        assert burst_key is not None
        assert burst_key != base
        monkeypatch.delenv("REPRO_BURST")
        assert runcache.key_for(len, ("workload",)) == base
