"""Tests for the RDMA (RoCE/PFC) and DCTCP case-study models."""

import pytest

from repro import Host, cascade_lake
from repro.net.dctcp import CopyWorkload, DctcpReceiver, SocketBuffers
from repro.net.rdma import (
    add_rdma_read_traffic,
    add_rdma_write_traffic,
    gbps_to_bytes_per_ns,
)
from repro.dram.region import ContiguousRegion

WARMUP = 20_000.0
MEASURE = 50_000.0


class TestRdmaHelpers:
    def test_rate_conversion(self):
        assert gbps_to_bytes_per_ns(100.0) == pytest.approx(12.5)
        assert gbps_to_bytes_per_ns(98.0) == pytest.approx(12.25)
        with pytest.raises(ValueError):
            gbps_to_bytes_per_ns(-1.0)

    def test_write_traffic_reaches_line_rate(self):
        host = Host(cascade_lake())
        add_rdma_write_traffic(host, rate_gbps=98.0)
        result = host.run(WARMUP, MEASURE)
        assert result.device_bandwidth("nic") == pytest.approx(12.25, rel=0.05)
        assert result.lines_written_by_class["p2m"] > 0

    def test_read_traffic_reaches_line_rate(self):
        host = Host(cascade_lake())
        add_rdma_read_traffic(host, rate_gbps=98.0)
        result = host.run(WARMUP, MEASURE)
        assert result.device_bandwidth("nic") == pytest.approx(12.25, rel=0.1)
        assert result.lines_read_by_class["p2m"] > 0

    def test_blue_regime_no_pfc_pauses(self):
        """Quadrant-1-like: C2M-Read + RDMA writes — PFC stays quiet."""
        host = Host(cascade_lake())
        host.add_stream_cores(2, store_fraction=0.0)
        add_rdma_write_traffic(host)
        result = host.run(WARMUP, MEASURE)
        assert result.extra["nic.pause_fraction"] < 0.05
        assert result.device_bandwidth("nic") == pytest.approx(12.25, rel=0.05)

    def test_red_regime_inflates_p2m_write_latency(self):
        """Quadrant-3-like at high load: the P2M-Write domain inflates
        and IIO credit usage climbs (Appendix D.1)."""
        host = Host(cascade_lake())
        host.add_stream_cores(6, store_fraction=1.0)
        add_rdma_write_traffic(host, buffer_bytes=256 << 10)
        result = host.run(60_000.0, 100_000.0)
        assert result.latency("p2m_write", "p2m") > 1.3 * 300.0
        assert result.iio_write_avg_occupancy > 75

    def test_pfc_pauses_when_credits_bind(self):
        """When host backpressure exhausts the (here: reduced) IIO
        write credits, the NIC buffer fills and PFC pauses the wire
        without loss (Appendix D.1, Fig. 23)."""
        host = Host(cascade_lake(iio_write_entries=48))
        host.add_stream_cores(6, store_fraction=1.0)
        nic = add_rdma_write_traffic(host, buffer_bytes=256 << 10)
        result = host.run(60_000.0, 100_000.0)
        assert result.device_bandwidth("nic") < 12.25 * 0.97
        assert result.extra["nic.pause_fraction"] > 0.0
        assert nic.loss_rate() == 0.0  # lossless


class TestSocketBuffers:
    def test_claim_ordering(self):
        sock = SocketBuffers(1024)
        sock.delivered = 3
        assert sock.claimable()
        assert [sock.claim() for _ in range(3)] == [0, 1, 2]
        assert not sock.claimable()

    def test_backlog(self):
        sock = SocketBuffers(1024)
        sock.delivered = 10
        sock.copied = 4
        assert sock.backlog == 6


class TestCopyWorkload:
    def make(self, delivered=100):
        sock = SocketBuffers(1 << 20)
        sock.delivered = delivered
        workload = CopyWorkload(
            sock,
            src_region=ContiguousRegion(0, 1 << 16),
            dst_region=ContiguousRegion(1 << 20, 1 << 16),
            mlp=4,
            per_packet_compute_ns=0.0,
        )
        return sock, workload

    def test_store_waits_for_its_load(self):
        sock, workload = self.make()
        first = workload.try_next(0.0)
        second = workload.try_next(0.0)
        assert first is not None and second is not None
        # Loads issue back-to-back; the store depends on load data.
        assert first[1] == 0  # OP_LOAD
        assert second[1] == 0  # OP_LOAD
        workload.on_complete(50.0, was_store=False)
        third = workload.try_next(50.0)
        assert third is not None and third[1] == 2  # OP_NT_STORE

    def test_copy_completion_counts_on_store(self):
        sock, workload = self.make()
        workload.try_next(0.0)
        workload.try_next(0.0)
        workload.on_complete(10.0, was_store=False)
        assert workload.lines_copied == 0
        workload.on_complete(20.0, was_store=True)
        assert workload.lines_copied == 1
        assert sock.copied == 1

    def test_idles_without_delivered_data(self):
        sock, workload = self.make(delivered=0)
        assert workload.try_next(0.0) is None


class TestDctcpReceiver:
    def test_isolated_receiver_saturates_link(self):
        host = Host(cascade_lake())
        receiver = DctcpReceiver(host)
        result = host.run(60_000.0, 100_000.0)
        assert receiver.goodput(result.elapsed_ns) == pytest.approx(12.5, rel=0.05)
        assert receiver.loss_rate() == 0.0

    def test_copy_generates_c2m_traffic(self):
        host = Host(cascade_lake())
        DctcpReceiver(host)
        result = host.run(60_000.0, 100_000.0)
        # Copy moves ~2x the wire rate through memory (load + nt-store).
        assert result.class_bandwidth("copy") == pytest.approx(25.0, rel=0.12)

    def test_blue_regime_flow_control(self):
        """C2M contention slows the copy; the sender rate follows it
        down without packet loss (Appendix D.2, blue regime)."""
        host = Host(cascade_lake())
        host.add_stream_cores(3, store_fraction=0.0, traffic_class="mem")
        receiver = DctcpReceiver(host)
        result = host.run(60_000.0, 100_000.0)
        assert receiver.goodput(result.elapsed_ns) < 12.0
        assert receiver.loss_rate() < 0.01

    def test_memory_app_degrades_alongside(self):
        host = Host(cascade_lake())
        host.add_stream_cores(2, store_fraction=0.0, traffic_class="mem")
        iso = host.run(WARMUP, MEASURE).class_bandwidth("mem")
        host = Host(cascade_lake())
        host.add_stream_cores(2, store_fraction=0.0, traffic_class="mem")
        DctcpReceiver(host)
        colocated = host.run(60_000.0, 100_000.0).class_bandwidth("mem")
        assert iso / colocated > 1.15

    def test_rate_history_recorded(self):
        host = Host(cascade_lake())
        receiver = DctcpReceiver(host, rtt_ns=5_000.0)
        host.run(20_000.0, 20_000.0)
        assert len(receiver.rate_history) >= 6
