"""SoA uncore-kernel tests: knob parsing, hot-path rebinding, the
host-level reference-vs-kernel differential matrix and the kernel's
introspection hooks.

The kernel (``repro.uncore.kernel``) claims to be an *exact*
reimplementation of the CHA/IIO object-at-a-time path, so the
differential tests demand bit-identical RunResults — every latency
accumulator, occupancy integral, domain snapshot and throughput equal
with ``==`` — across the REPRO_BURST x REPRO_DDIO x REPRO_VALIDATE
matrix, plus checkpoint-interrupt resume with the kernel on.
"""

import itertools

import pytest

from repro.sim.records import RequestKind
from repro.topology.host import Host
from repro.topology.presets import cascade_lake
from repro.uncore.kernel import UncoreKernel, uncore_enabled
from repro.validate.harness import (
    _environment,
    assert_results_identical,
    result_fingerprint,
    resume_differential,
)

WARMUP = 1_500.0
MEASURE = 4_500.0


def build_host(store_fraction=0.5):
    """All four domains active: stream cores + DMA write + DMA read."""
    host = Host(cascade_lake(), seed=3)
    host.add_stream_cores(2, store_fraction=store_fraction)
    host.add_raw_dma(RequestKind.WRITE, name="dma_write")
    host.add_raw_dma(RequestKind.READ, name="dma_read")
    return host


def run_point(uncore, burst="1", ddio=None, validate=None):
    with _environment(
        REPRO_UNCORE=uncore,
        REPRO_BURST=burst,
        REPRO_DDIO=ddio,
        REPRO_VALIDATE=validate,
    ):
        return build_host().run(WARMUP, MEASURE)


class TestUncoreKnob:
    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_UNCORE", raising=False)
        assert uncore_enabled() is True

    @pytest.mark.parametrize("raw", ["on", "1", "yes", "true", ""])
    def test_enabled_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_UNCORE", raw)
        assert uncore_enabled() is True

    @pytest.mark.parametrize("raw", ["off", "0", "no", "false", " OFF "])
    def test_disabled_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_UNCORE", raw)
        assert uncore_enabled() is False

    def test_invalid_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_UNCORE", "sometimes")
        with pytest.raises(ValueError, match="REPRO_UNCORE"):
            uncore_enabled()

    def test_host_binds_kernel_methods(self):
        with _environment(REPRO_UNCORE="on"):
            host = build_host()
        kernel = host.uncore_kernel
        assert kernel is not None and host.cha.kernel is kernel
        assert host.cha.request_admission == kernel.request_admission
        assert host.cha._pump_ingress == kernel._pump_ingress
        assert host.iio.alloc == kernel.iio_alloc
        assert host.iio.release == kernel.iio_release
        # Late wiring picked up the rebound entry point.
        assert host.iio.cha_admission == kernel.request_admission
        for channel in host.mc.channels:
            assert channel.on_rpq_space == kernel._on_rpq_space
            assert channel.on_wpq_space == kernel._on_wpq_space

    def test_off_retains_reference_path(self):
        with _environment(REPRO_UNCORE="off"):
            host = build_host()
        assert host.uncore_kernel is None
        assert host.cha.kernel is None
        # No instance-dict shadowing: the class methods run.
        assert "request_admission" not in vars(host.cha)
        assert "alloc" not in vars(host.iio)


class TestDifferential:
    """The reference path and the kernel must agree bit-exactly."""

    @pytest.mark.parametrize(
        "burst,ddio,validate",
        list(itertools.product(("1", "4"), (None, "1"), (None, "1"))),
    )
    def test_reference_vs_kernel_matrix(self, burst, ddio, validate):
        ref = run_point("off", burst=burst, ddio=ddio, validate=validate)
        ker = run_point("on", burst=burst, ddio=ddio, validate=validate)
        context = f"burst={burst} ddio={ddio} validate={validate}"
        assert_results_identical(ref, ker, context=context)
        assert result_fingerprint(ref) == result_fingerprint(ker)

    @pytest.mark.parametrize("store_fraction", [0.0, 1.0])
    def test_reference_vs_kernel_store_mix(self, store_fraction):
        def point(uncore):
            with _environment(REPRO_UNCORE=uncore, REPRO_BURST="1",
                              REPRO_DDIO=None, REPRO_VALIDATE=None):
                return build_host(store_fraction).run(WARMUP, MEASURE)

        assert_results_identical(
            point("off"), point("on"),
            context=f"store_fraction={store_fraction}",
        )

    def test_checkpoint_interrupt_resume(self):
        """Kill-and-resume with the kernel on must be bit-identical to
        straight-through, and both to the reference path (the kernel
        arrays ride inside the host pickle)."""
        with _environment(REPRO_UNCORE="on", REPRO_BURST="1",
                          REPRO_DDIO=None, REPRO_VALIDATE=None,
                          REPRO_CKPT=None):
            baseline, fingerprints = resume_differential(
                build_host, WARMUP, MEASURE,
                at_events=(2_000, 15_000),
                context="uncore kernel",
            )
        assert len(fingerprints) == 2
        ref = run_point("off")
        assert_results_identical(
            ref, baseline, context="reference vs checkpointed kernel"
        )


class TestKernelIntrospection:
    def _running_host(self):
        with _environment(REPRO_UNCORE="on", REPRO_BURST="1",
                          REPRO_DDIO=None, REPRO_VALIDATE=None):
            host = build_host()
            return host, host.uncore_kernel

    def test_consistency_mid_flight(self):
        """verify_consistency must hold at arbitrary instants while
        traffic is in flight, not only at quiescence."""
        host, kernel = self._running_host()
        checked = []
        for t in (400.0, 1_300.0, 2_700.0, 5_100.0):
            host.sim.schedule_at(
                t, lambda: checked.append(kernel.verify_consistency())
            )
        host.run(WARMUP, MEASURE)
        checked.append(kernel.verify_consistency())
        assert len(checked) == 5 and all(n >= 11 for n in checked)

    def test_occ_pulse_inline_matches_reference(self):
        """The fast-path ingress occupancy pulse (+n then -n at one
        instant) must leave the counter exactly as two canonical
        update calls would."""
        from repro.telemetry.counters import OccupancyCounter

        canonical, inlined = OccupancyCounter(), OccupancyCounter()
        for occ in (canonical, inlined):
            occ.update(0.0, 2)
        canonical.update(5.0, 3)
        canonical.update(5.0, -3)
        # The inlined recipe, verbatim from kernel.request_admission:
        now, lines = 5.0, 3
        occ = inlined
        dt = now - occ._last_t
        if dt > 0:
            occ._integral += occ.value * dt
            occ._last_t = now
        value = occ.value + lines
        if value > occ.max_seen:
            occ.max_seen = value
        assert (
            inlined.value, inlined.max_seen,
            inlined._integral, inlined._last_t,
        ) == (
            canonical.value, canonical.max_seen,
            canonical._integral, canonical._last_t,
        )

    def test_sync_stats_is_idempotent(self):
        host, kernel = self._running_host()
        host.run(WARMUP, MEASURE)
        kernel.sync_stats()
        snapshot = {
            name: (stat.total, stat.count, stat.max_seen)
            for name, stat in host.cha._admission_delay.items()
        }
        completions = {
            name: counter.count
            for name, counter in host.cha._completion_rates.items()
        }
        kernel.sync_stats()
        assert snapshot == {
            name: (stat.total, stat.count, stat.max_seen)
            for name, stat in host.cha._admission_delay.items()
        }
        assert completions == {
            name: counter.count
            for name, counter in host.cha._completion_rates.items()
        }
        assert snapshot  # traffic actually flowed

    def test_interning_stable_across_windows(self):
        host, kernel = self._running_host()
        host.run(WARMUP, MEASURE)
        ids_before = dict(kernel.cls_ids)
        assert ids_before
        host.reset_measurement()
        assert kernel.cls_ids == ids_before  # interning survives windows
        assert all(count == 0 for count in kernel.adm_count)
        assert all(count == 0 for count in kernel.comp_lines)

    def test_manual_construction_rebinds(self):
        """UncoreKernel attaches to an existing CHA/IIO pair (the host
        path, but also direct harnesses like tests/test_cha_hol.py)."""
        with _environment(REPRO_UNCORE="off"):
            host = build_host()
        assert host.cha.kernel is None
        kernel = UncoreKernel(host.cha, host.iio)
        assert host.cha.kernel is kernel
        assert host.cha.request_admission == kernel.request_admission
