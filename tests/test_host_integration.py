"""Host-level integration tests: end-to-end invariants on small windows.

These exercise the full stack (cores -> CHA -> MC -> DRAM, devices ->
IIO -> CHA -> MC) and check conservation, Little's-law consistency,
and the paper's unloaded-latency calibration targets.
"""

import pytest

from repro import Host, RequestKind, cascade_lake, ice_lake
from repro.telemetry.littleslaw import littles_law_latency

WARMUP = 10_000.0
MEASURE = 30_000.0


@pytest.fixture(scope="module")
def single_core_read():
    host = Host(cascade_lake())
    host.add_stream_cores(1, store_fraction=0.0)
    result = host.run(WARMUP, MEASURE)
    return host, result


@pytest.fixture(scope="module")
def p2m_write_isolated():
    host = Host(cascade_lake())
    host.add_raw_dma(RequestKind.WRITE)
    result = host.run(WARMUP, MEASURE)
    return host, result


class TestUnloadedCalibration:
    def test_c2m_read_unloaded_latency_near_70ns(self, single_core_read):
        """§4.2: the unloaded C2M-Read domain latency is ~70 ns."""
        _, result = single_core_read
        assert 55.0 <= result.latency("c2m_read") <= 85.0

    def test_single_core_bandwidth_matches_bound(self, single_core_read):
        """T = C x 64 / L for a fully-utilized LFB (§4.1)."""
        _, result = single_core_read
        credits = result.config.effective_lfb_size
        bound = credits * 64 / result.latency("c2m_read")
        assert result.class_bandwidth("c2m") == pytest.approx(bound, rel=0.05)

    def test_lfb_fully_utilized(self, single_core_read):
        _, result = single_core_read
        assert result.lfb_avg_occupancy["c2m"] == pytest.approx(
            result.config.effective_lfb_size, rel=0.02
        )

    def test_p2m_write_unloaded_latency_near_300ns(self, p2m_write_isolated):
        """§4.2: the unloaded P2M-Write domain latency is ~300 ns."""
        _, result = p2m_write_isolated
        assert 260.0 <= result.latency("p2m_write", "p2m") <= 340.0

    def test_p2m_write_spare_credits(self, p2m_write_isolated):
        """§5.1: ~65 credits in use out of ~92 at the device rate."""
        _, result = p2m_write_isolated
        assert 55.0 <= result.iio_write_avg_occupancy <= 80.0

    def test_p2m_write_achieves_device_rate(self, p2m_write_isolated):
        _, result = p2m_write_isolated
        assert result.device_bandwidth("dma") == pytest.approx(
            result.config.device_rate, rel=0.03
        )


class TestConservation:
    def test_c2m_readwrite_moves_equal_reads_and_writes(self):
        host = Host(cascade_lake())
        host.add_stream_cores(2, store_fraction=1.0)
        result = host.run(WARMUP, MEASURE)
        reads = result.lines_read_by_class["c2m"]
        writes = result.lines_written_by_class["c2m"]
        assert writes == pytest.approx(reads, rel=0.05)

    def test_memory_bandwidth_is_sum_of_classes(self):
        host = Host(cascade_lake())
        host.add_stream_cores(2, store_fraction=0.0)
        host.add_raw_dma(RequestKind.WRITE)
        result = host.run(WARMUP, MEASURE)
        total = sum(result.mem_bw_by_class.values())
        assert result.mem_bw_total == pytest.approx(total, rel=1e-6)

    def test_utilization_below_one(self):
        host = Host(cascade_lake())
        host.add_stream_cores(6, store_fraction=1.0)
        host.add_raw_dma(RequestKind.WRITE)
        result = host.run(WARMUP, MEASURE)
        assert 0.0 < result.mem_bw_utilization <= 1.0

    def test_device_lines_match_mc_lines(self):
        host = Host(cascade_lake())
        host.add_raw_dma(RequestKind.WRITE)
        result = host.run(WARMUP, MEASURE)
        mc_lines = result.lines_written_by_class["p2m"]
        # Posted-credit pipeline skew is bounded by the IIO buffer size.
        assert abs(result.device_lines["dma"] - mc_lines) <= 2 * 92


class TestLittlesLawConsistency:
    def test_lfb_occupancy_rate_latency_agree(self, single_core_read):
        """The paper's L = O/R methodology must agree with the
        simulator's ground-truth per-request latency."""
        _, result = single_core_read
        occupancy = result.lfb_avg_occupancy["c2m"]
        rate = result.class_read_rate("c2m")
        derived = littles_law_latency(occupancy, rate)
        assert derived == pytest.approx(result.latency("c2m_read"), rel=0.05)

    def test_iio_occupancy_rate_latency_agree(self, p2m_write_isolated):
        _, result = p2m_write_isolated
        rate = result.class_write_rate("p2m")
        derived = littles_law_latency(result.iio_write_avg_occupancy, rate)
        assert derived == pytest.approx(
            result.latency("p2m_write", "p2m"), rel=0.05
        )


class TestScaling:
    def test_read_bandwidth_grows_sublinearly(self):
        results = []
        for n in (1, 4):
            host = Host(cascade_lake())
            host.add_stream_cores(n, store_fraction=0.0)
            results.append(host.run(WARMUP, MEASURE))
        bw1 = results[0].class_bandwidth("c2m")
        bw4 = results[1].class_bandwidth("c2m")
        assert bw4 > 2 * bw1  # scales
        assert bw4 < 4.2 * bw1  # but not superlinearly

    def test_latency_grows_with_load(self):
        lat = []
        for n in (1, 6):
            host = Host(cascade_lake())
            host.add_stream_cores(n, store_fraction=0.0)
            lat.append(host.run(WARMUP, MEASURE).latency("c2m_read"))
        assert lat[1] > lat[0]

    def test_pure_read_saturation_efficiency(self):
        """Sequential reads should achieve high channel efficiency
        (the paper's microbenchmark reaches >90% of theoretical)."""
        host = Host(cascade_lake())
        host.add_stream_cores(8, store_fraction=0.0)
        host.add_raw_dma(RequestKind.READ)
        result = host.run(WARMUP, MEASURE)
        assert result.mem_bw_utilization > 0.85


class TestHostConstruction:
    def test_ice_lake_preset_runs(self):
        host = Host(ice_lake())
        host.add_stream_cores(4, store_fraction=0.0)
        result = host.run(5_000.0, 10_000.0)
        assert result.class_bandwidth("c2m") > 0
        assert result.config.theoretical_mem_bandwidth == pytest.approx(102.4, abs=0.5)

    def test_deterministic_given_seed(self):
        def run():
            host = Host(cascade_lake(), seed=7)
            host.add_stream_cores(2, store_fraction=0.5)
            host.add_raw_dma(RequestKind.WRITE)
            return host.run(5_000.0, 15_000.0)

        a, b = run(), run()
        assert a.mem_bw_total == b.mem_bw_total
        assert a.latency("c2m_read") == b.latency("c2m_read")
        assert a.lines_read == b.lines_read

    def test_different_seeds_differ(self):
        def run(seed):
            host = Host(cascade_lake(), seed=seed)
            host.add_stream_cores(2, store_fraction=0.0)
            return host.run(5_000.0, 15_000.0)

        assert run(1).lines_read != run(2).lines_read

    def test_invalid_llc_mode_rejected(self):
        with pytest.raises(ValueError):
            Host(cascade_lake(llc_mode="weird"))

    def test_contiguous_regions_mode(self):
        host = Host(cascade_lake(page_scatter=False))
        host.add_stream_cores(1, store_fraction=0.0)
        result = host.run(5_000.0, 10_000.0)
        # Physically contiguous sequential stream: near-perfect row hits.
        assert result.row_miss_ratio["c2m.read"] < 0.03

    def test_page_scatter_raises_row_misses(self):
        host = Host(cascade_lake(page_scatter=True))
        host.add_stream_cores(1, store_fraction=0.0)
        scattered = host.run(5_000.0, 10_000.0)
        assert scattered.row_miss_ratio["c2m.read"] > 0.005
