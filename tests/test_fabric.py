"""Unit tests for the rack fabric: links, switch ports, senders,
leaf/spine wiring, and the line-conservation discipline."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.records import CACHELINE_BYTES
from repro.topology.fabric import (
    FabricLine,
    FabricSender,
    LeafSpineFabric,
    Link,
    SwitchPort,
    gbps,
)

#: 12.5 B/ns == 100 Gb/s; one cacheline serializes in 5.12 ns
BW = 12.5


def make_port(sim, **kwargs):
    kwargs.setdefault("queue_capacity", 8)
    link = Link(sim, BW, t_prop=kwargs.pop("t_prop", 10.0))
    return SwitchPort(sim, kwargs.pop("name", "p"), link, **kwargs)


class Sink:
    """Recording terminal callback for FabricLine.deliver."""

    def __init__(self, sim):
        self.sim = sim
        self.deliveries = []

    def __call__(self, now, marked):
        self.deliveries.append((now, marked))


class Upstream:
    """Recording PFC target."""

    def __init__(self):
        self.flags = []

    def set_downstream_paused(self, flag):
        self.flags.append(flag)


class TestLink:
    def test_serialization_and_propagation(self):
        sim = Simulator()
        link = Link(sim, BW, t_prop=100.0)
        t_ser = CACHELINE_BYTES / BW
        first = link.send(CACHELINE_BYTES)
        second = link.send(CACHELINE_BYTES)
        assert first == pytest.approx(t_ser + 100.0)
        # The second payload waits behind the first on the wire.
        assert second == pytest.approx(2 * t_ser + 100.0)
        assert link.next_free() == pytest.approx(2 * t_ser)
        assert link.bytes_sent == 2 * CACHELINE_BYTES

    def test_rejects_bad_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 0.0)
        with pytest.raises(ValueError):
            Link(sim, BW, t_prop=-1.0)
        with pytest.raises(ValueError):
            gbps(-1.0)
        assert gbps(100.0) == pytest.approx(12.5)


class TestSwitchPort:
    def test_fifo_order_and_wire_spacing(self):
        sim = Simulator()
        port = make_port(sim, t_prop=10.0)
        sink = Sink(sim)
        port.downstream = lambda line: line.deliver(sim.now, line.marked)
        order = []
        for i in range(4):
            line = FabricLine(lambda now, marked, i=i: order.append((i, now)))
            port.enqueue(line)
        sim.run_until(1_000.0)
        assert [i for i, _ in order] == [0, 1, 2, 3]
        t_ser = CACHELINE_BYTES / BW
        arrivals = [now for _, now in order]
        # Store-and-forward: one serialization slot between arrivals.
        for a, b in zip(arrivals, arrivals[1:]):
            assert b - a == pytest.approx(t_ser)
        assert port.lines_forwarded == 4
        assert port.depth == 0

    def test_ecn_marks_above_threshold(self):
        sim = Simulator()
        port = make_port(sim, ecn_threshold=2, pfc_enabled=False)
        sink = Sink(sim)
        port.downstream = lambda line: sink(sim.now, line.marked)
        for _ in range(5):
            port.enqueue(FabricLine(sink))
        sim.run_until(1_000.0)
        # Lines 0 and 1 saw depth < 2 at enqueue; 2, 3, 4 were marked.
        assert port.lines_marked == 3
        assert [marked for _, marked in sink.deliveries] == [
            False, False, True, True, True,
        ]

    def test_already_marked_line_not_double_counted(self):
        sim = Simulator()
        port = make_port(sim, ecn_threshold=0, pfc_enabled=False)
        port.downstream = lambda line: None
        line = FabricLine(lambda now, marked: None)
        line.marked = True
        port.enqueue(line)
        assert port.lines_marked == 0

    def test_lossy_drop_when_full(self):
        sim = Simulator()
        port = make_port(sim, queue_capacity=4, pfc_enabled=False)
        port.downstream = lambda line: None
        for _ in range(10):
            port.enqueue(FabricLine(lambda now, marked: None))
        # All 10 arrivals counted; 6 dropped at the full queue.
        assert port.lines_enqueued == 10
        assert port.lines_dropped == 6
        sim.run_until(1_000.0)
        assert port.total_enqueued == (
            port.total_forwarded + port.total_dropped + port.depth
        )
        assert port.total_forwarded == 4

    def test_pfc_pauses_and_resumes_upstreams(self):
        sim = Simulator()
        port = make_port(sim, queue_capacity=8)  # pause_hi=6, pause_lo=2
        port.downstream = lambda line: None
        upstream = Upstream()
        port.add_upstream(upstream)
        for _ in range(6):
            port.enqueue(FabricLine(lambda now, marked: None))
        assert upstream.flags == [True]
        assert port.pausing_upstream
        sim.run_until(1_000.0)
        # Drained below pause_lo: the upstream was resumed.
        assert upstream.flags == [True, False]
        assert not port.pausing_upstream
        assert port.pause_fraction(sim.now) > 0.0

    def test_downstream_pause_stops_drain(self):
        sim = Simulator()
        port = make_port(sim)
        delivered = []
        port.downstream = lambda line: delivered.append(line)
        port.set_downstream_paused(True)
        port.enqueue(FabricLine(lambda now, marked: None))
        sim.run_until(500.0)
        assert delivered == []
        assert port.depth == 1
        port.set_downstream_paused(False)
        sim.run_until(1_000.0)
        assert len(delivered) == 1
        assert port.depth == 0

    def test_add_upstream_is_idempotent(self):
        sim = Simulator()
        port = make_port(sim)
        upstream = Upstream()
        port.add_upstream(upstream)
        port.add_upstream(upstream)
        assert len(port._upstreams) == 1

    def test_reset_stats_keeps_queue_and_lifetime_counters(self):
        sim = Simulator()
        port = make_port(sim, queue_capacity=8)
        port.downstream = lambda line: None
        port.set_downstream_paused(True)
        for _ in range(3):
            port.enqueue(FabricLine(lambda now, marked: None))
        port.reset_stats(sim.now)
        assert port.lines_enqueued == 0
        assert port.depth == 3
        assert port.total_enqueued == 3
        assert port.max_depth == 3  # window max starts at current depth

    def test_rejects_bad_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make_port(sim, queue_capacity=0)


class TestFabricSender:
    def test_paces_at_rate(self):
        sim = Simulator()
        port = make_port(sim, queue_capacity=8192)
        port.downstream = lambda line: None
        sender = FabricSender(sim, "s", port, lambda now, marked: None, rate=BW)
        sender.start()
        sender.start()  # idempotent
        sim.run_until(10_000.0)
        expected = 10_000.0 / (CACHELINE_BYTES / BW)
        assert sender.lines_sent == pytest.approx(expected, rel=0.01)

    def test_set_rate_zero_stops_and_restart_works(self):
        sim = Simulator()
        port = make_port(sim, queue_capacity=8192)
        port.downstream = lambda line: None
        sender = FabricSender(sim, "s", port, lambda now, marked: None, rate=BW)
        sender.start()
        sim.run_until(1_000.0)
        sent = sender.lines_sent
        assert sent > 0
        sender.set_rate(0.0)
        sim.run_until(2_000.0)
        assert sender.lines_sent <= sent + 1  # at most one in-flight pace
        sender.set_rate(BW)
        sim.run_until(3_000.0)
        assert sender.lines_sent > sent + 10

    def test_first_hop_pfc_pauses_pacing(self):
        sim = Simulator()
        # Tiny queue: pause_hi = 3 of 4.
        port = make_port(sim, queue_capacity=4, t_prop=10.0)
        port.downstream = lambda line: None
        port.set_downstream_paused(True)  # force the queue to fill
        sender = FabricSender(
            sim, "s", port, lambda now, marked: None, rate=4 * BW
        )
        sender.start()
        sim.run_until(500.0)
        assert sender.paused
        assert port.depth >= port.pause_hi
        # Stop offering load, then let the queue drain: the resume edge
        # fires exactly once (no refill oscillation).
        sender.set_rate(0.0)
        port.set_downstream_paused(False)
        sim.run_until(2_000.0)
        assert not sender.paused
        assert sender.pause_fraction(sim.now) > 0.0
        # Lossless: the paused sender deferred, nothing was dropped.
        assert port.lines_dropped == 0


class TestLeafSpineFabric:
    def make(self, sim, n_hosts=8, **kwargs):
        kwargs.setdefault("link_bandwidth", BW)
        kwargs.setdefault("t_prop", 10.0)
        return LeafSpineFabric(sim, n_hosts, **kwargs)

    def test_leaf_assignment_round_robin(self):
        fabric = self.make(Simulator(), n_hosts=8, n_leaves=2)
        assert [fabric.leaf_of(h) for h in range(4)] == [0, 1, 0, 1]

    def test_same_leaf_path_is_edge_only(self):
        sim = Simulator()
        fabric = self.make(sim, n_hosts=4, n_leaves=1)
        fabric.attach_edge(1, lambda now, marked: None)
        hops = fabric.path(0, 1)
        assert [p.name for p in hops] == ["leaf0.down.h1"]

    def test_cross_leaf_path_goes_via_spine(self):
        sim = Simulator()
        fabric = self.make(sim, n_hosts=4, n_leaves=2)
        fabric.attach_edge(1, lambda now, marked: None)
        hops = fabric.path(0, 1)  # leaf0 -> spine0 -> leaf1
        assert [p.name for p in hops] == [
            "leaf0.up.s0", "spine0.down.leaf1", "leaf1.down.h1",
        ]
        # PFC chain: edge pauses the spine port, which pauses the uplink.
        assert hops[1] in hops[2]._upstreams
        assert hops[0] in hops[1]._upstreams

    def test_paths_share_ports(self):
        sim = Simulator()
        fabric = self.make(sim, n_hosts=6, n_leaves=1)
        fabric.attach_edge(0, lambda now, marked: None)
        first = fabric.path(1, 0)
        second = fabric.path(2, 0)
        assert first[0] is second[0]  # the incast edge queue is shared

    def test_path_errors(self):
        sim = Simulator()
        fabric = self.make(sim, n_hosts=2)
        with pytest.raises(ValueError):
            fabric.path(0, 0)
        with pytest.raises(ValueError):
            fabric.path(0, 5)
        with pytest.raises(ValueError):
            fabric.path(0, 1)  # no edge attached yet
        with pytest.raises(ValueError):
            LeafSpineFabric(sim, 0)
        with pytest.raises(ValueError):
            LeafSpineFabric(sim, 2, n_spines=0)

    def test_connect_delivers_end_to_end_with_marks(self):
        sim = Simulator()
        fabric = self.make(sim, n_hosts=2, n_leaves=2, ecn_threshold=0)
        sink = Sink(sim)
        sender = fabric.connect(0, 1, sink, rate=BW)
        sender.start()
        sim.run_until(5_000.0)
        assert len(sink.deliveries) > 10
        # ecn_threshold=0 marks every line somewhere along the path.
        assert all(marked for _, marked in sink.deliveries)
        assert fabric.edge_port(1) is not None
        assert fabric.edge_port(0) is None  # no flow toward host 0
        assert fabric.check_conservation() == 3  # three ports walked

    def test_stats_window_and_reset(self):
        sim = Simulator()
        fabric = self.make(sim, n_hosts=2, n_leaves=1)
        sink = Sink(sim)
        fabric.connect(0, 1, sink, rate=BW).start()
        sim.run_until(2_000.0)
        fabric.reset_stats(sim.now)
        before = len(sink.deliveries)
        sim.run_until(4_000.0)
        stats = fabric.stats(sim.now)
        edge = stats.ports["leaf0.down.h1"]
        assert edge.lines_forwarded > 0
        # Window stats cover only post-reset lines.
        assert edge.lines_forwarded <= len(sink.deliveries) - before + 1
        assert stats.lines_dropped == 0
        assert stats.mark_fraction == 0.0
