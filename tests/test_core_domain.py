"""Unit tests for the domain abstraction (§4)."""

import pytest

from repro.core.bottleneck import analyze_bottleneck
from repro.core.datapath import (
    C2M_READ,
    C2M_READWRITE,
    C2M_WRITE,
    P2M_READ,
    P2M_WRITE,
    datapath_for,
    domains_of,
)
from repro.core.domain import Domain, DomainKind, credits_needed, throughput_bound
from repro.core.regimes import Regime, RegimePoint, classify_regime
from repro.sim.records import RequestKind, RequestSource


class TestThroughputBound:
    def test_paper_c2m_read_example(self):
        """~12 LFB credits at ~70 ns -> ~11 GB/s per core."""
        assert throughput_bound(12, 70.0) == pytest.approx(10.97, abs=0.01)

    def test_paper_p2m_write_example(self):
        """§5.1: ~65 credits are needed for ~14 GB/s at ~300 ns."""
        assert credits_needed(14.0, 300.0) == pytest.approx(65.6, abs=0.1)

    def test_bound_and_credits_are_inverse(self):
        bound = throughput_bound(92, 300.0)
        assert credits_needed(bound, 300.0) == pytest.approx(92.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            throughput_bound(-1, 100.0)
        with pytest.raises(ValueError):
            throughput_bound(10, 0.0)
        with pytest.raises(ValueError):
            credits_needed(-1.0, 100.0)


class TestDomain:
    def test_latency_inflation(self):
        domain = Domain(DomainKind.C2M_READ, 12, 70.0, loaded_latency_ns=105.0)
        assert domain.latency_inflation == pytest.approx(1.5)
        assert domain.max_throughput < domain.unloaded_throughput

    def test_credits_saturated(self):
        full = Domain(DomainKind.C2M_READ, 12, 70.0, credits_in_use=11.9)
        spare = Domain(DomainKind.P2M_WRITE, 92, 300.0, credits_in_use=66.0)
        assert full.credits_saturated
        assert not spare.credits_saturated
        assert spare.spare_credits() == pytest.approx(26.0)

    def test_tolerable_latency_spare_credit_argument(self):
        """The P2M-Write domain tolerates inflation up to C*64/demand."""
        domain = Domain(DomainKind.P2M_WRITE, 92, 300.0)
        assert domain.tolerable_latency(14.0) == pytest.approx(420.6, abs=0.1)

    def test_domain_kind_properties(self):
        assert DomainKind.C2M_READ.includes_dram
        assert DomainKind.P2M_READ.includes_dram
        assert not DomainKind.C2M_WRITE.includes_dram
        assert not DomainKind.P2M_WRITE.includes_dram
        assert DomainKind.P2M_WRITE.includes_mc
        assert not DomainKind.C2M_WRITE.includes_mc

    def test_validation(self):
        with pytest.raises(ValueError):
            Domain(DomainKind.C2M_READ, 0, 70.0)
        with pytest.raises(ValueError):
            Domain(DomainKind.C2M_READ, 12, 0.0)


class TestDatapath:
    def test_datapath_for(self):
        assert datapath_for(RequestSource.C2M, RequestKind.READ) is C2M_READ
        assert datapath_for(RequestSource.C2M, RequestKind.WRITE) is C2M_WRITE
        assert (
            datapath_for(RequestSource.C2M, RequestKind.WRITE, store_stream=True)
            is C2M_READWRITE
        )
        assert datapath_for(RequestSource.P2M, RequestKind.READ) is P2M_READ
        assert datapath_for(RequestSource.P2M, RequestKind.WRITE) is P2M_WRITE

    def test_parallel_bound_is_min(self):
        chars = {
            DomainKind.C2M_READ: Domain(DomainKind.C2M_READ, 12, 70.0),
            DomainKind.C2M_WRITE: Domain(DomainKind.C2M_WRITE, 12, 10.0),
        }
        assert C2M_READ.bound(chars) == pytest.approx(throughput_bound(12, 70.0))

    def test_serial_bound_adds_latencies(self):
        """C2M-ReadWrite: one LFB entry spans both domains (§4.2)."""
        chars = {
            DomainKind.C2M_READ: Domain(DomainKind.C2M_READ, 12, 70.0),
            DomainKind.C2M_WRITE: Domain(DomainKind.C2M_WRITE, 12, 10.0),
        }
        assert C2M_READWRITE.bound(chars) == pytest.approx(
            throughput_bound(12, 80.0)
        )
        assert C2M_READWRITE.total_latency(chars) == pytest.approx(80.0)

    def test_missing_characteristics_raise(self):
        with pytest.raises(KeyError):
            C2M_READWRITE.bound({})

    def test_domains_of_unique_ordered(self):
        kinds = domains_of([C2M_READWRITE, C2M_READ, P2M_WRITE])
        assert kinds == (
            DomainKind.C2M_READ,
            DomainKind.C2M_WRITE,
            DomainKind.P2M_WRITE,
        )


class TestBottleneck:
    def test_credit_limited_bottleneck(self):
        chars = {
            DomainKind.C2M_READ: Domain(
                DomainKind.C2M_READ, 12, 70.0, loaded_latency_ns=126.0,
                credits_in_use=12.0,
            ),
        }
        report = analyze_bottleneck(C2M_READ, chars)
        assert report.bottleneck is DomainKind.C2M_READ
        assert report.credit_limited and report.latency_inflated
        assert "credits fully utilized" in report.explanation

    def test_spare_credits_mask_inflation(self):
        chars = {
            DomainKind.P2M_WRITE: Domain(
                DomainKind.P2M_WRITE, 92, 300.0, loaded_latency_ns=330.0,
                credits_in_use=70.0,
            ),
        }
        report = analyze_bottleneck(P2M_WRITE, chars, demand=14.0)
        assert not report.credit_limited
        assert "mask" in report.explanation
        assert report.bound >= 14.0

    def test_unloaded_report(self):
        chars = {
            DomainKind.P2M_READ: Domain(DomainKind.P2M_READ, 200, 500.0),
        }
        report = analyze_bottleneck(P2M_READ, chars)
        assert "unloaded" in report.explanation


class TestRegimes:
    def test_blue_regime(self):
        point = RegimePoint(1.5, 1.0, 0.5)
        assert classify_regime(point) is Regime.BLUE

    def test_red_regime(self):
        point = RegimePoint(1.4, 2.0, 0.8)
        assert classify_regime(point) is Regime.RED

    def test_neutral(self):
        point = RegimePoint(1.02, 1.01, 0.3)
        assert classify_regime(point) is Regime.NEUTRAL

    def test_red_requires_p2m_degradation(self):
        point = RegimePoint(2.0, 1.0, 0.9)
        assert classify_regime(point) is Regime.BLUE

    def test_validation(self):
        with pytest.raises(ValueError):
            RegimePoint(0.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            RegimePoint(1.0, 1.0, 2.0)
