"""Chaos harness: deterministic injection, and sweeps surviving it."""

import pytest

from repro.experiments import chaos, runcache
from repro.experiments.chaos import ChaosConfig, ChaosError
from repro.experiments.quadrants import QUADRANTS, quadrant_experiment
from repro.experiments.supervisor import SupervisorConfig, run_supervised
from repro.validate.harness import chaos_differential_point

# Short windows: fault-tolerance parity cares about equality, not fidelity.
WARMUP = 1_000.0
MEASURE = 3_000.0


@pytest.fixture(autouse=True)
def isolated_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for name in (
        "REPRO_CACHE",
        "REPRO_JOBS",
        "REPRO_RETRIES",
        "REPRO_BACKOFF",
        "REPRO_TASK_TIMEOUT",
        "REPRO_JOURNAL_DIR",
        "REPRO_CHAOS",
    ):
        monkeypatch.delenv(name, raising=False)


def _square(x):
    return x * x


class TestSpecParsing:
    def test_unset_or_off_disables(self):
        assert chaos.parse("") is None
        assert chaos.parse("off") is None
        assert chaos.parse("0") is None
        assert chaos.config() is None
        assert not chaos.enabled()

    def test_full_spec_parses(self):
        cfg = chaos.parse(
            "kill=0.1,hang=0.2,exc=0.3,corrupt=0.4,preempt=0.5,"
            "seed=7,hang_s=5,attempts=2"
        )
        assert cfg == ChaosConfig(
            kill=0.1, hang=0.2, exc=0.3, corrupt=0.4, preempt=0.5,
            seed=7, hang_s=5.0, attempts=2,
        )

    def test_env_is_cached_by_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "exc=1,seed=2")
        assert chaos.config() == ChaosConfig(exc=1.0, seed=2)
        monkeypatch.setenv("REPRO_CHAOS", "exc=0.5,seed=2")
        assert chaos.config() == ChaosConfig(exc=0.5, seed=2)

    @pytest.mark.parametrize(
        "spec",
        ["kill", "kill=maybe", "frobnicate=1", "exc=1.5", "kill=-0.1"],
    )
    def test_garbage_specs_raise(self, spec):
        with pytest.raises(ValueError):
            chaos.parse(spec)


class TestRolls:
    def test_roll_is_deterministic(self):
        cfg = ChaosConfig(exc=0.5, seed=3)
        decisions = [chaos.roll(cfg, "exc", f"task{i}", 0) for i in range(64)]
        assert decisions == [chaos.roll(cfg, "exc", f"task{i}", 0) for i in range(64)]
        # A fair-ish coin over 64 identities lands on both sides.
        assert True in decisions and False in decisions

    def test_roll_depends_on_seed_and_attempt(self):
        a = ChaosConfig(exc=0.5, seed=1)
        b = ChaosConfig(exc=0.5, seed=2)
        ids = [f"task{i}" for i in range(64)]
        assert [chaos.roll(a, "exc", t, 0) for t in ids] != [
            chaos.roll(b, "exc", t, 0) for t in ids
        ]
        assert [chaos.roll(a, "exc", t, 0) for t in ids] != [
            chaos.roll(a, "exc", t, 1) for t in ids
        ]

    def test_zero_probability_never_fires(self):
        cfg = ChaosConfig(seed=3)
        assert not any(chaos.roll(cfg, "kill", f"t{i}", 0) for i in range(64))


class TestInjection:
    def test_exc_injection_raises_transient_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "exc=1,seed=3")
        with pytest.raises(ChaosError, match="injected transient fault"):
            chaos.maybe_inject("task", 0, in_worker=False)

    def test_injection_only_on_early_attempts(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "exc=1,seed=3")
        chaos.maybe_inject("task", 1, in_worker=False)  # no raise

    def test_kill_and_hang_never_fire_in_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "kill=1,hang=1,hang_s=60,seed=3")
        chaos.maybe_inject("task", 0, in_worker=False)  # would exit/hang

    def test_preempt_arms_checkpoint_in_worker_only(self, monkeypatch):
        from repro.sim import checkpoint

        monkeypatch.setenv("REPRO_CHAOS", "preempt=1,seed=3")
        try:
            chaos.maybe_inject("task", 0, in_worker=False)
            assert checkpoint._ARMED_AT is None  # serial path never arms
            chaos.maybe_inject("task", 0, in_worker=True)
            assert checkpoint._ARMED_AT is not None
            assert 1_000 <= checkpoint._ARMED_AT < 41_000
            assert checkpoint._EXIT_ON_PREEMPT  # worker exits 75, pool requeues
        finally:
            checkpoint.disarm_preempt()

    def test_preempt_event_count_is_deterministic(self, monkeypatch):
        from repro.sim import checkpoint

        monkeypatch.setenv("REPRO_CHAOS", "preempt=1,seed=3")
        armed = []
        try:
            for _ in range(2):
                chaos.maybe_inject("task", 0, in_worker=True)
                armed.append(checkpoint._ARMED_AT)
                checkpoint.disarm_preempt()
            chaos.maybe_inject("other-task", 0, in_worker=True)
            armed.append(checkpoint._ARMED_AT)
        finally:
            checkpoint.disarm_preempt()
        assert armed[0] == armed[1]  # same identity: same kill point
        assert armed[2] != armed[0]  # hashed per identity

    def test_corrupt_truncates_cache_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "corrupt=1,seed=3")
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"x" * 100)
        chaos.maybe_corrupt_cache(path, "somekey")
        assert path.stat().st_size == 50


class TestCacheCorruptionEndToEnd:
    def test_corrupted_put_is_quarantined_and_recomputed(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "corrupt=1,seed=3")
        key = runcache.key_for(_square, (6,), {})
        runcache.put(key, 36)  # chaos truncates the entry on disk
        with pytest.warns(RuntimeWarning, match="quarantine"):
            hit, _ = runcache.get(key)
        assert not hit
        quarantined = list((runcache.cache_dir() / "quarantine").iterdir())
        assert len(quarantined) == 1
        # The supervised path recomputes transparently.
        batch = run_supervised([(_square, (6,), {})], jobs=1)
        assert batch.results == [36]


class TestChaoticSweeps:
    """End-to-end: injected faults never change sweep results."""

    def test_chaotic_batch_matches_fault_free(self, monkeypatch):
        clean = run_supervised(
            [(_square, (i,), {}) for i in range(6)], jobs=2, cache=False
        )
        monkeypatch.setenv("REPRO_CHAOS", "kill=0.4,exc=0.5,seed=5")
        chaotic = run_supervised(
            [(_square, (i,), {}) for i in range(6)],
            jobs=2,
            cache=False,
            config=SupervisorConfig(retries=3, backoff_s=0.01, pool_failure_limit=50),
        )
        assert chaotic.results == clean.results
        assert chaotic.failures  # exc=0.5 over 6 tasks: some fault fired

    def test_quadrant_sweep_float_identical_under_chaos(self):
        """The differential harness: one colocation point fault-free vs
        under kills + transient exceptions — float-identical, with the
        injected faults recovered and reported."""
        experiment = quadrant_experiment(QUADRANTS[1])
        baseline, chaotic, recovered = chaos_differential_point(
            experiment,
            n_cores=1,
            warmup=WARMUP,
            measure=MEASURE,
            jobs=2,
            chaos="kill=0.3,exc=1,seed=11",
            retries=3,
        )
        assert len(baseline) == len(chaotic) == 1
        assert recovered  # exc=1 guarantees at least one recovery
        assert all(f.recovered for f in recovered)
        assert all(f.attempts >= 2 for f in recovered)

    def test_quadrant_sweep_float_identical_under_preemption(self):
        """Same differential under ``preempt`` faults: every worker task
        is checkpoint-preempted mid-simulation (windows long enough that
        the hashed kill points land inside the run), the retries resume
        from the blobs, and the point stays float-identical."""
        experiment = quadrant_experiment(QUADRANTS[1])
        baseline, chaotic, recovered = chaos_differential_point(
            experiment,
            n_cores=1,
            warmup=WARMUP,
            measure=20_000.0,  # ~40k events: hashed kill points fire mid-run
            jobs=2,
            chaos="preempt=1,seed=13",
            retries=3,
        )
        assert len(baseline) == len(chaotic) == 1
        # chaos_differential_point itself raises if nothing fired; the
        # preempted workers exit PREEMPT_EXIT_CODE, surfacing as
        # recovered crash-kind failures.
        assert all(f.recovered for f in recovered)
        assert any(f.kind == "crash" for f in recovered)
