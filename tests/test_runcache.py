"""Run-cache behaviour: hit/miss, invalidation, escape hatches."""

import pickle

import pytest

from repro.experiments import runcache

CALLS = []


def _expensive(x, y=1):
    """Module-level (picklable) stand-in for a simulation run."""
    CALLS.append((x, y))
    return {"value": x * y}


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    CALLS.clear()
    yield tmp_path


class TestKeying:
    def test_key_is_deterministic(self):
        assert runcache.key_for(_expensive, (3,), {"y": 2}) == runcache.key_for(
            _expensive, (3,), {"y": 2}
        )

    def test_key_changes_with_args(self):
        base = runcache.key_for(_expensive, (3,), {})
        assert runcache.key_for(_expensive, (4,), {}) != base
        assert runcache.key_for(_expensive, (3,), {"y": 5}) != base

    def test_key_changes_with_code_version(self, monkeypatch):
        base = runcache.key_for(_expensive, (3,), {})
        monkeypatch.setattr(runcache, "_code_fingerprint", "different-version")
        assert runcache.key_for(_expensive, (3,), {}) != base

    def test_unpicklable_spec_returns_none(self):
        assert runcache.key_for(lambda: None) is None

    def test_disabled_returns_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert runcache.key_for(_expensive, (3,), {}) is None


class TestRoundTrip:
    def test_miss_then_hit(self):
        key = runcache.key_for(_expensive, (3,), {"y": 2})
        hit, _ = runcache.get(key)
        assert not hit
        runcache.put(key, {"value": 6})
        hit, value = runcache.get(key)
        assert hit and value == {"value": 6}

    def test_cached_call_executes_once(self):
        first = runcache.cached_call(_expensive, 3, y=2)
        second = runcache.cached_call(_expensive, 3, y=2)
        assert first == second == {"value": 6}
        assert CALLS == [(3, 2)]

    def test_parameter_change_is_a_miss(self):
        runcache.cached_call(_expensive, 3, y=2)
        runcache.cached_call(_expensive, 3, y=4)
        assert CALLS == [(3, 2), (3, 4)]

    def test_disabled_cache_always_executes(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        runcache.cached_call(_expensive, 3, y=2)
        runcache.cached_call(_expensive, 3, y=2)
        assert CALLS == [(3, 2), (3, 2)]

    def test_corrupt_entry_is_a_miss_and_removed(self, isolated_cache):
        key = runcache.key_for(_expensive, (3,), {})
        runcache.put(key, {"value": 3})
        path = runcache._path_for(key)
        path.write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning):
            hit, _ = runcache.get(key)
        assert not hit
        assert not path.exists()

    def test_entries_land_under_cache_dir(self, isolated_cache):
        runcache.cached_call(_expensive, 3, y=2)
        entries = [
            p for p in isolated_cache.rglob("*.pkl")
            if "quarantine" not in p.parts
        ]
        assert len(entries) == 1
        ok, value = runcache.decode_blob(entries[0].read_bytes())
        assert ok and value == {"value": 6}


class TestIntegrity:
    def test_blob_round_trip(self):
        blob = runcache.encode_blob({"value": 6})
        assert runcache.decode_blob(blob) == (True, {"value": 6})

    def test_decode_rejects_bad_magic_and_checksum(self):
        blob = runcache.encode_blob([1, 2, 3])
        assert runcache.decode_blob(b"XXXX" + blob[4:]) == (False, None)
        flipped = bytearray(blob)
        flipped[-1] ^= 0xFF
        assert runcache.decode_blob(bytes(flipped)) == (False, None)
        assert runcache.decode_blob(b"") == (False, None)
        assert runcache.decode_blob(blob[:10]) == (False, None)

    def test_truncated_entry_is_quarantined_and_recomputed(self, isolated_cache):
        """Bit rot / torn writes: the checksum catches the damage, the
        evidence moves to quarantine/ (not silently deleted), and the
        run is recomputed and re-cached."""
        runcache.cached_call(_expensive, 3, y=2)
        key = runcache.key_for(_expensive, (3,), {"y": 2})
        path = runcache._path_for(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.warns(RuntimeWarning, match="quarantine"):
            value = runcache.cached_call(_expensive, 3, y=2)
        assert value == {"value": 6}
        assert CALLS == [(3, 2), (3, 2)]  # recomputed exactly once
        quarantined = list((isolated_cache / "quarantine").iterdir())
        assert [p.name for p in quarantined] == [path.name]
        # The recompute re-populated the cache with a healthy entry.
        hit, value = runcache.get(key)
        assert hit and value == {"value": 6}

    def test_legacy_unchecksummed_entry_is_quarantined(self, isolated_cache):
        key = runcache.key_for(_expensive, (4,), {})
        path = runcache._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"value": 4}))  # pre-RRC1 format
        with pytest.warns(RuntimeWarning, match="corrupt"):
            hit, _ = runcache.get(key)
        assert not hit
        assert (isolated_cache / "quarantine" / path.name).exists()
