"""Run-cache behaviour: hit/miss, invalidation, escape hatches."""

import pickle

import pytest

from repro.experiments import runcache

CALLS = []


def _expensive(x, y=1):
    """Module-level (picklable) stand-in for a simulation run."""
    CALLS.append((x, y))
    return {"value": x * y}


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    CALLS.clear()
    yield tmp_path


class TestKeying:
    def test_key_is_deterministic(self):
        assert runcache.key_for(_expensive, (3,), {"y": 2}) == runcache.key_for(
            _expensive, (3,), {"y": 2}
        )

    def test_key_changes_with_args(self):
        base = runcache.key_for(_expensive, (3,), {})
        assert runcache.key_for(_expensive, (4,), {}) != base
        assert runcache.key_for(_expensive, (3,), {"y": 5}) != base

    def test_key_changes_with_code_version(self, monkeypatch):
        base = runcache.key_for(_expensive, (3,), {})
        monkeypatch.setattr(runcache, "_code_fingerprint", "different-version")
        assert runcache.key_for(_expensive, (3,), {}) != base

    def test_unpicklable_spec_returns_none(self):
        assert runcache.key_for(lambda: None) is None

    def test_disabled_returns_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert runcache.key_for(_expensive, (3,), {}) is None


class TestRoundTrip:
    def test_miss_then_hit(self):
        key = runcache.key_for(_expensive, (3,), {"y": 2})
        hit, _ = runcache.get(key)
        assert not hit
        runcache.put(key, {"value": 6})
        hit, value = runcache.get(key)
        assert hit and value == {"value": 6}

    def test_cached_call_executes_once(self):
        first = runcache.cached_call(_expensive, 3, y=2)
        second = runcache.cached_call(_expensive, 3, y=2)
        assert first == second == {"value": 6}
        assert CALLS == [(3, 2)]

    def test_parameter_change_is_a_miss(self):
        runcache.cached_call(_expensive, 3, y=2)
        runcache.cached_call(_expensive, 3, y=4)
        assert CALLS == [(3, 2), (3, 4)]

    def test_disabled_cache_always_executes(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        runcache.cached_call(_expensive, 3, y=2)
        runcache.cached_call(_expensive, 3, y=2)
        assert CALLS == [(3, 2), (3, 2)]

    def test_corrupt_entry_is_a_miss_and_removed(self, isolated_cache):
        key = runcache.key_for(_expensive, (3,), {})
        runcache.put(key, {"value": 3})
        path = runcache._path_for(key)
        path.write_bytes(b"not a pickle")
        hit, _ = runcache.get(key)
        assert not hit
        assert not path.exists()

    def test_entries_land_under_cache_dir(self, isolated_cache):
        runcache.cached_call(_expensive, 3, y=2)
        entries = list(isolated_cache.rglob("*.pkl"))
        assert len(entries) == 1
        assert pickle.loads(entries[0].read_bytes()) == {"value": 6}
