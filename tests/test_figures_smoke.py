"""Smoke coverage for every figure builder: tiny windows, structural
assertions only (shapes are checked at real scale by the benchmarks).
"""

import math

import pytest

from repro.experiments import appendix, figures, netfigs, rack

TINY = dict(core_counts=(1, 2), warmup=3_000.0, measure=8_000.0)
TINY_DCTCP = dict(core_counts=(2,), warmup=20_000.0, measure=30_000.0)


def assert_wellformed(data, x_len):
    assert data.figure_id
    assert data.title
    assert len(data.x_values) == x_len
    assert data.series, "no series produced"
    for name, values in data.series.items():
        assert len(values) == x_len or name.startswith("bank_dev_cdf"), name
        for v in values:
            if isinstance(v, float):
                assert not math.isinf(v), f"{name} has inf"


class TestMainFigures:
    def test_fig3(self):
        data = figures.fig3(**TINY)
        assert_wellformed(data, 2)
        assert data.series["q1_regime"]  # regime labels present

    def test_fig6(self):
        data = figures.fig6(**TINY)
        assert_wellformed(data, 2)

    def test_fig7(self):
        data = figures.fig7(**TINY)
        assert_wellformed(data, 2)

    def test_fig8(self):
        data = figures.fig8(**TINY)
        assert_wellformed(data, 2)

    def test_fig11(self):
        data = figures.fig11(**TINY)
        assert_wellformed(data, 2)

    def test_fig12(self):
        data = figures.fig12(**TINY)
        assert_wellformed(data, 2)

    def test_fig1_ice_lake(self):
        data = figures.fig1(core_counts=(4,), warmup=3_000.0, measure=8_000.0)
        assert_wellformed(data, 1)

    def test_fig2_ddio(self):
        data = figures.fig2(core_counts=(2,), warmup=3_000.0, measure=8_000.0)
        assert_wellformed(data, 1)


class TestAppendixFigures:
    def test_fig13(self):
        assert_wellformed(appendix.fig13(**TINY), 2)

    def test_fig14(self):
        assert_wellformed(appendix.fig14(**TINY), 2)

    def test_fig15(self):
        data = appendix.fig15(core_counts=(2,), warmup=3_000.0, measure=8_000.0)
        assert_wellformed(data, 1)

    def test_fig16(self):
        data = appendix.fig16(core_counts=(2,), warmup=3_000.0, measure=8_000.0)
        assert_wellformed(data, 1)

    def test_fig17(self):
        data = appendix.fig17(core_counts=(2,), warmup=3_000.0, measure=8_000.0)
        assert_wellformed(data, 1)


class TestNetworkFigures:
    def test_fig18(self):
        assert_wellformed(netfigs.fig18(**TINY), 2)

    def test_fig19(self):
        assert_wellformed(netfigs.fig19(**TINY_DCTCP), 1)

    def test_fig20(self):
        assert_wellformed(netfigs.fig20(**TINY), 2)

    def test_fig22(self):
        data = netfigs.fig22(**TINY)
        assert_wellformed(data, 2)
        assert "pfc_pause_fraction" in data.series

    def test_fig23(self):
        data = netfigs.fig23(
            core_counts=(2,), warmup=3_000.0, measure=5_000.0,
            sample_interval_ns=500.0,
        )
        series = data.series["iio_occupancy_2_cores"]
        assert len(series) == len(data.x_values) == 10
        assert all(0 <= v <= 92 for v in series)

    def test_fig25(self):
        assert_wellformed(netfigs.fig25(**TINY_DCTCP), 1)

    def test_fig26(self):
        assert_wellformed(netfigs.fig26(**TINY_DCTCP), 1)

    def test_fig27(self):
        assert_wellformed(netfigs.fig27(**TINY), 2)

    def test_fig28(self):
        assert_wellformed(netfigs.fig28(**TINY), 2)

    def test_fig29(self):
        assert_wellformed(netfigs.fig29(**TINY_DCTCP), 1)

    def test_fig30(self):
        assert_wellformed(netfigs.fig30(**TINY_DCTCP), 1)


class TestRackFigures:
    def test_fig_rack_incast(self):
        data = rack.fig_rack_incast(
            sender_counts=(1, 2), n_mem_cores=1,
            warmup=3_000.0, measure=8_000.0,
        )
        assert_wellformed(data, 2)
        # PFC keeps the fabric lossless at any fan-in.
        assert data.series["fabric_dropped"] == [0, 0]

    def test_fig_rack_dctcp(self):
        data = rack.fig_rack_dctcp(
            flow_counts=(2,), warmup=5_000.0, measure=15_000.0,
        )
        assert_wellformed(data, 1)


class TestFigureDataErrors:
    def test_unknown_app_rejected(self):
        from repro.experiments.figures import _app_experiment
        from repro.topology.presets import cascade_lake

        experiment = _app_experiment(cascade_lake(), "memcached")
        from repro import Host

        with pytest.raises(ValueError):
            experiment.build_c2m(Host(cascade_lake()), 1)
