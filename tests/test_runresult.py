"""Tests for RunResult's derived metrics and the DDIO CHA paths."""

import pytest

from repro import Host, RequestKind, cascade_lake
from repro.dram.controller import MemoryController
from repro.dram.timing import DDR4_2933
from repro.sim.engine import Simulator
from repro.sim.records import Request, RequestSource
from repro.telemetry.counters import CounterHub
from repro.uncore.cha import CHA
from repro.uncore.llc import LastLevelCache

WARMUP = 8_000.0
MEASURE = 20_000.0


@pytest.fixture(scope="module")
def mixed_run():
    host = Host(cascade_lake())
    host.add_stream_cores(2, store_fraction=0.5)
    host.add_raw_dma(RequestKind.WRITE, name="dma")
    return host.run(WARMUP, MEASURE)


class TestRunResultHelpers:
    def test_latency_missing_key_is_zero(self, mixed_run):
        assert mixed_run.latency("c2m_read", "nonexistent") == 0.0

    def test_class_bandwidth_missing_is_zero(self, mixed_run):
        assert mixed_run.class_bandwidth("ghost") == 0.0

    def test_class_rates_consistent_with_lines(self, mixed_run):
        rate = mixed_run.class_read_rate("c2m")
        lines = mixed_run.lines_read_by_class["c2m"]
        assert rate == pytest.approx(lines / mixed_run.elapsed_ns)

    def test_ops_rate(self, mixed_run):
        assert mixed_run.ops_rate("c2m") > 0
        assert mixed_run.ops_rate("ghost") == 0.0

    def test_switches_sum(self, mixed_run):
        assert mixed_run.switches() == (
            mixed_run.switches_wtr + mixed_run.switches_rtw
        )

    def test_mixed_stream_ratio(self, mixed_run):
        """store_fraction=0.5 -> reads : writes = 2 : 1 at the MC
        (every op reads; half also write back)."""
        reads = mixed_run.lines_read_by_class["c2m"]
        writes = mixed_run.lines_written_by_class["c2m"]
        assert reads / writes == pytest.approx(2.0, rel=0.1)

    def test_row_miss_keys_present(self, mixed_run):
        assert "c2m.read" in mixed_run.row_miss_ratio
        assert "p2m.write" in mixed_run.row_miss_ratio

    def test_bank_deviations_collected(self, mixed_run):
        assert len(mixed_run.bank_deviations) > 0
        assert all(d >= 1.0 for d in mixed_run.bank_deviations)

    def test_device_ios_only_for_io_devices(self, mixed_run):
        # A raw DMA stream has no IO concept.
        assert "dma" not in mixed_run.device_ios


def make_ddio_cha(region_lines=1 << 14):
    sim = Simulator()
    hub = CounterHub()
    mc = MemoryController(sim, hub, DDR4_2933, n_channels=1, n_banks=8)
    llc = LastLevelCache(64 * 1024, ways=4, ddio_ways=2)
    cha = CHA(sim, hub, mc, llc=llc, ddio_enabled=True)
    return sim, hub, mc, llc, cha


class TestChaDdioPaths:
    def test_absorbed_write_frees_credit_without_memory_write(self):
        sim, hub, mc, llc, cha = make_ddio_cha()
        # Pre-install the line so the DMA write hits.
        llc.write_allocate_ddio(5)
        done = []
        req = Request(RequestSource.P2M, RequestKind.WRITE, 5, traffic_class="p2m")
        req.t_alloc = 0.0
        mc.assign(req)
        req.on_complete = lambda r: done.append(sim.now)
        cha.request_admission(req)
        sim.run_until(1_000.0)
        assert done  # completed at the LLC
        assert mc.total("lines_written") == 0

    def test_thrash_write_carries_eviction_to_memory(self):
        sim, hub, mc, llc, cha = make_ddio_cha()
        llc.prewarm_ddio(base_line=1 << 30)
        req = Request(RequestSource.P2M, RequestKind.WRITE, 7, traffic_class="p2m")
        req.t_alloc = 0.0
        mc.assign(req)
        done = []
        req.on_complete = lambda r: done.append(sim.now)
        cha.request_admission(req)
        sim.run_until(2_000.0)
        assert done  # the DMA write completed at the LLC...
        assert mc.total("lines_written") == 1  # ...and one eviction hit DRAM

    def test_c2m_reads_check_llc(self):
        sim, hub, mc, llc, cha = make_ddio_cha()
        req = Request(RequestSource.C2M, RequestKind.READ, 9)
        mc.assign(req)
        req.t_alloc = 0.0
        cha.request_admission(req)
        sim.run_until(1_000.0)
        assert llc.misses == 1
        # Second read hits the LLC: no extra DRAM read.
        req2 = Request(RequestSource.C2M, RequestKind.READ, 9)
        mc.assign(req2)
        req2.t_alloc = sim.now
        done = []
        req2.on_complete = lambda r: done.append(sim.now)
        cha.request_admission(req2)
        sim.run_until(2_000.0)
        assert done
        assert mc.total("lines_read") == 1


class TestDdioSecondOrderEffect:
    def test_ddio_on_not_better_for_thrashing_p2m(self):
        """Fig. 2's setup: for a buffer that thrashes the DDIO ways the
        memory write volume is the same with DDIO on or off."""
        volumes = {}
        for ddio in (True, False):
            host = Host(cascade_lake(llc_mode="full", ddio_enabled=ddio))
            host.add_raw_dma(RequestKind.WRITE, name="dma", region_bytes=1 << 30)
            run = host.run(WARMUP, MEASURE)
            volumes[ddio] = run.lines_written_by_class["p2m"]
        assert volumes[True] == pytest.approx(volumes[False], rel=0.1)

    def test_ddio_on_releases_iio_credits_earlier_under_load(self):
        """With DDIO the P2M-Write domain ends at the LLC instead of at
        WPQ admission, so under write backpressure its latency is lower
        than with DDIO off (unloaded, the two differ by only a few ns)."""
        latencies = {}
        for ddio in (True, False):
            host = Host(cascade_lake(llc_mode="full", ddio_enabled=ddio))
            host.add_stream_cores(5, store_fraction=1.0)
            host.add_raw_dma(RequestKind.WRITE, name="dma", region_bytes=1 << 30)
            run = host.run(30_000.0, 60_000.0)
            latencies[ddio] = run.latency("p2m_write", "p2m")
        assert latencies[True] < latencies[False]
