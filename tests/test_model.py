"""Unit tests for the analytical latency model (§6)."""

import pytest

from repro.dram.timing import DDR4_2933
from repro.model.inputs import FormulaInputs
from repro.model.read_latency import read_domain_latency, read_queueing_delay
from repro.model.validation import ThroughputEstimate, signed_error
from repro.model.write_latency import write_admission_delay, write_domain_latency


def make_inputs(**kw):
    defaults = dict(
        p_fill_wpq=0.0,
        n_waiting=0.0,
        switches_wtr=0,
        switches_rtw=0,
        lines_read=1000,
        lines_written=0,
        o_rpq=1.0,
        act_read=0,
        act_write=0,
        pre_conflict_read=0,
        pre_conflict_write=0,
    )
    defaults.update(kw)
    return FormulaInputs(**defaults)


class TestReadFormula:
    def test_unloaded_has_zero_queueing(self):
        breakdown = read_queueing_delay(make_inputs(), DDR4_2933)
        assert breakdown.total == pytest.approx(0.0)

    def test_read_hol_term(self):
        # (O_RPQ - 1) * t_Trans
        breakdown = read_queueing_delay(make_inputs(o_rpq=11.0), DDR4_2933)
        assert breakdown.read_hol == pytest.approx(10 * DDR4_2933.t_trans)

    def test_write_hol_term(self):
        # O_RPQ * (lines_written / lines_read) * t_Trans
        inputs = make_inputs(o_rpq=4.0, lines_read=100, lines_written=300)
        breakdown = read_queueing_delay(inputs, DDR4_2933)
        assert breakdown.write_hol == pytest.approx(4 * 3 * DDR4_2933.t_trans)

    def test_switching_term(self):
        inputs = make_inputs(o_rpq=2.0, lines_read=100, switches_wtr=10)
        breakdown = read_queueing_delay(inputs, DDR4_2933)
        assert breakdown.switching == pytest.approx(2 * 0.1 * DDR4_2933.t_wtr)

    def test_top_of_queue_term(self):
        inputs = make_inputs(lines_read=100, act_read=50, pre_conflict_read=25)
        breakdown = read_queueing_delay(inputs, DDR4_2933)
        expected = (50 * DDR4_2933.t_act + 25 * DDR4_2933.t_pre) / 100
        assert breakdown.top_of_queue == pytest.approx(expected)

    def test_total_is_sum_of_components(self):
        inputs = make_inputs(
            o_rpq=5.0,
            lines_read=100,
            lines_written=50,
            switches_wtr=5,
            act_read=20,
            pre_conflict_read=10,
        )
        breakdown = read_queueing_delay(inputs, DDR4_2933)
        assert breakdown.total == pytest.approx(
            breakdown.switching
            + breakdown.write_hol
            + breakdown.read_hol
            + breakdown.top_of_queue
        )

    def test_latency_adds_constant(self):
        inputs = make_inputs(o_rpq=3.0)
        queueing = read_queueing_delay(inputs, DDR4_2933).total
        assert read_domain_latency(70.0, inputs, DDR4_2933) == pytest.approx(
            70.0 + queueing
        )

    def test_no_reads_means_no_queueing(self):
        breakdown = read_queueing_delay(make_inputs(lines_read=0), DDR4_2933)
        assert breakdown.total == 0.0

    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError):
            read_domain_latency(-1.0, make_inputs(), DDR4_2933)


class TestWriteFormula:
    def test_no_fill_no_delay(self):
        inputs = make_inputs(lines_written=100, n_waiting=50.0, p_fill_wpq=0.0)
        assert write_admission_delay(inputs, DDR4_2933).total == 0.0

    def test_delay_scales_with_fill_probability(self):
        lo = make_inputs(
            lines_written=100, lines_read=100, n_waiting=10.0, p_fill_wpq=0.25
        )
        hi = make_inputs(
            lines_written=100, lines_read=100, n_waiting=10.0, p_fill_wpq=0.5
        )
        assert write_admission_delay(hi, DDR4_2933).total == pytest.approx(
            2 * write_admission_delay(lo, DDR4_2933).total
        )

    def test_read_hol_dual_term(self):
        # N_waiting * (lines_read / lines_written) * t_Trans, scaled by P.
        inputs = make_inputs(
            lines_written=100, lines_read=200, n_waiting=8.0, p_fill_wpq=1.0
        )
        breakdown = write_admission_delay(inputs, DDR4_2933)
        assert breakdown.read_hol == pytest.approx(8 * 2 * DDR4_2933.t_trans)

    def test_write_hol_dual_term(self):
        inputs = make_inputs(lines_written=100, n_waiting=8.0, p_fill_wpq=1.0)
        breakdown = write_admission_delay(inputs, DDR4_2933)
        assert breakdown.write_hol == pytest.approx(7 * DDR4_2933.t_trans)

    def test_switching_uses_rtw(self):
        inputs = make_inputs(
            lines_written=100, n_waiting=4.0, p_fill_wpq=1.0, switches_rtw=10
        )
        breakdown = write_admission_delay(inputs, DDR4_2933)
        assert breakdown.switching == pytest.approx(4 * 0.1 * DDR4_2933.t_rtw)

    def test_latency_adds_constant(self):
        inputs = make_inputs(
            lines_written=100, n_waiting=10.0, p_fill_wpq=0.5, lines_read=100
        )
        delay = write_admission_delay(inputs, DDR4_2933).total
        assert write_domain_latency(300.0, inputs, DDR4_2933) == pytest.approx(
            300.0 + delay
        )


class TestInputsValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            make_inputs(p_fill_wpq=1.5)

    def test_negative_occupancy(self):
        with pytest.raises(ValueError):
            make_inputs(o_rpq=-1.0)


class TestEstimates:
    def test_signed_error(self):
        assert signed_error(11.0, 10.0) == pytest.approx(0.1)
        assert signed_error(9.0, 10.0) == pytest.approx(-0.1)
        with pytest.raises(ValueError):
            signed_error(1.0, 0.0)

    def test_throughput_estimate_error(self):
        estimate = ThroughputEstimate(estimated=12.0, measured=10.0)
        assert estimate.error == pytest.approx(0.2)
