PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke check

test:
	$(PYTHON) -m pytest -x -q tests/

bench:
	$(PYTHON) -m pytest -q benchmarks/ --benchmark-only

bench-smoke:
	REPRO_BENCH_SCALE=smoke REPRO_JOBS=2 $(PYTHON) -m pytest -q benchmarks/ --benchmark-only

# PR smoke gate: tier-1 tests plus smoke-scale benches, exercising the
# parallel sweep path (REPRO_JOBS=2) against a cold cache.
check:
	$(PYTHON) -m pytest -x -q tests/
	REPRO_BENCH_SCALE=smoke REPRO_JOBS=2 REPRO_CACHE_DIR=$$(mktemp -d) \
		$(PYTHON) -m pytest -q benchmarks/ --benchmark-only
