PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-fast bench-kernel perf-check check chaos ckpt py310-check lint fig03-check cluster-check profile

test:
	$(PYTHON) -m pytest -x -q tests/

bench:
	$(PYTHON) -m pytest -q benchmarks/ --benchmark-only

bench-smoke:
	REPRO_BENCH_SCALE=smoke REPRO_JOBS=2 $(PYTHON) -m pytest -q benchmarks/ --benchmark-only

# Engine microbenchmarks only (seconds, not minutes); raw results land
# in the gitignored benchmarks/out/ so ad-hoc runs never pollute the
# tree. Refresh benchmarks/BENCH_engine.json from the JSON this writes
# (workflow: benchmarks/README.md).
bench-fast:
	mkdir -p benchmarks/out
	$(PYTHON) -m pytest -q benchmarks/bench_engine.py --benchmark-only \
		--benchmark-json=benchmarks/out/bench_engine.json \
		| tee benchmarks/out/bench_engine.txt

# Events/sec gate against the committed baseline (+/-25%;
# REPRO_PERF_CHECK=off skips, REPRO_PERF_TOL widens).
perf-check:
	$(PYTHON) tools/perf_check.py

# Kernel perf tier: the DRAM-traffic window and the uncore-churn
# microbench (the SoA channel and uncore kernels' target workloads,
# also covered by the perf gate) plus a cold-serial fig03 wall-clock
# timing — the end-to-end number the kernels exist to improve.
# Skipped, like the perf gate, with REPRO_PERF_CHECK=off.
bench-kernel:
	@case "$${REPRO_PERF_CHECK:-on}" in \
	off|0|no|false) echo "bench-kernel: skipped (REPRO_PERF_CHECK=off)";; \
	*) mkdir -p benchmarks/out && \
		$(PYTHON) -m pytest -q benchmarks/bench_engine.py --benchmark-only \
			-k "dram or uncore" \
			--benchmark-json=benchmarks/out/bench_kernel.json && \
		REPRO_JOBS=1 REPRO_CACHE_DIR=$$(mktemp -d) \
			$(PYTHON) tools/fig03_check.py --time;; \
	esac

# Profile tier (diagnostic, not a gate): one short fig03 point under
# cProfile, top-20 cumulative. Compare implementations with e.g.
# `REPRO_UNCORE=off make profile` / `REPRO_KERNEL=off make profile`.
profile:
	$(PYTHON) tools/profile_check.py

# Python-version-floor gate (requires-python = ">=3.10"): 3.11+-API
# lint, plus byte-compile + validated smoke under a real 3.10 when one
# is installed.
py310-check:
	$(PYTHON) tools/py310_check.py

# Lint tier: ruff check at the version pinned in pyproject.toml
# ([tool.ruff] required-version); falls back to a stdlib subset lint
# (syntax, unused imports, duplicate defs) where ruff isn't installed.
lint:
	$(PYTHON) tools/lint_check.py

# Bit-exactness tier: the committed fig03 fingerprint
# (tests/data/fig03_fingerprint.json) must match the live sweep
# hex-float for hex-float. Refresh intentionally with --write.
fig03-check:
	$(PYTHON) tools/fig03_check.py

# Cluster bit-exactness tier: the committed 2-host RDMA smoke
# fingerprint (tests/data/cluster_fingerprint.json) locks the
# multi-host coupling stack — namespaced hosts on one engine, fabric
# queues, PFC, per-flow goodput — across commits (tools/cluster_check.py).
cluster-check:
	$(PYTHON) tools/cluster_check.py

# Chaos tier: the fast-scale fig03 sweep under deterministically
# injected worker kills, transient exceptions and cache corruption
# must stay float-identical to a fault-free run, with every recovered
# TaskFailure reported (tools/chaos_check.py). REPRO_BENCH_SCALE=smoke
# shrinks it for quick local iteration.
chaos:
	$(PYTHON) tools/chaos_check.py

# Checkpoint tier: one fig03 point is SIGTERM-killed at two successive
# checkpoints and resumed across real processes; the twice-resumed
# RunResult must be bit-identical to the committed fingerprint, with
# the DRAM kernel on and off (tools/ckpt_check.py).
ckpt:
	$(PYTHON) tools/ckpt_check.py

# PR smoke gate: lint + version-floor gates, tier-1 tests plus
# smoke-scale benches, exercising the parallel sweep path
# (REPRO_JOBS=2) against a cold cache — once plain and once with
# runtime invariant checking (REPRO_VALIDATE=1), which must pass with
# zero violations — the fig03 and cluster bit-exactness gates, the
# engine perf gate, the kernel perf tier, the chaos tier, and the
# checkpoint kill/resume tier.
check: py310-check lint
	$(PYTHON) -m pytest -x -q tests/
	$(PYTHON) tools/fig03_check.py
	$(PYTHON) tools/cluster_check.py
	$(PYTHON) tools/perf_check.py
	$(MAKE) bench-kernel
	REPRO_BENCH_SCALE=smoke REPRO_JOBS=2 REPRO_CACHE_DIR=$$(mktemp -d) \
		$(PYTHON) -m pytest -q benchmarks/ --benchmark-only
	REPRO_VALIDATE=1 REPRO_BENCH_SCALE=smoke REPRO_JOBS=2 \
		REPRO_CACHE_DIR=$$(mktemp -d) \
		$(PYTHON) -m pytest -q benchmarks/ --benchmark-only
	$(PYTHON) tools/chaos_check.py
	$(PYTHON) tools/ckpt_check.py
