"""DCTCP receiver model (§2.3, Appendices C.2 / D.2 / E.2).

With an in-kernel transport the networked application is *both* a P2M
and a C2M app: the NIC DMA-writes packets into kernel socket buffers
(P2M writes), and receive cores copy the payload into application
buffers (C2M reads + writes). Two feedback loops shape throughput:

* **Blue regime** — C2M latency inflation slows the data copy; socket
  buffers back up; TCP flow control (the advertised window) reduces
  the sender's rate. No loss.
* **Red regime** — P2M-Write degradation stalls the NIC's DMA; the
  (lossy) NIC buffer overflows; packet drops trigger the congestion
  response at the sender, degrading throughput further.

The model is flow-level: a rate-based sender adjusted every RTT —
multiplicative decrease on loss (DCTCP's ECN-fraction response
collapses to this at the fluid level), a receive-window clamp to the
measured copy rate when socket buffers back up, and additive increase
otherwise.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cpu.workloads import OP_LOAD, OP_NT_STORE, MemoryWorkload
from repro.dram.region import Region
from repro.pcie.nic import Nic
from repro.sim.records import CACHELINE_BYTES


class SocketBuffers:
    """Kernel socket-buffer accounting shared by NIC and copy cores."""

    def __init__(self, capacity_bytes: int):
        self.capacity_lines = max(1, capacity_bytes // CACHELINE_BYTES)
        self.delivered = 0  # lines DMA'd into memory by the NIC
        self.claimed = 0  # lines claimed by copy cores
        self.copied = 0  # lines whose copy completed

    @property
    def backlog(self) -> int:
        """Delivered-but-uncopied lines (socket-buffer occupancy)."""
        return self.delivered - self.copied

    def claimable(self) -> bool:
        """Whether delivered data awaits a copy core."""
        return self.claimed < self.delivered

    def claim(self) -> int:
        """Take the next delivered line index for copying."""
        index = self.claimed
        self.claimed += 1
        return index

    def reset_stats(self) -> None:
        # Counters are monotonic; rates are computed from deltas.
        pass


class CopyWorkload(MemoryWorkload):
    """Kernel-to-user data copy on one receive core.

    Each copied cacheline is one load from the socket buffer (the
    lines the NIC just wrote) plus one fast-string store to the
    application buffer (``rep movsb`` avoids the RFO read for large
    copies) — the C2M traffic the paper attributes to the copy.
    ``per_packet_compute_ns`` models protocol processing per MTU-sized
    packet; the paper notes the network app spends ~50% of its time
    outside the copy when uncontended [10].
    """

    def __init__(
        self,
        sock: SocketBuffers,
        src_region: Region,
        dst_region: Region,
        mlp: int = 10,
        mtu_bytes: int = 9000,
        per_packet_compute_ns: float = 450.0,
        traffic_class: str = "copy",
    ):
        super().__init__(traffic_class)
        self.sock = sock
        self.src_region = src_region
        self.dst_region = dst_region
        self.mlp = mlp
        self.lines_per_packet = max(1, mtu_bytes // CACHELINE_BYTES)
        self.per_packet_compute_ns = per_packet_compute_ns
        self._outstanding = 0
        self._loads_inflight: List[int] = []
        self._ready_stores: List[int] = []
        self._compute_until = 0.0
        self._lines_into_packet = 0
        self.lines_copied = 0

    def try_next(self, now: float) -> Optional[Tuple[int, bool]]:
        if now < self._compute_until or self._outstanding >= self.mlp:
            return None
        if self._ready_stores:
            # The destination store depends on its source load having
            # returned data; stores are issued only after that.
            index = self._ready_stores.pop(0)
            self._outstanding += 1
            return self.dst_region.line(index % self.dst_region.n_lines), OP_NT_STORE
        if self.sock.claimable():
            index = self.sock.claim()
            self._outstanding += 1
            self._loads_inflight.append(index)
            return self.src_region.line(index % self.src_region.n_lines), OP_LOAD
        return None  # no data delivered yet; woken by the next kick

    def wake_time(self, now: float) -> Optional[float]:
        if now < self._compute_until:
            return self._compute_until
        return None

    def on_complete(self, now: float, was_store: bool = False) -> None:
        super().on_complete(now, was_store)
        self._outstanding -= 1
        if not was_store:
            # A load returned; its destination store becomes issueable.
            # Loads complete near-enough in order for FIFO pairing.
            if self._loads_inflight:
                self._ready_stores.append(self._loads_inflight.pop(0))
            return
        # A line's copy finishes when its store (the destination write)
        # completes.
        if was_store:
            self.sock.copied += 1
            self.lines_copied += 1
            self._lines_into_packet += 1
            if self._lines_into_packet >= self.lines_per_packet:
                self._lines_into_packet = 0
                self._compute_until = (
                    max(self._compute_until, now) + self.per_packet_compute_ns
                )

    def reset_stats(self, now: float) -> None:
        super().reset_stats(now)
        self.lines_copied = 0


class DctcpReceiver:
    """A DCTCP receive pipeline on a host: NIC + copy cores + sender loop.

    Args:
        host: the host to attach to (cores must still be available).
        n_copy_cores: receive cores running the data copy (the paper
            uses 4, enough to saturate 100 Gb/s uncontended).
        link_gbps: sender's line rate.
        rtt_ns: control-loop interval (one RTT).
        nic_buffer_bytes: lossy NIC receive buffer.
        sock_capacity_bytes: kernel socket-buffer budget; backlog
            beyond ~80% engages the receive-window clamp.
    """

    def __init__(
        self,
        host,
        n_copy_cores: int = 4,
        link_gbps: float = 100.0,
        rtt_ns: float = 5_000.0,
        nic_buffer_bytes: int = 1 << 20,
        sock_capacity_bytes: int = 512 << 10,
        mtu_bytes: int = 9000,
        nic: Optional[Nic] = None,
        sender=None,
    ):
        self.host = host
        self.max_rate = link_gbps / 8.0
        self.rate = self.max_rate
        self.rtt_ns = rtt_ns
        self.sock = SocketBuffers(sock_capacity_bytes)
        #: fabric transmit side (a ``topology.fabric.FabricSender``)
        #: when the flow crosses a modelled switch fabric; the control
        #: loop then actuates the remote sender's pacing rate instead
        #: of the local NIC's synthetic ingress process, and reacts to
        #: real CE marks from the switch queues.
        self.sender = sender
        if nic is None:
            nic = host.add_nic(
                ingress_rate=self.rate,
                buffer_bytes=nic_buffer_bytes,
                pfc_enabled=False,
                name="nic",
            )
        self.nic: Nic = nic
        self.copy_workloads: List[CopyWorkload] = []
        dst_lines = (64 << 20) // CACHELINE_BYTES
        for i in range(n_copy_cores):
            workload = CopyWorkload(
                self.sock,
                src_region=self.nic.rx.region,
                dst_region=host.alloc_region(dst_lines),
                mtu_bytes=mtu_bytes,
                mlp=16,
            )
            # The copy is sequential, so hardware prefetching widens the
            # effective in-flight window well beyond the demand LFB.
            host.add_core(workload, name="tcp-copy", lfb_size=16)
            self.copy_workloads.append(workload)
        # Track NIC deliveries into the socket accounting.
        original = self.nic.rx.on_write_posted

        def on_posted(line_addr: int, now: float) -> None:
            original(line_addr, now)
            self.sock.delivered += 1
            self._kick_copy_cores()

        self.nic.rx.on_write_posted = on_posted  # type: ignore[method-assign]
        self._copy_cores = host.cores[-n_copy_cores:]
        self._last_dropped = 0
        self._last_copied = 0
        self._last_marked = 0
        self._last_arrived = 0
        self.rate_history: List[float] = []
        host.sim.schedule(rtt_ns, self._tick)

    def _kick_copy_cores(self) -> None:
        for core in self._copy_cores:
            core.kick()

    # ------------------------------------------------------------------
    # Sender control loop (one step per RTT)
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        # Deltas are clamped at zero: measurement-window resets zero the
        # underlying counters mid-flight.
        drops = max(0, self.nic.rx.lines_dropped - self._last_dropped)
        self._last_dropped = self.nic.rx.lines_dropped
        marks = max(0, self.nic.rx.lines_marked - self._last_marked)
        self._last_marked = self.nic.rx.lines_marked
        arrived = max(0, self.nic.rx.lines_arrived - self._last_arrived)
        self._last_arrived = self.nic.rx.lines_arrived
        copied = sum(w.lines_copied for w in self.copy_workloads)
        copy_rate = max(0, copied - self._last_copied) * CACHELINE_BYTES / self.rtt_ns
        self._last_copied = copied
        if drops > 0:
            # Congestion response (fluid DCTCP: cut by the marked
            # fraction; a fixed factor captures the steady state).
            self.rate *= 0.7
        elif marks > 0 and arrived > 0:
            # ECN response: real CE marks from modelled switch queues,
            # cut by half the marked fraction (fluid DCTCP with the
            # steady-state alpha equal to the observed mark share).
            frac = min(1.0, marks / arrived)
            self.rate *= 1.0 - frac / 2.0
        else:
            # Additive increase toward line rate.
            self.rate = min(self.max_rate, self.rate + 0.05 * self.max_rate)
        # Receive-window limit: the sender may only keep the free
        # socket-buffer space in flight per RTT. When the copy lags,
        # the backlog grows and this clamp tracks the copy rate down
        # (TCP flow control, no loss) — the blue-regime feedback loop.
        free_lines = max(0, self.sock.capacity_lines - self.sock.backlog)
        rwnd_rate = free_lines * CACHELINE_BYTES / self.rtt_ns
        self.rate = max(min(self.rate, rwnd_rate), 0.02 * self.max_rate)
        self.rate_history.append(self.rate)
        if self.sender is not None:
            self.sender.set_rate(self.rate)
        else:
            self.nic.set_ingress_rate(self.rate)
        self.host.sim.schedule(self.rtt_ns, self._tick)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def goodput(self, elapsed_ns: float) -> float:
        """Application-level receive rate (bytes/ns) over a window."""
        copied = sum(w.lines_copied for w in self.copy_workloads)
        return copied * CACHELINE_BYTES / elapsed_ns

    def loss_rate(self) -> float:
        """Packet-drop fraction at the lossy NIC buffer."""
        return self.nic.loss_rate()

    def mark_fraction(self) -> float:
        """CE-marked share of lines that arrived at the NIC."""
        arrived = self.nic.rx.lines_arrived
        if arrived == 0:
            return 0.0
        return self.nic.rx.lines_marked / arrived


def add_dctcp_flow(
    cluster,
    src: int,
    dst: int,
    n_copy_cores: int = 4,
    link_gbps: float = 100.0,
    rtt_ns: float = 5_000.0,
    nic_buffer_bytes: int = 1 << 20,
    sock_capacity_bytes: int = 512 << 10,
    mtu_bytes: int = 9000,
) -> DctcpReceiver:
    """Two-host DCTCP: the receive pipeline fed through a real fabric.

    The destination host runs the full receive pipeline (NIC DMA +
    copy cores); the paced sender on the source side crosses the
    cluster's switch fabric, so CE marks come from modelled switch
    queues (build the cluster with ``ecn_threshold_lines``) rather
    than being inferred from local drops, and the control loop
    actuates the remote sender's pacing — the true DCTCP feedback path
    the single-host model approximated.

    Each flow gets its own receive NIC (``dctcp<src>``) — one TCP
    connection, one receive queue — so several flows into one host
    contend in the shared last-hop switch queue and for the host's IIO
    credits, not inside one NIC buffer.
    """
    flow = cluster.add_flow(
        src,
        dst,
        link_gbps,
        buffer_bytes=nic_buffer_bytes,
        pfc_enabled=False,
        nic_name=f"dctcp{src}",
    )
    return DctcpReceiver(
        cluster.hosts[dst],
        n_copy_cores=n_copy_cores,
        link_gbps=link_gbps,
        rtt_ns=rtt_ns,
        sock_capacity_bytes=sock_capacity_bytes,
        mtu_bytes=mtu_bytes,
        nic=flow.nic,
        sender=flow.sender,
    )
