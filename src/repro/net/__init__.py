"""Networking case studies (§2.3, Appendices C–E).

* :mod:`repro.net.rdma` — RoCE/PFC traffic (``ib_write_bw`` /
  ``ib_read_bw`` server side): hardware-offloaded transport whose P2M
  load is flow-controlled losslessly by PFC.
* :mod:`repro.net.dctcp` — DCTCP receiver: kernel transport where the
  network app *also* generates C2M traffic (the data copy between
  socket and application buffers), with window/loss feedback to the
  sender.
"""

from repro.net.rdma import add_rdma_read_traffic, add_rdma_write_traffic
from repro.net.dctcp import DctcpReceiver

__all__ = [
    "add_rdma_write_traffic",
    "add_rdma_read_traffic",
    "DctcpReceiver",
]
