"""RoCE/PFC traffic generators (Appendix C.1).

The paper's RDMA setup: two Cascade Lake servers, ConnectX-5 NICs on a
100 Gb/s link, RoCE v2 with PFC, traffic from the perftest suite:

* ``ib_write_bw`` — the remote writes into server memory: server-side
  **P2M writes** at the NIC's ingress rate (~98 Gb/s achieved);
* ``ib_read_bw`` — the remote reads server memory: server-side
  **P2M reads** at the egress rate.

PFC makes the source lossless: when host backpressure (IIO credits)
fills the NIC receive buffer, the NIC pauses the link, and the paper's
"PFC pause fraction" is the paused share of time (Fig. 22 discussion,
Fig. 23).
"""

from __future__ import annotations

from repro.pcie.nic import Nic


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Convert a link rate in Gb/s to bytes/ns (== GB/s)."""
    if gbps < 0:
        raise ValueError("rate must be non-negative")
    return gbps / 8.0


def add_rdma_write_traffic(
    host,
    rate_gbps: float = 98.0,
    buffer_bytes: int = 2 << 20,
    name: str = "nic",
) -> Nic:
    """Attach ``ib_write_bw``-style inbound RDMA traffic (P2M writes).

    The NIC generates a slightly lower P2M load than the paper's SSDs
    (~98 Gb/s vs ~112 Gb/s), which is why the RDMA quadrants show
    slightly milder degradation (Appendix C.1).
    """
    return host.add_nic(
        ingress_rate=gbps_to_bytes_per_ns(rate_gbps),
        buffer_bytes=buffer_bytes,
        pfc_enabled=True,
        name=name,
    )


def add_rdma_read_traffic(
    host,
    rate_gbps: float = 98.0,
    name: str = "nic",
) -> Nic:
    """Attach ``ib_read_bw``-style outbound RDMA traffic (P2M reads)."""
    return host.add_nic(
        egress_read_rate=gbps_to_bytes_per_ns(rate_gbps),
        pfc_enabled=True,
        name=name,
    )
