"""RoCE/PFC traffic generators (Appendix C.1).

The paper's RDMA setup: two Cascade Lake servers, ConnectX-5 NICs on a
100 Gb/s link, RoCE v2 with PFC, traffic from the perftest suite:

* ``ib_write_bw`` — the remote writes into server memory: server-side
  **P2M writes** at the NIC's ingress rate (~98 Gb/s achieved);
* ``ib_read_bw`` — the remote reads server memory: server-side
  **P2M reads** at the egress rate.

PFC makes the source lossless: when host backpressure (IIO credits)
fills the NIC receive buffer, the NIC pauses the link, and the paper's
"PFC pause fraction" is the paused share of time (Fig. 22 discussion,
Fig. 23).
"""

from __future__ import annotations

from repro.pcie.nic import Nic


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Convert a link rate in Gb/s to bytes/ns (== GB/s)."""
    if gbps < 0:
        raise ValueError("rate must be non-negative")
    return gbps / 8.0


def add_rdma_write_traffic(
    host,
    rate_gbps: float = 98.0,
    buffer_bytes: int = 2 << 20,
    name: str = "nic",
) -> Nic:
    """Attach ``ib_write_bw``-style inbound RDMA traffic (P2M writes).

    The NIC generates a slightly lower P2M load than the paper's SSDs
    (~98 Gb/s vs ~112 Gb/s), which is why the RDMA quadrants show
    slightly milder degradation (Appendix C.1).
    """
    return host.add_nic(
        ingress_rate=gbps_to_bytes_per_ns(rate_gbps),
        buffer_bytes=buffer_bytes,
        pfc_enabled=True,
        name=name,
    )


def add_rdma_read_traffic(
    host,
    rate_gbps: float = 98.0,
    name: str = "nic",
) -> Nic:
    """Attach ``ib_read_bw``-style outbound RDMA traffic (P2M reads)."""
    return host.add_nic(
        egress_read_rate=gbps_to_bytes_per_ns(rate_gbps),
        pfc_enabled=True,
        name=name,
    )


def add_rdma_write_flow(
    cluster,
    src: int,
    dst: int,
    rate_gbps: float = 98.0,
    buffer_bytes: int = 2 << 20,
    nic_name: str = "nic",
):
    """Two-host ``ib_write_bw``: both host networks exist.

    On the source host a transmit NIC DMA-reads the payload out of
    memory (P2M reads at the wire rate — the sender-side host network
    the single-host model had to omit); the paced wire stream then
    crosses the cluster's fabric and lands in the destination host's
    receive NIC as P2M writes. PFC is end-to-end and hop-by-hop: dst
    host backpressure fills the receive NIC buffer, which pauses the
    last-hop switch port, whose queue then pauses its feeders, all the
    way back to the sender's pacing.

    Returns the :class:`~repro.topology.cluster.ClusterFlow`.
    """
    cluster.hosts[src].add_nic(
        egress_read_rate=gbps_to_bytes_per_ns(rate_gbps),
        pfc_enabled=True,
        name=f"tx_h{dst}",
    )
    return cluster.add_flow(
        src,
        dst,
        rate_gbps,
        buffer_bytes=buffer_bytes,
        pfc_enabled=True,
        nic_name=nic_name,
    )
