"""Physical-address to (channel, bank, row, column) mapping.

Layout (line-address bit ranges, low to high)::

    | channel | column | bank | row |

i.e. consecutive cachelines interleave across channels first, then fill
the columns of one row of one bank, then move to the next bank
(permutation-interleaved), then the next row.

The bank index is XOR-hashed with the low row bits (permutation-based
page interleaving, ref. [70] in the paper; real Intel mappings are
XOR-based too, ref. [56]). Two consequences the paper measures emerge
directly from this layout:

* a single sequential stream enjoys long row residency (row hits) but
  concentrates on one bank per channel at a time — short-window bank
  load is imbalanced (Fig. 7d);
* two interleaved sequential streams at different offsets periodically
  collide on a bank with different rows, inflating the row-miss ratio
  (Fig. 7c).
"""

from __future__ import annotations

from dataclasses import dataclass


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class MappedAddress:
    """Decoded location of one cacheline."""

    channel: int
    bank: int
    row: int
    column: int


class AddressMapper:
    """Decodes cacheline addresses into channel/bank/row/column.

    Args:
        n_channels: memory channels on the socket (power of two).
        n_banks: banks per channel (power of two).
        lines_per_row: cachelines per DRAM row per bank (8 KB row with
            64 B lines = 128).
        xor_hash: apply the permutation-based bank hash. Disabling it
            is used by the bank-hash ablation bench.
    """

    def __init__(
        self,
        n_channels: int,
        n_banks: int,
        lines_per_row: int = 128,
        xor_hash: bool = True,
    ):
        if not _is_power_of_two(n_channels):
            raise ValueError("n_channels must be a power of two")
        if not _is_power_of_two(n_banks):
            raise ValueError("n_banks must be a power of two")
        if not _is_power_of_two(lines_per_row):
            raise ValueError("lines_per_row must be a power of two")
        self.n_channels = n_channels
        self.n_banks = n_banks
        self.lines_per_row = lines_per_row
        self.xor_hash = xor_hash
        self._channel_mask = n_channels - 1
        self._channel_shift = n_channels.bit_length() - 1
        self._column_mask = lines_per_row - 1
        self._column_shift = lines_per_row.bit_length() - 1
        self._bank_mask = n_banks - 1
        self._bank_shift = n_banks.bit_length() - 1
        # Memo of recent decodes. Requests revisit lines on short
        # timescales (read then writeback, RPQ/WPQ re-examination), so
        # a bounded memo captures most repeats; it is cleared when full
        # rather than evicting so GB-scale streams cannot grow it
        # without bound.
        self._memo: dict = {}
        self._memo_limit = 1 << 16

    def map(self, line_addr: int) -> MappedAddress:
        """Decode a cacheline address (memoized)."""
        mapped = self._memo.get(line_addr)
        if mapped is not None:
            return mapped
        mapped = self._map_uncached(line_addr)
        if len(self._memo) >= self._memo_limit:
            self._memo.clear()
        self._memo[line_addr] = mapped
        return mapped

    def _map_uncached(self, line_addr: int) -> MappedAddress:
        if line_addr < 0:
            raise ValueError("line_addr must be non-negative")
        channel = line_addr & self._channel_mask
        rest = line_addr >> self._channel_shift
        column = rest & self._column_mask
        rest >>= self._column_shift
        bank = rest & self._bank_mask
        row = rest >> self._bank_shift
        if self.xor_hash:
            bank ^= row & self._bank_mask
        return MappedAddress(channel=channel, bank=bank, row=row, column=column)

    def lines_per_bank_visit(self) -> int:
        """Consecutive per-channel lines that land in one bank's row."""
        return self.lines_per_row
