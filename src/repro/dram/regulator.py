"""Per-bank DRAM bandwidth regulation (token buckets).

"Per-Bank Memory Bandwidth Regulation" (PAPERS.md) observes that the
blue-regime pathologies the paper root-causes — bank-load imbalance
and row-miss inflation under colocation — are per-*bank* phenomena
that channel-level schedulers cannot see. :class:`BankRegulator`
implements the per-bank half: each bank owns a token bucket refilled
at a fraction of the channel line rate, and the scheduler skips banks
whose bucket cannot cover the head request. A hot bank that would
otherwise monopolize consecutive scheduling slots is throttled, so
service interleaves across banks and the per-sample max-bank counts
(:mod:`repro.telemetry.bankstats`) shrink.

The other half — bank *partitioning* by traffic class — lives in
``MemoryController.assign``: confining each class to a bank subset
removes inter-class row conflicts entirely.

Float-identity discipline: the reference scheduler and the SoA kernel
(:mod:`repro.dram.kernel`) call :meth:`ready` / :meth:`next_ready`
different numbers of times in different orders. Those methods are
therefore **pure** — bucket state only mutates in :meth:`consume`,
which both paths call at transmit time in the identical sequence, so
enabling regulation cannot make the two paths diverge.

Off by default; ``REPRO_BANK_REG`` (see :func:`bank_reg_forced`)
force-enables or -disables it over the host config.
"""

from __future__ import annotations

import os
from typing import List, Optional

#: readiness slack (lines). At the exact refill instant returned by
#: :meth:`BankRegulator.next_ready`, the re-derived accrual can land a
#: few ulps short of the requirement; without slack the pump re-arms
#: with ~ulp progress forever. Far below one line, so it never admits
#: a transmit a whole token early.
_EPS_LINES = 1e-9


def bank_reg_forced() -> Optional[bool]:
    """The ``REPRO_BANK_REG`` override: True/False to force per-bank
    regulation on/off, ``None`` (unset or ``config``) to defer to the
    host config. Invalid values raise."""
    raw = os.environ.get("REPRO_BANK_REG", "").strip().lower()
    if raw in ("", "config"):
        return None
    if raw in ("1", "on", "yes", "true"):
        return True
    if raw in ("0", "off", "no", "false"):
        return False
    raise ValueError(f"REPRO_BANK_REG must be 0/1 (or unset), got {raw!r}")


class BankRegulator:
    """One token bucket per bank of one channel.

    Args:
        n_banks: banks on the channel.
        rate_lines_per_ns: bucket refill rate. A bank may not exceed
            this long-run line rate; sensible values are a fraction of
            the channel line rate ``1 / t_trans`` (the host derives it
            from ``HostConfig.bank_reg_share``).
        burst_lines: bucket depth — the largest debt-free burst one
            bank may transmit back-to-back. Requests larger than the
            burst are admitted whole once the bucket is full (the
            bucket goes into debt) rather than blocked forever.

    Buckets refill lazily: each bank stores ``(tokens, stamp)`` and
    accrues ``(now - stamp) * rate`` on access. :meth:`ready` and
    :meth:`next_ready` are pure (see module docstring); only
    :meth:`consume` writes.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(
        self, n_banks: int, rate_lines_per_ns: float, burst_lines: int
    ):
        if n_banks <= 0:
            raise ValueError("n_banks must be positive")
        if rate_lines_per_ns <= 0:
            raise ValueError("rate must be positive")
        if burst_lines <= 0:
            raise ValueError("burst must be positive")
        self.rate = rate_lines_per_ns
        self.burst = float(burst_lines)
        self.tokens: List[float] = [self.burst] * n_banks
        self.stamp: List[float] = [0.0] * n_banks

    def available(self, bank_id: int, now: float) -> float:
        """Tokens the bank holds at ``now``, capped at the burst.

        Pure — accrual is computed, not stored.
        """
        accrued = self.tokens[bank_id] + (now - self.stamp[bank_id]) * self.rate
        if accrued > self.burst:
            return self.burst
        return accrued

    def ready(self, bank_id: int, now: float, lines: int) -> bool:
        """Whether the bank may transmit ``lines`` right now (pure).

        A request larger than the burst only needs a full bucket —
        :meth:`consume` then drives the bucket into debt, which the
        refill pays off before the bank is ready again.
        """
        need = float(lines) if lines < self.burst else self.burst
        return self.available(bank_id, now) >= need - _EPS_LINES

    def next_ready(self, bank_id: int, now: float, lines: int) -> float:
        """Earliest time the bank could transmit ``lines`` (pure).

        Returns ``now`` when already ready. Used by the scheduler to
        re-arm the pump when every candidate bank is token-blocked.
        """
        need = float(lines) if lines < self.burst else self.burst
        accrued = self.tokens[bank_id] + (now - self.stamp[bank_id]) * self.rate
        if accrued >= need - _EPS_LINES:
            return now
        return now + (need - accrued) / self.rate

    def consume(self, bank_id: int, now: float, lines: int) -> None:
        """Spend ``lines`` tokens at transmit time (the only mutation)."""
        accrued = self.tokens[bank_id] + (now - self.stamp[bank_id]) * self.rate
        if accrued > self.burst:
            accrued = self.burst
        self.tokens[bank_id] = accrued - float(lines)
        self.stamp[bank_id] = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BankRegulator(banks={len(self.tokens)}, rate={self.rate}, "
            f"burst={self.burst})"
        )
