"""Struct-of-arrays DRAM channel kernel (``REPRO_KERNEL``).

The per-request :class:`~repro.dram.bank.Bank` /
:class:`~repro.dram.controller.Channel` hot path spends most of its
time chasing Python objects: every pump scans all banks through
attribute walks, every stats update hashes a ``(class, kind, outcome)``
tuple, and every scheduling decision re-derives bank readiness from
object state. :class:`ChannelKernel` replaces that path with flat
per-channel arrays:

* **bank state** — ``open_row`` / ``busy_until`` / ``prep_pending``
  as parallel lists indexed by bank id;
* **queue heads** — per-kind ``head_row`` / ``head_seq`` caches plus
  *open-row match* dicts mapping bank id to head admission seq for
  exactly the banks whose head row is open. Oldest-ready-first picking
  becomes a min over that (small) dict instead of a scan of every
  bank object;
* **row-outcome / ACT / PRE / per-class counters** — flat integer
  lists indexed by interned traffic-class ids, materialized back into
  the dict-shaped :class:`~repro.dram.controller.ChannelStats` only at
  window boundaries (``sync_stats``).

The kernel is an *exact* reimplementation of the reference scheduler,
not an approximation: every simulator event the reference path files
(cancellable pump events, PRE/ACT completions, transmit completions)
is filed at the same instant in the same submission order, every
float accumulation happens in the same order on the same operands, and
``CreditPool`` accounting goes through the same pool objects — so
results are float-identical and the fig03 fingerprint
(``tools/fig03_check.py``) holds with the kernel on or off. The
randomized differential test (``tests/test_dram_kernel.py``) and the
validator probe (:meth:`repro.validate.probes.InvariantProbes
.check_channels`) hold the two paths to that standard.

``REPRO_KERNEL=off`` keeps the historical request-at-a-time reference
path (diagnostic aid: any divergence with the kernel on is a kernel
bug). numpy is optional — the hot path is plain lists either way
(at 16-64 banks, numpy scalar indexing measured slower than list
indexing), numpy only accelerates window-level snapshots — mirroring
the :mod:`repro.telemetry.bankstats` gating.
"""

from __future__ import annotations

import os
from collections import defaultdict, deque
from typing import TYPE_CHECKING

from repro.sim.records import RequestKind, RequestSource, release_request

try:  # pragma: no cover - exercised via monkeypatch in tests
    import numpy as np
except ImportError:  # minimal interpreters (e.g. the 3.10 floor check)
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from repro.dram.controller import Channel, ChannelStats

#: sentinel for "no head" in the head-row caches; distinct from the
#: "row buffer closed" sentinel (-1) so an empty bank never matches.
_NO_HEAD = -2
_BIG = 1 << 62

_OUTCOMES = ("hit", "miss", "conflict")
_KIND_VALUES = ("read", "write")


def kernel_enabled() -> bool:
    """Whether new channels use the SoA kernel (``REPRO_KERNEL``).

    Defaults to on; ``off``/``0``/``no``/``false`` selects the
    request-at-a-time reference path. Invalid values raise so typos
    don't silently change which scheduler runs.
    """
    raw = os.environ.get("REPRO_KERNEL", "on").strip().lower()
    if raw in ("", "on", "1", "yes", "true"):
        return True
    if raw in ("off", "0", "no", "false"):
        return False
    raise ValueError(f"REPRO_KERNEL must be on/off, got {raw!r}")


class ChannelKernel:
    """Fused SoA scheduler for one memory channel.

    Owns the per-bank FIFOs and all hot counters; the host-facing
    :class:`~repro.dram.controller.Channel` object remains the public
    API (admission, stats, callbacks) and delegates its hot methods
    here when the kernel is enabled.
    """

    __slots__ = (
        "_sim",
        "_channel",
        "channel_id",
        "nb",
        # timing constants (pre-summed in reference float order)
        "t_trans",
        "t_act_cas",
        "t_pre",
        "t_wtr",
        "t_rtw",
        # bank state arrays
        "open_row",
        "busy_until",
        "prep_pending",
        "read_qs",
        "write_qs",
        # per-kind head caches + open-row match dicts
        "head_row_r",
        "head_seq_r",
        "head_row_w",
        "head_seq_w",
        "head_p2m_w",
        "match_r",
        "match_w",
        # channel scheduler state
        "mode_read",
        "ch_busy",
        "served",
        "admit_seq",
        "pump_event",
        # queue-policy constants
        "wpq_hi",
        "wpq_lo",
        "min_write_drain",
        "min_read_batch",
        "p2m_priority",
        # per-bank token-bucket regulation (shared with the channel)
        "bank_reg",
        # pools (shared credit runtime -- accounting stays bit-compatible)
        "rpq_pool",
        "wpq_pool",
        "rpq_occ",
        "wpq_occ",
        # incrementally-maintained queue totals (cachelines)
        "queued_read_lines",
        "queued_write_lines",
        # stats accumulators (flat; synced into ChannelStats on demand)
        "s_lines_read",
        "s_lines_written",
        "s_switches_wtr",
        "s_switches_rtw",
        "s_act_read",
        "s_act_write",
        "s_pre_conflict_read",
        "s_pre_conflict_write",
        "s_busy_read",
        "s_busy_write",
        "s_turnaround",
        # interned traffic classes + flat per-class counters
        "cls_ids",
        "cls_names",
        "cls_lines_read",
        "cls_lines_written",
        "out_counts",
        # bank-load sampler internals (inlined record)
        "sampler",
        "samp_counts",
        "samp_every",
    )

    def __init__(self, channel: "Channel"):
        self._sim = channel._sim
        self._channel = channel
        self.channel_id = channel.channel_id
        nb = len(channel.banks)
        self.nb = nb
        timing = channel.timing
        self.t_trans = timing.t_trans
        # Pre-summed exactly as the reference computes it per prep
        # (t_act + t_cas, then += t_pre on conflict).
        self.t_act_cas = timing.t_act + timing.t_cas
        self.t_pre = timing.t_pre
        self.t_wtr = timing.t_wtr
        self.t_rtw = timing.t_rtw
        self.open_row = [-1] * nb
        self.busy_until = [0.0] * nb
        self.prep_pending = [False] * nb
        self.read_qs = [deque() for _ in range(nb)]
        self.write_qs = [deque() for _ in range(nb)]
        self.head_row_r = [_NO_HEAD] * nb
        self.head_seq_r = [_BIG] * nb
        self.head_row_w = [_NO_HEAD] * nb
        self.head_seq_w = [_BIG] * nb
        self.head_p2m_w = [False] * nb
        self.match_r = {}
        self.match_w = {}
        self.mode_read = True
        self.ch_busy = 0.0
        self.served = 0
        self.admit_seq = 0
        self.pump_event = None
        self.wpq_hi = channel.wpq_hi
        self.wpq_lo = channel.wpq_lo
        self.min_write_drain = channel.min_write_drain
        self.min_read_batch = channel.min_read_batch
        self.p2m_priority = channel.p2m_write_priority
        # Same BankRegulator instance as the channel: ready/next_ready
        # are pure and consume happens in the identical transmit
        # sequence in both paths, so sharing state cannot diverge them.
        self.bank_reg = channel.bank_reg
        self.rpq_pool = channel.rpq_pool
        self.wpq_pool = channel.wpq_pool
        self.rpq_occ = channel.rpq_pool.occ
        self.wpq_occ = channel.wpq_pool.occ
        self.queued_read_lines = 0
        self.queued_write_lines = 0
        self.cls_ids = {}
        self.cls_names = []
        self.cls_lines_read = []
        self.cls_lines_written = []
        self.out_counts = []
        self.sampler = channel.bank_sampler
        self.samp_counts = channel.bank_sampler.counts
        self.samp_every = channel.bank_sampler.sample_every
        self._zero_stats()

    # ------------------------------------------------------------------
    # Traffic-class interning
    # ------------------------------------------------------------------

    def _intern(self, traffic_class: str) -> int:
        cid = len(self.cls_names)
        self.cls_ids[traffic_class] = cid
        self.cls_names.append(traffic_class)
        self.cls_lines_read.append(0)
        self.cls_lines_written.append(0)
        self.out_counts.extend((0, 0, 0, 0, 0, 0))
        return cid

    # ------------------------------------------------------------------
    # Admission (fused Channel.enqueue_* + Bank.enqueue + prep start)
    # ------------------------------------------------------------------

    def enqueue_read(self, req) -> None:
        sim = self._sim
        now = sim.now
        lines = req.lines
        # CreditPool.commit, inlined — pinned to the canonical method
        # by tests/test_credit.py::TestInlinedFastPaths.
        pool = self.rpq_pool
        pool.reserved -= lines
        pool.alloc_count += lines
        pool._occ_update(now, lines)
        self.admit_seq = seq = self.admit_seq + 1
        req.queue_seq = seq
        req.t_queue_admit = now
        cid = self.cls_ids.get(req.traffic_class)
        if cid is None:
            cid = self._intern(req.traffic_class)
        req.cls_id = cid
        b = req.bank_id
        q = self.read_qs[b]
        q.append(req)
        self.queued_read_lines += lines
        if len(q) == 1:
            row = req.row_id
            self.head_row_r[b] = row
            self.head_seq_r[b] = seq
            if row == self.open_row[b]:
                self.match_r[b] = seq
        if not self.prep_pending[b]:
            self._maybe_prep(b, now)
        self._schedule_pump(now)

    def enqueue_write(self, req) -> None:
        sim = self._sim
        now = sim.now
        lines = req.lines
        # CreditPool.commit, inlined — pinned to the canonical method
        # by tests/test_credit.py::TestInlinedFastPaths.
        pool = self.wpq_pool
        pool.reserved -= lines
        pool.alloc_count += lines
        pool._occ_update(now, lines)
        self._track_wpq_full(now)
        self.admit_seq = seq = self.admit_seq + 1
        req.queue_seq = seq
        req.t_queue_admit = now
        cid = self.cls_ids.get(req.traffic_class)
        if cid is None:
            cid = self._intern(req.traffic_class)
        req.cls_id = cid
        b = req.bank_id
        q = self.write_qs[b]
        q.append(req)
        self.queued_write_lines += lines
        if len(q) == 1:
            row = req.row_id
            self.head_row_w[b] = row
            self.head_seq_w[b] = seq
            if self.p2m_priority:
                self.head_p2m_w[b] = req.source is RequestSource.P2M
            if row == self.open_row[b]:
                self.match_w[b] = seq
        if not self.prep_pending[b]:
            self._maybe_prep(b, now)
        cb = req.on_complete
        if cb is not None:
            cb(req)
        self._schedule_pump(now)

    # ------------------------------------------------------------------
    # Bank preparation (fused Bank.maybe_start_prep / _on_prep_done)
    # ------------------------------------------------------------------

    def _maybe_prep(self, b: int, now: float) -> None:
        """Mirror of ``Bank.maybe_start_prep`` over the flat arrays."""
        if self.prep_pending[b]:
            return
        if now < self.busy_until[b]:
            return
        q = self.read_qs[b] if self.mode_read else self.write_qs[b]
        if not q:
            return
        head = q[0]
        row = head.row_id
        orow = self.open_row[b]
        if orow == row:
            if head.row_outcome is None:
                head.row_outcome = "hit"
                base = head.cls_id * 6 + (
                    0 if head.kind is RequestKind.READ else 3
                )
                oc = self.out_counts
                oc[base] += 1
                hl = head.lines
                if hl > 1:
                    oc[base] += hl - 1
            self._schedule_pump(now)
            return
        cost = self.t_act_cas
        conflict = orow != -1
        if conflict:
            cost += self.t_pre
        read = head.kind is RequestKind.READ
        if head.row_outcome is None:
            head.row_outcome = "conflict" if conflict else "miss"
            base = head.cls_id * 6 + (0 if read else 3)
            oc = self.out_counts
            oc[base + (2 if conflict else 1)] += 1
            hl = head.lines
            if hl > 1:
                oc[base] += hl - 1
        if read:
            self.s_act_read += 1
            if conflict:
                self.s_pre_conflict_read += 1
        else:
            self.s_act_write += 1
            if conflict:
                self.s_pre_conflict_write += 1
        self.prep_pending[b] = True
        self.busy_until[b] = now + cost
        self._sim.schedule(cost, self._on_prep_done, b, row)

    def _on_prep_done(self, b: int, row: int) -> None:
        self.prep_pending[b] = False
        self.open_row[b] = row
        # The open row changed: refresh both kinds' open-row match sets.
        if self.head_row_r[b] == row:
            self.match_r[b] = self.head_seq_r[b]
        else:
            self.match_r.pop(b, None)
        if self.head_row_w[b] == row:
            self.match_w[b] = self.head_seq_w[b]
        else:
            self.match_w.pop(b, None)
        now = self._sim.now
        q = self.read_qs[b] if self.mode_read else self.write_qs[b]
        if q and q[0].row_id == row:
            head = q[0]
            if head.row_outcome is None:
                head.row_outcome = "hit"
                base = head.cls_id * 6 + (
                    0 if head.kind is RequestKind.READ else 3
                )
                oc = self.out_counts
                oc[base] += 1
                hl = head.lines
                if hl > 1:
                    oc[base] += hl - 1
            self._schedule_pump(now)
        else:
            self._maybe_prep(b, now)

    # ------------------------------------------------------------------
    # Scheduler (fused Channel._pump/_pick_ready/_transmit)
    # ------------------------------------------------------------------

    def _schedule_pump(self, at: float) -> None:
        busy = self.ch_busy
        if busy > at:
            at = busy
        event = self.pump_event
        if event is not None and not event.cancelled and event.time <= at:
            return
        if event is not None:
            event.cancel()
        self.pump_event = self._sim.schedule_at_cancellable(at, self.pump)

    def pump(self) -> None:
        self.pump_event = None
        sim = self._sim
        now = sim.now
        if now < self.ch_busy:
            self._schedule_pump(self.ch_busy)
            return
        if self.mode_read:
            if self.rpq_occ.value == 0:
                if self.wpq_occ.value > 0:
                    self._switch_mode(False, now)
                return
            if (
                self.wpq_occ.value >= self.wpq_hi
                and self.served >= self.min_read_batch
            ):
                self._switch_mode(False, now)
                return
            # Oldest ready read: min admission seq over open-row banks.
            busy = self.busy_until
            best_b = -1
            best_seq = _BIG
            reg = self.bank_reg
            if reg is None:
                for b, seq in self.match_r.items():
                    if seq < best_seq and now >= busy[b]:
                        best_seq = seq
                        best_b = b
            else:
                qs = self.read_qs
                retry = -1.0
                for b, seq in self.match_r.items():
                    if now >= busy[b]:
                        lines = qs[b][0].lines
                        if not reg.ready(b, now, lines):
                            t = reg.next_ready(b, now, lines)
                            if retry < 0.0 or t < retry:
                                retry = t
                            continue
                        if seq < best_seq:
                            best_seq = seq
                            best_b = b
                if best_b < 0 and retry >= 0.0:
                    # Every otherwise-ready bank is token-blocked;
                    # re-arm the pump at the earliest bucket refill.
                    self._schedule_pump(retry)
                    return
            if best_b < 0:
                return  # head banks are preparing; completions re-pump
            self._transmit_read(best_b, now)
        else:
            if self.wpq_occ.value == 0:
                if self.rpq_occ.value > 0:
                    self._switch_mode(True, now)
                return
            if self.rpq_occ.value > 0 and (
                self.wpq_occ.value <= self.wpq_lo
                or self.served >= self.min_write_drain
            ):
                self._switch_mode(True, now)
                return
            busy = self.busy_until
            best_b = -1
            best_seq = _BIG
            reg = self.bank_reg
            retry = -1.0
            if self.p2m_priority:
                p2m = self.head_p2m_w
                p2m_b = -1
                p2m_seq = _BIG
                qs = self.write_qs
                for b, seq in self.match_w.items():
                    if now >= busy[b]:
                        if reg is not None:
                            lines = qs[b][0].lines
                            if not reg.ready(b, now, lines):
                                t = reg.next_ready(b, now, lines)
                                if retry < 0.0 or t < retry:
                                    retry = t
                                continue
                        if seq < best_seq:
                            best_seq = seq
                            best_b = b
                        if p2m[b] and seq < p2m_seq:
                            p2m_seq = seq
                            p2m_b = b
                if p2m_b >= 0:
                    best_b = p2m_b
            elif reg is None:
                for b, seq in self.match_w.items():
                    if seq < best_seq and now >= busy[b]:
                        best_seq = seq
                        best_b = b
            else:
                qs = self.write_qs
                for b, seq in self.match_w.items():
                    if now >= busy[b]:
                        lines = qs[b][0].lines
                        if not reg.ready(b, now, lines):
                            t = reg.next_ready(b, now, lines)
                            if retry < 0.0 or t < retry:
                                retry = t
                            continue
                        if seq < best_seq:
                            best_seq = seq
                            best_b = b
            if best_b < 0:
                if retry >= 0.0:
                    self._schedule_pump(retry)
                return
            self._transmit_write(best_b, now)

    def _transmit_read(self, b: int, now: float) -> None:
        q = self.read_qs[b]
        req = q.popleft()
        lines = req.lines
        t_trans = self.t_trans
        t_burst = t_trans if lines == 1 else t_trans * lines
        self.ch_busy = now + t_burst
        reg = self.bank_reg
        if reg is not None:
            reg.consume(b, now, lines)
        if req.row_outcome is None:
            # Served with its row already open and no PRE/ACT of its
            # own (opened by a prep for the other direction's head).
            req.row_outcome = "hit"
            base = req.cls_id * 6
            oc = self.out_counts
            oc[base] += 1
            if lines > 1:
                oc[base] += lines - 1
        if q:
            nh = q[0]
            row = nh.row_id
            self.head_row_r[b] = row
            self.head_seq_r[b] = ns = nh.queue_seq
            if row == self.open_row[b]:
                self.match_r[b] = ns
            else:
                del self.match_r[b]
        else:
            self.head_row_r[b] = _NO_HEAD
            self.head_seq_r[b] = _BIG
            del self.match_r[b]
        self.queued_read_lines -= lines
        self.s_lines_read += lines
        self.cls_lines_read[req.cls_id] += lines
        self.s_busy_read += t_burst
        # Bank-load sampling, inlined (BankLoadSampler.record) — pinned
        # by tests/test_credit.py::TestInlinedFastPaths.
        sampler = self.sampler
        self.samp_counts[b] += 1
        seen = sampler.seen + 1
        if seen >= self.samp_every:
            sampler._flush()
        else:
            sampler.seen = seen
        self.served += lines
        self._sim.schedule(t_burst, self._on_transmit_done_read, req, b)

    def _transmit_write(self, b: int, now: float) -> None:
        q = self.write_qs[b]
        req = q.popleft()
        lines = req.lines
        t_trans = self.t_trans
        t_burst = t_trans if lines == 1 else t_trans * lines
        self.ch_busy = now + t_burst
        reg = self.bank_reg
        if reg is not None:
            reg.consume(b, now, lines)
        if req.row_outcome is None:
            req.row_outcome = "hit"
            base = req.cls_id * 6 + 3
            oc = self.out_counts
            oc[base] += 1
            if lines > 1:
                oc[base] += lines - 1
        if q:
            nh = q[0]
            row = nh.row_id
            self.head_row_w[b] = row
            self.head_seq_w[b] = ns = nh.queue_seq
            if self.p2m_priority:
                self.head_p2m_w[b] = nh.source is RequestSource.P2M
            if row == self.open_row[b]:
                self.match_w[b] = ns
            else:
                del self.match_w[b]
        else:
            self.head_row_w[b] = _NO_HEAD
            self.head_seq_w[b] = _BIG
            del self.match_w[b]
        self.queued_write_lines -= lines
        self.s_lines_written += lines
        self.cls_lines_written[req.cls_id] += lines
        self.s_busy_write += t_burst
        self.served += lines
        self._sim.schedule(t_burst, self._on_transmit_done_write, req, b)

    def _on_transmit_done_read(self, req, b: int) -> None:
        sim = self._sim
        now = sim.now
        req.t_service = now
        lines = req.lines
        # CreditPool.release, inlined — pinned to the canonical method
        # by tests/test_credit.py::TestInlinedFastPaths.
        pool = self.rpq_pool
        pool.free_count += lines
        pool._occ_update(now, -lines)
        if pool._waiters:
            pool._drain_waiters()
        cb = req.on_serviced
        if cb is not None:
            cb(req)
        cb = req.on_complete
        if cb is not None:
            cb(req)
        cb = self._channel.on_rpq_space
        if cb is not None:
            cb(self.channel_id)
        if not self.prep_pending[b]:
            self._maybe_prep(b, now)
        self._schedule_pump(now)

    def _on_transmit_done_write(self, req, b: int) -> None:
        sim = self._sim
        now = sim.now
        req.t_service = now
        lines = req.lines
        # CreditPool.release, inlined — pinned to the canonical method
        # by tests/test_credit.py::TestInlinedFastPaths.
        pool = self.wpq_pool
        pool.free_count += lines
        pool._occ_update(now, -lines)
        if pool._waiters:
            pool._drain_waiters()
        self._track_wpq_full(now)
        cb = self._channel.on_wpq_space
        if cb is not None:
            cb(self.channel_id)
        # A write's lifecycle ends here (completion fired at admission).
        release_request(req)
        if not self.prep_pending[b]:
            self._maybe_prep(b, now)
        self._schedule_pump(now)

    def _switch_mode(self, to_read: bool, now: float) -> None:
        self.mode_read = to_read
        channel = self._channel
        if to_read:
            channel.mode = RequestKind.READ
            turnaround = self.t_wtr
            self.s_switches_wtr += 1
        else:
            channel.mode = RequestKind.WRITE
            turnaround = self.t_rtw
            self.s_switches_rtw += 1
        self.s_turnaround += turnaround
        self.ch_busy = until = now + turnaround
        self.served = 0
        # Re-target bank preparation at the new direction's heads; the
        # preparation overlaps the turnaround. Banks with no work, a
        # prep in flight, or (boundary case) a still-busy row buffer
        # are skipped exactly as Bank.maybe_start_prep would.
        prep = self.prep_pending
        qs = self.read_qs if to_read else self.write_qs
        busy = self.busy_until
        for b in range(self.nb):
            if prep[b] or not qs[b] or now < busy[b]:
                continue
            self._maybe_prep(b, now)
        self._schedule_pump(until)

    # ------------------------------------------------------------------
    # WPQ fullness tracking (mirror of Channel._track_wpq_full)
    # ------------------------------------------------------------------

    def _track_wpq_full(self, now: float) -> None:
        pool = self.wpq_pool
        full = pool.occ.value + pool.reserved >= pool.capacity
        channel = self._channel
        since = channel._wpq_full_since
        if full:
            if since is None:
                channel._wpq_full_since = now
        elif since is not None:
            channel._wpq_full_time += now - since
            channel._wpq_full_since = None

    # ------------------------------------------------------------------
    # Window-boundary materialization
    # ------------------------------------------------------------------

    def _zero_stats(self) -> None:
        self.s_lines_read = 0
        self.s_lines_written = 0
        self.s_switches_wtr = 0
        self.s_switches_rtw = 0
        self.s_act_read = 0
        self.s_act_write = 0
        self.s_pre_conflict_read = 0
        self.s_pre_conflict_write = 0
        self.s_busy_read = 0.0
        self.s_busy_write = 0.0
        self.s_turnaround = 0.0
        self.cls_lines_read = [0] * len(self.cls_names)
        self.cls_lines_written = [0] * len(self.cls_names)
        self.out_counts = [0] * (6 * len(self.cls_names))

    def reset_window(self) -> None:
        """Zero the window accumulators (Channel.reset_stats hook)."""
        self._zero_stats()

    def sync_stats(self, stats: "ChannelStats") -> None:
        """Materialize the flat counters into a ChannelStats object.

        Called on (rare) external stats access, never on the hot path.
        The resulting dicts carry exactly the values the reference
        path's per-request defaultdict updates would have produced.
        """
        stats.lines_read = self.s_lines_read
        stats.lines_written = self.s_lines_written
        stats.switches_wtr = self.s_switches_wtr
        stats.switches_rtw = self.s_switches_rtw
        stats.act_read = self.s_act_read
        stats.act_write = self.s_act_write
        stats.pre_conflict_read = self.s_pre_conflict_read
        stats.pre_conflict_write = self.s_pre_conflict_write
        stats.busy_read_time = self.s_busy_read
        stats.busy_write_time = self.s_busy_write
        stats.turnaround_time = self.s_turnaround
        names = self.cls_names
        lines_read = defaultdict(int)
        lines_written = defaultdict(int)
        for cid, total in enumerate(self.cls_lines_read):
            if total:
                lines_read[names[cid]] = total
        for cid, total in enumerate(self.cls_lines_written):
            if total:
                lines_written[names[cid]] = total
        outcomes = defaultdict(int)
        oc = self.out_counts
        for cid, name in enumerate(names):
            base = cid * 6
            for kb, kind_value in enumerate(_KIND_VALUES):
                off = base + 3 * kb
                for oi, outcome in enumerate(_OUTCOMES):
                    total = oc[off + oi]
                    if total:
                        outcomes[(name, kind_value, outcome)] = total
        stats.class_lines_read = lines_read
        stats.class_lines_written = lines_written
        stats.class_row_outcomes = outcomes

    # ------------------------------------------------------------------
    # Introspection (probes, differential tests, debugging)
    # ------------------------------------------------------------------

    def queued_in_banks(self) -> tuple:
        """``(read_lines, write_lines)`` from the incremental counters."""
        return self.queued_read_lines, self.queued_write_lines

    def walk_queued_lines(self) -> tuple:
        """Recount the bank FIFOs directly (validator cross-check)."""
        reads = sum(req.lines for q in self.read_qs for req in q)
        writes = sum(req.lines for q in self.write_qs for req in q)
        return reads, writes

    def bank_state(self):
        """Snapshot ``(open_row, busy_until, prep_pending)`` arrays.

        numpy arrays when numpy is importable, plain lists otherwise —
        the same gating as :mod:`repro.telemetry.bankstats`.
        """
        if np is None:
            return (
                list(self.open_row),
                list(self.busy_until),
                [bool(p) for p in self.prep_pending],
            )
        return (
            np.asarray(self.open_row, dtype=np.int64),
            np.asarray(self.busy_until, dtype=np.float64),
            np.asarray(self.prep_pending, dtype=np.bool_),
        )

    def verify_consistency(self) -> int:
        """Cross-check the incremental structures against a full walk.

        Returns the number of banks checked; raises ``AssertionError``
        on any divergence (wrapped into an InvariantViolation by the
        validator probe). Checks: the cached queue totals, both head
        caches, and the exact membership of the open-row match dicts.
        """
        reads, writes = self.walk_queued_lines()
        assert reads == self.queued_read_lines, (
            f"queued read lines drifted: cached {self.queued_read_lines}, "
            f"walk {reads}"
        )
        assert writes == self.queued_write_lines, (
            f"queued write lines drifted: cached {self.queued_write_lines}, "
            f"walk {writes}"
        )
        for b in range(self.nb):
            for qs, head_row, head_seq, match in (
                (self.read_qs, self.head_row_r, self.head_seq_r, self.match_r),
                (self.write_qs, self.head_row_w, self.head_seq_w, self.match_w),
            ):
                q = qs[b]
                if q:
                    head = q[0]
                    assert head_row[b] == head.row_id, (
                        f"bank {b}: head row cache {head_row[b]} != "
                        f"{head.row_id}"
                    )
                    assert head_seq[b] == head.queue_seq, (
                        f"bank {b}: head seq cache {head_seq[b]} != "
                        f"{head.queue_seq}"
                    )
                    should_match = head.row_id == self.open_row[b]
                else:
                    assert head_row[b] == _NO_HEAD, (
                        f"bank {b}: stale head cache on empty queue"
                    )
                    should_match = False
                assert (b in match) == should_match, (
                    f"bank {b}: open-row match set disagrees with state "
                    f"(in_set={b in match}, should={should_match})"
                )
                if should_match:
                    assert match[b] == q[0].queue_seq, (
                        f"bank {b}: match seq {match[b]} != head seq"
                    )
        return self.nb
