"""Memory controller: per-channel RPQ/WPQ, mode switching, scheduling.

Models the MC behaviour the paper's root-cause analysis rests on (§3,
§5):

* each channel transmits in one direction at a time; the MC operates
  in *read mode* or *write mode* with a turnaround ("switching") delay
  between them;
* reads queue in the Read Pending Queue (RPQ), writes in the Write
  Pending Queue (WPQ), per channel; a full WPQ backpressures the CHA
  (the red-regime trigger of §5.2);
* scheduling is oldest-ready-first: banks precharge/activate in
  parallel, and the channel serves the oldest request whose bank has
  the row open. The paper notes out-of-order scheduling beyond this
  has little impact on its workloads (§6.1);
* write drain uses high/low watermark hysteresis, the standard policy
  whose head-of-line blocking of reads is the dominant term of the
  paper's latency breakdown in quadrant 1 (Fig. 12a).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional

from repro.dram.address import AddressMapper
from repro.dram.bank import Bank
from repro.dram.kernel import ChannelKernel, kernel_enabled
from repro.dram.regulator import BankRegulator
from repro.dram.timing import DramTiming
from repro.sim.engine import Simulator
from repro.sim.records import (
    CACHELINE_BYTES,
    Request,
    RequestKind,
    RequestSource,
    release_request,
)
from repro.telemetry.bankstats import BankLoadSampler
from repro.telemetry.counters import CounterHub


class ChannelStats:
    """Raw per-channel counters consumed by the analytical model."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter (start of a measurement window)."""
        self.lines_read = 0
        self.lines_written = 0
        self.switches_wtr = 0  # write -> read transitions
        self.switches_rtw = 0  # read -> write transitions
        self.act_read = 0
        self.act_write = 0
        self.pre_conflict_read = 0
        self.pre_conflict_write = 0
        self.busy_read_time = 0.0
        self.busy_write_time = 0.0
        self.turnaround_time = 0.0
        # Per traffic class: lines moved and row outcomes for reads.
        self.class_lines_read: Dict[str, int] = defaultdict(int)
        self.class_lines_written: Dict[str, int] = defaultdict(int)
        self.class_row_outcomes: Dict[tuple, int] = defaultdict(int)

    @property
    def switches(self) -> int:
        """Total mode transitions in both directions."""
        return self.switches_wtr + self.switches_rtw

    def row_miss_ratio(self, traffic_class: str, kind: RequestKind) -> float:
        """Fraction of requests that missed (ACT needed) in the row buffer."""
        hits = self.class_row_outcomes[(traffic_class, kind.value, "hit")]
        misses = (
            self.class_row_outcomes[(traffic_class, kind.value, "miss")]
            + self.class_row_outcomes[(traffic_class, kind.value, "conflict")]
        )
        total = hits + misses
        if total == 0:
            return 0.0
        return misses / total


class Channel:
    """One memory channel: banks + RPQ/WPQ + mode-switching scheduler."""

    def __init__(
        self,
        sim: Simulator,
        hub: CounterHub,
        channel_id: int,
        timing: DramTiming,
        n_banks: int,
        rpq_size: int,
        wpq_size: int,
        wpq_hi_fraction: float = 0.7,
        wpq_lo_fraction: float = 0.2,
        min_write_drain: int = 10_000,
        min_read_batch: int = 96,
        p2m_write_priority: bool = False,
        bank_sample_every: int = 1000,
        bank_reg: Optional[BankRegulator] = None,
    ):
        timing.validate()
        self._sim = sim
        self.channel_id = channel_id
        self.timing = timing
        #: RPQ/WPQ as shared-runtime credit pools (admission counts
        #: reservations for requests in transit from the CHA); the
        #: occupancy counters keep their historical names, and
        #: ``rpq_size``/``wpq_size`` proxy the pool capacities so
        #: resizing a queue keeps admission and capacity in sync.
        self.rpq_pool = hub.pool(f"mc.ch{channel_id}.rpq", rpq_size)
        self.wpq_pool = hub.pool(f"mc.ch{channel_id}.wpq", wpq_size)
        self.rpq_occ = self.rpq_pool.occ
        self.wpq_occ = self.wpq_pool.occ
        self.wpq_hi = max(1, int(wpq_size * wpq_hi_fraction))
        self.wpq_lo = max(0, int(wpq_size * wpq_lo_fraction))
        self.min_write_drain = min_write_drain
        self.min_read_batch = min_read_batch
        self.p2m_write_priority = p2m_write_priority
        self.banks: List[Bank] = [Bank(sim, self, b, timing) for b in range(n_banks)]
        self.mode: RequestKind = RequestKind.READ
        self._stats = ChannelStats()
        self.bank_sampler = BankLoadSampler(n_banks, bank_sample_every)
        #: per-bank token-bucket regulation (None = unregulated). The
        #: scheduler skips token-blocked banks and re-arms the pump at
        #: the earliest bucket-refill time when nothing else is ready.
        self.bank_reg = bank_reg
        self._reg_retry: Optional[float] = None
        self._busy_until = 0.0
        self._admit_seq = 0
        self._served_in_mode = 0
        self._wpq_full_since = None
        self._wpq_full_time = 0.0
        self._window_start = 0.0
        self._pump_event = None
        # Lines sitting in the per-bank FIFOs, maintained incrementally
        # (reference path; the kernel keeps its own pair).
        self._queued_read_lines = 0
        self._queued_write_lines = 0
        # Wired by the host: invoked when queue space frees up.
        self.on_rpq_space: Optional[Callable[[int], None]] = None
        self.on_wpq_space: Optional[Callable[[int], None]] = None
        #: SoA batch scheduler (REPRO_KERNEL, default on). When active
        #: it owns the bank FIFOs and all hot counters; the admission
        #: entry points are rebound to its fused implementations so the
        #: CHA pays zero delegation overhead per request.
        self.kernel: Optional[ChannelKernel] = None
        if kernel_enabled():
            self.kernel = kernel = ChannelKernel(self)
            self.enqueue_read = kernel.enqueue_read
            self.enqueue_write = kernel.enqueue_write

    # ------------------------------------------------------------------
    # Admission (called by the CHA)
    # ------------------------------------------------------------------

    @property
    def stats(self) -> ChannelStats:
        """Window counters, materialized from the kernel when active.

        The kernel accumulates into flat arrays on the hot path;
        reading this property syncs them into the dict-shaped
        :class:`ChannelStats` (a window-boundary-rate operation).
        """
        kernel = self.kernel
        if kernel is not None:
            kernel.sync_stats(self._stats)
        return self._stats

    @property
    def rpq_size(self) -> int:
        """RPQ capacity in cachelines (the pool's credit count)."""
        return self.rpq_pool.capacity

    @rpq_size.setter
    def rpq_size(self, value: int) -> None:
        self.rpq_pool.capacity = value

    @property
    def wpq_size(self) -> int:
        """WPQ capacity in cachelines (the pool's credit count)."""
        return self.wpq_pool.capacity

    @wpq_size.setter
    def wpq_size(self, value: int) -> None:
        self.wpq_pool.capacity = value

    def can_accept_read(self, n: int = 1) -> bool:
        """Whether the RPQ has ``n`` slots (counting reservations)."""
        return self.rpq_pool.can_accept(n)

    def can_accept_write(self, n: int = 1) -> bool:
        """Whether the WPQ has ``n`` slots (counting reservations)."""
        return self.wpq_pool.can_accept(n)

    def _track_wpq_full(self) -> None:
        """Accumulate the time the WPQ is effectively full (occupancy
        plus in-transit reservations), which is the fullness the CHA
        observes — Figs. 7(f)/8(e)."""
        now = self._sim.now
        pool = self.wpq_pool
        full = pool.occ.value + pool.reserved >= self.wpq_size
        if full and self._wpq_full_since is None:
            self._wpq_full_since = now
        elif not full and self._wpq_full_since is not None:
            self._wpq_full_time += now - self._wpq_full_since
            self._wpq_full_since = None

    def wpq_full_fraction(self, now: float, window_start: float) -> float:
        """Fraction of [window_start, now] with no WPQ slot free."""
        total = self._wpq_full_time
        if self._wpq_full_since is not None:
            total += now - self._wpq_full_since
        elapsed = now - window_start
        if elapsed <= 0:
            return 0.0
        return total / elapsed

    def reserve_read(self, n: int = 1) -> None:
        """Claim ``n`` RPQ slots for a read in transit from the CHA."""
        if not self.rpq_pool.can_accept(n):
            raise RuntimeError("read reservation without RPQ space")
        self.rpq_pool.reserve(n)

    def reserve_write(self, n: int = 1) -> None:
        """Claim ``n`` WPQ slots for a write in transit from the CHA."""
        if not self.wpq_pool.can_accept(n):
            raise RuntimeError("write reservation without WPQ space")
        self.wpq_pool.reserve(n)
        self._track_wpq_full()

    def enqueue_read(self, req: Request) -> None:
        """Admit a read into the RPQ (reservation made earlier)."""
        now = self._sim.now
        lines = req.lines
        self.rpq_pool.commit(now, lines)
        self._admit_seq += 1
        req.queue_seq = self._admit_seq
        req.t_queue_admit = now
        self._queued_read_lines += lines
        self.banks[req.bank_id].enqueue(req)
        self._schedule_pump(now)

    def enqueue_write(self, req: Request) -> None:
        """Admit a write into the WPQ; the write is now *complete* from
        the requester's point of view (writes are asynchronous, §3)."""
        now = self._sim.now
        lines = req.lines
        self.wpq_pool.commit(now, lines)
        self._track_wpq_full()
        self._admit_seq += 1
        req.queue_seq = self._admit_seq
        req.t_queue_admit = now
        self._queued_write_lines += lines
        self.banks[req.bank_id].enqueue(req)
        if req.on_complete is not None:
            req.on_complete(req)
        self._schedule_pump(now)

    # ------------------------------------------------------------------
    # Stats hooks (called by banks)
    # ------------------------------------------------------------------

    def count_row_outcome(self, req: Request) -> None:
        """Record a request's first row-buffer outcome, per class.

        A macro-request (burst mode) opens its row once; the remaining
        ``lines - 1`` cachelines stream from the open row, which is
        what the per-line simulation of a sequential burst would record
        as row hits.
        """
        stats = self._stats
        key = (req.traffic_class, req.kind.value, req.row_outcome)
        stats.class_row_outcomes[key] += 1
        if req.lines > 1:
            stats.class_row_outcomes[
                (req.traffic_class, req.kind.value, "hit")
            ] += req.lines - 1

    def count_prep_ops(self, req: Request, conflict: bool) -> None:
        """Count an ACT (and PRE on conflict) for the formula inputs."""
        if req.kind is RequestKind.READ:
            self._stats.act_read += 1
            if conflict:
                self._stats.pre_conflict_read += 1
        else:
            self._stats.act_write += 1
            if conflict:
                self._stats.pre_conflict_write += 1

    def notify_bank_ready(self) -> None:
        """A bank finished preparing a head request; try to transmit."""
        self._schedule_pump(self._sim.now)

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------

    def _schedule_pump(self, at: float) -> None:
        at = max(at, self._busy_until)
        event = self._pump_event
        if event is not None and not event.cancelled and event.time <= at:
            return
        if event is not None:
            event.cancel()
        self._pump_event = self._sim.schedule_at_cancellable(at, self._pump)

    def _pump(self) -> None:
        self._pump_event = None
        now = self._sim.now
        if now < self._busy_until:
            self._schedule_pump(self._busy_until)
            return
        if self.mode is RequestKind.READ:
            self._pump_read_mode()
        else:
            self._pump_write_mode()

    def _pump_read_mode(self) -> None:
        """Read-major scheduling: reads keep the channel while they have
        work; writes get it only when the WPQ is critically full and a
        minimum read batch has been served, or when there is no read
        work at all. A momentarily-unready read (its bank is still
        precharging/activating, a bounded ~t_proc wait) does *not*
        yield the channel: mode flips are expensive and re-target bank
        preparation."""
        if self.rpq_occ.value == 0:
            if self.wpq_occ.value > 0:
                self._switch_mode(RequestKind.WRITE)
            return
        if (
            self.wpq_occ.value >= self.wpq_hi
            and self._served_in_mode >= self.min_read_batch
        ):
            self._switch_mode(RequestKind.WRITE)
            return
        ready = self._pick_ready(RequestKind.READ)
        if ready is not None:
            self._transmit(ready)
        elif self._reg_retry is not None:
            # Every otherwise-ready bank is token-blocked; re-arm the
            # pump at the earliest bucket refill.
            self._schedule_pump(self._reg_retry)
        # else: the head banks are preparing; their completions re-pump.

    def _pump_write_mode(self) -> None:
        """Write drains are bounded batches so a write overload cannot
        monopolize the channel; the overflow backlogs in the WPQ and,
        through it, at the CHA (the red-regime backpressure of §5.2)."""
        if self.wpq_occ.value == 0:
            if self.rpq_occ.value > 0:
                self._switch_mode(RequestKind.READ)
            return
        if self.rpq_occ.value > 0:
            drained_enough = (
                self.wpq_occ.value <= self.wpq_lo
                or self._served_in_mode >= self.min_write_drain
            )
            if drained_enough:
                self._switch_mode(RequestKind.READ)
                return
        ready = self._pick_ready(RequestKind.WRITE)
        if ready is not None:
            self._transmit(ready)
        elif self._reg_retry is not None:
            self._schedule_pump(self._reg_retry)
        # else: bounded wait for the write bank preparation in flight.

    def _switch_mode(self, target: RequestKind) -> None:
        now = self._sim.now
        self.mode = target
        if target is RequestKind.READ:
            turnaround = self.timing.t_wtr
            self._stats.switches_wtr += 1
        else:
            turnaround = self.timing.t_rtw
            self._stats.switches_rtw += 1
        self._stats.turnaround_time += turnaround
        self._busy_until = now + turnaround
        self._served_in_mode = 0
        # Bank preparation overlaps the turnaround.
        for bank in self.banks:
            bank.maybe_start_prep()
        self._schedule_pump(self._busy_until)

    def _pick_ready(self, kind: RequestKind) -> Optional[Request]:
        """Oldest request (by queue-admission order) whose bank is ready.

        With ``p2m_write_priority`` (a §7 future-work MC isolation
        policy, cf. heterogeneous memory scheduling [6, 33, 34]),
        write drains serve ready peripheral writes ahead of core
        writebacks so the P2M-Write domain is insulated from C2M write
        floods.
        """
        now = self._sim.now
        best: Optional[Request] = None
        best_p2m: Optional[Request] = None
        reg = self.bank_reg
        retry: Optional[float] = None
        for bank in self.banks:
            queue = bank.read_q if kind is RequestKind.READ else bank.write_q
            if not queue:
                continue
            head = queue[0]
            if now >= bank.busy_until and bank.open_row == head.row_id:
                if reg is not None and not reg.ready(bank.bank_id, now, head.lines):
                    t = reg.next_ready(bank.bank_id, now, head.lines)
                    if retry is None or t < retry:
                        retry = t
                    continue
                if best is None or head.queue_seq < best.queue_seq:
                    best = head
                if head.source is RequestSource.P2M and (
                    best_p2m is None or head.queue_seq < best_p2m.queue_seq
                ):
                    best_p2m = head
        self._reg_retry = retry
        if (
            self.p2m_write_priority
            and kind is RequestKind.WRITE
            and best_p2m is not None
        ):
            return best_p2m
        return best

    def _transmit(self, req: Request) -> None:
        now = self._sim.now
        timing = self.timing
        lines = req.lines
        t_burst = timing.t_trans if lines == 1 else timing.t_trans * lines
        self._busy_until = now + t_burst
        if self.bank_reg is not None:
            self.bank_reg.consume(req.bank_id, now, lines)
        bank = self.banks[req.bank_id]
        if req.row_outcome is None:
            # Served with its row already open and no PRE/ACT of its
            # own (e.g. opened by a prep for the other direction's
            # head): a row hit from this request's perspective.
            req.row_outcome = "hit"
            self.count_row_outcome(req)
        bank.pop_head(req)
        stats = self._stats
        if req.kind is RequestKind.READ:
            self._queued_read_lines -= lines
            stats.lines_read += lines
            stats.class_lines_read[req.traffic_class] += lines
            stats.busy_read_time += t_burst
            self.bank_sampler.record(req.bank_id)
        else:
            self._queued_write_lines -= lines
            stats.lines_written += lines
            stats.class_lines_written[req.traffic_class] += lines
            stats.busy_write_time += t_burst
        self._served_in_mode += lines
        self._sim.schedule(t_burst, self._on_transmit_done, req, bank)

    def _on_transmit_done(self, req: Request, bank: Bank) -> None:
        now = self._sim.now
        req.t_service = now
        lines = req.lines
        if req.kind is RequestKind.READ:
            self.rpq_pool.release(now, lines)
            if req.on_serviced is not None:
                req.on_serviced(req)
            if req.on_complete is not None:
                req.on_complete(req)
            if self.on_rpq_space is not None:
                self.on_rpq_space(self.channel_id)
        else:
            self.wpq_pool.release(now, lines)
            self._track_wpq_full()
            if self.on_wpq_space is not None:
                self.on_wpq_space(self.channel_id)
            # A write's lifecycle ends here: its completion fired at
            # WPQ admission, the bank queue dropped it at transmit,
            # and nothing downstream keeps a reference.
            release_request(req)
        bank.maybe_start_prep()
        self._schedule_pump(now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def rpq_count(self) -> int:
        """Reads currently admitted to the RPQ."""
        return self.rpq_occ.value

    @property
    def wpq_count(self) -> int:
        """Writes currently admitted to the WPQ."""
        return self.wpq_occ.value

    @property
    def rpq_reserved(self) -> int:
        """RPQ slots claimed by reads in transit from the CHA."""
        return self.rpq_pool.reserved

    @property
    def wpq_reserved(self) -> int:
        """WPQ slots claimed by writes in transit from the CHA."""
        return self.wpq_pool.reserved

    def queued_in_banks(self) -> tuple:
        """``(read_lines, write_lines)`` sitting in per-bank queues.

        Every admitted request lives in exactly one bank queue until
        its transmit completes, so these must reconcile with
        ``rpq_count``/``wpq_count`` net of the single request whose
        transmit is in flight — the queue-accounting identity checked
        by :mod:`repro.validate`. Counted in cachelines so burst-mode
        macro-requests reconcile with the lines-weighted queue counts.

        Incrementally maintained (no per-call container walk); the
        validator cross-checks the cache against
        :meth:`walk_queued_lines`.
        """
        kernel = self.kernel
        if kernel is not None:
            return kernel.queued_read_lines, kernel.queued_write_lines
        return self._queued_read_lines, self._queued_write_lines

    def walk_queued_lines(self) -> tuple:
        """Recount the bank FIFOs directly (validator cross-check)."""
        kernel = self.kernel
        if kernel is not None:
            return kernel.walk_queued_lines()
        reads = sum(req.lines for bank in self.banks for req in bank.read_q)
        writes = sum(req.lines for bank in self.banks for req in bank.write_q)
        return reads, writes

    def reset_stats(self, now: float) -> None:
        """Start a fresh measurement window for this channel."""
        self._stats.reset()
        kernel = self.kernel
        if kernel is not None:
            kernel.reset_window()
        self.bank_sampler.reset()
        self._wpq_full_time = 0.0
        self._window_start = now
        if self._wpq_full_since is not None:
            self._wpq_full_since = now


class MemoryController:
    """Routes requests to channels and aggregates their statistics."""

    def __init__(
        self,
        sim: Simulator,
        hub: CounterHub,
        timing: DramTiming,
        n_channels: int,
        n_banks: int,
        lines_per_row: int = 128,
        rpq_size: int = 48,
        wpq_size: int = 48,
        wpq_hi_fraction: float = 0.7,
        wpq_lo_fraction: float = 0.2,
        min_write_drain: int = 10_000,
        min_read_batch: int = 96,
        p2m_write_priority: bool = False,
        xor_bank_hash: bool = True,
        bank_sample_every: int = 1000,
        bank_reg_rate: Optional[float] = None,
        bank_reg_burst_lines: int = 64,
        bank_partition_classes: int = 0,
    ):
        self.mapper = AddressMapper(
            n_channels=n_channels,
            n_banks=n_banks,
            lines_per_row=lines_per_row,
            xor_hash=xor_bank_hash,
        )
        self.timing = timing
        self.channels: List[Channel] = [
            Channel(
                sim,
                hub,
                channel_id=i,
                timing=timing,
                n_banks=n_banks,
                rpq_size=rpq_size,
                wpq_size=wpq_size,
                wpq_hi_fraction=wpq_hi_fraction,
                wpq_lo_fraction=wpq_lo_fraction,
                min_write_drain=min_write_drain,
                min_read_batch=min_read_batch,
                p2m_write_priority=p2m_write_priority,
                bank_sample_every=bank_sample_every,
                bank_reg=(
                    BankRegulator(n_banks, bank_reg_rate, bank_reg_burst_lines)
                    if bank_reg_rate is not None
                    else None
                ),
            )
            for i in range(n_channels)
        ]
        #: bank partitioning by traffic class ("Per-Bank Memory
        #: Bandwidth Regulation", PAPERS.md): with N partitions, each
        #: class (first-seen order, round-robin over partitions) is
        #: confined to a contiguous ``n_banks // N`` bank slice, so
        #: classes can no longer row-conflict with each other.
        self.bank_partitions = min(max(0, bank_partition_classes), n_banks)
        self._part_size = (
            n_banks // self.bank_partitions if self.bank_partitions > 1 else n_banks
        )
        self._class_partitions: Dict[str, int] = {}

    def assign(self, req: Request) -> Channel:
        """Decode the request's address and return its home channel."""
        mapped = self.mapper.map(req.line_addr)
        req.channel_id = mapped.channel
        bank = mapped.bank
        if self.bank_partitions > 1:
            pid = self._class_partitions.get(req.traffic_class)
            if pid is None:
                pid = len(self._class_partitions) % self.bank_partitions
                self._class_partitions[req.traffic_class] = pid
            bank = pid * self._part_size + bank % self._part_size
        req.bank_id = bank
        req.row_id = mapped.row
        return self.channels[mapped.channel]

    @property
    def theoretical_bandwidth(self) -> float:
        """Peak memory bandwidth across channels (bytes/ns == GB/s)."""
        return len(self.channels) * self.timing.channel_bandwidth_bytes_per_ns

    def reset_stats(self, now: float) -> None:
        """Start a fresh measurement window on every channel."""
        for channel in self.channels:
            channel.reset_stats(now)

    # ---------------------------- aggregates --------------------------

    def total(self, attr: str) -> float:
        """Sum a ChannelStats attribute over channels."""
        return sum(getattr(ch.stats, attr) for ch in self.channels)

    def class_lines(self, traffic_class: str, kind: RequestKind) -> int:
        """Cachelines a traffic class moved in one direction."""
        field = "class_lines_read" if kind is RequestKind.READ else "class_lines_written"
        return sum(getattr(ch.stats, field)[traffic_class] for ch in self.channels)

    def bandwidth_bytes_per_ns(self, elapsed_ns: float) -> float:
        """Achieved memory bandwidth over a window (bytes/ns == GB/s)."""
        if elapsed_ns <= 0:
            return 0.0
        lines = self.total("lines_read") + self.total("lines_written")
        return lines * CACHELINE_BYTES / elapsed_ns

    def class_bandwidth_bytes_per_ns(self, traffic_class: str, elapsed_ns: float) -> float:
        """Achieved bandwidth of one traffic class over a window."""
        if elapsed_ns <= 0:
            return 0.0
        lines = self.class_lines(traffic_class, RequestKind.READ) + self.class_lines(
            traffic_class, RequestKind.WRITE
        )
        return lines * CACHELINE_BYTES / elapsed_ns

    def avg_rpq_occupancy(self, now: float) -> float:
        """RPQ occupancy averaged over channels (formula input O_RPQ)."""
        if not self.channels:
            return 0.0
        return sum(ch.rpq_occ.average(now) for ch in self.channels) / len(self.channels)

    def avg_wpq_occupancy(self, now: float) -> float:
        """WPQ occupancy averaged over channels."""
        if not self.channels:
            return 0.0
        return sum(ch.wpq_occ.average(now) for ch in self.channels) / len(self.channels)

    def wpq_full_fraction(self, now: float) -> float:
        """Average fraction of time the WPQ was full (Fig. 7f / 8e).

        "Full" for backpressure purposes means no free slot for a new
        write (occupancy plus in-transit reservations), which is what
        the CHA observes.
        """
        if not self.channels:
            return 0.0
        return sum(
            ch.wpq_full_fraction(now, ch._window_start) for ch in self.channels
        ) / len(self.channels)

    def row_miss_ratio(self, traffic_class: str, kind: RequestKind) -> float:
        """Row-miss (ACT-needed) ratio pooled over channels (Fig. 7c)."""
        hits = 0
        misses = 0
        for channel in self.channels:
            stats = channel.stats
            hits += stats.class_row_outcomes[(traffic_class, kind.value, "hit")]
            misses += stats.class_row_outcomes[(traffic_class, kind.value, "miss")]
            misses += stats.class_row_outcomes[
                (traffic_class, kind.value, "conflict")
            ]
        total = hits + misses
        if total == 0:
            return 0.0
        return misses / total

    def bank_deviations(self) -> list:
        """Bank-deviation samples pooled across channels (Fig. 7d)."""
        samples: list = []
        for channel in self.channels:
            samples.extend(channel.bank_sampler.deviations)
        return samples
