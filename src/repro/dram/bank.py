"""DRAM bank state machine.

Each bank owns a single-entry row buffer (§3 "DRAM operation"). To
access a cacheline its row must be in the row buffer:

* row hit     — the row is already open: no bank processing delay;
* row miss    — the row buffer is empty: ACT (t_act + t_cas);
* row conflict— a different row is open: PRE then ACT
  (t_pre + t_act + t_cas == the paper's t_proc ~= 45 ns).

Banks prepare (precharge/activate) *in parallel* with each other and
with data transmission on the channel; the channel can only transmit
one cacheline at a time. This is exactly the overlap argument of §5.1:
with perfect load balance across N_b banks, bank processing hides
behind transmission whenever t_proc / N_b < t_trans; imbalance breaks
the overlap and causes queueing before bandwidth saturation.

A bank prepares for the *oldest* pending request of the channel's
current mode, one at a time — the row buffer is a serial resource.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.sim.records import Request, RequestKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.dram.controller import Channel


class Bank:
    """One DRAM bank: row buffer + PRE/ACT pipeline."""

    __slots__ = (
        "bank_id",
        "_sim",
        "_channel",
        "_timing",
        "open_row",
        "busy_until",
        "read_q",
        "write_q",
        "_prep_pending",
    )

    def __init__(self, sim, channel: "Channel", bank_id: int, timing):
        self.bank_id = bank_id
        self._sim = sim
        self._channel = channel
        self._timing = timing
        self.open_row: Optional[int] = None
        self.busy_until: float = 0.0
        self.read_q: Deque[Request] = deque()
        self.write_q: Deque[Request] = deque()
        self._prep_pending = False

    def enqueue(self, req: Request) -> None:
        """Add a request to this bank's per-mode FIFO."""
        if req.kind is RequestKind.READ:
            self.read_q.append(req)
        else:
            self.write_q.append(req)
        self.maybe_start_prep()

    def active_queue(self) -> Deque[Request]:
        """The FIFO matching the channel's current transfer mode."""
        if self._channel.mode is RequestKind.READ:
            return self.read_q
        return self.write_q

    def head_ready(self, req: Request) -> bool:
        """True if ``req`` is this bank's active head with its row open."""
        now = self._sim.now
        queue = self.active_queue()
        return (
            bool(queue)
            and queue[0] is req
            and now >= self.busy_until
            and self.open_row == req.row_id
        )

    def maybe_start_prep(self) -> None:
        """Start PRE/ACT for the active head if the row is not open.

        No-op while a prep is in flight; the completion callback
        re-invokes this method.
        """
        if self._prep_pending:
            return
        now = self._sim.now
        if now < self.busy_until:
            return
        queue = self.active_queue()
        if not queue:
            return
        head = queue[0]
        timing = self._timing
        if self.open_row == head.row_id:
            if head.row_outcome is None:
                head.row_outcome = "hit"
                self._channel.count_row_outcome(head)
            self._channel.notify_bank_ready()
            return
        # Row miss: ACT (+ PRE on conflict). Stats count the operations
        # themselves, which is what the analytical formula consumes.
        cost = timing.t_act + timing.t_cas
        conflict = self.open_row is not None
        if conflict:
            cost += timing.t_pre
        if head.row_outcome is None:
            head.row_outcome = "conflict" if conflict else "miss"
            self._channel.count_row_outcome(head)
        self._channel.count_prep_ops(head, conflict)
        self._prep_pending = True
        self.busy_until = now + cost
        self._sim.schedule(cost, self._on_prep_done, head.row_id)

    def _on_prep_done(self, row_id: int) -> None:
        self._prep_pending = False
        self.open_row = row_id
        # The head for which we prepared may have been superseded by a
        # mode switch; re-evaluate against the active queue. The new
        # head may ride on the row this prep opened without any PRE/ACT
        # of its own — a row hit from its perspective.
        queue = self.active_queue()
        if queue and queue[0].row_id == row_id:
            head = queue[0]
            if head.row_outcome is None:
                head.row_outcome = "hit"
                self._channel.count_row_outcome(head)
            self._channel.notify_bank_ready()
        else:
            self.maybe_start_prep()

    def pop_head(self, req: Request) -> None:
        """Remove ``req`` (the served head) and begin prep for the next."""
        queue = self.read_q if req.kind is RequestKind.READ else self.write_q
        if not queue or queue[0] is not req:
            raise RuntimeError("bank FIFO corruption: served a non-head request")
        queue.popleft()

    def pending(self, kind: RequestKind) -> int:
        """Requests waiting in this bank for a given direction."""
        if kind is RequestKind.READ:
            return len(self.read_q)
        return len(self.write_q)
