"""Memory regions: virtual buffers and their physical page placement.

Applications and devices address *virtually contiguous* buffers, but
the OS backs them with scattered 4 KB physical pages. Placement
matters for the paper's root causes: page scatter is why two
colocated sequential streams intermix in the same banks with different
rows, inflating the row-miss ratio (Fig. 7c), and why short-window
bank load is imbalanced (Fig. 7d).

:class:`ContiguousRegion` models hugepage/physically-contiguous
buffers (also used by the bank-hash ablation); :class:`PagedRegion`
models ordinary 4 KB-paged buffers with pseudo-random frame placement.
"""

from __future__ import annotations

import random
from typing import Dict


class Region:
    """A virtually contiguous buffer of ``n_lines`` cachelines."""

    def __init__(self, n_lines: int):
        if n_lines <= 0:
            raise ValueError("n_lines must be positive")
        self.n_lines = n_lines

    def line(self, index: int) -> int:
        """Physical cacheline address of virtual line ``index``."""
        raise NotImplementedError


class ContiguousRegion(Region):
    """Physically contiguous region starting at ``start_line``."""

    def __init__(self, start_line: int, n_lines: int):
        super().__init__(n_lines)
        if start_line < 0:
            raise ValueError("start_line must be non-negative")
        self.start_line = start_line

    def line(self, index: int) -> int:
        """Physical cacheline address of virtual line ``index``."""
        return self.start_line + index


class PagedRegion(Region):
    """Region backed by pseudo-randomly placed physical page frames.

    Frames are drawn lazily from a large physical space with a seeded
    RNG, so runs are deterministic. Frame collisions across regions
    are possible but astronomically rare and harmless (the simulator
    carries no data).
    """

    #: physical space to draw frames from (2^26 frames == 256 GB)
    PHYS_FRAMES = 1 << 26

    def __init__(self, n_lines: int, page_lines: int = 64, seed: int = 0):
        super().__init__(n_lines)
        if page_lines <= 0:
            raise ValueError("page_lines must be positive")
        self.page_lines = page_lines
        self._rng = random.Random(seed)
        self._frames: Dict[int, int] = {}

    def _frame(self, virtual_page: int) -> int:
        frame = self._frames.get(virtual_page)
        if frame is None:
            frame = self._rng.randrange(self.PHYS_FRAMES)
            self._frames[virtual_page] = frame
        return frame

    def line(self, index: int) -> int:
        """Physical cacheline address of virtual line ``index``."""
        page, offset = divmod(index, self.page_lines)
        return self._frame(page) * self.page_lines + offset
