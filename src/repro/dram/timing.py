"""DDR4 timing parameters.

The analytical model (§6, Figs. 9/10) uses four timing constants:

* ``t_trans`` — time to transmit one cacheline over the channel in
  either direction (burst of 8 beats at the data rate);
* ``t_act``  — row activation delay (JEDEC tRCD);
* ``t_pre``  — precharge delay on a row conflict (JEDEC tRP);
* ``t_wtr`` / ``t_rtw`` — write-to-read / read-to-write channel
  turnaround ("switching") delays.

The paper quotes, for its DDR4-2933 modules, a per-request bank
processing delay of t_proc ~= 45 ns and a transmission delay of
t_trans = 2.73 ns; ``ddr4_timing`` reproduces both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.records import CACHELINE_BYTES


@dataclass(frozen=True)
class DramTiming:
    """Timing constants for one DRAM channel (all in nanoseconds)."""

    t_trans: float  # cacheline transmission on the channel
    t_act: float  # ACT (tRCD): load row into the row buffer
    t_pre: float  # PRE (tRP): flush row buffer on conflict
    t_cas: float  # first-access column latency after an ACT
    t_wtr: float  # write-to-read turnaround
    t_rtw: float  # read-to-write turnaround

    @property
    def t_proc(self) -> float:
        """Per-request bank processing delay on a row conflict.

        This is the paper's ``t_Proc``: PRE + ACT + first-access CAS,
        roughly 45 ns for DDR4-2933.
        """
        return self.t_pre + self.t_act + self.t_cas

    @property
    def channel_bandwidth_bytes_per_ns(self) -> float:
        """Peak one-direction bandwidth of the channel (B/ns == GB/s)."""
        return CACHELINE_BYTES / self.t_trans

    def validate(self) -> None:
        """Raise ``ValueError`` on non-physical (non-positive) timings."""
        for name in ("t_trans", "t_act", "t_pre", "t_cas", "t_wtr", "t_rtw"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


def ddr4_timing(speed_mt_s: int) -> DramTiming:
    """Timing for a DDR4 channel at the given transfer rate (MT/s).

    Derivation: a 64 B cacheline is an 8-beat burst on an 8 B bus, so
    ``t_trans = 64 / (speed_mt_s * 8 bytes)``; tRCD = tRP ~= 14.2 ns
    for mainstream DDR4 bins (e.g. 2933 CL21: 21 * 0.682 ns); CAS is
    the same bin. Turnarounds bundle tWTR_L/tRTW plus bus turnaround.
    """
    if speed_mt_s <= 0:
        raise ValueError("speed_mt_s must be positive")
    bytes_per_ns = speed_mt_s * 8 / 1000.0  # MT/s * 8B / 1e3 = B/ns
    t_trans = CACHELINE_BYTES / bytes_per_ns
    return DramTiming(
        t_trans=t_trans,
        t_act=14.3,
        t_pre=14.3,
        t_cas=14.3,
        t_wtr=15.0,
        t_rtw=8.0,
    )


#: Common presets used by the paper's two testbeds (Table 1).
DDR4_2933 = ddr4_timing(2933)
DDR4_3200 = ddr4_timing(3200)
