"""The memory interconnect substrate: DDR4 timing, banks, channels,
and the memory controller with its Read/Write Pending Queues.

This models exactly the DRAM behaviour the paper's analysis depends on
(§3 "DRAM operation" and §5):

* each memory channel transmits in one direction at a time, with a
  switching delay between read and write modes;
* data lives in banks with single-row row buffers; a row miss incurs
  ACT (and PRE on conflict) processing at the bank;
* the MC keeps separate RPQ/WPQ per channel and applies backpressure
  to the CHA when the WPQ fills.
"""

from repro.dram.timing import DramTiming, ddr4_timing
from repro.dram.address import AddressMapper
from repro.dram.bank import Bank
from repro.dram.controller import Channel, MemoryController

__all__ = [
    "DramTiming",
    "ddr4_timing",
    "AddressMapper",
    "Bank",
    "Channel",
    "MemoryController",
]
