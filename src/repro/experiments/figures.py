"""Series builders for the paper's main-text tables and figures.

Every function returns a :class:`FigureData` whose series can be
printed with :func:`repro.experiments.reporting.render_series` and
compared shape-for-shape against the paper. Appendix figures live in
:mod:`repro.experiments.appendix` (B) and
:mod:`repro.experiments.netfigs` (C-E).

Window sizes default to values that keep a full figure under a couple
of minutes of wall time; the benchmarks pass smaller windows where a
coarser estimate suffices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.apps.fio import add_fio
from repro.apps.gapbs import add_gapbs_cores
from repro.apps.redis import add_redis_cores
from repro.experiments.parallel import run_calls
from repro.experiments.quadrants import QUADRANTS, quadrant_experiment
from repro.experiments.runner import (
    ColocationExperiment,
    device_bandwidth_metric,
    workload_ops_metric,
)
from repro.model.inputs import FormulaInputs
from repro.model.read_latency import read_queueing_delay
from repro.model.validation import (
    calibrate_read_constant,
    calibrate_write_constant,
    estimate_c2m_throughput,
    estimate_p2m_throughput,
)
from repro.model.write_latency import write_admission_delay
from repro.sim.records import RequestKind
from repro.telemetry.bankstats import bank_deviation_cdf
from repro.topology.host import Host
from repro.topology.presets import HostConfig, cascade_lake, ice_lake


@dataclass
class FigureData:
    """One reproduced table/figure: named series over shared x values."""

    figure_id: str
    title: str
    x_label: str
    x_values: List
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: str = ""

    def add(self, name: str, values: Sequence[float]) -> None:
        """Attach one named y-series (same length as x_values)."""
        self.series[name] = list(values)


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------


def table1() -> FigureData:
    """Hardware configuration of the two simulated servers."""
    configs = [ice_lake(), cascade_lake()]
    data = FigureData(
        "table1",
        "Table 1: hardware configuration (simulated presets)",
        "attribute",
        [
            "cores",
            "LLC (MB)",
            "DRAM channels",
            "DRAM BW (GB/s)",
            "PCIe BW (GB/s)",
            "LFB entries",
        ],
    )
    for config in configs:
        data.add(
            config.name,
            [
                config.n_cores,
                config.llc_size_bytes / (1 << 20),
                config.n_channels,
                config.theoretical_mem_bandwidth,
                config.pcie_bandwidth,
                config.lfb_size,
            ],
        )
    return data


# ----------------------------------------------------------------------
# Figures 1 and 2: real applications
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AppC2MBuilder:
    """Attach a real C2M app (Redis/GAPBS) — picklable builder."""

    app: str

    def __call__(self, host: Host, n_cores: int) -> None:
        app = self.app
        if app.startswith("redis"):
            mix = "set" if app.endswith("write") else "get"
            add_redis_cores(host, n_cores, query_mix=mix)
        elif app.startswith("gapbs"):
            algorithm = "bc" if app.endswith("bc") else "pr"
            add_gapbs_cores(host, n_cores, algorithm=algorithm)
        else:
            raise ValueError(f"unknown app {app!r}")


@dataclass(frozen=True)
class FioP2MBuilder:
    """Attach an FIO job — picklable builder."""

    mode: str = "read"
    name: str = "fio"

    def __call__(self, host: Host) -> None:
        add_fio(host, mode=self.mode, name=self.name)


def _app_experiment(
    config: HostConfig,
    app: str,
    fio_mode: str = "read",
    fio_cores_reserved: int = 4,
) -> ColocationExperiment:
    """Colocation experiment for a real app against FIO.

    ``fio_cores_reserved`` models the cores pinned to the P2M app; the
    FIO job itself is DMA-driven so the reservation only bounds how
    many C2M cores remain.
    """
    del fio_cores_reserved  # documented; the C2M sweep controls cores
    if app.startswith("redis"):
        mix = "set" if app.endswith("write") else "get"
        c2m_metric = workload_ops_metric(f"redis-{mix}")
    else:
        algorithm = "bc" if app.endswith("bc") else "pr"
        c2m_metric = workload_ops_metric(f"gapbs-{algorithm}")
    return ColocationExperiment(
        config,
        AppC2MBuilder(app),
        FioP2MBuilder(fio_mode),
        c2m_metric=c2m_metric,
        p2m_metric=device_bandwidth_metric("fio"),
    )


# ----------------------------------------------------------------------
# Picklable single-run primitives (fan out through run_calls and hit
# the run cache across figures that reuse the same isolated run).
# ----------------------------------------------------------------------


def stream_run(
    config: HostConfig,
    n_cores: int,
    store_fraction: float,
    warmup: float,
    measure: float,
    traffic_class: str = "c2m",
    seed: int = 1,
):
    """Run an isolated STREAM host (C2M only)."""
    host = Host(config, seed=seed)
    host.add_stream_cores(
        n_cores, store_fraction=store_fraction, traffic_class=traffic_class
    )
    return host.run(warmup, measure)


def dma_run(
    config: HostConfig,
    kind: RequestKind,
    warmup: float,
    measure: float,
    seed: int = 1,
):
    """Run an isolated raw-DMA host (P2M only)."""
    host = Host(config, seed=seed)
    host.add_raw_dma(kind, name="dma")
    return host.run(warmup, measure)


def _stream_fio_run(
    config: HostConfig,
    n_cores: int,
    store_fraction: float,
    warmup: float,
    measure: float,
    seed: int = 1,
):
    """STREAM cores + a low-load 4 KB QD1 FIO job (Fig. 6c/d)."""
    host = Host(config, seed=seed)
    host.add_stream_cores(n_cores, store_fraction=store_fraction)
    add_fio(host, mode="read", io_size_bytes=4096, queue_depth=1,
            t_io_gap=3000.0, name="fio")
    return host.run(warmup, measure)


def fig1(
    core_counts: Sequence[int] = (4, 8, 12, 16, 20, 24, 28),
    warmup: float = 15_000.0,
    measure: float = 40_000.0,
) -> FigureData:
    """Fig. 1: Redis / GAPBS vs FIO on Ice Lake (DDIO on).

    C2M apps degrade while FIO is unaffected, with memory bandwidth
    far from saturated.
    """
    config = ice_lake(llc_mode="full", ddio_enabled=True)
    data = FigureData(
        "fig1",
        "Figure 1: C2M apps degrade, P2M unaffected (Ice Lake)",
        "c2m_cores",
        list(core_counts),
    )
    for app in ("redis", "gapbs"):
        experiment = _app_experiment(config, app)
        points = experiment.sweep(core_counts, warmup, measure)
        data.add(f"{app}_degradation", [p.c2m_degradation for p in points])
        data.add(f"fio_degradation_vs_{app}", [p.p2m_degradation for p in points])
        data.add(
            f"{app}_mem_bw_c2m",
            [p.colocated.class_bandwidth("c2m") for p in points],
        )
        data.add(
            f"{app}_mem_bw_p2m",
            [p.colocated.class_bandwidth("p2m") for p in points],
        )
        data.add(
            f"{app}_mem_util",
            [p.colocated.mem_bw_utilization for p in points],
        )
    data.notes = (
        "Degradation = isolated/colocated throughput (GAPBS: slowdown). "
        "P2M stays ~1.0 while C2M degrades despite unsaturated bandwidth."
    )
    return data


def fig2(
    core_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    warmup: float = 15_000.0,
    measure: float = 40_000.0,
) -> FigureData:
    """Fig. 2: DDIO on/off on Cascade Lake — DDIO can worsen C2M
    degradation when the working set does not fit in cache."""
    data = FigureData(
        "fig2",
        "Figure 2: DDIO on/off, Cascade Lake",
        "c2m_cores",
        list(core_counts),
    )
    for ddio in (True, False):
        config = cascade_lake(llc_mode="full", ddio_enabled=ddio)
        tag = "ddio_on" if ddio else "ddio_off"
        for app in ("redis", "gapbs"):
            experiment = _app_experiment(config, app)
            points = experiment.sweep(core_counts, warmup, measure)
            data.add(f"{app}_{tag}_degradation", [p.c2m_degradation for p in points])
            data.add(
                f"fio_{tag}_degradation_vs_{app}",
                [p.p2m_degradation for p in points],
            )
            data.add(
                f"{app}_{tag}_mem_bw",
                [p.colocated.mem_bw_total for p in points],
            )
    data.notes = "DDIO-on curves should sit at or above DDIO-off C2M degradation."
    return data


# ----------------------------------------------------------------------
# Figure 3: the four quadrants
# ----------------------------------------------------------------------


def fig3(
    core_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
) -> FigureData:
    """Fig. 3: blue and red regimes across the four quadrants."""
    data = FigureData(
        "fig3",
        "Figure 3: blue/red regimes across quadrants (Cascade Lake)",
        "c2m_cores",
        list(core_counts),
    )
    for q in (1, 2, 3, 4):
        experiment = quadrant_experiment(QUADRANTS[q], config)
        points = experiment.sweep(core_counts, warmup, measure)
        data.add(f"q{q}_c2m_degradation", [p.c2m_degradation for p in points])
        data.add(f"q{q}_p2m_degradation", [p.p2m_degradation for p in points])
        data.add(
            f"q{q}_c2m_bw", [p.colocated.class_bandwidth("c2m") for p in points]
        )
        data.add(
            f"q{q}_p2m_bw", [p.colocated.class_bandwidth("p2m") for p in points]
        )
        data.add(f"q{q}_regime", [p.regime.value for p in points])
    data.notes = (
        "Quadrants 1/2/4: blue (C2M degrades, P2M ~1.0). Quadrant 3: blue at "
        "low core counts, red once memory bandwidth saturates."
    )
    return data


# ----------------------------------------------------------------------
# Figure 6: evidence for domains
# ----------------------------------------------------------------------


def fig6(
    core_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
) -> FigureData:
    """Fig. 6: per-domain evidence.

    (a) C2M-Read: LFB latency vs CHA->DRAM read latency (inclusive).
    (b) C2M-ReadWrite: LFB latency vs CHA->MC write latency (the
        latter can exceed the former: C2M-Write excludes the MC).
    (c, d) low-load P2M write (4 KB QD1) + C2M-ReadWrite: IIO latency
        vs CHA->MC write latency (inclusive; inflations match).
    """
    if config is None:
        config = cascade_lake()
    data = FigureData(
        "fig6",
        "Figure 6: evidence for domains and their characteristics",
        "c2m_cores",
        list(core_counts),
    )
    calls = (
        [(stream_run, (config, n, 0.0, warmup, measure), {}) for n in core_counts]
        + [(stream_run, (config, n, 1.0, warmup, measure), {}) for n in core_counts]
        + [(_stream_fio_run, (config, n, 1.0, warmup, measure), {}) for n in core_counts]
    )
    results = run_calls(calls)
    k = len(core_counts)
    reads, rws, fios = results[:k], results[k : 2 * k], results[2 * k :]

    data.add("a_lfb_latency_c2m_read", [r.latency("c2m_read") for r in reads])
    data.add("a_cha_dram_read_latency", [r.latency("cha_dram_read") for r in reads])

    data.add("b_lfb_latency_c2m_rw", [r.latency("lfb_total") for r in rws])
    data.add("b_cha_mc_write_latency", [r.latency("cha_mc_write") for r in rws])

    iio_lat = [r.latency("p2m_write", "p2m") for r in fios]
    cha_mc_w2 = [r.latency("cha_mc_write", "p2m") for r in fios]
    data.add("c_iio_latency_p2m_write", iio_lat)
    data.add("c_cha_mc_write_latency", cha_mc_w2)
    base_iio, base_cha = iio_lat[0], cha_mc_w2[0]
    data.add("d_iio_latency_inflation", [v - base_iio for v in iio_lat])
    data.add("d_cha_mc_write_inflation", [v - base_cha for v in cha_mc_w2])
    data.notes = (
        "(a) LFB latency strictly exceeds and tracks CHA->DRAM read latency. "
        "(b) CHA->MC write latency can exceed LFB latency (C2M-Write domain "
        "excludes the MC). (c, d) IIO latency includes CHA->MC write latency "
        "and their inflations match (P2M-Write domain includes the MC)."
    )
    return data


# ----------------------------------------------------------------------
# Figures 7/8: root causes in quadrants 1 and 3
# ----------------------------------------------------------------------


def root_cause_panels(
    figure_id: str,
    title: str,
    experiment: ColocationExperiment,
    p2m_is_write: bool,
    core_counts: Sequence[int],
    warmup: float,
    measure: float,
    cdf_core_count: int = 1,
    c2m_class: str = "c2m",
) -> FigureData:
    """Shared builder for the root-cause metric panels (Figs. 7/8/13/14
    and their RDMA/DCTCP counterparts in Appendix D)."""
    data = FigureData(figure_id, title, "c2m_cores", list(core_counts))
    results = run_calls(
        [(experiment.run_colocated, (n, warmup, measure), {}) for n in core_counts]
        + [(experiment.run_c2m_isolated, (n, warmup, measure), {}) for n in core_counts]
    )
    with_p2m = results[: len(core_counts)]
    without_p2m = results[len(core_counts) :]

    data.add(
        "c2m_read_latency_with_p2m",
        [r.latency("c2m_read", c2m_class) for r in with_p2m],
    )
    data.add(
        "c2m_read_latency_without_p2m",
        [r.latency("c2m_read", c2m_class) for r in without_p2m],
    )
    data.add("rpq_occupancy_with_p2m", [r.rpq_avg_occupancy for r in with_p2m])
    data.add("rpq_occupancy_without_p2m", [r.rpq_avg_occupancy for r in without_p2m])
    data.add(
        "row_miss_ratio_with_p2m",
        [r.row_miss_ratio.get(f"{c2m_class}.read", 0.0) for r in with_p2m],
    )
    data.add(
        "row_miss_ratio_without_p2m",
        [r.row_miss_ratio.get(f"{c2m_class}.read", 0.0) for r in without_p2m],
    )
    if p2m_is_write:
        data.add(
            "p2m_write_latency", [r.latency("p2m_write", "p2m") for r in with_p2m]
        )
        data.add("wpq_full_fraction", [r.wpq_full_fraction for r in with_p2m])
        data.add("iio_write_occupancy", [r.iio_write_avg_occupancy for r in with_p2m])
        data.add("n_waiting", [r.cha_write_waiting_avg for r in with_p2m])
        data.add(
            "cha_admission_delay_c2m",
            [r.cha_admission_delay.get("c2m", 0.0) for r in with_p2m],
        )
    else:
        data.add(
            "p2m_read_latency", [r.latency("p2m_read", "p2m") for r in with_p2m]
        )
        data.add(
            "inflight_p2m_reads", [r.cha_inflight_p2m_reads_avg for r in with_p2m]
        )
        data.add("iio_read_occupancy", [r.iio_read_avg_occupancy for r in with_p2m])

    # Bank-deviation CDF at a fixed core count (Fig. 7d).
    idx = list(core_counts).index(cdf_core_count) if cdf_core_count in core_counts else 0
    grid = [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0]
    for label, runs in (("with_p2m", with_p2m), ("without_p2m", without_p2m)):
        deviations = runs[idx].bank_deviations
        if deviations:
            _, cdf = bank_deviation_cdf(deviations, grid)
            data.add(f"bank_dev_cdf_{label}", list(cdf))
        else:
            data.add(f"bank_dev_cdf_{label}", [np.nan] * len(grid))
    data.notes = (
        f"bank_dev_cdf_* series are CDF values on deviation grid {grid} "
        f"for the {core_counts[idx]}-core point, not per-core-count values."
    )
    return data


def _quadrant_root_cause(
    figure_id: str,
    quadrant: int,
    core_counts: Sequence[int],
    config: Optional[HostConfig],
    warmup: float,
    measure: float,
) -> FigureData:
    spec = QUADRANTS[quadrant]
    experiment = quadrant_experiment(spec, config)
    return root_cause_panels(
        figure_id,
        f"{figure_id}: root-cause metrics for {spec.describe()}",
        experiment,
        p2m_is_write=spec.p2m_kind is RequestKind.WRITE,
        core_counts=core_counts,
        warmup=warmup,
        measure=measure,
    )


def fig7(
    core_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
) -> FigureData:
    """Fig. 7: understanding quadrant 1 (C2M-Read + P2M-Write)."""
    return _quadrant_root_cause("fig7", 1, core_counts, config, warmup, measure)


def fig8(
    core_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
) -> FigureData:
    """Fig. 8: understanding quadrant 3 (C2M-ReadWrite + P2M-Write)."""
    return _quadrant_root_cause("fig8", 3, core_counts, config, warmup, measure)


# ----------------------------------------------------------------------
# Figures 11/12: analytical-formula validation
# ----------------------------------------------------------------------


def _calibrate(config: HostConfig, warmup: float, measure: float):
    """Unloaded constants for the C2M-Read and P2M-Write domains."""
    timing = config.dram_timing
    unloaded_read, unloaded_write, unloaded_p2m_read, unloaded_rw = run_calls(
        [
            (stream_run, (config, 1, 0.0, warmup, measure), {}),
            (dma_run, (config, RequestKind.WRITE, warmup, measure), {}),
            (dma_run, (config, RequestKind.READ, warmup, measure), {}),
            (stream_run, (config, 1, 1.0, warmup, measure), {}),
        ]
    )
    constant_read = calibrate_read_constant(unloaded_read, timing)
    constant_write_p2m = calibrate_write_constant(unloaded_write, timing)
    constant_read_p2m = calibrate_read_constant(
        unloaded_p2m_read, timing, domain="p2m_read", traffic_class="p2m"
    )
    constant_write_c2m = max(0.0, unloaded_rw.latency("c2m_write"))
    return constant_read, constant_write_p2m, constant_read_p2m, constant_write_c2m


def fig11(
    core_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
) -> FigureData:
    """Fig. 11: signed error of the formula's throughput estimates."""
    if config is None:
        config = cascade_lake()
    c_read, c_write_p2m, c_read_p2m, c_write_c2m = _calibrate(config, warmup, measure)
    data = FigureData(
        "fig11",
        "Figure 11: analytical formula accuracy (signed error)",
        "c2m_cores",
        list(core_counts),
    )
    quadrant_order = (1, 2, 4, 3)
    experiments = {
        q: quadrant_experiment(QUADRANTS[q], config) for q in quadrant_order
    }
    runs = run_calls(
        [
            (experiments[q].run_colocated, (n, warmup, measure), {})
            for q in quadrant_order
            for n in core_counts
        ]
    )
    runs_by_q = {
        q: runs[i * len(core_counts) : (i + 1) * len(core_counts)]
        for i, q in enumerate(quadrant_order)
    }
    for q in (1, 2, 4):
        spec = QUADRANTS[q]
        errors = []
        for n, run in zip(core_counts, runs_by_q[q]):
            estimate = estimate_c2m_throughput(
                run,
                c_read,
                n,
                store_stream=spec.store_fraction > 0,
                constant_write=c_write_c2m,
            )
            errors.append(estimate.error)
        data.add(f"q{q}_c2m_error", errors)

    for corrected in (False, True):
        tag = "corrected" if corrected else "raw"
        c2m_err, p2m_err = [], []
        for n, run in zip(core_counts, runs_by_q[3]):
            c2m = estimate_c2m_throughput(
                run,
                c_read,
                n,
                store_stream=True,
                constant_write=c_write_c2m,
                cha_admission_correction=corrected,
            )
            p2m = estimate_p2m_throughput(
                run,
                c_write_p2m,
                is_write=True,
                cha_admission_correction=corrected,
            )
            c2m_err.append(c2m.error)
            p2m_err.append(p2m.error)
        data.add(f"q3_c2m_error_{tag}", c2m_err)
        data.add(f"q3_p2m_error_{tag}", p2m_err)
    data.notes = (
        "Positive = overestimation. Read-stream quadrants (1/2) hold within "
        "~10-15% at all loads; store-stream quadrants (3/4) reproduce the "
        "paper's raw-Q3 signature of error growth at high load (see "
        "EXPERIMENTS.md, fidelity gap 2). "
        f"Unused calibration constant for P2M-Read: {c_read_p2m:.0f} ns."
    )
    return data


def fig12(
    core_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
) -> FigureData:
    """Fig. 12: breakdown of the formula's queueing-delay components."""
    if config is None:
        config = cascade_lake()
    timing = config.dram_timing
    data = FigureData(
        "fig12",
        "Figure 12: analytical formula component breakdown (ns)",
        "c2m_cores",
        list(core_counts),
    )
    experiments = {q: quadrant_experiment(QUADRANTS[q], config) for q in (1, 2, 3, 4)}
    runs = run_calls(
        [
            (experiments[q].run_colocated, (n, warmup, measure), {})
            for q in (1, 2, 3, 4)
            for n in core_counts
        ]
    )
    runs_by_q = {
        q: runs[i * len(core_counts) : (i + 1) * len(core_counts)]
        for i, q in enumerate((1, 2, 3, 4))
    }
    for q in (1, 2, 3, 4):
        switching, write_hol, read_hol, top_q, adm = [], [], [], [], []
        w_switch, w_rhol, w_whol, w_topq = [], [], [], []
        for n, run in zip(core_counts, runs_by_q[q]):
            inputs = FormulaInputs.from_run(run)
            read_bd = read_queueing_delay(inputs, timing)
            switching.append(read_bd.switching)
            write_hol.append(read_bd.write_hol)
            read_hol.append(read_bd.read_hol)
            top_q.append(read_bd.top_of_queue)
            adm.append(run.cha_admission_delay.get("c2m", 0.0))
            if q == 3:
                write_bd = write_admission_delay(inputs, timing)
                w_switch.append(write_bd.switching)
                w_rhol.append(write_bd.read_hol)
                w_whol.append(write_bd.write_hol)
                w_topq.append(write_bd.top_of_queue)
        data.add(f"q{q}_switching", switching)
        data.add(f"q{q}_write_hol", write_hol)
        data.add(f"q{q}_read_hol", read_hol)
        data.add(f"q{q}_top_of_queue", top_q)
        data.add(f"q{q}_cha_admission", adm)
        if q == 3:
            data.add("q3_p2m_switching", w_switch)
            data.add("q3_p2m_read_hol", w_rhol)
            data.add("q3_p2m_write_hol", w_whol)
            data.add("q3_p2m_top_of_queue", w_topq)
    data.notes = (
        "Q1: WriteHoL dominates at 1 core, ReadHoL grows with cores. "
        "Q2: no WriteHoL (no writes). Q4: ReadHoL dominates. "
        "Q3: CHA admission grows at high core counts."
    )
    return data
