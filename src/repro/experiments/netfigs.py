"""Networking case-study figure builders (Appendices C, D, E:
Figs. 18-30).

RDMA figures replace the SSD P2M generator with a RoCE/PFC NIC; DCTCP
figures add a full receive pipeline (NIC + copy cores + sender control
loop) so the network app contributes both P2M and C2M traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.figures import FigureData, root_cause_panels, stream_run
from repro.experiments.parallel import run_calls
from repro.experiments.quadrants import QUADRANTS, QuadrantSpec, StreamC2MBuilder
from repro.experiments.runner import (
    ColocationExperiment,
    c2m_bandwidth_metric,
    device_bandwidth_metric,
)
from repro.model.inputs import FormulaInputs
from repro.model.read_latency import read_domain_latency, read_queueing_delay
from repro.model.validation import (
    ThroughputEstimate,
    calibrate_read_constant,
    calibrate_write_constant,
    estimate_c2m_throughput,
    estimate_p2m_throughput,
)
from repro.model.write_latency import write_admission_delay, write_domain_latency
from repro.net.dctcp import DctcpReceiver
from repro.net.rdma import add_rdma_read_traffic, add_rdma_write_traffic, gbps_to_bytes_per_ns
from repro.sim.records import CACHELINE_BYTES, RequestKind
from repro.topology.host import Host, RunResult
from repro.topology.presets import HostConfig, cascade_lake

#: achieved NIC rate in the paper's RDMA setup (~98 Gb/s)
RDMA_GBPS = 98.0


@dataclass(frozen=True)
class RdmaP2MBuilder:
    """Attach RoCE NIC traffic (picklable P2M builder)."""

    kind: RequestKind
    rate_gbps: float = RDMA_GBPS
    name: str = "nic"

    def __call__(self, host: Host) -> None:
        if self.kind is RequestKind.WRITE:
            add_rdma_write_traffic(host, rate_gbps=self.rate_gbps, name=self.name)
        else:
            add_rdma_read_traffic(host, rate_gbps=self.rate_gbps, name=self.name)


def rdma_quadrant_experiment(
    spec: QuadrantSpec, config: Optional[HostConfig] = None, seed: int = 1
) -> ColocationExperiment:
    """A quadrant experiment with NIC-generated P2M traffic."""
    if config is None:
        config = cascade_lake()
    return ColocationExperiment(
        config,
        StreamC2MBuilder(store_fraction=spec.store_fraction),
        RdmaP2MBuilder(spec.p2m_kind),
        c2m_metric=c2m_bandwidth_metric(),
        p2m_metric=device_bandwidth_metric("nic"),
        seed=seed,
    )


# ----------------------------------------------------------------------
# Figure 18: RDMA quadrants
# ----------------------------------------------------------------------


def fig18(
    core_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
) -> FigureData:
    """Fig. 18: blue/red regimes across the four RDMA quadrants."""
    data = FigureData(
        "fig18",
        "Figure 18: blue/red regimes, RDMA (RoCE/PFC) case study",
        "c2m_cores",
        list(core_counts),
    )
    for q in (1, 2, 3, 4):
        experiment = rdma_quadrant_experiment(QUADRANTS[q], config)
        points = experiment.sweep(core_counts, warmup, measure)
        data.add(f"q{q}_c2m_degradation", [p.c2m_degradation for p in points])
        data.add(f"q{q}_p2m_degradation", [p.p2m_degradation for p in points])
        data.add(f"q{q}_c2m_bw", [p.colocated.class_bandwidth("c2m") for p in points])
        data.add(f"q{q}_p2m_bw", [p.colocated.class_bandwidth("p2m") for p in points])
        if QUADRANTS[q].p2m_kind is RequestKind.WRITE:
            data.add(
                f"q{q}_pfc_pause_fraction",
                [p.colocated.extra.get("nic.pause_fraction", 0.0) for p in points],
            )
    data.notes = (
        "Same regime structure as Fig. 3 with slightly lower magnitudes "
        "(the NIC generates ~98 Gb/s vs the SSDs' ~112 Gb/s)."
    )
    return data


# ----------------------------------------------------------------------
# Figures 20/21/22/24: RDMA root-cause panels
# ----------------------------------------------------------------------


def _rdma_root_cause(
    figure_id: str,
    quadrant: int,
    core_counts: Sequence[int],
    config: Optional[HostConfig],
    warmup: float,
    measure: float,
) -> FigureData:
    spec = QUADRANTS[quadrant]
    experiment = rdma_quadrant_experiment(spec, config)
    return root_cause_panels(
        figure_id,
        f"{figure_id}: RDMA root-cause metrics for {spec.describe()}",
        experiment,
        p2m_is_write=spec.p2m_kind is RequestKind.WRITE,
        core_counts=core_counts,
        warmup=warmup,
        measure=measure,
    )


def fig20(core_counts=(1, 2, 3, 4, 5, 6), config=None, warmup=20_000.0, measure=60_000.0):
    """Fig. 20: RDMA quadrant 1 root-cause metrics."""
    return _rdma_root_cause("fig20", 1, core_counts, config, warmup, measure)


def fig21(core_counts=(1, 2, 3, 4, 5, 6), config=None, warmup=20_000.0, measure=60_000.0):
    """Fig. 21: RDMA quadrant 2 root-cause metrics."""
    return _rdma_root_cause("fig21", 2, core_counts, config, warmup, measure)


def fig22(core_counts=(1, 2, 3, 4, 5, 6), config=None, warmup=20_000.0, measure=60_000.0):
    """Fig. 22: RDMA quadrant 3 root-cause metrics (incl. PFC pauses)."""
    data = _rdma_root_cause("fig22", 3, core_counts, config, warmup, measure)
    spec = QUADRANTS[3]
    experiment = rdma_quadrant_experiment(spec, config)
    runs = run_calls(
        [(experiment.run_colocated, (n, warmup, measure), {}) for n in core_counts]
    )
    data.add(
        "pfc_pause_fraction",
        [run.extra.get("nic.pause_fraction", 0.0) for run in runs],
    )
    return data


def fig24(core_counts=(1, 2, 3, 4, 5, 6), config=None, warmup=20_000.0, measure=60_000.0):
    """Fig. 24: RDMA quadrant 4 root-cause metrics."""
    return _rdma_root_cause("fig24", 4, core_counts, config, warmup, measure)


# ----------------------------------------------------------------------
# Figure 23: microsecond-scale IIO occupancy under PFC
# ----------------------------------------------------------------------


def fig23(
    core_counts: Sequence[int] = (4, 5, 6),
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 40_000.0,
    sample_interval_ns: float = 1_000.0,
) -> FigureData:
    """Fig. 23: µs-scale IIO write-buffer occupancy, RDMA quadrant 3.

    Under PFC the NIC keeps enough data queued to hold the IIO buffer
    near full capacity throughout.
    """
    if config is None:
        config = cascade_lake()
    n_samples = int(measure // sample_interval_ns)
    data = FigureData(
        "fig23",
        "Figure 23: microsecond-scale IIO write-buffer occupancy (RDMA Q3)",
        "time_us",
        [round(i * sample_interval_ns / 1000.0, 3) for i in range(n_samples)],
    )
    traces = run_calls(
        [
            (_iio_occupancy_trace, (config, n, n_samples, sample_interval_ns, warmup), {})
            for n in core_counts
        ]
    )
    for n, samples in zip(core_counts, traces):
        data.add(f"iio_occupancy_{n}_cores", samples)
    data.notes = "Occupancy should sit near the 92-entry capacity throughout."
    return data


def _iio_occupancy_trace(
    config: HostConfig,
    n_cores: int,
    n_samples: int,
    sample_interval_ns: float,
    warmup: float,
) -> List[float]:
    """Sample the IIO write-buffer occupancy every interval (Fig. 23)."""
    host = Host(config)
    host.add_stream_cores(n_cores, store_fraction=1.0)
    add_rdma_write_traffic(host, rate_gbps=RDMA_GBPS, name="nic")
    samples: List[float] = []

    def sample() -> None:
        samples.append(float(host.iio.write_occ.value))
        if len(samples) < n_samples:
            host.sim.schedule(sample_interval_ns, sample)

    host.start()
    host.sim.run_until(warmup)
    host.reset_measurement()
    host.sim.schedule(0.0, sample)
    host.sim.run_until(warmup + n_samples * sample_interval_ns)
    while len(samples) < n_samples:
        samples.append(samples[-1] if samples else 0.0)
    return samples


# ----------------------------------------------------------------------
# Figure 19: DCTCP case study
# ----------------------------------------------------------------------


def _dctcp_point(
    n_mem_cores: int,
    store_fraction: float,
    config: HostConfig,
    warmup: float,
    measure: float,
) -> Dict[str, float]:
    """One DCTCP colocation point: memory app + TCP Rx on one host.

    Returns a plain dict of floats plus the :class:`RunResult` so the
    point is picklable (process-pool friendly and run-cacheable); the
    receiver's metrics are computed in place of returning the object.
    """
    host = Host(config)
    if n_mem_cores:
        host.add_stream_cores(n_mem_cores, store_fraction, traffic_class="mem")
    receiver = DctcpReceiver(host)
    result = host.run(warmup, measure)
    return {
        "goodput": receiver.goodput(result.elapsed_ns),
        "loss_rate": receiver.loss_rate(),
        "mem_bw": result.class_bandwidth("mem"),
        "copy_bw": result.class_bandwidth("copy"),
        "p2m_bw": result.class_bandwidth("p2m"),
        "result": result,
    }


def fig19(
    core_counts: Sequence[int] = (1, 2, 3, 4),
    config: Optional[HostConfig] = None,
    warmup: float = 60_000.0,
    measure: float = 120_000.0,
) -> FigureData:
    """Fig. 19: DCTCP receive-side colocation.

    Both the memory app and the network app degrade; the memory app
    degrades more at low load, and for C2M-ReadWrite the network app
    overtakes at higher load.
    """
    if config is None:
        config = cascade_lake()
    data = FigureData(
        "fig19",
        "Figure 19: DCTCP case study (memory app + TCP Rx)",
        "c2m_cores",
        list(core_counts),
    )
    variants = ((0.0, "c2mread"), (1.0, "c2mrw"))
    calls = [(_dctcp_point, (0, 0.0, config, warmup, measure), {})]
    for store_fraction, _ in variants:
        for n in core_counts:
            calls.append(
                (
                    stream_run,
                    (config, n, store_fraction, warmup, measure),
                    {"traffic_class": "mem"},
                )
            )
            calls.append((_dctcp_point, (n, store_fraction, config, warmup, measure), {}))
    results = run_calls(calls)
    tcp_iso = results[0]
    cursor = 1
    for store_fraction, tag in variants:
        mem_deg, net_deg, mem_bw, copy_bw, p2m_bw, loss = [], [], [], [], [], []
        for n in core_counts:
            mem_iso = results[cursor].class_bandwidth("mem")
            point = results[cursor + 1]
            cursor += 2
            mem_deg.append(mem_iso / max(1e-9, point["mem_bw"]))
            net_deg.append(tcp_iso["goodput"] / max(1e-9, point["goodput"]))
            mem_bw.append(point["mem_bw"])
            copy_bw.append(point["copy_bw"])
            p2m_bw.append(point["p2m_bw"])
            loss.append(point["loss_rate"])
        data.add(f"{tag}_memory_app_degradation", mem_deg)
        data.add(f"{tag}_network_app_degradation", net_deg)
        data.add(f"{tag}_mem_bw", mem_bw)
        data.add(f"{tag}_copy_bw", copy_bw)
        data.add(f"{tag}_p2m_bw", p2m_bw)
        data.add(f"{tag}_loss_rate", loss)
    data.notes = (
        "Blue regime: both apps degrade via C2M latency (copy slowdown -> "
        "flow control). Red regime (C2M-RW, high load): P2M degradation "
        "causes NIC drops and a congestion response."
    )
    return data


def _dctcp_root_cause(
    figure_id: str,
    store_fraction: float,
    core_counts: Sequence[int],
    config: Optional[HostConfig],
    warmup: float,
    measure: float,
) -> FigureData:
    """Figs. 25/26: DCTCP root-cause metrics."""
    if config is None:
        config = cascade_lake()
    workload = "C2MRead" if store_fraction == 0.0 else "C2MReadWrite"
    data = FigureData(
        figure_id,
        f"{figure_id}: DCTCP root-cause metrics ({workload} + TCP Rx)",
        "c2m_cores",
        list(core_counts),
    )
    points = run_calls(
        [
            (_dctcp_point, (n, store_fraction, config, warmup, measure), {})
            for n in core_counts
        ]
    )
    runs = [point["result"] for point in points]
    data.add("c2m_read_latency_mem", [r.latency("c2m_read", "mem") for r in runs])
    data.add("c2m_read_latency_copy", [r.latency("c2m_read", "copy") for r in runs])
    data.add("rpq_occupancy", [r.rpq_avg_occupancy for r in runs])
    data.add("p2m_write_latency", [r.latency("p2m_write", "p2m") for r in runs])
    data.add("wpq_full_fraction", [r.wpq_full_fraction for r in runs])
    data.add("iio_write_occupancy", [r.iio_write_avg_occupancy for r in runs])
    data.add(
        "loss_rate", [r.extra.get("nic.loss_rate", 0.0) for r in runs]
    )
    return data


def fig25(core_counts=(1, 2, 3, 4), config=None, warmup=60_000.0, measure=120_000.0):
    """Fig. 25: C2MRead + TCP Rx root-cause metrics."""
    return _dctcp_root_cause("fig25", 0.0, core_counts, config, warmup, measure)


def fig26(core_counts=(1, 2, 3, 4), config=None, warmup=60_000.0, measure=120_000.0):
    """Fig. 26: C2MReadWrite + TCP Rx root-cause metrics."""
    return _dctcp_root_cause("fig26", 1.0, core_counts, config, warmup, measure)


# ----------------------------------------------------------------------
# Figures 27/28: formula validation on RDMA
# ----------------------------------------------------------------------


def _rdma_write_iso_run(config: HostConfig, warmup: float, measure: float):
    """Isolated RoCE write traffic (calibration run)."""
    host = Host(config)
    add_rdma_write_traffic(host, rate_gbps=RDMA_GBPS, name="nic")
    return host.run(warmup, measure)


def _rdma_calibrate(config: HostConfig, warmup: float, measure: float):
    timing = config.dram_timing
    unloaded_read, unloaded_write, unloaded_rw = run_calls(
        [
            (stream_run, (config, 1, 0.0, warmup, measure), {}),
            (_rdma_write_iso_run, (config, warmup, measure), {}),
            (stream_run, (config, 1, 1.0, warmup, measure), {}),
        ]
    )
    c_read = calibrate_read_constant(unloaded_read, timing)
    c_write = calibrate_write_constant(unloaded_write, timing)
    c_write_c2m = unloaded_rw.latency("c2m_write")
    return c_read, c_write, c_write_c2m


def fig27(
    core_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
) -> FigureData:
    """Fig. 27: formula accuracy on the RDMA case study."""
    if config is None:
        config = cascade_lake()
    c_read, c_write, c_write_c2m = _rdma_calibrate(config, warmup, measure)
    offered = gbps_to_bytes_per_ns(RDMA_GBPS)
    data = FigureData(
        "fig27",
        "Figure 27: analytical formula accuracy, RDMA case study",
        "c2m_cores",
        list(core_counts),
    )
    experiments = {
        q: rdma_quadrant_experiment(QUADRANTS[q], config) for q in (1, 2, 3, 4)
    }
    all_runs = run_calls(
        [
            (experiments[q].run_colocated, (n, warmup, measure), {})
            for q in (1, 2, 3, 4)
            for n in core_counts
        ]
    )
    runs_by_q = {
        q: all_runs[i * len(core_counts) : (i + 1) * len(core_counts)]
        for i, q in enumerate((1, 2, 3, 4))
    }
    for q in (1, 2, 3, 4):
        spec = QUADRANTS[q]
        c2m_err, p2m_err = [], []
        for n, run in zip(core_counts, runs_by_q[q]):
            c2m = estimate_c2m_throughput(
                run,
                c_read,
                n,
                store_stream=spec.store_fraction > 0,
                constant_write=c_write_c2m,
                cha_admission_correction=True,
            )
            c2m_err.append(c2m.error)
            if spec.p2m_kind is RequestKind.WRITE:
                p2m = estimate_p2m_throughput(
                    run,
                    c_write,
                    is_write=True,
                    offered_rate=offered,
                    cha_admission_correction=True,
                )
                p2m_err.append(p2m.error)
            else:
                p2m_err.append(0.0)
        data.add(f"q{q}_c2m_error", c2m_err)
        data.add(f"q{q}_p2m_error", p2m_err)
    data.notes = "The paper reports <= 6.5% error across RDMA data points."
    return data


def fig28(
    core_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
) -> FigureData:
    """Fig. 28: formula component breakdown, RDMA case study."""
    if config is None:
        config = cascade_lake()
    timing = config.dram_timing
    data = FigureData(
        "fig28",
        "Figure 28: formula component breakdown, RDMA case study (ns)",
        "c2m_cores",
        list(core_counts),
    )
    experiments = {
        q: rdma_quadrant_experiment(QUADRANTS[q], config) for q in (1, 2, 3, 4)
    }
    all_runs = run_calls(
        [
            (experiments[q].run_colocated, (n, warmup, measure), {})
            for q in (1, 2, 3, 4)
            for n in core_counts
        ]
    )
    runs_by_q = {
        q: all_runs[i * len(core_counts) : (i + 1) * len(core_counts)]
        for i, q in enumerate((1, 2, 3, 4))
    }
    for q in (1, 2, 3, 4):
        switching, write_hol, read_hol, top_q = [], [], [], []
        for run in runs_by_q[q]:
            breakdown = read_queueing_delay(FormulaInputs.from_run(run), timing)
            switching.append(breakdown.switching)
            write_hol.append(breakdown.write_hol)
            read_hol.append(breakdown.read_hol)
            top_q.append(breakdown.top_of_queue)
        data.add(f"q{q}_switching", switching)
        data.add(f"q{q}_write_hol", write_hol)
        data.add(f"q{q}_read_hol", read_hol)
        data.add(f"q{q}_top_of_queue", top_q)
    return data


# ----------------------------------------------------------------------
# Figures 29/30: formula validation on DCTCP
# ----------------------------------------------------------------------


def fig29(
    core_counts: Sequence[int] = (1, 2, 3, 4),
    config: Optional[HostConfig] = None,
    warmup: float = 60_000.0,
    measure: float = 120_000.0,
) -> FigureData:
    """Fig. 29: formula accuracy on the DCTCP case study.

    As in Appendix E.2, the network app's C2M throughput is estimated
    by dividing its measured LFB occupancy by the formula's C2M
    latency, and its P2M throughput by dividing the measured IIO
    occupancy by the formula's P2M-Write latency.
    """
    if config is None:
        config = cascade_lake()
    timing = config.dram_timing
    variants = ((0.0, "c2mread"), (1.0, "c2mrw"))
    calls = [
        (stream_run, (config, 1, 0.0, warmup, measure), {"traffic_class": "mem"}),
        (_dctcp_point, (0, 0.0, config, warmup, measure), {}),
    ]
    for store_fraction, _ in variants:
        for n in core_counts:
            calls.append((_dctcp_point, (n, store_fraction, config, warmup, measure), {}))
    results = run_calls(calls)
    c_read = calibrate_read_constant(results[0], timing, traffic_class="mem")
    c_write = calibrate_write_constant(results[1]["result"], timing)

    data = FigureData(
        "fig29",
        "Figure 29: analytical formula accuracy, DCTCP case study",
        "c2m_cores",
        list(core_counts),
    )
    cursor = 2
    for store_fraction, tag in variants:
        mem_err, copy_err, p2m_err = [], [], []
        for n in core_counts:
            point = results[cursor]
            cursor += 1
            run: RunResult = point["result"]
            inputs = FormulaInputs.from_run(run)
            latency = read_domain_latency(c_read, inputs, timing)
            latency += run.cha_admission_delay.get("mem", 0.0)
            # Memory app: LFB-bound bound (x2 lines for the RW stream).
            lines_per_req = 2.0 if store_fraction > 0 else 1.0
            est_mem = (
                n * config.effective_lfb_size * lines_per_req * CACHELINE_BYTES / latency
            )
            mem_err.append(
                ThroughputEstimate(est_mem, max(1e-9, run.class_bandwidth("mem"))).error
            )
            # Network app C2M: measured copy LFB occupancy / formula latency.
            copy_occ = run.lfb_avg_occupancy.get("copy", 0.0)
            est_copy = copy_occ * 2.0 * CACHELINE_BYTES / latency
            copy_err.append(
                ThroughputEstimate(
                    est_copy, max(1e-9, run.class_bandwidth("copy"))
                ).error
            )
            # Network app P2M: measured IIO occupancy / formula latency.
            w_latency = write_domain_latency(c_write, inputs, timing)
            w_latency += run.cha_admission_delay.get("p2m", 0.0)
            est_p2m = run.iio_write_avg_occupancy * CACHELINE_BYTES / w_latency
            p2m_err.append(
                ThroughputEstimate(est_p2m, max(1e-9, run.class_bandwidth("p2m"))).error
            )
        data.add(f"{tag}_memory_app_error", mem_err)
        data.add(f"{tag}_network_c2m_error", copy_err)
        data.add(f"{tag}_network_p2m_error", p2m_err)
    data.notes = (
        "The paper reports <= 10% error except the highest-loss point "
        "(congestion-control dynamics dominate there)."
    )
    return data


def fig30(
    core_counts: Sequence[int] = (1, 2, 3, 4),
    config: Optional[HostConfig] = None,
    warmup: float = 60_000.0,
    measure: float = 120_000.0,
) -> FigureData:
    """Fig. 30: formula component breakdown, DCTCP case study."""
    if config is None:
        config = cascade_lake()
    timing = config.dram_timing
    data = FigureData(
        "fig30",
        "Figure 30: formula component breakdown, DCTCP case study (ns)",
        "c2m_cores",
        list(core_counts),
    )
    variants = ((0.0, "c2mread"), (1.0, "c2mrw"))
    points = run_calls(
        [
            (_dctcp_point, (n, store_fraction, config, warmup, measure), {})
            for store_fraction, _ in variants
            for n in core_counts
        ]
    )
    cursor = 0
    for store_fraction, tag in variants:
        r_switch, r_whol, r_rhol, r_topq = [], [], [], []
        w_switch, w_rhol, w_whol, w_topq = [], [], [], []
        for n in core_counts:
            point = points[cursor]
            cursor += 1
            inputs = FormulaInputs.from_run(point["result"])
            read_bd = read_queueing_delay(inputs, timing)
            write_bd = write_admission_delay(inputs, timing)
            r_switch.append(read_bd.switching)
            r_whol.append(read_bd.write_hol)
            r_rhol.append(read_bd.read_hol)
            r_topq.append(read_bd.top_of_queue)
            w_switch.append(write_bd.switching)
            w_rhol.append(write_bd.read_hol)
            w_whol.append(write_bd.write_hol)
            w_topq.append(write_bd.top_of_queue)
        data.add(f"{tag}_c2m_switching", r_switch)
        data.add(f"{tag}_c2m_write_hol", r_whol)
        data.add(f"{tag}_c2m_read_hol", r_rhol)
        data.add(f"{tag}_c2m_top_of_queue", r_topq)
        data.add(f"{tag}_p2m_switching", w_switch)
        data.add(f"{tag}_p2m_read_hol", w_rhol)
        data.add(f"{tag}_p2m_write_hol", w_whol)
        data.add(f"{tag}_p2m_top_of_queue", w_topq)
    return data
