"""Rack-scale experiment points and figures (multi-host clusters).

The paper measured two physical servers on one cable; a modelled rack
can run the experiments that setup could not express: N senders
incasting into one receiver across a shared leaf/spine fabric while
the receiving host also runs a memory app — fabric contention (switch
queues, per-hop PFC, ECN marks) composing with host-network contention
(IIO/CHA/MC credits) in one simulation.

Every point function is a plain module-level function of picklable
arguments returning a dict of plain values, so points fan out through
:func:`repro.experiments.parallel.run_calls` (process pool + run
cache) exactly like the single-host figure points.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.figures import FigureData
from repro.experiments.parallel import run_calls
from repro.net.dctcp import add_dctcp_flow
from repro.net.rdma import add_rdma_write_flow
from repro.topology.cluster import Cluster
from repro.topology.presets import HostConfig, cascade_lake

#: achieved NIC rate in the paper's RDMA setup (~98 Gb/s)
RDMA_GBPS = 98.0


def rdma_incast_point(
    config: HostConfig,
    n_senders: int,
    n_mem_cores: int = 0,
    store_fraction: float = 1.0,
    rate_gbps: float = RDMA_GBPS,
    link_gbps: float = 100.0,
    queue_capacity_lines: int = 512,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
    seed: int = 1,
) -> Dict[str, object]:
    """One RDMA incast point: N senders ``ib_write_bw`` into host 0.

    Hosts 1..N each pace a PFC-protected write flow at ``rate_gbps``
    toward host 0's receive NIC; with more than one sender the offered
    load exceeds the last-hop link, the edge switch queue fills, and
    per-hop PFC paces every sender down to its fair share — while host
    0's memory app (``n_mem_cores`` STREAM cores) contends with the
    DMA writes inside the host network. All hosts hang off one leaf,
    so the contention point is the edge port (classic incast).
    """
    cluster = Cluster(
        config,
        n_hosts=n_senders + 1,
        seed=seed,
        n_leaves=1,
        link_gbps=link_gbps,
        queue_capacity_lines=queue_capacity_lines,
        pfc_enabled=True,
    )
    if n_mem_cores:
        cluster.hosts[0].add_stream_cores(
            n_mem_cores, store_fraction, traffic_class="mem"
        )
    for src in range(1, n_senders + 1):
        add_rdma_write_flow(cluster, src=src, dst=0, rate_gbps=rate_gbps)
    result = cluster.run(warmup, measure)
    now = cluster.sim.now
    edge = cluster.fabric.edge_port(0)
    return {
        "flow_goodput": list(result.flow_goodput),
        "total_goodput": sum(result.flow_goodput),
        "edge_pause_fraction": edge.pause_fraction(now) if edge else 0.0,
        "sender_pause_fraction": [
            sender.pause_fraction(now) for sender in cluster.fabric.senders
        ],
        "fabric_dropped": result.fabric.lines_dropped,
        "fabric_checks": result.fabric_checks,
        "mem_bw": result.host(0).class_bandwidth("mem"),
        "rx_p2m_bw": result.host(0).class_bandwidth("p2m"),
        "elapsed_ns": result.elapsed_ns,
    }


def dctcp_rack_point(
    config: HostConfig,
    n_flows: int,
    n_mem_cores: int = 0,
    store_fraction: float = 0.0,
    ecn_threshold_lines: int = 64,
    link_gbps: float = 100.0,
    warmup: float = 30_000.0,
    measure: float = 60_000.0,
    seed: int = 1,
) -> Dict[str, object]:
    """One rack DCTCP point: N flows into host 0 over an ECN fabric.

    Each flow runs the full receive pipeline on host 0 (own NIC + copy
    cores) and a paced sender on its source host; the lossless-free
    fabric (PFC off) CE-marks above ``ecn_threshold_lines`` in the
    shared edge queue, and each flow's control loop cuts its *remote*
    sender's rate by the observed mark fraction — real switch-sourced
    ECN, not the single-host drop heuristic.
    """
    cluster = Cluster(
        config,
        n_hosts=n_flows + 1,
        seed=seed,
        n_leaves=1,
        link_gbps=link_gbps,
        ecn_threshold_lines=ecn_threshold_lines,
        pfc_enabled=False,
    )
    if n_mem_cores:
        cluster.hosts[0].add_stream_cores(
            n_mem_cores, store_fraction, traffic_class="mem"
        )
    receivers = [
        add_dctcp_flow(cluster, src=src, dst=0, link_gbps=link_gbps)
        for src in range(1, n_flows + 1)
    ]
    result = cluster.run(warmup, measure)
    return {
        "goodput": [r.goodput(result.elapsed_ns) for r in receivers],
        "total_goodput": sum(r.goodput(result.elapsed_ns) for r in receivers),
        "mark_fraction": [r.mark_fraction() for r in receivers],
        "rate": [r.rate for r in receivers],
        "fabric_marked": result.fabric.lines_marked,
        "fabric_dropped": result.fabric.lines_dropped,
        "fabric_checks": result.fabric_checks,
        "mem_bw": result.host(0).class_bandwidth("mem"),
        "copy_bw": result.host(0).class_bandwidth("copy"),
        "elapsed_ns": result.elapsed_ns,
    }


# ----------------------------------------------------------------------
# Rack figures (no counterpart in the paper: its testbed was 2 hosts)
# ----------------------------------------------------------------------


def fig_rack_incast(
    sender_counts: Sequence[int] = (1, 2, 3, 4),
    n_mem_cores: int = 2,
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
) -> FigureData:
    """RDMA incast scaling: PFC fair-sharing vs sender count.

    One flow runs at line rate; each added sender halves everyone's
    share via switch-queue PFC (not host backpressure), while the
    receiving host's memory app sees a constant aggregate DMA load.
    """
    if config is None:
        config = cascade_lake()
    data = FigureData(
        "fig_rack_incast",
        "Rack incast: N RDMA writers into one host over a shared edge queue",
        "n_senders",
        list(sender_counts),
    )
    points = run_calls(
        [
            (rdma_incast_point, (config, n, n_mem_cores), {"warmup": warmup, "measure": measure})
            for n in sender_counts
        ]
    )
    data.add("total_goodput", [p["total_goodput"] for p in points])
    data.add("min_flow_goodput", [min(p["flow_goodput"]) for p in points])
    data.add("max_flow_goodput", [max(p["flow_goodput"]) for p in points])
    data.add("edge_pause_fraction", [p["edge_pause_fraction"] for p in points])
    data.add("fabric_dropped", [p["fabric_dropped"] for p in points])
    data.add("mem_bw", [p["mem_bw"] for p in points])
    data.add("rx_p2m_bw", [p["rx_p2m_bw"] for p in points])
    data.notes = (
        "PFC keeps the fabric lossless (fabric_dropped == 0): the edge "
        "queue pauses senders to the fair share of the last-hop link, "
        "so min and max flow goodput track each other."
    )
    return data


def fig_rack_dctcp(
    flow_counts: Sequence[int] = (1, 2, 3),
    n_mem_cores: int = 0,
    config: Optional[HostConfig] = None,
    warmup: float = 30_000.0,
    measure: float = 60_000.0,
) -> FigureData:
    """Rack DCTCP: switch-queue ECN marks drive the senders' rates."""
    if config is None:
        config = cascade_lake()
    data = FigureData(
        "fig_rack_dctcp",
        "Rack DCTCP: N flows sharing one edge queue with ECN marking",
        "n_flows",
        list(flow_counts),
    )
    points = run_calls(
        [
            (dctcp_rack_point, (config, n, n_mem_cores), {"warmup": warmup, "measure": measure})
            for n in flow_counts
        ]
    )
    data.add("total_goodput", [p["total_goodput"] for p in points])
    data.add("min_flow_goodput", [min(p["goodput"]) for p in points])
    data.add("max_flow_goodput", [max(p["goodput"]) for p in points])
    data.add("mark_fraction", [max(p["mark_fraction"]) for p in points])
    data.add("fabric_marked", [p["fabric_marked"] for p in points])
    data.add("fabric_dropped", [p["fabric_dropped"] for p in points])
    data.add("copy_bw", [p["copy_bw"] for p in points])
    data.notes = (
        "With one flow the queue stays under the ECN threshold (no "
        "marks, line rate); multiple flows congest the shared edge "
        "queue, CE marks rise, and rates converge near the fair share."
    )
    return data
