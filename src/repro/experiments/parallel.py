"""Process-parallel fan-out for independent simulation runs.

Every figure in the paper is a sweep of *independent* simulations
(isolated C2M, isolated P2M, colocated — per core count, per quadrant),
so the harness fans them out over a ``ProcessPoolExecutor`` and
reassembles results in submission order. Determinism is unaffected:
each run builds its own :class:`~repro.topology.host.Host` from an
explicit seed, so a run computes the identical :class:`RunResult`
whether it executes in this process or a worker.

Execution is supervised by :mod:`repro.experiments.supervisor`, which
adds per-task timeouts, bounded retries with deterministic backoff,
crash isolation and journal-based resume — all off or conservative by
default. Control knobs and behaviour:

* ``REPRO_JOBS=N`` sets the worker count (default: the CPUs actually
  available to this process — container/cgroup affinity, not the
  machine's raw core count). ``REPRO_JOBS=1`` forces serial in-process
  execution.
* Calls that cannot be pickled (closures, ad-hoc lambdas) gracefully
  fall back to serial execution for the whole batch.
* Results are memoized through :mod:`repro.experiments.runcache`
  (disable with ``REPRO_CACHE=off``), so runs shared between figures
  — e.g. the C2M-isolated run appearing in Figs. 3, 7, 11 and 12 —
  execute once per code version.
* ``REPRO_TASK_TIMEOUT`` / ``REPRO_RETRIES`` / ``REPRO_BACKOFF`` /
  ``REPRO_JOURNAL_DIR`` configure fault tolerance, and ``REPRO_CHAOS``
  injects deterministic faults; see the supervisor module and
  ``DESIGN.md`` §7.
* An unrecovered worker crash surfaces as a
  :class:`~repro.experiments.supervisor.SweepError` naming the task
  and suggesting ``REPRO_JOBS=1``; an unrecovered ordinary exception
  inside a task propagates unchanged, annotated with the task that
  raised it. Either way the batch is driven to a terminal state first
  — in serial mode too — so completed sibling results are persisted
  before the error propagates.
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: a unit of work: (callable, positional args, keyword args)
Call = Tuple[Callable[..., Any], tuple, dict]

# Set in pool workers so library code that fans out internally cannot
# recursively spawn pools.
_IN_WORKER = False


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS``, else the CPUs available to us.

    Containers and batch schedulers routinely pin a process to a CPU
    subset; ``os.sched_getaffinity`` reflects that mask while
    ``os.cpu_count`` reports the whole machine, so prefer the former
    where the platform provides it.
    """
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}") from exc
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            n = len(affinity(0))
            if n > 0:
                return n
        except OSError:  # pragma: no cover - affinity query denied
            pass
    return os.cpu_count() or 1


def _callable_name(fn: Callable[..., Any]) -> str:
    """Short display name for any callable.

    Plain functions and bound methods have ``__qualname__``;
    ``functools.partial`` and callable instances have neither
    ``__qualname__`` nor ``__name__``, so fall back to a structural
    name rather than embedding the object's full repr.
    """
    name = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", None)
    if name is not None:
        return name
    if isinstance(fn, functools.partial):
        return f"functools.partial({_callable_name(fn.func)})"
    return type(fn).__name__


def _describe(call: Call) -> str:
    fn, args, kwargs = call
    owner = getattr(fn, "__self__", None)
    if owner is not None and hasattr(fn, "__name__"):
        name = f"{type(owner).__name__}.{fn.__name__}"
    else:
        name = _callable_name(fn)
    parts = [repr(a) for a in args] + [f"{k}={v!r}" for k, v in kwargs.items()]
    text = f"{name}({', '.join(parts)})"
    return text if len(text) <= 200 else text[:197] + "..."


def _annotate(exc: BaseException, note: str) -> None:
    """Attach a context note to an exception without changing its type.

    ``BaseException.add_note`` exists only on Python >= 3.11 while the
    package floor is 3.10 (``requires-python = ">=3.10"``); on older
    interpreters set ``__notes__`` by hand, which tracebacks on 3.11+
    render identically and callers can always inspect.
    """
    add_note = getattr(exc, "add_note", None)
    if callable(add_note):
        add_note(note)  # py310-ok: guarded by the getattr above
        return
    try:
        notes = getattr(exc, "__notes__", None)
        if notes is None:
            exc.__notes__ = [note]
        else:
            notes.append(note)
    except Exception:  # pragma: no cover - exotic exception classes
        pass


def run_calls(
    calls: Sequence[Call],
    jobs: Optional[int] = None,
    cache: bool = True,
) -> List[Any]:
    """Execute independent calls, fanning out over processes.

    Returns results in input order. Cached results are returned
    without executing; the remainder run under the fault-tolerant
    supervisor (:func:`repro.experiments.supervisor.run_supervised`) —
    in a process pool when ``jobs > 1``, every call pickles and we are
    not already inside a worker, serially in-process otherwise. Use
    :func:`run_supervised` directly for the structured
    :class:`~repro.experiments.supervisor.BatchResult` (recovered
    :class:`~repro.experiments.supervisor.TaskFailure` records,
    cache/journal hit counts).
    """
    from repro.experiments.supervisor import run_supervised

    return run_supervised(calls, jobs=jobs, cache=cache).results


def run_one(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
    """Run a single call through the cache (no pool for one task)."""
    return run_calls([(fn, args, kwargs)], jobs=1)[0]
