"""Process-parallel fan-out for independent simulation runs.

Every figure in the paper is a sweep of *independent* simulations
(isolated C2M, isolated P2M, colocated — per core count, per quadrant),
so the harness fans them out over a ``ProcessPoolExecutor`` and
reassembles results in submission order. Determinism is unaffected:
each run builds its own :class:`~repro.topology.host.Host` from an
explicit seed, so a run computes the identical :class:`RunResult`
whether it executes in this process or a worker.

Control knobs and behaviour:

* ``REPRO_JOBS=N`` sets the worker count (default: the machine's CPU
  count). ``REPRO_JOBS=1`` forces serial in-process execution.
* Calls that cannot be pickled (closures, ad-hoc lambdas) gracefully
  fall back to serial execution for the whole batch.
* Results are memoized through :mod:`repro.experiments.runcache`
  (disable with ``REPRO_CACHE=off``), so runs shared between figures
  — e.g. the C2M-isolated run appearing in Figs. 3, 7, 11 and 12 —
  execute once per code version.
* A worker crash (OOM-killed process, interpreter abort) surfaces as
  a ``RuntimeError`` naming the task and suggesting ``REPRO_JOBS=1``;
  an ordinary exception inside a task propagates unchanged, annotated
  with the task that raised it.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.experiments import runcache

#: a unit of work: (callable, positional args, keyword args)
Call = Tuple[Callable[..., Any], tuple, dict]

# Set in pool workers so library code that fans out internally cannot
# recursively spawn pools.
_IN_WORKER = False


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` or the machine's CPU count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}") from exc
    return os.cpu_count() or 1


def _describe(call: Call) -> str:
    fn, args, kwargs = call
    name = getattr(fn, "__qualname__", None)
    if name is None:  # bound method of a picklable experiment
        name = f"{type(fn).__name__}.{fn}"
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        name = f"{type(owner).__name__}.{fn.__name__}"
    parts = [repr(a) for a in args] + [f"{k}={v!r}" for k, v in kwargs.items()]
    text = f"{name}({', '.join(parts)})"
    return text if len(text) <= 200 else text[:197] + "..."


def _run_payload(payload: bytes) -> Any:
    fn, args, kwargs = pickle.loads(payload)
    return fn(*args, **kwargs)


def run_calls(
    calls: Sequence[Call],
    jobs: Optional[int] = None,
    cache: bool = True,
) -> List[Any]:
    """Execute independent calls, fanning out over processes.

    Returns results in input order. Cached results are returned
    without executing; the remainder run in a process pool when
    ``jobs > 1``, every call pickles, and we are not already inside a
    worker — otherwise serially in-process.
    """
    calls = [(fn, tuple(args), dict(kwargs)) for fn, args, kwargs in calls]
    results: dict = {}
    keys: List[Optional[str]] = [None] * len(calls)
    if cache:
        for i, (fn, args, kwargs) in enumerate(calls):
            keys[i] = runcache.key_for(fn, args, kwargs)
            hit, value = runcache.get(keys[i])
            if hit:
                results[i] = value
    missing = [i for i in range(len(calls)) if i not in results]

    n_jobs = default_jobs() if jobs is None else max(1, int(jobs))
    payloads: dict = {}
    parallel = n_jobs > 1 and not _IN_WORKER and len(missing) > 1
    if parallel:
        try:
            for i in missing:
                payloads[i] = pickle.dumps(calls[i], protocol=4)
        except Exception:
            parallel = False  # unpicklable builder: serial fallback

    if parallel:
        workers = min(n_jobs, len(missing))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_mark_worker
        ) as pool:
            futures = {i: pool.submit(_run_payload, payloads[i]) for i in missing}
            wait(list(futures.values()), return_when=FIRST_EXCEPTION)
            for i, future in futures.items():
                try:
                    results[i] = future.result()
                except BrokenProcessPool as exc:
                    raise RuntimeError(
                        f"parallel worker crashed while running "
                        f"{_describe(calls[i])}; rerun with REPRO_JOBS=1 "
                        f"to execute serially"
                    ) from exc
                except Exception as exc:
                    exc.add_note(f"raised in parallel task {_describe(calls[i])}")
                    raise
    else:
        for i in missing:
            fn, args, kwargs = calls[i]
            results[i] = fn(*args, **kwargs)

    for i in missing:
        runcache.put(keys[i], results[i])
    return [results[i] for i in range(len(calls))]


def run_one(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
    """Run a single call through the cache (no pool for one task)."""
    return run_calls([(fn, args, kwargs)], jobs=1)[0]
