"""Process-parallel fan-out for independent simulation runs.

Every figure in the paper is a sweep of *independent* simulations
(isolated C2M, isolated P2M, colocated — per core count, per quadrant),
so the harness fans them out over a ``ProcessPoolExecutor`` and
reassembles results in submission order. Determinism is unaffected:
each run builds its own :class:`~repro.topology.host.Host` from an
explicit seed, so a run computes the identical :class:`RunResult`
whether it executes in this process or a worker.

Control knobs and behaviour:

* ``REPRO_JOBS=N`` sets the worker count (default: the machine's CPU
  count). ``REPRO_JOBS=1`` forces serial in-process execution.
* Calls that cannot be pickled (closures, ad-hoc lambdas) gracefully
  fall back to serial execution for the whole batch.
* Results are memoized through :mod:`repro.experiments.runcache`
  (disable with ``REPRO_CACHE=off``), so runs shared between figures
  — e.g. the C2M-isolated run appearing in Figs. 3, 7, 11 and 12 —
  execute once per code version.
* A worker crash (OOM-killed process, interpreter abort) surfaces as
  a ``RuntimeError`` naming the task and suggesting ``REPRO_JOBS=1``;
  an ordinary exception inside a task propagates unchanged, annotated
  with the task that raised it.
"""

from __future__ import annotations

import functools
import os
import pickle
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.experiments import runcache

#: a unit of work: (callable, positional args, keyword args)
Call = Tuple[Callable[..., Any], tuple, dict]

# Set in pool workers so library code that fans out internally cannot
# recursively spawn pools.
_IN_WORKER = False


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` or the machine's CPU count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}") from exc
    return os.cpu_count() or 1


def _callable_name(fn: Callable[..., Any]) -> str:
    """Short display name for any callable.

    Plain functions and bound methods have ``__qualname__``;
    ``functools.partial`` and callable instances have neither
    ``__qualname__`` nor ``__name__``, so fall back to a structural
    name rather than embedding the object's full repr.
    """
    name = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", None)
    if name is not None:
        return name
    if isinstance(fn, functools.partial):
        return f"functools.partial({_callable_name(fn.func)})"
    return type(fn).__name__


def _describe(call: Call) -> str:
    fn, args, kwargs = call
    owner = getattr(fn, "__self__", None)
    if owner is not None and hasattr(fn, "__name__"):
        name = f"{type(owner).__name__}.{fn.__name__}"
    else:
        name = _callable_name(fn)
    parts = [repr(a) for a in args] + [f"{k}={v!r}" for k, v in kwargs.items()]
    text = f"{name}({', '.join(parts)})"
    return text if len(text) <= 200 else text[:197] + "..."


def _annotate(exc: BaseException, note: str) -> None:
    """Attach a context note to an exception without changing its type.

    ``BaseException.add_note`` exists only on Python >= 3.11 while the
    package floor is 3.10 (``requires-python = ">=3.10"``); on older
    interpreters set ``__notes__`` by hand, which tracebacks on 3.11+
    render identically and callers can always inspect.
    """
    add_note = getattr(exc, "add_note", None)
    if callable(add_note):
        add_note(note)  # py310-ok: guarded by the getattr above
        return
    try:
        notes = getattr(exc, "__notes__", None)
        if notes is None:
            exc.__notes__ = [note]
        else:
            notes.append(note)
    except Exception:  # pragma: no cover - exotic exception classes
        pass


def _run_payload(payload: bytes) -> Any:
    fn, args, kwargs = pickle.loads(payload)
    return fn(*args, **kwargs)


def run_calls(
    calls: Sequence[Call],
    jobs: Optional[int] = None,
    cache: bool = True,
) -> List[Any]:
    """Execute independent calls, fanning out over processes.

    Returns results in input order. Cached results are returned
    without executing; the remainder run in a process pool when
    ``jobs > 1``, every call pickles, and we are not already inside a
    worker — otherwise serially in-process.
    """
    calls = [(fn, tuple(args), dict(kwargs)) for fn, args, kwargs in calls]
    results: dict = {}
    keys: List[Optional[str]] = [None] * len(calls)
    if cache:
        for i, (fn, args, kwargs) in enumerate(calls):
            keys[i] = runcache.key_for(fn, args, kwargs)
            hit, value = runcache.get(keys[i])
            if hit:
                results[i] = value
    missing = [i for i in range(len(calls)) if i not in results]

    n_jobs = default_jobs() if jobs is None else max(1, int(jobs))
    payloads: dict = {}
    parallel = n_jobs > 1 and not _IN_WORKER and len(missing) > 1
    if parallel:
        try:
            for i in missing:
                payloads[i] = pickle.dumps(calls[i], protocol=4)
        except Exception:
            parallel = False  # unpicklable builder: serial fallback

    first_error: Optional[Tuple[int, BaseException]] = None
    crash: Optional[Tuple[int, BaseException]] = None
    if parallel:
        workers = min(n_jobs, len(missing))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_mark_worker
        ) as pool:
            futures = {i: pool.submit(_run_payload, payloads[i]) for i in missing}
            wait(list(futures.values()), return_when=FIRST_EXCEPTION)
            for i, future in futures.items():
                try:
                    results[i] = future.result()
                except BrokenProcessPool as exc:
                    crash = (i, exc)
                    break
                except Exception as exc:
                    if first_error is None:
                        first_error = (i, exc)
    else:
        for i in missing:
            fn, args, kwargs = calls[i]
            try:
                results[i] = fn(*args, **kwargs)
            except Exception as exc:
                first_error = (i, exc)
                break

    # Persist completed siblings even when the batch failed: their
    # results are final, so a rerun after fixing the failing task
    # should not recompute them.
    for i in missing:
        if i in results:
            runcache.put(keys[i], results[i])

    if crash is not None:
        i, exc = crash
        raise RuntimeError(
            f"parallel worker crashed while running "
            f"{_describe(calls[i])}; rerun with REPRO_JOBS=1 "
            f"to execute serially"
        ) from exc
    if first_error is not None:
        i, exc = first_error
        mode = "parallel" if parallel else "serial"
        _annotate(exc, f"raised in {mode} task {_describe(calls[i])}")
        raise exc
    return [results[i] for i in range(len(calls))]


def run_one(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
    """Run a single call through the cache (no pool for one task)."""
    return run_calls([(fn, args, kwargs)], jobs=1)[0]
