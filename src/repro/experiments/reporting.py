"""Plain-text rendering of experiment results.

Every benchmark prints the rows/series its figure reports using these
helpers, so the console output can be compared line-by-line with the
paper's plots. Supervised sweeps additionally report their
:class:`~repro.experiments.supervisor.TaskFailure` records through
:func:`render_failures`, so a recovered fault is part of the batch
report rather than only a raised exception.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_table(title: str, columns: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned text table with a title rule."""
    str_rows: List[List[str]] = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    lines.append(rule)
    return "\n".join(lines)


def render_failures(failures: Sequence, title: str = "Task failures") -> str:
    """Render supervised-sweep :class:`TaskFailure` records as a table.

    One row per failed-at-least-once task: batch position, what ran,
    the final failure kind, how many attempts it took, total wall
    time, a stable traceback digest, and whether the task recovered.
    """
    columns = ["#", "task", "kind", "attempts", "elapsed_s", "digest", "recovered"]
    rows = []
    for failure in failures:
        task = failure.task
        if len(task) > 64:
            task = task[:61] + "..."
        rows.append(
            [
                failure.index,
                task,
                failure.kind,
                failure.attempts,
                failure.elapsed_s,
                failure.traceback_digest,
                "yes" if failure.recovered else "NO",
            ]
        )
    return render_table(title, columns, rows)


def render_series(title: str, x_label: str, series: Dict[str, Sequence[float]],
                  x_values: Sequence) -> str:
    """Render named y-series against shared x values (a 'figure')."""
    columns = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [s[i] for s in series.values()])
    return render_table(title, columns, rows)
