"""Supervised, fault-tolerant execution of independent sweep tasks.

:mod:`repro.experiments.parallel` fans a figure sweep out over a
process pool; this module is the supervisor that keeps that sweep
alive when individual tasks fail. It adds, on top of the plain pool:

* **per-task wall-clock timeouts** (``REPRO_TASK_TIMEOUT`` seconds,
  measured from submission; ``0``/unset disables) — a hung worker is
  terminated and the task counts a ``timeout`` attempt;
* **bounded retries with exponential backoff** (``REPRO_RETRIES``
  extra attempts per task, default 0; ``REPRO_BACKOFF`` base delay,
  default 0.05 s) plus *deterministic* jitter hashed from the task
  identity, so a retried sweep is exactly reproducible;
* **crash isolation** — when a worker dies (OOM kill, interpreter
  abort) the pool is broken and every in-flight task is a suspect:
  suspects are requeued one-at-a-time on fresh pools until the task
  that actually breaks the pool is identified and blamed, while
  innocent bystanders are requeued without consuming a retry;
* **graceful degradation** — after ``pool_failure_limit`` broken
  pools the remaining tasks run serially in-process (in-process
  execution cannot enforce timeouts, and chaos never injects kills
  in-process);
* **a sweep journal** (``REPRO_JOURNAL_DIR``) that checkpoints every
  task's status/attempts as JSON lines and its result as a
  checksummed pickle, so an interrupted suite resumes without
  recomputing finished runs — even for calls the content-keyed run
  cache cannot key, or with ``REPRO_CACHE=off``;
* **mid-run checkpoint resume** (:mod:`repro.sim.checkpoint`) — when
  checkpointing, task timeouts or chaos ``preempt`` faults are in
  play, each task gets a per-digest checkpoint file next to the
  journal. A timed-out task's SIGTERM (pool teardown) makes the
  worker checkpoint-and-exit mid-simulation; the retried attempt
  resumes from the blob instead of recomputing, bit-identical, and
  the journal records the checkpoint lineage (``preempted`` entries).

Failures are structured :class:`TaskFailure` records (description,
attempt outcomes, timings, traceback digest). Recovered failures ride
along on the :class:`BatchResult`; permanent ones are raised — the
original exception for ordinary task errors (annotated with the task),
a :class:`SweepError` carrying the records for crashes and timeouts.

All defaults are conservative: with retries, timeouts, journal and
chaos off, the fast path is the same cache-resolve + pool fan-out as
before.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import pickle
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments import chaos, runcache
from repro.sim import checkpoint

#: a unit of work: (callable, positional args, keyword args)
Call = Tuple[Callable[..., Any], tuple, dict]


# ----------------------------------------------------------------------
# Public records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of a task that failed at least once.

    ``recovered`` distinguishes a task that eventually produced its
    result (the record rides along on the batch) from a permanent
    failure (the record travels on the raised :class:`SweepError`, or
    on the original exception's ``sweep_failures`` attribute).
    """

    task: str  #: short task description
    index: int  #: position in the submitted batch
    kind: str  #: final failure kind: "error" | "crash" | "timeout"
    attempts: int  #: attempts executed (including a final success)
    outcomes: Tuple[str, ...]  #: one summary line per attempt
    elapsed_s: float  #: wall-clock across all attempts
    traceback_digest: str  #: stable 12-hex digest of the traceback
    recovered: bool


@dataclass
class BatchResult:
    """Results of a supervised batch, in submission order."""

    results: List[Any]
    failures: List[TaskFailure]  #: recovered faults (batch succeeded)
    cached: int = 0  #: tasks served from the run cache
    resumed: int = 0  #: tasks restored from the journal


class SweepError(RuntimeError):
    """A sweep failed on crashes/timeouts; carries the failure records."""

    def __init__(self, message: str, failures: Sequence[TaskFailure]):
        super().__init__(message)
        self.failures: List[TaskFailure] = list(failures)


@dataclass
class SupervisorStats:
    """Process-wide counters for retry/requeue accounting.

    Benchmarks snapshot these around a figure build so retry and
    requeue counts land in ``extra_info`` next to the timings.
    """

    retries: int = 0
    requeues: int = 0
    pool_failures: int = 0
    timeouts: int = 0
    crashes: int = 0
    degraded: int = 0
    journal_hits: int = 0
    recovered_failures: List[TaskFailure] = field(default_factory=list)

    _COUNTERS = (
        "retries",
        "requeues",
        "pool_failures",
        "timeouts",
        "crashes",
        "degraded",
        "journal_hits",
    )

    def snapshot(self) -> Dict[str, int]:
        out = {name: getattr(self, name) for name in self._COUNTERS}
        out["recovered"] = len(self.recovered_failures)
        return out

    def delta(self, before: Dict[str, int]) -> Dict[str, int]:
        now = self.snapshot()
        return {name: now[name] - before.get(name, 0) for name in now}


#: module-wide stats, accumulated across every supervised batch
stats = SupervisorStats()


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be a number, got {raw!r}") from exc
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {raw!r}")
    return value


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from exc
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {raw!r}")
    return value


@dataclass(frozen=True)
class SupervisorConfig:
    """Fault-tolerance knobs (all off/conservative by default)."""

    retries: int = 0  #: extra attempts per task (REPRO_RETRIES)
    backoff_s: float = 0.05  #: base retry delay (REPRO_BACKOFF)
    task_timeout_s: float = 0.0  #: 0 disables (REPRO_TASK_TIMEOUT)
    journal_dir: Optional[Path] = None  #: None disables (REPRO_JOURNAL_DIR)
    pool_failure_limit: int = 3  #: broken pools before degrading to serial

    @classmethod
    def from_env(cls) -> "SupervisorConfig":
        journal = os.environ.get("REPRO_JOURNAL_DIR", "").strip()
        return cls(
            retries=_env_int("REPRO_RETRIES", 0),
            backoff_s=_env_float("REPRO_BACKOFF", 0.05),
            task_timeout_s=_env_float("REPRO_TASK_TIMEOUT", 0.0),
            journal_dir=Path(journal) if journal else None,
        )


# ----------------------------------------------------------------------
# Internal task state
# ----------------------------------------------------------------------


class _Task:
    __slots__ = (
        "index",
        "call",
        "desc",
        "digest",
        "payload",
        "cache_key",
        "failures",
        "outcomes",
        "last_kind",
        "isolated",
        "mode",
        "done",
        "result",
        "failed",
        "exception",
        "elapsed",
        "executed",
    )

    def __init__(self, index: int, call: Call, desc: str):
        self.index = index
        self.call = call
        self.desc = desc
        self.digest = ""
        self.payload: Optional[bytes] = None
        self.cache_key: Optional[str] = None
        self.failures = 0  # attempts consumed by failures
        self.outcomes: List[str] = []
        self.last_kind = ""
        self.isolated = False
        self.mode = "serial"
        self.done = False
        self.result: Any = None
        self.failed = False
        self.exception: Optional[BaseException] = None
        self.elapsed = 0.0
        self.executed = False  # ran at least once (not cache/journal)


def _task_digest(call: Call, desc: str, index: int) -> str:
    """Stable identity of a task across processes and resumed sweeps.

    Mirrors the run-cache key (code fingerprint + validate namespace +
    pickled call spec) but exists even when the cache is disabled;
    unpicklable calls fall back to description + batch position, which
    is stable across identical re-invocations of the same sweep.
    """
    import hashlib

    from repro.validate.invariants import enabled as validate_enabled

    fn, args, kwargs = call
    digest = hashlib.sha256()
    digest.update(runcache.code_fingerprint().encode())
    digest.update(b"validate=1" if validate_enabled() else b"validate=0")
    try:
        digest.update(pickle.dumps((fn, args, sorted(kwargs.items())), protocol=4))
    except Exception:
        digest.update(f"unpicklable|{index}|{desc}".encode())
    return digest.hexdigest()


def _traceback_digest(exc: Optional[BaseException], kind: str, desc: str) -> str:
    import hashlib

    if exc is not None:
        text = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
    else:
        text = f"{kind}|{desc}"
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def _failure_of(task: _Task, recovered: bool) -> TaskFailure:
    return TaskFailure(
        task=task.desc,
        index=task.index,
        kind=task.last_kind or "error",
        attempts=task.failures + (1 if recovered else 0),
        outcomes=tuple(task.outcomes),
        elapsed_s=task.elapsed,
        traceback_digest=_traceback_digest(task.exception, task.last_kind, task.desc),
        recovered=recovered,
    )


def _backoff_delay(cfg: SupervisorConfig, task: _Task) -> float:
    """Exponential backoff with deterministic per-(task, attempt) jitter."""
    import hashlib

    if cfg.backoff_s <= 0:
        return 0.0
    base = cfg.backoff_s * (2.0 ** max(0, task.failures - 1))
    seed = hashlib.sha256(f"{task.digest}|{task.failures}".encode()).digest()
    jitter = int.from_bytes(seed[:8], "big") / 2.0**64  # [0, 1)
    return min(10.0, base * (1.0 + jitter))


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------


class Journal:
    """Append-only per-task checkpoint log plus result files.

    Layout under the journal directory::

        journal.jsonl     one JSON record per task status transition
        <digest>.pkl      checksummed pickled result of a finished task

    Records are keyed by the task digest, so a resumed (or partially
    edited) sweep reuses exactly the tasks whose identity is
    unchanged. A torn trailing line from an interrupted writer is
    ignored on load.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.log = self.root / "journal.jsonl"
        self._records = self._load()

    def _load(self) -> Dict[str, dict]:
        records: Dict[str, dict] = {}
        try:
            text = self.log.read_text()
        except OSError:
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail from an interrupted append
            if isinstance(record, dict) and "task" in record:
                records[record["task"]] = record
        return records

    def completed(self, digest: str) -> bool:
        record = self._records.get(digest)
        return bool(record) and record.get("status") == "done" and record.get("stored", False)

    def load_result(self, digest: str) -> Tuple[bool, Any]:
        try:
            blob = (self.root / f"{digest}.pkl").read_bytes()
        except OSError:
            return False, None
        return runcache.decode_blob(blob)

    def store_result(self, digest: str, value: Any) -> bool:
        import tempfile

        try:
            blob = runcache.encode_blob(value)
        except Exception:
            return False
        path = self.root / f"{digest}.pkl"
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def record(
        self,
        task: _Task,
        status: str,
        stored: bool = False,
        ckpt: Optional[str] = None,
    ) -> None:
        entry = {
            "task": task.digest,
            "desc": task.desc,
            "status": status,
            "stored": stored,
            "attempts": task.failures + (1 if status == "done" else 0),
            "outcomes": list(task.outcomes),
            "elapsed_s": round(task.elapsed, 6),
        }
        if ckpt is not None:
            entry["ckpt"] = ckpt
        self._records[task.digest] = entry
        try:
            with open(self.log, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(entry) + "\n")
        except OSError:  # pragma: no cover - read-only journal dir
            pass


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _execute_payload(
    payload: bytes,
    identity: str,
    attempt: int,
    ckpt_path: Optional[str] = None,
) -> Any:
    """Worker-side entry point: chaos hook, then the task itself.

    ``ckpt_path`` is the task's per-digest checkpoint file (inside the
    journal directory): ``Host.run`` resumes from it if a previous
    attempt was preempted mid-run, and writes to it when this attempt
    is preempted (SIGTERM from a pool teardown, or the chaos
    ``preempt`` fault).
    """
    checkpoint.begin_task(ckpt_path)
    try:
        chaos.maybe_inject(identity, attempt, in_worker=True)
        fn, args, kwargs = pickle.loads(payload)
        return fn(*args, **kwargs)
    finally:
        checkpoint.end_task()


def _kill_pool(pool: Optional[ProcessPoolExecutor]) -> None:
    """Tear a pool down without waiting on hung or dead workers."""
    if pool is None:
        return
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - already reaped
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover
        pass
    for proc in list(processes.values()):
        try:
            proc.join(timeout=1.0)
        except Exception:  # pragma: no cover
            pass


@dataclass
class _RunContext:
    config: SupervisorConfig
    journal: Optional[Journal]
    recovered: List[TaskFailure] = field(default_factory=list)


def _ckpt_path(ctx: _RunContext, task: _Task) -> Optional[str]:
    """The task's checkpoint file, when mid-run resume is in play.

    Checkpoints live next to the journal (they are its mid-run
    extension: the journal resumes finished tasks, the checkpoint
    resumes the interrupted one) and are enabled when the environment
    asks for checkpointing, when task timeouts can preempt runs, or
    when chaos injects ``preempt`` faults.
    """
    if ctx.journal is None or not task.digest:
        return None
    if not checkpoint.preemption_wanted(ctx.config.task_timeout_s):
        return None
    return str(ctx.journal.root / f"{task.digest}.ckpt")


def _note_checkpoint(ctx: _RunContext, task: _Task) -> None:
    """Journal the checkpoint lineage of an interrupted attempt."""
    path = _ckpt_path(ctx, task)
    if path is None or not os.path.exists(path):
        return
    ctx.journal.record(task, "preempted", ckpt=os.path.basename(path))


def _record_failure(
    ctx: _RunContext,
    task: _Task,
    kind: str,
    exc: Optional[BaseException],
    retry_cb: Callable[[_Task], None],
) -> None:
    """Consume one attempt; schedule a retry or mark the task failed."""
    if kind == "error":
        summary = f"{type(exc).__name__}: {exc}" if exc is not None else "error"
    elif kind == "crash":
        summary = "crash: worker process died (pool broken)"
        stats.crashes += 1
    else:
        summary = f"timeout: exceeded REPRO_TASK_TIMEOUT={ctx.config.task_timeout_s:g}s"
        stats.timeouts += 1
    task.outcomes.append(summary)
    task.last_kind = kind
    task.exception = exc
    task.failures += 1
    _note_checkpoint(ctx, task)
    if task.failures <= ctx.config.retries:
        stats.retries += 1
        retry_cb(task)
        return
    task.failed = True
    if ctx.journal is not None:
        ctx.journal.record(task, "failed")


def _complete(ctx: _RunContext, task: _Task, value: Any) -> None:
    task.done = True
    task.result = value
    task.executed = True
    task.outcomes.append("ok")
    runcache.put(task.cache_key, value)
    if ctx.journal is not None:
        stored = ctx.journal.store_result(task.digest, value)
        ctx.journal.record(task, "done", stored=stored)
    path = _ckpt_path(ctx, task)
    if path is not None:
        try:
            os.unlink(path)
        except OSError:
            pass
    if task.failures > 0:
        failure = _failure_of(task, recovered=True)
        ctx.recovered.append(failure)
        stats.recovered_failures.append(failure)


def _run_serial(tasks: Sequence[_Task], ctx: _RunContext) -> None:
    """In-process execution: retries with inline backoff, no timeouts.

    Unlike the pre-supervisor serial path, a failing task does *not*
    abort the batch: remaining tasks still run (and persist), and the
    error is raised only after the whole batch has been driven to a
    terminal state.
    """

    def retry_later(task: _Task) -> None:
        delay = _backoff_delay(ctx.config, task)
        if delay > 0:
            time.sleep(delay)

    for task in sorted(tasks, key=lambda t: t.index):
        task.mode = "serial"
        ckpt_path = _ckpt_path(ctx, task)
        while not task.done and not task.failed:
            start = time.monotonic()
            fn, args, kwargs = task.call
            checkpoint.begin_task(ckpt_path)
            try:
                chaos.maybe_inject(task.digest, task.failures, in_worker=False)
                value = fn(*args, **kwargs)
            except Exception as exc:
                # A checkpoint.Preempted lands here too: the attempt
                # counts as an ordinary error and the retry resumes
                # from the blob the preemption wrote.
                task.elapsed += time.monotonic() - start
                _record_failure(ctx, task, "error", exc, retry_later)
            else:
                task.elapsed += time.monotonic() - start
                _complete(ctx, task, value)
            finally:
                checkpoint.end_task()


def _run_pool(
    tasks: Sequence[_Task], workers: int, ctx: _RunContext
) -> List[_Task]:
    """Supervised pool execution.

    Returns the tasks handed back for serial execution after the pool
    failed ``pool_failure_limit`` times; ``[]`` otherwise.
    """
    cfg = ctx.config
    queue: deque = deque(sorted(tasks, key=lambda t: t.index))
    waiting: List[Tuple[float, int, _Task]] = []  # backoff heap
    isolate: deque = deque()  # crash suspects, run one at a time
    inflight: Dict[Any, Tuple[_Task, float]] = {}
    seq = itertools.count()
    pool: Optional[ProcessPoolExecutor] = None
    pool_failures = 0

    from repro.experiments.parallel import _mark_worker

    def retry_later(task: _Task) -> None:
        delay = _backoff_delay(cfg, task)
        heapq.heappush(waiting, (time.monotonic() + delay, next(seq), task))

    def abandon_pool() -> None:
        nonlocal pool
        _kill_pool(pool)
        pool = None

    def remaining() -> List[_Task]:
        left = [t for _, _, t in waiting]
        left += list(queue) + list(isolate)
        left += [t for t, _ in inflight.values()]
        inflight.clear()
        return left

    try:
        while queue or waiting or isolate or inflight:
            now = time.monotonic()
            while waiting and waiting[0][0] <= now:
                _, _, task = heapq.heappop(waiting)
                (isolate if task.isolated else queue).append(task)

            # Schedule: isolated suspects run strictly alone.
            while len(inflight) < workers and (isolate or queue):
                if any(t.isolated for t, _ in inflight.values()):
                    break
                if isolate:
                    if inflight:
                        break
                    task = isolate.popleft()
                else:
                    task = queue.popleft()
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=workers, initializer=_mark_worker
                    )
                try:
                    future = pool.submit(
                        _execute_payload,
                        task.payload,
                        task.digest,
                        task.failures,
                        _ckpt_path(ctx, task),
                    )
                except BrokenProcessPool:
                    # Pool died between rounds: rebuild on next pass.
                    abandon_pool()
                    pool_failures += 1
                    stats.pool_failures += 1
                    (isolate if task.isolated else queue).appendleft(task)
                    if pool_failures >= cfg.pool_failure_limit:
                        stats.degraded += 1
                        return remaining()
                    continue
                inflight[future] = (task, time.monotonic())

            if not inflight:
                if waiting:
                    time.sleep(max(0.0, waiting[0][0] - time.monotonic()))
                continue

            timeout = None
            if cfg.task_timeout_s > 0:
                deadline = (
                    min(start for _, start in inflight.values())
                    + cfg.task_timeout_s
                )
                timeout = max(0.0, deadline - time.monotonic())
            if waiting:
                wake = max(0.0, waiting[0][0] - time.monotonic())
                timeout = wake if timeout is None else min(timeout, wake)

            done, _ = wait(list(inflight), timeout=timeout, return_when=FIRST_COMPLETED)

            crash_victims: List[_Task] = []
            for future in done:
                task, start = inflight.pop(future)
                task.elapsed += time.monotonic() - start
                task.mode = "parallel"
                try:
                    value = future.result()
                except BrokenProcessPool:
                    crash_victims.append(task)
                except Exception as exc:
                    _record_failure(ctx, task, "error", exc, retry_later)
                else:
                    _complete(ctx, task, value)

            if crash_victims:
                # The pool is broken: every task that was in flight is a
                # suspect (the executor poisons all pending futures, so
                # the crashing worker cannot be identified from here).
                victims = crash_victims + [t for t, _ in inflight.values()]
                for task, start in inflight.values():
                    task.elapsed += time.monotonic() - start
                inflight.clear()
                abandon_pool()
                pool_failures += 1
                stats.pool_failures += 1
                if len(victims) == 1:
                    # Ran alone: this task broke the pool. Blame it.
                    _record_failure(ctx, victims[0], "crash", None, retry_later)
                else:
                    # Ambiguous: requeue all suspects for isolated
                    # (one-at-a-time) execution without consuming a
                    # retry — the culprit will crash alone and be
                    # blamed; bystanders complete untouched.
                    stats.requeues += len(victims)
                    for task in victims:
                        task.outcomes.append("interrupted: sibling broke the pool")
                        task.isolated = True
                        isolate.append(task)
                if pool_failures >= cfg.pool_failure_limit:
                    stats.degraded += 1
                    return remaining()
                continue

            if cfg.task_timeout_s > 0 and inflight:
                now = time.monotonic()
                expired = [
                    future
                    for future, (_, start) in inflight.items()
                    if now - start >= cfg.task_timeout_s
                ]
                if expired:
                    # A pool cannot cancel a running task; tear it down
                    # and requeue the innocent in-flight siblings.
                    survivors = [
                        (task, start)
                        for future, (task, start) in inflight.items()
                        if future not in expired
                    ]
                    timed_out = [inflight[future][0] for future in expired]
                    for task, start in inflight.values():
                        task.elapsed += now - start
                    inflight.clear()
                    abandon_pool()
                    for task in timed_out:
                        task.mode = "parallel"
                        _record_failure(ctx, task, "timeout", None, retry_later)
                    stats.requeues += len(survivors)
                    for task, _ in survivors:
                        task.outcomes.append(
                            "interrupted: pool torn down after sibling timeout"
                        )
                        (isolate if task.isolated else queue).append(task)
    finally:
        _kill_pool(pool)
    return []


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_supervised(
    calls: Sequence[Call],
    jobs: Optional[int] = None,
    cache: bool = True,
    config: Optional[SupervisorConfig] = None,
) -> BatchResult:
    """Execute independent calls under supervision.

    Resolution order per task: run cache → journal → execution (pool
    when ``jobs > 1``, every call pickles and we are not already in a
    worker; serial otherwise). Raises after the whole batch reached a
    terminal state; completed siblings are always persisted first.
    """
    from repro.experiments import parallel as par

    cfg = config if config is not None else SupervisorConfig.from_env()
    calls = [(fn, tuple(args), dict(kwargs)) for fn, args, kwargs in calls]
    tasks = [_Task(i, call, par._describe(call)) for i, call in enumerate(calls)]
    batch = BatchResult(results=[], failures=[])

    if cache:
        for task in tasks:
            fn, args, kwargs = task.call
            task.cache_key = runcache.key_for(fn, args, kwargs)
            hit, value = runcache.get(task.cache_key)
            if hit:
                task.done = True
                task.result = value
                batch.cached += 1

    pending = [t for t in tasks if not t.done]
    for task in pending:
        task.digest = _task_digest(task.call, task.desc, task.index)

    journal = Journal(cfg.journal_dir) if cfg.journal_dir is not None else None
    if journal is not None:
        for task in pending:
            if journal.completed(task.digest):
                ok, value = journal.load_result(task.digest)
                if ok:
                    task.done = True
                    task.result = value
                    batch.resumed += 1
                    stats.journal_hits += 1
                    # Re-seed the run cache so later sweeps hit it too.
                    runcache.put(task.cache_key, value)
        pending = [t for t in pending if not t.done]

    n_jobs = par.default_jobs() if jobs is None else max(1, int(jobs))
    use_pool = n_jobs > 1 and not par._IN_WORKER and len(pending) > 1
    if use_pool:
        try:
            for task in pending:
                task.payload = pickle.dumps(task.call, protocol=4)
        except Exception:
            use_pool = False  # unpicklable builder: serial fallback

    ctx = _RunContext(config=cfg, journal=journal)
    if use_pool:
        leftovers = _run_pool(pending, min(n_jobs, len(pending)), ctx)
        if leftovers:
            _run_serial(leftovers, ctx)
    else:
        _run_serial(pending, ctx)

    batch.failures = sorted(ctx.recovered, key=lambda f: f.index)

    failed = [t for t in tasks if t.failed]
    if failed:
        permanent = [_failure_of(t, recovered=False) for t in failed]
        first = failed[0]
        n_more = len(failed) - 1
        if first.exception is not None:
            par._annotate(
                first.exception,
                f"raised in {first.mode} task {first.desc}"
                + (f" (attempt {first.failures} of {cfg.retries + 1})"
                   if first.failures > 1 else ""),
            )
            if n_more:
                par._annotate(
                    first.exception,
                    f"{n_more} other task(s) in the batch also failed",
                )
            try:
                first.exception.sweep_failures = permanent  # type: ignore[attr-defined]
            except Exception:  # pragma: no cover - exotic exception class
                pass
            raise first.exception
        if first.last_kind == "timeout":
            message = (
                f"task {first.desc} exceeded REPRO_TASK_TIMEOUT="
                f"{cfg.task_timeout_s:g}s on every attempt "
                f"({first.failures} of {cfg.retries + 1})"
            )
        else:
            message = (
                f"parallel worker crashed while running {first.desc}; "
                f"rerun with REPRO_JOBS=1 to execute serially"
            )
        if n_more:
            message += f"; {n_more} other task(s) also failed"
        raise SweepError(message, permanent)

    batch.results = [t.result for t in tasks]
    return batch
