"""Content-keyed disk cache for simulation runs.

The paper's figures re-run the same isolated simulations verbatim: the
C2M-isolated STREAM run for a given (preset, core count, seed, window)
appears in Figs. 3, 7, 11 and 12, and every bench invocation repeats
runs of the previous one. Those runs are pure functions of their inputs
(the simulator is deterministic), so their :class:`RunResult`\\ s are
cached on disk keyed by

* the pickled call spec — callable identity, experiment/builder
  configuration, seed, warmup/measure windows, and every other
  argument — and
* a fingerprint of the ``repro`` package source, so any code change
  invalidates the whole cache.

Entries are stored as ``magic + sha256(payload) + payload`` and
verified on every read: an unreadable, truncated or bit-flipped entry
is moved to a ``quarantine/`` subdirectory with a one-line warning
(instead of silently treated as a miss and deleted), so corruption is
visible and the evidence survives for inspection while the run is
transparently recomputed.

Environment knobs:

* ``REPRO_CACHE=off`` (or ``0``/``no``/``false``) disables the cache;
* ``REPRO_CACHE_DIR=<path>`` overrides the cache directory (default
  ``$XDG_CACHE_HOME/repro/runcache`` or ``~/.cache/repro/runcache``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Any, Optional, Tuple

_MISS = object()
_code_fingerprint: Optional[str] = None

#: entry format marker; bump when the on-disk layout changes
_MAGIC = b"RRC1"
_DIGEST_BYTES = 32


def enabled() -> bool:
    """Whether the run cache is active (``REPRO_CACHE`` escape hatch)."""
    return os.environ.get("REPRO_CACHE", "on").lower() not in (
        "off",
        "0",
        "no",
        "false",
    )


def cache_dir() -> Path:
    """Directory holding cached run results."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro" / "runcache"


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file (cache-key code version)."""
    global _code_fingerprint
    if _code_fingerprint is None:
        import repro

        digest = hashlib.sha256()
        package_root = Path(repro.__file__).parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_fingerprint = digest.hexdigest()[:20]
    return _code_fingerprint


def key_for(fn: Any, args: tuple = (), kwargs: Optional[dict] = None) -> Optional[str]:
    """Cache key for a call, or ``None`` if it cannot be keyed.

    Unpicklable specs (closures, lambdas, hosts) return ``None`` so
    callers fall through to plain execution.
    """
    if not enabled():
        return None
    try:
        spec = pickle.dumps((fn, args, sorted((kwargs or {}).items())), protocol=4)
    except Exception:
        return None
    from repro.sim.knobs import KnobSet

    knobs = KnobSet.resolve()
    digest = hashlib.sha256()
    digest.update(code_fingerprint().encode())
    # Validated and unvalidated runs are float-identical by contract,
    # but their RunResults differ in the recorded check count — and a
    # REPRO_VALIDATE=1 suite must actually execute its checks rather
    # than replay an unvalidated cache. Keep the namespaces separate.
    digest.update(b"validate=1" if knobs.validate else b"validate=0")
    # Burst (macro-event) runs are approximations of the per-line
    # simulation: results at different REPRO_BURST factors must never
    # replay each other's cache entries.
    digest.update(f"burst={knobs.burst}".encode())
    # The DDIO and per-bank-regulation force-knobs change host
    # behaviour without appearing in the pickled spec (the HostConfig
    # defaults stay off); keep their namespaces separate too.
    digest.update(f"ddio={knobs.ddio}".encode())
    digest.update(f"bankreg={knobs.bank_reg}".encode())
    # The uncore kernel is float-identical by contract, but a cached
    # result must never mask a divergence: keep the namespaces apart so
    # REPRO_UNCORE=off actually recomputes (same reasoning as the DRAM
    # kernel's code_fingerprint coverage).
    digest.update(f"uncore={knobs.uncore}".encode())
    digest.update(spec)
    return digest.hexdigest()


def encode_blob(value: Any) -> bytes:
    """Serialize a value with an integrity header (magic + sha256).

    Shared with the sweep journal
    (:class:`repro.experiments.supervisor.Journal`) so every persisted
    result — cache entry or checkpoint — is checksummed the same way.
    Raises if the value cannot be pickled.
    """
    payload = pickle.dumps(value, protocol=4)
    return _MAGIC + hashlib.sha256(payload).digest() + payload


def decode_blob(blob: bytes) -> Tuple[bool, Any]:
    """Verify and deserialize an :func:`encode_blob` blob.

    Returns ``(ok, value)``; any header, checksum or unpickling
    problem is ``(False, None)`` — never an exception.
    """
    header = len(_MAGIC) + _DIGEST_BYTES
    if len(blob) < header or not blob.startswith(_MAGIC):
        return False, None
    digest = blob[len(_MAGIC) : header]
    payload = blob[header:]
    if hashlib.sha256(payload).digest() != digest:
        return False, None
    try:
        return True, pickle.loads(payload)
    except Exception:
        return False, None


def _path_for(key: str) -> Path:
    return cache_dir() / key[:2] / f"{key}.pkl"


def _quarantine(path: Path, reason: str) -> None:
    """Move a bad entry aside (or drop it) and say so, once, out loud."""
    quarantine_dir = cache_dir() / "quarantine"
    where = "deleted"
    try:
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        os.replace(path, quarantine_dir / path.name)
        where = f"moved to {quarantine_dir}"
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass
    warnings.warn(
        f"run-cache entry {path.name} is {reason}; {where}, "
        f"the run will be recomputed",
        RuntimeWarning,
        stacklevel=3,
    )


def get(key: Optional[str]) -> Tuple[bool, Any]:
    """Look up a key; returns ``(hit, value)``."""
    if key is None:
        return False, None
    path = _path_for(key)
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return False, None
    except OSError:
        _quarantine(path, "unreadable")
        return False, None
    ok, value = decode_blob(blob)
    if ok:
        return True, value
    _quarantine(path, "corrupt (checksum or format mismatch)")
    return False, None


def put(key: Optional[str], value: Any) -> None:
    """Store a value under a key (atomic, checksummed, best-effort)."""
    if key is None:
        return
    path = _path_for(key)
    try:
        blob = encode_blob(value)
    except Exception:
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        # A read-only or full cache directory never fails the run.
        return
    from repro.experiments import chaos

    chaos.maybe_corrupt_cache(path, key)


def cached_call(fn: Any, *args: Any, **kwargs: Any) -> Any:
    """Run ``fn(*args, **kwargs)`` through the cache."""
    key = key_for(fn, args, kwargs)
    hit, value = get(key)
    if hit:
        return value
    value = fn(*args, **kwargs)
    put(key, value)
    return value
