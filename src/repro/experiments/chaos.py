"""Deterministic fault injection for the sweep supervisor.

Fleet-scale measurement campaigns only trust their orchestration layer
if the failure machinery is exercised routinely, not just when the
cluster misbehaves. This module injects the faults the supervisor
(:mod:`repro.experiments.supervisor`) must survive:

* **kill** — the worker process exits hard (``os._exit``) mid-task,
  breaking the process pool exactly like an OOM kill;
* **hang** — the task sleeps past ``REPRO_TASK_TIMEOUT`` so the
  supervisor has to tear the pool down and requeue;
* **exc** — the task raises a transient :class:`ChaosError` that a
  retry recovers from;
* **corrupt** — a freshly written run-cache entry is truncated on
  disk, exercising the checksum/quarantine path in
  :mod:`repro.experiments.runcache`;
* **preempt** — the task is checkpoint-preempted mid-simulation at a
  deterministic (hashed) event count, exactly like a SIGTERM landing
  mid-run: the worker writes a checkpoint, exits with
  ``checkpoint.PREEMPT_EXIT_CODE``, and the retried attempt resumes
  from the blob — converging to the bit-identical fault-free result
  (:mod:`repro.sim.checkpoint`).

Injection is **deterministic**: every decision is a pure hash of
``(seed, fault kind, task identity, attempt number)``, so a chaotic
run is exactly reproducible and — because faults fire only on early
attempts (``attempts`` in the spec, default: attempt 0 only) — a
sufficiently retried sweep always converges to the fault-free,
float-identical result.

Enable with ``REPRO_CHAOS=<spec>``, a comma-separated ``key=value``
list, e.g.::

    REPRO_CHAOS="kill=0.1,exc=0.3,corrupt=0.25,seed=7"

Keys: ``kill``/``hang``/``exc``/``corrupt``/``preempt``
(probabilities in [0, 1]), ``seed`` (int), ``hang_s`` (hang duration,
default 30 s) and ``attempts`` (inject on attempt numbers below this,
default 1). Kills, hangs and preempts fire only inside pool workers —
in-process (serial) execution injects only transient exceptions, so
chaos can never take down the orchestrating process itself.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

#: exit status used for injected worker kills (visible in pool logs)
KILL_EXIT_CODE = 73

_FLOAT_KEYS = ("kill", "hang", "exc", "corrupt", "preempt", "hang_s")
_INT_KEYS = ("seed", "attempts")


class ChaosError(RuntimeError):
    """A deterministically injected transient task failure."""


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed ``REPRO_CHAOS`` spec (all injection probabilities)."""

    kill: float = 0.0
    hang: float = 0.0
    exc: float = 0.0
    corrupt: float = 0.0
    preempt: float = 0.0
    seed: int = 0
    hang_s: float = 30.0
    attempts: int = 1


def parse(spec: str) -> Optional[ChaosConfig]:
    """Parse a ``REPRO_CHAOS`` spec; ``None`` when disabled."""
    spec = spec.strip()
    if not spec or spec.lower() in ("off", "0", "no", "false"):
        return None
    values: Dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"REPRO_CHAOS entries must be key=value, got {part!r}"
            )
        key, raw = (s.strip() for s in part.split("=", 1))
        try:
            if key in _FLOAT_KEYS:
                values[key] = float(raw)
            elif key in _INT_KEYS:
                values[key] = int(raw)
            else:
                raise ValueError(
                    f"unknown REPRO_CHAOS key {key!r} "
                    f"(expected one of {sorted(_FLOAT_KEYS + _INT_KEYS)})"
                )
        except ValueError as exc:
            if "unknown REPRO_CHAOS" in str(exc):
                raise
            raise ValueError(
                f"REPRO_CHAOS {key} must be numeric, got {raw!r}"
            ) from exc
    for key in ("kill", "hang", "exc", "corrupt", "preempt"):
        p = values.get(key, 0.0)
        if not 0.0 <= float(p) <= 1.0:  # type: ignore[arg-type]
            raise ValueError(f"REPRO_CHAOS {key} must be in [0, 1], got {p}")
    return ChaosConfig(**values)  # type: ignore[arg-type]


_parse_cache: Dict[str, Optional[ChaosConfig]] = {}


def config() -> Optional[ChaosConfig]:
    """The active chaos configuration, or ``None`` when off."""
    spec = os.environ.get("REPRO_CHAOS", "")
    if spec not in _parse_cache:
        _parse_cache[spec] = parse(spec)
    return _parse_cache[spec]


def enabled() -> bool:
    return config() is not None


def roll(cfg: ChaosConfig, kind: str, identity: str, attempt: int) -> bool:
    """Deterministic injection decision for one (fault, task, attempt)."""
    prob = getattr(cfg, kind)
    if prob <= 0.0:
        return False
    digest = hashlib.sha256(
        f"{cfg.seed}|{kind}|{identity}|{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64 < prob


def maybe_inject(identity: str, attempt: int, in_worker: bool) -> None:
    """Fault-injection hook run at the start of every task attempt.

    ``identity`` is the task's stable digest (same across processes and
    resumed sweeps) and ``attempt`` its zero-based attempt number, so
    the injected fault schedule is a pure function of the sweep.
    Kills and hangs are worker-only: they must never take down the
    supervising process.
    """
    cfg = config()
    if cfg is None or attempt >= cfg.attempts:
        return
    if in_worker and roll(cfg, "kill", identity, attempt):
        os._exit(KILL_EXIT_CODE)
    if in_worker and roll(cfg, "hang", identity, attempt):
        time.sleep(cfg.hang_s)
    if in_worker and roll(cfg, "preempt", identity, attempt):
        # Arm a checkpoint-preemption at a deterministic event count
        # (hashed independently of the fire/no-fire roll so the kill
        # point varies across tasks). Fires inside Host.run's chunked
        # drive; if the task's simulation never reaches the count the
        # arm is cleared at task end — a no-op.
        from repro.sim import checkpoint

        digest = hashlib.sha256(
            f"{cfg.seed}|preempt-at|{identity}|{attempt}".encode()
        ).digest()
        events = 1_000 + int.from_bytes(digest[:4], "big") % 40_000
        checkpoint.arm_preempt(events, exit_process=True)
    if roll(cfg, "exc", identity, attempt):
        raise ChaosError(
            f"injected transient fault (task {identity[:12]}, "
            f"attempt {attempt})"
        )


def maybe_corrupt_cache(path: Path, key: str) -> None:
    """Truncate a just-written run-cache entry (checksum-path chaos).

    Keyed on the cache key alone (not the attempt) so a corrupted key
    stays corrupted for the whole chaotic session: every read of it
    exercises quarantine + recompute and the sweep's floats are still
    exact because the recompute is deterministic.
    """
    cfg = config()
    if cfg is None or not roll(cfg, "corrupt", key, 0):
        return
    try:
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
    except OSError:  # pragma: no cover - cache dir vanished mid-run
        pass
