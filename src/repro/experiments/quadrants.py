"""The four quadrants of §2.2 (Fig. 3).

Quadrant  C2M workload    P2M workload   Regime observed
  1       C2M-Read        P2M-Write      blue
  2       C2M-Read        P2M-Read       blue
  3       C2M-ReadWrite   P2M-Write      blue then red
  4       C2M-ReadWrite   P2M-Read       blue

Run on the Cascade Lake preset with prefetching and DDIO disabled,
exactly as the paper configures them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.runner import (
    ColocationExperiment,
    ColocationPoint,
    c2m_bandwidth_metric,
    device_bandwidth_metric,
)
from repro.sim.records import RequestKind
from repro.topology.host import Host
from repro.topology.presets import HostConfig, cascade_lake


@dataclass(frozen=True)
class QuadrantSpec:
    """Workload combination for one quadrant."""

    number: int
    c2m_name: str
    p2m_name: str
    store_fraction: float  # 0.0 = C2M-Read, 1.0 = C2M-ReadWrite
    p2m_kind: RequestKind  # memory-level direction of the DMA stream

    def describe(self) -> str:
        """Human-readable quadrant label."""
        return f"Q{self.number}: {self.c2m_name} + {self.p2m_name}"


QUADRANTS = {
    1: QuadrantSpec(1, "C2M-Read", "P2M-Write", 0.0, RequestKind.WRITE),
    2: QuadrantSpec(2, "C2M-Read", "P2M-Read", 0.0, RequestKind.READ),
    3: QuadrantSpec(3, "C2M-ReadWrite", "P2M-Write", 1.0, RequestKind.WRITE),
    4: QuadrantSpec(4, "C2M-ReadWrite", "P2M-Read", 1.0, RequestKind.READ),
}


@dataclass(frozen=True)
class StreamC2MBuilder:
    """Attach STREAM-style cores (picklable C2M builder)."""

    store_fraction: float = 0.0
    traffic_class: str = "c2m"

    def __call__(self, host: Host, n_cores: int) -> None:
        host.add_stream_cores(
            n_cores,
            store_fraction=self.store_fraction,
            traffic_class=self.traffic_class,
        )


@dataclass(frozen=True)
class RawDmaP2MBuilder:
    """Attach an open-loop DMA generator (picklable P2M builder)."""

    kind: RequestKind
    name: str = "dma"

    def __call__(self, host: Host) -> None:
        host.add_raw_dma(self.kind, name=self.name)


def quadrant_experiment(
    spec: QuadrantSpec, config: Optional[HostConfig] = None, seed: int = 1
) -> ColocationExperiment:
    """Build the colocation experiment for a quadrant."""
    if config is None:
        config = cascade_lake()
    return ColocationExperiment(
        config,
        StreamC2MBuilder(store_fraction=spec.store_fraction),
        RawDmaP2MBuilder(spec.p2m_kind),
        c2m_metric=c2m_bandwidth_metric(),
        p2m_metric=device_bandwidth_metric("dma"),
        seed=seed,
    )


def run_quadrant(
    quadrant: int,
    core_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
    seed: int = 1,
) -> List[ColocationPoint]:
    """Run one quadrant's sweep (a column pair of Fig. 3)."""
    spec = QUADRANTS[quadrant]
    experiment = quadrant_experiment(spec, config, seed)
    return experiment.sweep(core_counts, warmup, measure)
