"""Per-bank bandwidth regulation: the hot-bank mitigation experiment.

§5.1 root-causes blue-regime MC queueing in two per-bank pathologies —
bank load imbalance (Fig. 7d) and row-miss inflation — that
channel-level schedulers cannot see. "Per-Bank Memory Bandwidth
Regulation" (PAPERS.md) proposes the per-bank counterpart of HostCC:
token-bucket the per-bank service rate so no single bank's backlog can
monopolize consecutive scheduling slots.

This experiment reproduces the mechanism on the simulator's
oldest-first scheduler. Victims are closed-loop sequential readers
(their in-flight demand is LFB-limited); the aggressor is an
*open-loop* DMA read stream cycling a buffer much smaller than the
bank stride, so a handful of banks hold a standing backlog that soaks
up scheduling slots ahead of the victims' row walks. Regulation caps
those banks' token rate; with their backlog throttled the pump serves
the victims' banks instead, which

* shrinks the bank-deviation CDF tail (the per-sample max-bank share
  is bounded by the token rate), and
* deflates the victims' row-miss inflation (fewer aggressor
  interleavings on shared banks close fewer victim rows),

with the aggressor — whose own rate is device-limited, far below the
cap times its bank count — losing nothing. The defaults
(``share=0.2``, ``burst=4``) are the measured sweet spot: tighter
shares keep shrinking the tail but start convoying the victims
themselves (their row bursts also hit the cap), trading bandwidth for
fairness.

All builders are frozen dataclasses (picklable) so the sweep composes
with the run cache and the process-pool runner like every other
experiment in this package.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.sim.records import RequestKind
from repro.telemetry.bankstats import bank_deviation_cdf
from repro.topology.host import Host, RunResult
from repro.topology.presets import HostConfig, cascade_lake

#: CDF thresholds reported by :func:`tail_fractions` — the Fig. 7d
#: x-axis region where the baseline and regulated curves separate.
TAIL_THRESHOLDS = (4.0, 6.0, 8.0, 10.0)


@dataclass(frozen=True)
class BankRegSpec:
    """One hot-bank scenario: victims, aggressor, regulation knobs."""

    n_victim_cores: int = 4
    #: aggressor buffer size; much smaller than the per-bank stride so
    #: its open-loop stream camps on a few banks.
    hog_region_bytes: int = 512 << 10
    #: per-bank token rate as a fraction of the channel line rate.
    share: float = 0.2
    burst_lines: int = 4
    #: traffic-class bank partitioning (0 = off); composes with the
    #: token buckets but is reported separately.
    partition_classes: int = 0
    #: per-bank sample size for the deviation CDF. The paper samples
    #: every 1000 requests; the small simulated windows need finer
    #: granularity to resolve the tail.
    sample_every: int = 100
    warmup_ns: float = 20_000.0
    measure_ns: float = 60_000.0

    def config(self, regulated: bool) -> HostConfig:
        """The host config for the baseline or regulated run."""
        config = replace(cascade_lake(), bank_sample_every=self.sample_every)
        if regulated:
            config = replace(
                config,
                bank_reg_enabled=True,
                bank_reg_share=self.share,
                bank_reg_burst_lines=self.burst_lines,
                bank_partition_classes=self.partition_classes,
            )
        return config


@dataclass(frozen=True)
class HotBankRunner:
    """Picklable top-level runner for one scenario arm."""

    spec: BankRegSpec
    regulated: bool
    with_aggressor: bool = True

    def __call__(self) -> RunResult:
        host = Host(self.spec.config(self.regulated))
        host.add_stream_cores(self.spec.n_victim_cores, store_fraction=0.0)
        if self.with_aggressor:
            host.add_raw_dma(
                RequestKind.READ,
                region_bytes=self.spec.hog_region_bytes,
                name="hog",
            )
        return host.run(self.spec.warmup_ns, self.spec.measure_ns)


def tail_fractions(
    deviations: Sequence[float],
    thresholds: Sequence[float] = TAIL_THRESHOLDS,
) -> Dict[float, float]:
    """Fraction of samples at or above each deviation threshold.

    The complementary CDF at the Fig. 7d tail — the quantity per-bank
    regulation exists to shrink.
    """
    n = len(deviations)
    if n == 0:
        return {float(t): 0.0 for t in thresholds}
    return {
        float(t): sum(1 for d in deviations if d >= t) / n for t in thresholds
    }


@dataclass(frozen=True)
class BankRegComparison:
    """Baseline vs regulated arms of one hot-bank scenario."""

    spec: BankRegSpec
    isolated: RunResult  # victims alone: the row-miss floor
    baseline: RunResult  # colocated, regulation off
    regulated: RunResult  # colocated, regulation on

    def tails(self) -> Tuple[Dict[float, float], Dict[float, float]]:
        """(baseline, regulated) deviation tail fractions."""
        return (
            tail_fractions(self.baseline.bank_deviations),
            tail_fractions(self.regulated.bank_deviations),
        )

    def cdfs(self, grid: Optional[Sequence[float]] = None):
        """(baseline, regulated) deviation CDFs on a shared grid."""
        if grid is None:
            merged = sorted(
                set(self.baseline.bank_deviations)
                | set(self.regulated.bank_deviations)
            )
            grid = merged or [0.0]
        return (
            bank_deviation_cdf(self.baseline.bank_deviations, grid=grid),
            bank_deviation_cdf(self.regulated.bank_deviations, grid=grid),
        )

    def row_miss_inflation(self) -> Tuple[float, float]:
        """(baseline, regulated) victim row-miss ratio over isolated."""
        floor = self.isolated.row_miss_ratio.get("c2m.read", 0.0)
        if floor <= 0.0:
            return 0.0, 0.0
        return (
            self.baseline.row_miss_ratio.get("c2m.read", 0.0) / floor,
            self.regulated.row_miss_ratio.get("c2m.read", 0.0) / floor,
        )


def run_comparison(spec: Optional[BankRegSpec] = None) -> BankRegComparison:
    """Run the three arms (isolated / baseline / regulated) of a spec."""
    if spec is None:
        spec = BankRegSpec()
    return BankRegComparison(
        spec=spec,
        isolated=HotBankRunner(spec, regulated=False, with_aggressor=False)(),
        baseline=HotBankRunner(spec, regulated=False)(),
        regulated=HotBankRunner(spec, regulated=True)(),
    )


@dataclass(frozen=True)
class BankRegSummary:
    """The numbers the experiment exists to show, in one place."""

    tail_baseline: Dict[float, float] = field(default_factory=dict)
    tail_regulated: Dict[float, float] = field(default_factory=dict)
    inflation_baseline: float = 0.0
    inflation_regulated: float = 0.0
    victim_bw_baseline: float = 0.0
    victim_bw_regulated: float = 0.0
    hog_bw_baseline: float = 0.0
    hog_bw_regulated: float = 0.0

    @classmethod
    def from_comparison(cls, comparison: BankRegComparison) -> "BankRegSummary":
        tail_base, tail_reg = comparison.tails()
        infl_base, infl_reg = comparison.row_miss_inflation()
        return cls(
            tail_baseline=tail_base,
            tail_regulated=tail_reg,
            inflation_baseline=infl_base,
            inflation_regulated=infl_reg,
            victim_bw_baseline=comparison.baseline.class_bandwidth("c2m"),
            victim_bw_regulated=comparison.regulated.class_bandwidth("c2m"),
            hog_bw_baseline=comparison.baseline.device_bandwidth("hog"),
            hog_bw_regulated=comparison.regulated.device_bandwidth("hog"),
        )
