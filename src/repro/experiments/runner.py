"""Colocation experiment runner.

The paper's experimental template (§2): run the C2M app in isolation,
run the P2M app in isolation, colocate them, and report per-app
degradation (isolated / colocated throughput) plus the memory-bandwidth
breakdown of the colocated run. :class:`ColocationExperiment`
parameterizes the template over workload builders and metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.regimes import Regime, RegimePoint, classify_regime
from repro.topology.host import Host, RunResult
from repro.topology.presets import HostConfig

#: builds the C2M side onto a host with a given core count
C2MBuilder = Callable[[Host, int], None]
#: builds the P2M side onto a host
P2MBuilder = Callable[[Host], None]
#: extracts an app throughput from a run
Metric = Callable[[RunResult], float]

# Metrics and builders are frozen-dataclass callables rather than
# closures so that experiments — and their bound run_* methods — can be
# pickled into process-pool workers and hashed into run-cache keys.


@dataclass(frozen=True)
class ClassBandwidthMetric:
    """C2M app throughput as its memory bandwidth (STREAM workloads)."""

    traffic_class: str = "c2m"

    def __call__(self, result: RunResult) -> float:
        return result.class_bandwidth(self.traffic_class)


@dataclass(frozen=True)
class DeviceBandwidthMetric:
    """P2M app throughput as device data rate (FIO/NIC)."""

    name: str = "dma"

    def __call__(self, result: RunResult) -> float:
        return result.device_bandwidth(self.name)


@dataclass(frozen=True)
class WorkloadOpsMetric:
    """App throughput as completed operations per ns (Redis queries,
    GAPBS edges)."""

    name: str

    def __call__(self, result: RunResult) -> float:
        return result.ops_rate(self.name)


def c2m_bandwidth_metric(traffic_class: str = "c2m") -> Metric:
    return ClassBandwidthMetric(traffic_class)


def device_bandwidth_metric(name: str = "dma") -> Metric:
    return DeviceBandwidthMetric(name)


def workload_ops_metric(name: str) -> Metric:
    return WorkloadOpsMetric(name)


@dataclass
class ColocationPoint:
    """One core-count data point of a colocation sweep."""

    n_c2m_cores: int
    c2m_isolated: float
    p2m_isolated: float
    c2m_colocated: float
    p2m_colocated: float
    colocated: RunResult
    c2m_isolated_run: RunResult
    p2m_isolated_run: RunResult

    @property
    def c2m_degradation(self) -> float:
        """Isolated / colocated throughput (>= 1 means degraded)."""
        if self.c2m_colocated <= 0:
            return float("inf")
        return self.c2m_isolated / self.c2m_colocated

    @property
    def p2m_degradation(self) -> float:
        """Isolated / colocated P2M throughput (>= 1 means degraded)."""
        if self.p2m_colocated <= 0:
            return float("inf")
        return self.p2m_isolated / self.p2m_colocated

    @property
    def regime(self) -> Regime:
        """The paper's blue/red classification of this point."""
        return classify_regime(
            RegimePoint(
                c2m_degradation=max(1e-9, self.c2m_degradation),
                p2m_degradation=max(1e-9, self.p2m_degradation),
                mem_bw_utilization=min(1.5, self.colocated.mem_bw_utilization),
            )
        )

    @property
    def domain_snapshots(self):
        """The colocated run's live per-domain (C, occupancy, L, T)
        snapshots from the shared credit runtime, keyed by domain kind
        value (``"c2m_read"``, ...)."""
        return self.colocated.domain_snapshots


class ColocationExperiment:
    """Template for an isolated-vs-colocated sweep over C2M core counts.

    Args:
        config: host configuration (one of the Table 1 presets).
        build_c2m: attaches the C2M app to a host for a core count.
        build_p2m: attaches the P2M app to a host.
        c2m_metric / p2m_metric: app throughput extractors.
        seed: deterministic region placement / workload seed.
        validate: runtime invariant checking (:mod:`repro.validate`)
            for every host this experiment builds; ``None`` defers to
            the ``REPRO_VALIDATE`` environment knob. Part of the
            experiment's identity, so validated and unvalidated runs
            never share run-cache entries.
    """

    def __init__(
        self,
        config: HostConfig,
        build_c2m: C2MBuilder,
        build_p2m: P2MBuilder,
        c2m_metric: Optional[Metric] = None,
        p2m_metric: Optional[Metric] = None,
        seed: int = 1,
        validate: Optional[bool] = None,
    ):
        self.config = config
        self.build_c2m = build_c2m
        self.build_p2m = build_p2m
        self.c2m_metric = c2m_metric or c2m_bandwidth_metric()
        self.p2m_metric = p2m_metric or device_bandwidth_metric()
        self.seed = seed
        self.validate = validate

    def _new_host(self) -> Host:
        return Host(self.config, seed=self.seed, validate=self.validate)

    def run_c2m_isolated(self, n_cores: int, warmup: float, measure: float) -> RunResult:
        """Run only the C2M app."""
        host = self._new_host()
        self.build_c2m(host, n_cores)
        return host.run(warmup, measure)

    def run_p2m_isolated(self, warmup: float, measure: float) -> RunResult:
        """Run only the P2M app."""
        host = self._new_host()
        self.build_p2m(host)
        return host.run(warmup, measure)

    def run_colocated(self, n_cores: int, warmup: float, measure: float) -> RunResult:
        """Run both apps on one host."""
        host = self._new_host()
        self.build_c2m(host, n_cores)
        self.build_p2m(host)
        return host.run(warmup, measure)

    def _make_point(
        self,
        n_cores: int,
        c2m_iso: RunResult,
        p2m_iso: RunResult,
        colocated: RunResult,
    ) -> ColocationPoint:
        return ColocationPoint(
            n_c2m_cores=n_cores,
            c2m_isolated=self.c2m_metric(c2m_iso),
            p2m_isolated=self.p2m_metric(p2m_iso),
            c2m_colocated=self.c2m_metric(colocated),
            p2m_colocated=self.p2m_metric(colocated),
            colocated=colocated,
            c2m_isolated_run=c2m_iso,
            p2m_isolated_run=p2m_iso,
        )

    def point(
        self,
        n_cores: int,
        warmup: float = 20_000.0,
        measure: float = 60_000.0,
        p2m_isolated_run: Optional[RunResult] = None,
    ) -> ColocationPoint:
        """Measure one data point (isolated pair + colocated run)."""
        c2m_iso = self.run_c2m_isolated(n_cores, warmup, measure)
        p2m_iso = p2m_isolated_run or self.run_p2m_isolated(warmup, measure)
        colocated = self.run_colocated(n_cores, warmup, measure)
        return self._make_point(n_cores, c2m_iso, p2m_iso, colocated)

    def sweep(
        self,
        core_counts: Sequence[int],
        warmup: float = 20_000.0,
        measure: float = 60_000.0,
        jobs: Optional[int] = None,
    ) -> List[ColocationPoint]:
        """Sweep C2M core counts; the P2M isolation run is shared.

        All ``2 * len(core_counts) + 1`` independent runs fan out over
        a process pool (``REPRO_JOBS`` workers; see
        :mod:`repro.experiments.parallel`).
        """
        from repro.experiments.parallel import run_calls

        calls = [(self.run_p2m_isolated, (warmup, measure), {})]
        for n in core_counts:
            calls.append((self.run_c2m_isolated, (n, warmup, measure), {}))
            calls.append((self.run_colocated, (n, warmup, measure), {}))
        results = run_calls(calls, jobs=jobs)
        p2m_iso = results[0]
        return [
            self._make_point(n, results[1 + 2 * k], p2m_iso, results[2 + 2 * k])
            for k, n in enumerate(core_counts)
        ]
