"""Experiment harness: isolated/colocated runs, the four quadrants,
and per-figure series builders for every table and figure in the paper.
"""

from repro.experiments.runner import (
    ColocationExperiment,
    ColocationPoint,
    c2m_bandwidth_metric,
    device_bandwidth_metric,
    workload_ops_metric,
)
from repro.experiments.quadrants import QUADRANTS, QuadrantSpec, run_quadrant
from repro.experiments.reporting import render_failures, render_series, render_table
from repro.experiments.supervisor import (
    BatchResult,
    SupervisorConfig,
    SweepError,
    TaskFailure,
    run_supervised,
)

__all__ = [
    "BatchResult",
    "SupervisorConfig",
    "SweepError",
    "TaskFailure",
    "run_supervised",
    "render_failures",
    "ColocationExperiment",
    "ColocationPoint",
    "c2m_bandwidth_metric",
    "device_bandwidth_metric",
    "workload_ops_metric",
    "QUADRANTS",
    "QuadrantSpec",
    "run_quadrant",
    "render_series",
    "render_table",
]
