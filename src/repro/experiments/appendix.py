"""Appendix A/B figure builders (Figs. 13-17).

* Figs. 13/14 — root-cause measurements for quadrants 2 and 4 (the
  P2M-Read quadrants): same metric panels as Fig. 7 plus the in-flight
  P2M read count, which stays well below the read-domain credit limit
  (spare credits mask latency inflation).
* Figs. 15-17 — real applications across all C2M/P2M read/write
  combinations (Redis-Write = 100% SET, GAPBS-BC) with DDIO on/off.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.figures import FigureData, _app_experiment, _quadrant_root_cause
from repro.topology.presets import HostConfig, cascade_lake


def fig13(
    core_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
) -> FigureData:
    """Fig. 13: understanding quadrant 2 (C2M-Read + P2M-Read)."""
    return _quadrant_root_cause("fig13", 2, core_counts, config, warmup, measure)


def fig14(
    core_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    config: Optional[HostConfig] = None,
    warmup: float = 20_000.0,
    measure: float = 60_000.0,
) -> FigureData:
    """Fig. 14: understanding quadrant 4 (C2M-ReadWrite + P2M-Read)."""
    return _quadrant_root_cause("fig14", 4, core_counts, config, warmup, measure)


def _apps_vs_p2m(
    figure_id: str,
    title: str,
    apps: Sequence[str],
    fio_mode: str,
    core_counts: Sequence[int],
    warmup: float,
    measure: float,
) -> FigureData:
    """Fig. 15-17 shared builder: apps x DDIO against one P2M direction."""
    data = FigureData(figure_id, title, "c2m_cores", list(core_counts))
    for ddio in (True, False):
        tag = "ddio_on" if ddio else "ddio_off"
        config = cascade_lake(llc_mode="full", ddio_enabled=ddio)
        for app in apps:
            experiment = _app_experiment(config, app, fio_mode=fio_mode)
            points = experiment.sweep(core_counts, warmup, measure)
            data.add(
                f"{app}_{tag}_degradation", [p.c2m_degradation for p in points]
            )
            data.add(
                f"fio_{tag}_degradation_vs_{app}",
                [p.p2m_degradation for p in points],
            )
    return data


def fig15(
    core_counts: Sequence[int] = (1, 2, 4, 6),
    warmup: float = 15_000.0,
    measure: float = 40_000.0,
) -> FigureData:
    """Fig. 15: Redis-Write and GAPBS-BC colocated with P2M write."""
    data = _apps_vs_p2m(
        "fig15",
        "Figure 15: write-heavy C2M apps vs P2M write (DDIO on/off)",
        ("redis_write", "gapbs_bc"),
        "read",  # storage reads = P2M writes
        core_counts,
        warmup,
        measure,
    )
    data.notes = "DDIO-on should show equal or worse C2M degradation."
    return data


def fig16(
    core_counts: Sequence[int] = (1, 2, 4, 6),
    warmup: float = 15_000.0,
    measure: float = 40_000.0,
) -> FigureData:
    """Fig. 16: Redis-Read and GAPBS-PR colocated with P2M read."""
    data = _apps_vs_p2m(
        "fig16",
        "Figure 16: read-heavy C2M apps vs P2M read (DDIO on/off)",
        ("redis", "gapbs"),
        "write",  # storage writes = P2M reads
        core_counts,
        warmup,
        measure,
    )
    data.notes = (
        "With P2M reads, DDIO does not allocate (reads do not install "
        "DMA lines), so on/off curves should coincide."
    )
    return data


def fig17(
    core_counts: Sequence[int] = (1, 2, 4, 6),
    warmup: float = 15_000.0,
    measure: float = 40_000.0,
) -> FigureData:
    """Fig. 17: Redis-Write and GAPBS-BC colocated with P2M read."""
    data = _apps_vs_p2m(
        "fig17",
        "Figure 17: write-heavy C2M apps vs P2M read (DDIO on/off)",
        ("redis_write", "gapbs_bc"),
        "write",
        core_counts,
        warmup,
        measure,
    )
    data.notes = "P2M remains ~1.0 throughout; DDIO on/off should coincide."
    return data
