"""Discrete-event simulation engine for the host-network simulator.

The engine is deliberately minimal: a heap-ordered event loop with a
nanosecond-resolution clock. Every component of the host network
(cores, CHA, memory controller, IIO, PCIe devices) schedules callbacks
on a shared :class:`Simulator` instance.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.records import Request, RequestKind, RequestSource

__all__ = [
    "Event",
    "Simulator",
    "Request",
    "RequestKind",
    "RequestSource",
]
