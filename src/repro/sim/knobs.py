"""One frozen resolution of every behaviour-affecting ``REPRO_*`` knob.

Historically each component read its own environment knob at
construction time (``burst_factor()`` in ``Host.__init__``,
``uncore_enabled()`` in the CHA wiring, ...). Within one process that
was merely untidy; with several hosts composed into one cluster it
became a correctness hazard — two hosts built a few statements apart
could observe *different* knob values if the environment mutated
between constructions, silently breaking the shared-clock contract.

:class:`KnobSet` resolves the full knob surface exactly once and is
passed down explicitly: a :class:`~repro.topology.cluster.Cluster`
resolves one set and hands the same frozen object to every host it
builds. The checkpoint layer's knob fingerprint
(:func:`repro.sim.checkpoint._knob_fingerprint`) and the run cache's
knob-namespace keys are derived from the same resolution, so the three
consumers can never disagree about what "the current knobs" are.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class KnobSet:
    """The resolved values of the behaviour-affecting ``REPRO_*`` knobs.

    Field semantics match the accessor each value is resolved through:

    * ``kernel`` / ``uncore`` — the SoA DRAM-channel and uncore
      kernels (``REPRO_KERNEL`` / ``REPRO_UNCORE``; bit-identical by
      contract, fingerprinted so a cached/checkpointed result can
      never mask a divergence);
    * ``wheel`` — calendar-queue engine (``REPRO_WHEEL``);
    * ``burst`` — macro-event burst factor (``REPRO_BURST``);
    * ``pool`` — Request free-list pooling (``REPRO_POOL``);
    * ``ddio`` / ``bank_reg`` — tri-state config force-overrides
      (``REPRO_DDIO`` / ``REPRO_BANK_REG``; ``None`` defers to the
      :class:`~repro.topology.presets.HostConfig`);
    * ``validate`` — runtime invariant checking (``REPRO_VALIDATE``).
    """

    kernel: bool
    uncore: bool
    wheel: bool
    burst: int
    pool: bool
    ddio: Optional[bool]
    bank_reg: Optional[bool]
    validate: bool

    @classmethod
    def resolve(cls) -> "KnobSet":
        """Read every knob from the environment, once, right now."""
        from repro.dram.kernel import kernel_enabled
        from repro.dram.regulator import bank_reg_forced
        from repro.sim.engine import wheel_enabled
        from repro.sim.records import burst_factor, pool_enabled
        from repro.uncore.kernel import uncore_enabled
        from repro.uncore.llc import ddio_forced
        from repro.validate.invariants import enabled as validate_enabled

        return cls(
            kernel=kernel_enabled(),
            uncore=uncore_enabled(),
            wheel=wheel_enabled(),
            burst=burst_factor(),
            pool=pool_enabled(),
            ddio=ddio_forced(),
            bank_reg=bank_reg_forced(),
            validate=validate_enabled(),
        )

    def fingerprint(self) -> Dict[str, Any]:
        """The checkpoint-compatible ``{knob: value}`` mapping."""
        return asdict(self)
