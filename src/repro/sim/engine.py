"""Heap-based discrete-event simulator.

Time is measured in nanoseconds (floats). The engine guarantees that
events scheduled for the same instant fire in scheduling order, which
keeps component interactions deterministic run-to-run.

The hot path stores plain ``(time, seq, fn, args)`` tuples in the heap:
the overwhelming majority of events (every DRAM transmit, CHA hop,
PCIe arrival, ...) are never cancelled, so they pay neither object
allocation nor attribute lookups. Only :meth:`Simulator.schedule_cancellable`
and :meth:`Simulator.schedule_at_cancellable` allocate an :class:`Event`
wrapper, stored in the heap as ``(time, seq, None, event)`` so the
dispatch loop can recognise it by its ``None`` callback slot. The
unique ``seq`` ordinal guarantees tuple comparison never reaches the
(uncomparable) callback slot.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any, Callable

_INF = float("inf")


class Event:
    """A cancellable scheduled callback.

    Events are returned by :meth:`Simulator.schedule_cancellable` so
    callers can cancel them. A cancelled event stays in the heap but is
    skipped when it surfaces (lazy deletion, the standard heapq idiom).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing. Safe to call more than once."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, {self.fn.__qualname__}, {state})"


class Simulator:
    """A minimal discrete-event simulation kernel.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, callback, arg1, arg2)
        sim.run_until(1_000.0)

    The clock never moves backwards; scheduling an event in the past
    (or at a non-finite time) raises ``ValueError`` to surface
    modelling bugs early.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._events_processed: int = 0

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        Fast path: the entry cannot be cancelled and nothing is
        allocated beyond the heap tuple. Use
        :meth:`schedule_cancellable` when a handle is needed.
        """
        if not delay >= 0.0:  # catches negatives and NaN in one test
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        if time == _INF:
            raise ValueError(f"cannot schedule at non-finite time (delay={delay})")
        self._seq = seq = self._seq + 1
        heappush(self._heap, (time, seq, fn, args))

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run at absolute time ``time`` ns."""
        if not time >= self.now:  # catches the past and NaN in one test
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        if time == _INF:
            raise ValueError(f"cannot schedule at non-finite time (time={time})")
        self._seq = seq = self._seq + 1
        heappush(self._heap, (time, seq, fn, args))

    def schedule_cancellable(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> Event:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if not delay >= 0.0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at_cancellable(self.now + delay, fn, *args)

    def schedule_at_cancellable(
        self, time: float, fn: Callable[..., None], *args: Any
    ) -> Event:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if not time >= self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        if not math.isfinite(time):
            raise ValueError(f"cannot schedule at non-finite time (time={time})")
        self._seq = seq = self._seq + 1
        event = Event(time, seq, fn, args)
        heappush(self._heap, (time, seq, None, event))
        return event

    def run_until(self, t_end: float) -> None:
        """Execute events in timestamp order until the clock reaches ``t_end``.

        Events scheduled exactly at ``t_end`` are *not* executed; the
        clock is left at ``t_end`` so back-to-back windows compose.
        The clock never moves backwards: ``t_end < now`` (or NaN)
        raises ``ValueError``, mirroring the schedulers.
        """
        if not t_end >= self.now:  # catches rewinds and NaN in one test
            raise ValueError(
                f"cannot run backwards (t_end={t_end}, now={self.now})"
            )
        heap = self._heap
        pop = heappop
        processed = self._events_processed
        while heap:
            time = heap[0][0]
            if time >= t_end:
                break
            # Coalesce: dispatch every event at this timestamp with a
            # single clock update and t_end comparison.
            self.now = time
            while heap and heap[0][0] == time:
                entry = pop(heap)
                fn = entry[2]
                if fn is None:
                    event = entry[3]
                    if event.cancelled:
                        continue
                    processed += 1
                    event.fn(*event.args)
                else:
                    processed += 1
                    fn(*entry[3])
        self._events_processed = processed
        self.now = t_end

    def run(self, max_events: int = 100_000_000) -> None:
        """Execute all pending events (bounded by ``max_events``)."""
        heap = self._heap
        pop = heappop
        executed = 0
        while heap and executed < max_events:
            entry = pop(heap)
            fn = entry[2]
            if fn is None:
                event = entry[3]
                if event.cancelled:
                    continue
                self.now = entry[0]
                self._events_processed += 1
                executed += 1
                event.fn(*event.args)
            else:
                self.now = entry[0]
                self._events_processed += 1
                executed += 1
                fn(*entry[3])
        if executed >= max_events:
            # Lazy-deleted (cancelled) entries are not pending work:
            # drain them before deciding the budget was exceeded, so a
            # run of exactly ``max_events`` live events with only
            # cancelled residue in the heap completes cleanly.
            while heap and heap[0][2] is None and heap[0][3].cancelled:
                pop(heap)
            if heap:
                raise RuntimeError(f"simulation exceeded {max_events} events")
