"""Bucketed-heap discrete-event simulator.

Time is measured in nanoseconds (floats). The engine guarantees that
events scheduled for the same instant fire in scheduling order, which
keeps component interactions deterministic run-to-run.

The pending set is a two-level structure — the scheduler's *fast
lanes*:

* ``_heap`` is a binary heap of **bare float timestamps**, one per
  distinct pending instant. Heap pushes/pops compare plain floats, and
  the heap only grows when a *new* instant appears.
* ``_buckets`` maps each pending instant to its FIFO bucket of
  entries. Scheduling onto an instant that is already pending is a
  dict hit plus a list append — no heap operation at all, which is
  the common case for event trains (many components acting at the
  same timestamp, self-rescheduling sources with few distinct
  delays).

A bucket holds either a single entry (the overwhelmingly common
singleton case pays no list allocation) or a list of entries in
scheduling order. Entries come in three shapes, recognised by class:

* ``(fn, args)`` tuples — the non-cancellable fast path used by
  :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`;
* :class:`Event` wrappers — cancellable handles from
  :meth:`Simulator.schedule_cancellable`, lazily deleted;
* :class:`_Chain` payloads — a whole same-instant train from
  :meth:`Simulator.schedule_many`, stored as one entry.

Dispatch order is exactly what a ``(time, submission ordinal)`` total
order produces: all entries for an instant live in its bucket from
first schedule until the bucket is dispatched, appends preserve
submission order, and distinct instants are ordered by the heap.
Entries scheduled *for the current instant while it is being
dispatched* open a fresh bucket at the same timestamp, which the drain
loop picks up before the clock moves — again matching submission
order, since every live entry of the old bucket has already fired.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Sequence

_INF = float("inf")


class Event:
    """A cancellable scheduled callback.

    Events are returned by :meth:`Simulator.schedule_cancellable` so
    callers can cancel them. A cancelled event stays in its bucket but
    is skipped when it surfaces (lazy deletion, the standard idiom).
    """

    __slots__ = ("time", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, fn: Callable[..., None], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Owning simulator while the event is pending; cleared at
        # dispatch and at cancellation so the live-pending counter is
        # decremented exactly once per scheduled event.
        self._sim = None

    def cancel(self) -> None:
        """Prevent this event from firing. Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._cancelled += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, {self.fn.__qualname__}, {state})"


class _Chain:
    """A same-instant event train stored as one bucket entry.

    Members fire in list order, exactly as the equivalent sequence of
    per-member :meth:`Simulator.schedule` calls would (the train is
    submitted atomically, so nothing can interleave inside it).
    ``idx`` is the dispatch cursor: when a budgeted run expires
    mid-train the anchor stays in its bucket with the cursor advanced
    past the dispatched members.
    """

    __slots__ = ("fn", "argslist", "idx")

    def __init__(self, fn: Callable[..., None], argslist: Sequence[tuple]):
        self.fn = fn
        self.argslist = argslist
        self.idx = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"_Chain({self.fn.__qualname__}, "
            f"{len(self.argslist) - self.idx} of {len(self.argslist)} left)"
        )


class Simulator:
    """A minimal discrete-event simulation kernel.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, callback, arg1, arg2)
        sim.run_until(1_000.0)

    The clock never moves backwards; scheduling an event in the past
    (or at a non-finite time) raises ``ValueError`` to surface
    modelling bugs early.
    """

    __slots__ = ("now", "_heap", "_buckets", "_events_processed", "_cancelled")

    def __init__(self) -> None:
        self.now: float = 0.0
        #: distinct pending instants (bare floats, heap-ordered)
        self._heap: list = []
        #: instant -> entry | list of entries, in scheduling order
        self._buckets: dict = {}
        self._events_processed: int = 0
        # Cancelled (lazily-deleted) events still filed in a bucket:
        # incremented by Event.cancel(), decremented when the dead
        # entry surfaces at dispatch. Keeping the *cancelled* count —
        # rather than a live count bumped on every schedule — keeps
        # the hot scheduling paths counter-free; ``pending_live``
        # derives the live count on demand.
        self._cancelled: int = 0

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still scheduled (including cancelled).

        O(pending) — this walks the buckets; it is a diagnostic, not a
        hot-path counter.
        """
        count = 0
        for bucket in self._buckets.values():
            if bucket.__class__ is list:
                for entry in bucket:
                    if entry.__class__ is _Chain:
                        count += len(entry.argslist) - entry.idx
                    else:
                        count += 1
            elif bucket.__class__ is _Chain:
                count += len(bucket.argslist) - bucket.idx
            else:
                count += 1
        return count

    @property
    def pending_live(self) -> int:
        """Number of scheduled events that will actually fire.

        Unlike :attr:`pending` this excludes lazily-deleted (cancelled)
        entries: it drops by one the moment :meth:`Event.cancel`
        happens, not when the dead entry surfaces. The validation
        layer cross-checks the cancellation bookkeeping against a
        bucket walk. O(pending), like :attr:`pending`.
        """
        return self.pending - self._cancelled

    def _file(self, time: float, entry) -> None:
        """Append ``entry`` to the bucket for ``time`` (creating it,
        and registering the instant in the heap, if new)."""
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = entry
            heappush(self._heap, time)
        elif bucket.__class__ is list:
            bucket.append(entry)
        else:
            buckets[time] = [bucket, entry]

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        Fast path: the entry cannot be cancelled and nothing is
        allocated beyond an ``(fn, args)`` pair. Use
        :meth:`schedule_cancellable` when a handle is needed.
        """
        time = self.now + delay
        # One guard for negatives, NaN (fails both compares) and inf.
        if not (delay >= 0.0 and time < _INF):
            self._reject(delay, time)
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = (fn, args)
            heappush(self._heap, time)
        elif bucket.__class__ is list:
            bucket.append((fn, args))
        else:
            buckets[time] = [bucket, (fn, args)]

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run at absolute time ``time`` ns."""
        if not (time >= self.now and time < _INF):
            self._reject_at(time)
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = (fn, args)
            heappush(self._heap, time)
        elif bucket.__class__ is list:
            bucket.append((fn, args))
        else:
            buckets[time] = [bucket, (fn, args)]

    def schedule_many(
        self, delay: float, fn: Callable[..., None], argslist: Iterable[tuple]
    ) -> int:
        """Schedule ``fn(*args)`` for every ``args`` tuple in ``argslist``.

        All members fire ``delay`` ns from now, in list order, exactly
        as the equivalent sequence of :meth:`schedule` calls would —
        but the whole train costs a single bucket entry (and at most
        one heap push). Returns the number of events scheduled (0 is a
        no-op).
        """
        time = self.now + delay
        if not (delay >= 0.0 and time < _INF):
            self._reject(delay, time)
        if not isinstance(argslist, (list, tuple)):
            argslist = list(argslist)
        n = len(argslist)
        if n == 0:
            return 0
        if n == 1:
            self._file(time, (fn, argslist[0]))
        else:
            self._file(time, _Chain(fn, argslist))
        return n

    def schedule_cancellable(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> Event:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if not delay >= 0.0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at_cancellable(self.now + delay, fn, *args)

    def schedule_at_cancellable(
        self, time: float, fn: Callable[..., None], *args: Any
    ) -> Event:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if not time >= self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        if not math.isfinite(time):
            raise ValueError(f"cannot schedule at non-finite time (time={time})")
        event = Event(time, fn, args)
        event._sim = self
        self._file(time, event)
        return event

    def _reject(self, delay: float, time: float) -> None:
        """Raise the precise ValueError for a bad relative delay."""
        if not delay >= 0.0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        raise ValueError(f"cannot schedule at non-finite time (delay={delay})")

    def _reject_at(self, time: float) -> None:
        """Raise the precise ValueError for a bad absolute time."""
        if not time >= self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        raise ValueError(f"cannot schedule at non-finite time (time={time})")

    def _drain(self, t_end: float) -> int:
        """The unbudgeted dispatch core behind :meth:`run_until`.

        Executes every event with ``timestamp < t_end``, coalescing
        each instant's bucket under one clock update. Returns the
        number executed. The clock is left at the last executed
        timestamp; callers adjust it afterwards.
        """
        heap = self._heap
        pop = heappop
        take = self._buckets.pop
        processed = self._events_processed
        start = processed
        while heap and heap[0] < t_end:
            time = pop(heap)
            self.now = time
            bucket = take(time)
            cls = bucket.__class__
            if cls is tuple:  # singleton fast entry — the common case
                processed += 1
                args = bucket[1]
                if args:
                    bucket[0](*args)
                else:
                    bucket[0]()
                continue
            if cls is not list:
                bucket = (bucket,)
            for entry in bucket:
                cls = entry.__class__
                if cls is tuple:
                    processed += 1
                    args = entry[1]
                    if args:
                        entry[0](*args)
                    else:
                        entry[0]()
                elif cls is Event:
                    if entry.cancelled:
                        self._cancelled -= 1
                        continue
                    entry._sim = None
                    processed += 1
                    entry.fn(*entry.args)
                else:  # a _Chain: dispatch the (rest of the) train
                    chain_fn = entry.fn
                    argslist = entry.argslist
                    i = entry.idx
                    n = len(argslist)
                    while i < n:
                        args = argslist[i]
                        i += 1
                        processed += 1
                        chain_fn(*args)
                    entry.idx = n
        self._events_processed = processed
        return processed - start

    def _drain_limited(self, t_end: float, limit: int) -> int:
        """Budgeted dispatch (behind :meth:`run`): like :meth:`_drain`
        but stops after ``limit`` events, re-filing the unconsumed
        suffix of a partially-dispatched bucket so a later drain
        resumes in the exact same order."""
        heap = self._heap
        buckets = self._buckets
        processed = self._events_processed
        start = processed
        limit += processed
        while heap and heap[0] < t_end and processed < limit:
            time = heappop(heap)
            self.now = time
            bucket = buckets.pop(time)
            if bucket.__class__ is not list:
                bucket = [bucket]
            i = 0
            n_entries = len(bucket)
            while i < n_entries:
                if processed >= limit:
                    break
                entry = bucket[i]
                cls = entry.__class__
                if cls is tuple:
                    i += 1
                    processed += 1
                    entry[0](*entry[1])
                elif cls is Event:
                    i += 1
                    if entry.cancelled:
                        self._cancelled -= 1
                        continue
                    entry._sim = None
                    processed += 1
                    entry.fn(*entry.args)
                else:
                    chain_fn = entry.fn
                    argslist = entry.argslist
                    j = entry.idx
                    n = len(argslist)
                    while j < n and processed < limit:
                        args = argslist[j]
                        j += 1
                        processed += 1
                        chain_fn(*args)
                    entry.idx = j
                    if j < n:
                        break  # budget expired mid-train: keep anchor
                    i += 1
            if i < n_entries:
                # Budget expired mid-bucket. Re-file the unconsumed
                # suffix *ahead of* anything scheduled at this instant
                # during the partial dispatch — those entries carry
                # later submission order.
                rest = bucket[i:]
                tail = buckets.get(time)
                if tail is None:
                    heappush(heap, time)
                elif tail.__class__ is list:
                    rest.extend(tail)
                else:
                    rest.append(tail)
                buckets[time] = rest
                break
        self._events_processed = processed
        return processed - start

    def run_until(self, t_end: float) -> None:
        """Execute events in timestamp order until the clock reaches ``t_end``.

        Events scheduled exactly at ``t_end`` are *not* executed; the
        clock is left at ``t_end`` so back-to-back windows compose.
        The clock never moves backwards: ``t_end < now`` (or NaN)
        raises ``ValueError``, mirroring the schedulers.
        """
        if not t_end >= self.now:  # catches rewinds and NaN in one test
            raise ValueError(
                f"cannot run backwards (t_end={t_end}, now={self.now})"
            )
        self._drain(t_end)
        self.now = t_end

    def run(self, max_events: int = 100_000_000) -> None:
        """Execute all pending events (bounded by ``max_events``)."""
        executed = self._drain_limited(_INF, max_events)
        if executed >= max_events:
            if self.pending_live:
                raise RuntimeError(f"simulation exceeded {max_events} events")
            # Only lazily-deleted (cancelled) entries remain — not
            # pending work, so a run of exactly ``max_events`` live
            # events with cancelled residue completes cleanly.
            self._heap.clear()
            self._buckets.clear()
            self._cancelled = 0
