"""Bucketed-heap discrete-event simulator.

Time is measured in nanoseconds (floats). The engine guarantees that
events scheduled for the same instant fire in scheduling order, which
keeps component interactions deterministic run-to-run.

The pending set is a two-level structure — the scheduler's *fast
lanes*:

* ``_heap`` is a binary heap of **bare float timestamps**, one per
  distinct pending instant. Heap pushes/pops compare plain floats, and
  the heap only grows when a *new* instant appears.
* ``_buckets`` maps each pending instant to its FIFO bucket of
  entries. Scheduling onto an instant that is already pending is a
  dict hit plus a list append — no heap operation at all, which is
  the common case for event trains (many components acting at the
  same timestamp, self-rescheduling sources with few distinct
  delays).

A bucket holds either a single entry (the overwhelmingly common
singleton case pays no list allocation) or a list of entries in
scheduling order. Entries come in three shapes, recognised by class:

* ``(fn, args)`` tuples — the non-cancellable fast path used by
  :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`;
* :class:`Event` wrappers — cancellable handles from
  :meth:`Simulator.schedule_cancellable`, lazily deleted;
* :class:`_Chain` payloads — a whole same-instant train from
  :meth:`Simulator.schedule_many`, stored as one entry.

Dispatch order is exactly what a ``(time, submission ordinal)`` total
order produces: all entries for an instant live in its bucket from
first schedule until the bucket is dispatched, appends preserve
submission order, and distinct instants are ordered by the heap.
Entries scheduled *for the current instant while it is being
dispatched* open a fresh bucket at the same timestamp, which the drain
loop picks up before the clock moves — again matching submission
order, since every live entry of the old bucket has already fired.
"""

from __future__ import annotations

import math
import os
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Iterator, Sequence

_INF = float("inf")


class Event:
    """A cancellable scheduled callback.

    Events are returned by :meth:`Simulator.schedule_cancellable` so
    callers can cancel them. A cancelled event stays in its bucket but
    is skipped when it surfaces (lazy deletion, the standard idiom).
    """

    __slots__ = ("time", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, fn: Callable[..., None], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Owning simulator while the event is pending; cleared at
        # dispatch and at cancellation so the live-pending counter is
        # decremented exactly once per scheduled event.
        self._sim = None

    def cancel(self) -> None:
        """Prevent this event from firing. Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._cancelled += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, {self.fn.__qualname__}, {state})"


class _Chain:
    """A same-instant event train stored as one bucket entry.

    Members fire in list order, exactly as the equivalent sequence of
    per-member :meth:`Simulator.schedule` calls would (the train is
    submitted atomically, so nothing can interleave inside it).
    ``idx`` is the dispatch cursor: when a budgeted run expires
    mid-train the anchor stays in its bucket with the cursor advanced
    past the dispatched members.
    """

    __slots__ = ("fn", "argslist", "idx")

    def __init__(self, fn: Callable[..., None], argslist: Sequence[tuple]):
        self.fn = fn
        self.argslist = argslist
        self.idx = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"_Chain({self.fn.__qualname__}, "
            f"{len(self.argslist) - self.idx} of {len(self.argslist)} left)"
        )


class Simulator:
    """A minimal discrete-event simulation kernel.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, callback, arg1, arg2)
        sim.run_until(1_000.0)

    The clock never moves backwards; scheduling an event in the past
    (or at a non-finite time) raises ``ValueError`` to surface
    modelling bugs early.
    """

    __slots__ = ("now", "_heap", "_buckets", "_events_processed", "_cancelled")

    def __init__(self) -> None:
        self.now: float = 0.0
        #: distinct pending instants (bare floats, heap-ordered)
        self._heap: list = []
        #: instant -> entry | list of entries, in scheduling order
        self._buckets: dict = {}
        self._events_processed: int = 0
        # Cancelled (lazily-deleted) events still filed in a bucket:
        # incremented by Event.cancel(), decremented when the dead
        # entry surfaces at dispatch. Keeping the *cancelled* count —
        # rather than a live count bumped on every schedule — keeps
        # the hot scheduling paths counter-free; ``pending_live``
        # derives the live count on demand.
        self._cancelled: int = 0

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still scheduled (including cancelled).

        O(pending) — this walks the buckets; it is a diagnostic, not a
        hot-path counter.
        """
        count = 0
        for _, entry in self.pending_entries():
            if entry.__class__ is _Chain:
                count += len(entry.argslist) - entry.idx
            else:
                count += 1
        return count

    def pending_entries(self) -> "Iterator[tuple]":
        """Yield every pending ``(instant, entry)`` pair.

        The canonical observer of scheduler state, shared by the heap
        and wheel engines (the bucket layer is common to both): entries
        surface in bucket (submission) order within an instant, though
        instants themselves come out in dict order, not time order.
        Entries keep their raw shapes — ``(fn, args)`` tuples,
        :class:`Event` handles (cancelled ones included) and
        :class:`_Chain` anchors (whose live size is
        ``len(argslist) - idx``). Read-only: mutating the schedule
        while iterating is undefined.
        """
        for time, bucket in self._buckets.items():
            if bucket.__class__ is list:
                for entry in bucket:
                    yield time, entry
            else:
                yield time, bucket

    def pending_instants(self) -> list:
        """Every distinct pending instant registered in the index.

        For the heap engine this is the heap itself; the wheel engine
        overrides it to also gather slot-resident instants. Unordered;
        an instant appears exactly once per index registration, so the
        validation layer can cross-check the index against the buckets.
        """
        return list(self._heap)

    @property
    def pending_live(self) -> int:
        """Number of scheduled events that will actually fire.

        Unlike :attr:`pending` this excludes lazily-deleted (cancelled)
        entries: it drops by one the moment :meth:`Event.cancel`
        happens, not when the dead entry surfaces. The validation
        layer cross-checks the cancellation bookkeeping against a
        bucket walk. O(pending), like :attr:`pending`.
        """
        return self.pending - self._cancelled

    def _file(self, time: float, entry) -> None:
        """Append ``entry`` to the bucket for ``time`` (creating it,
        and registering the instant in the heap, if new)."""
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = entry
            heappush(self._heap, time)
        elif bucket.__class__ is list:
            bucket.append(entry)
        else:
            buckets[time] = [bucket, entry]

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        Fast path: the entry cannot be cancelled and nothing is
        allocated beyond an ``(fn, args)`` pair. Use
        :meth:`schedule_cancellable` when a handle is needed.
        """
        time = self.now + delay
        # One guard for negatives, NaN (fails both compares) and inf.
        if not (delay >= 0.0 and time < _INF):
            self._reject(delay, time)
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = (fn, args)
            heappush(self._heap, time)
        elif bucket.__class__ is list:
            bucket.append((fn, args))
        else:
            buckets[time] = [bucket, (fn, args)]

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run at absolute time ``time`` ns."""
        if not (time >= self.now and time < _INF):
            self._reject_at(time)
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = (fn, args)
            heappush(self._heap, time)
        elif bucket.__class__ is list:
            bucket.append((fn, args))
        else:
            buckets[time] = [bucket, (fn, args)]

    def schedule_many(
        self, delay: float, fn: Callable[..., None], argslist: Iterable[tuple]
    ) -> int:
        """Schedule ``fn(*args)`` for every ``args`` tuple in ``argslist``.

        All members fire ``delay`` ns from now, in list order, exactly
        as the equivalent sequence of :meth:`schedule` calls would —
        but the whole train costs a single bucket entry (and at most
        one heap push). Returns the number of events scheduled (0 is a
        no-op).
        """
        time = self.now + delay
        if not (delay >= 0.0 and time < _INF):
            self._reject(delay, time)
        if not isinstance(argslist, (list, tuple)):
            argslist = list(argslist)
        n = len(argslist)
        if n == 0:
            return 0
        if n == 1:
            self._file(time, (fn, argslist[0]))
        else:
            self._file(time, _Chain(fn, argslist))
        return n

    def schedule_cancellable(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> Event:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if not delay >= 0.0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at_cancellable(self.now + delay, fn, *args)

    def schedule_at_cancellable(
        self, time: float, fn: Callable[..., None], *args: Any
    ) -> Event:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if not time >= self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        if not math.isfinite(time):
            raise ValueError(f"cannot schedule at non-finite time (time={time})")
        event = Event(time, fn, args)
        event._sim = self
        self._file(time, event)
        return event

    def _reject(self, delay: float, time: float) -> None:
        """Raise the precise ValueError for a bad relative delay."""
        if not delay >= 0.0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        raise ValueError(f"cannot schedule at non-finite time (delay={delay})")

    def _reject_at(self, time: float) -> None:
        """Raise the precise ValueError for a bad absolute time."""
        if not time >= self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        raise ValueError(f"cannot schedule at non-finite time (time={time})")

    def _drain(self, t_end: float) -> int:
        """The unbudgeted dispatch core behind :meth:`run_until`.

        Executes every event with ``timestamp < t_end``, coalescing
        each instant's bucket under one clock update. Returns the
        number executed. The clock is left at the last executed
        timestamp; callers adjust it afterwards.
        """
        heap = self._heap
        pop = heappop
        take = self._buckets.pop
        processed = self._events_processed
        start = processed
        while heap and heap[0] < t_end:
            time = pop(heap)
            self.now = time
            bucket = take(time)
            cls = bucket.__class__
            if cls is tuple:  # singleton fast entry — the common case
                processed += 1
                args = bucket[1]
                if args:
                    bucket[0](*args)
                else:
                    bucket[0]()
                continue
            if cls is not list:
                bucket = (bucket,)
            for entry in bucket:
                cls = entry.__class__
                if cls is tuple:
                    processed += 1
                    args = entry[1]
                    if args:
                        entry[0](*args)
                    else:
                        entry[0]()
                elif cls is Event:
                    if entry.cancelled:
                        self._cancelled -= 1
                        continue
                    entry._sim = None
                    processed += 1
                    entry.fn(*entry.args)
                else:  # a _Chain: dispatch the (rest of the) train
                    chain_fn = entry.fn
                    argslist = entry.argslist
                    i = entry.idx
                    n = len(argslist)
                    while i < n:
                        args = argslist[i]
                        i += 1
                        processed += 1
                        chain_fn(*args)
                    entry.idx = n
        self._events_processed = processed
        return processed - start

    def _drain_limited(self, t_end: float, limit: int) -> int:
        """Budgeted dispatch (behind :meth:`run`): like :meth:`_drain`
        but stops after ``limit`` events, re-filing the unconsumed
        suffix of a partially-dispatched bucket so a later drain
        resumes in the exact same order."""
        heap = self._heap
        buckets = self._buckets
        processed = self._events_processed
        start = processed
        limit += processed
        while heap and heap[0] < t_end and processed < limit:
            time = heappop(heap)
            self.now = time
            bucket = buckets.pop(time)
            if bucket.__class__ is not list:
                bucket = [bucket]
            i = 0
            n_entries = len(bucket)
            while i < n_entries:
                if processed >= limit:
                    break
                entry = bucket[i]
                cls = entry.__class__
                if cls is tuple:
                    i += 1
                    processed += 1
                    entry[0](*entry[1])
                elif cls is Event:
                    i += 1
                    if entry.cancelled:
                        self._cancelled -= 1
                        continue
                    entry._sim = None
                    processed += 1
                    entry.fn(*entry.args)
                else:
                    chain_fn = entry.fn
                    argslist = entry.argslist
                    j = entry.idx
                    n = len(argslist)
                    while j < n and processed < limit:
                        args = argslist[j]
                        j += 1
                        processed += 1
                        chain_fn(*args)
                    entry.idx = j
                    if j < n:
                        break  # budget expired mid-train: keep anchor
                    i += 1
            if i < n_entries:
                # Budget expired mid-bucket. Re-file the unconsumed
                # suffix *ahead of* anything scheduled at this instant
                # during the partial dispatch — those entries carry
                # later submission order.
                rest = bucket[i:]
                tail = buckets.get(time)
                if tail is None:
                    heappush(heap, time)
                elif tail.__class__ is list:
                    rest.extend(tail)
                else:
                    rest.append(tail)
                buckets[time] = rest
                break
        self._events_processed = processed
        return processed - start

    def run_until(self, t_end: float) -> None:
        """Execute events in timestamp order until the clock reaches ``t_end``.

        Events scheduled exactly at ``t_end`` are *not* executed; the
        clock is left at ``t_end`` so back-to-back windows compose.
        The clock never moves backwards: ``t_end < now`` (or NaN)
        raises ``ValueError``, mirroring the schedulers.
        """
        if not t_end >= self.now:  # catches rewinds and NaN in one test
            raise ValueError(
                f"cannot run backwards (t_end={t_end}, now={self.now})"
            )
        self._drain(t_end)
        self.now = t_end

    def run(self, max_events: int = 100_000_000) -> None:
        """Execute all pending events (bounded by ``max_events``)."""
        executed = self._drain_limited(_INF, max_events)
        if executed >= max_events:
            if self.pending_live:
                raise RuntimeError(f"simulation exceeded {max_events} events")
            # Only lazily-deleted (cancelled) entries remain — not
            # pending work, so a run of exactly ``max_events`` live
            # events with cancelled residue completes cleanly.
            self._heap.clear()
            self._buckets.clear()
            self._cancelled = 0


class SimClock:
    """A picklable ``() -> sim.now`` callable.

    Components that need a clock closure must not capture it as a
    lambda — the whole object graph has to survive checkpoint pickling
    (``sim/checkpoint.py``), and a bound ``SimClock`` pickles by
    reference to the simulator it reads.
    """

    __slots__ = ("_sim",)

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    def __call__(self) -> float:
        return self._sim.now


def wheel_enabled() -> bool:
    """Whether ``REPRO_WHEEL`` asks for the calendar-queue simulator.

    Default **off**: on the workloads this repository simulates, the
    bucketed heap already collapses most scheduling onto dict hits (the
    heap only sees *distinct* instants) and heap traffic is a few
    percent of the profile, so the wheel's win is within noise — see
    DESIGN.md §5 for the measured numbers. The wheel is kept available
    for workloads with much denser instant sets.
    """
    raw = os.environ.get("REPRO_WHEEL", "").strip().lower()
    if raw in ("", "off", "0", "no", "false"):
        return False
    if raw in ("on", "1", "yes", "true"):
        return True
    raise ValueError(f"REPRO_WHEEL must be on/off (or 1/0/yes/no), got {raw!r}")


def make_simulator() -> Simulator:
    """Build the simulator the ``REPRO_WHEEL`` knob asks for.

    The validation layer ignores the knob — ``ValidatingSimulator``
    stays heap-only so the checked dispatch core has exactly one
    implementation to mirror.
    """
    return WheelSimulator() if wheel_enabled() else Simulator()


class WheelSimulator(Simulator):
    """Calendar-queue (time-wheel) instant index over the same buckets.

    The bucket layer — one FIFO bucket per distinct pending instant,
    entries in submission order — is inherited unchanged; only the
    *instant index* differs. Instead of one binary heap over all
    pending instants, instants within the near-future horizon
    ``[cursor, cursor + n_slots) × slot_width`` are spread across
    ``n_slots`` wheel slots (slot = ``int(t / width) % n_slots``), and
    the drain loop walks slots in order. Each slot is a tiny min-heap
    of the instants that hash to it, so filing is O(log slot) with
    slot sizes of a handful; instants beyond the horizon overflow to
    the inherited ``_heap`` and migrate into the wheel lazily as the
    cursor approaches them.

    Dispatch order is bit-identical to :class:`Simulator`: the index
    only has to surface instants in increasing order, and the bucket
    layer already fixes the order within an instant. The physical
    slot-sharing invariant (at most one *logical* slot index resident
    per physical slot) holds because the cursor is monotone and an
    instant is only filed into the wheel while it is inside the
    current horizon — with one deliberate exception: between drain
    windows the cursor can sit past the slot of a still-schedulable
    instant (a drain scans empty slots up to the next pending instant
    before discovering it lies beyond ``t_end``, and ``run_until``
    parks the cursor at ``t_end``'s slot). :meth:`_file_instant`
    clamps such a *behind-cursor* filing into the cursor slot itself;
    every other pending instant lives in a strictly later logical
    slot, so the slot min-heap still surfaces the clamped instant
    first and dispatch order is preserved.
    """

    __slots__ = ("_wheel", "_n_slots", "_inv_width", "_cursor", "_n_wheel")

    def __init__(self, slot_width: float = 0.5, n_slots: int = 2048) -> None:
        super().__init__()
        if not slot_width > 0:
            raise ValueError(f"slot_width must be positive, got {slot_width}")
        if n_slots < 2:
            raise ValueError(f"n_slots must be at least 2, got {n_slots}")
        #: physical slots; each is a min-heap of pending instants
        self._wheel: list = [[] for _ in range(n_slots)]
        self._n_slots = n_slots
        self._inv_width = 1.0 / slot_width
        #: logical slot index of the drain front (monotone)
        self._cursor = 0
        #: instants currently filed in wheel slots (vs. the overflow heap)
        self._n_wheel = 0

    def pending_instants(self) -> list:
        """Overflow-heap instants plus every slot-resident instant."""
        instants = list(self._heap)
        for slot in self._wheel:
            instants.extend(slot)
        return instants

    def _file_instant(self, time: float) -> None:
        """Register a newly-pending instant in the wheel (or, beyond
        the horizon, in the overflow heap)."""
        idx = int(time * self._inv_width)
        off = idx - self._cursor
        if 0 <= off < self._n_slots:
            heappush(self._wheel[idx % self._n_slots], time)
        elif off < 0:
            # Behind the drain front. The cursor can legitimately sit
            # past this instant's slot between windows (see the class
            # docstring), and filing into ``idx``'s own physical slot
            # would park the instant behind the cursor until the wheel
            # wraps — dispatching it after later-timed events. Clamp it
            # into the *cursor* slot instead: all other pending wheel
            # instants occupy strictly later logical slots (times in
            # later slot windows) and the overflow heap is further out
            # still, so the slot min-heap pops this instant first and
            # order is preserved.
            heappush(self._wheel[self._cursor % self._n_slots], time)
        else:
            heappush(self._heap, time)
            return
        self._n_wheel += 1

    def _file(self, time: float, entry) -> None:
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = entry
            self._file_instant(time)
        elif bucket.__class__ is list:
            bucket.append(entry)
        else:
            buckets[time] = [bucket, entry]

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        time = self.now + delay
        if not (delay >= 0.0 and time < _INF):
            self._reject(delay, time)
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = (fn, args)
            self._file_instant(time)
        elif bucket.__class__ is list:
            bucket.append((fn, args))
        else:
            buckets[time] = [bucket, (fn, args)]

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        if not (time >= self.now and time < _INF):
            self._reject_at(time)
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = (fn, args)
            self._file_instant(time)
        elif bucket.__class__ is list:
            bucket.append((fn, args))
        else:
            buckets[time] = [bucket, (fn, args)]

    def _drain(self, t_end: float) -> int:
        heap = self._heap
        wheel = self._wheel
        n_slots = self._n_slots
        inv = self._inv_width
        pop = heappop
        push = heappush
        take = self._buckets.pop
        processed = self._events_processed
        start = processed
        cursor = self._cursor
        while True:
            if not self._n_wheel:
                # Wheel dry: jump the cursor straight to the earliest
                # overflow instant instead of scanning empty slots.
                if not heap or heap[0] >= t_end:
                    break
                jump = int(heap[0] * inv)
                if jump > cursor:
                    cursor = jump
                    self._cursor = cursor
            # Lazily migrate overflow instants that entered the horizon
            # (the overflow heap pops in time order, hence idx order).
            horizon = cursor + n_slots
            while heap and int(heap[0] * inv) < horizon:
                t = pop(heap)
                push(wheel[int(t * inv) % n_slots], t)
                self._n_wheel += 1
            slot = wheel[cursor % n_slots]
            while slot:
                time = slot[0]
                if time >= t_end:
                    self._events_processed = processed
                    return processed - start
                pop(slot)
                self._n_wheel -= 1
                self.now = time
                bucket = take(time)
                cls = bucket.__class__
                if cls is tuple:  # singleton fast entry — the common case
                    processed += 1
                    args = bucket[1]
                    if args:
                        bucket[0](*args)
                    else:
                        bucket[0]()
                    continue
                if cls is not list:
                    bucket = (bucket,)
                for entry in bucket:
                    cls = entry.__class__
                    if cls is tuple:
                        processed += 1
                        args = entry[1]
                        if args:
                            entry[0](*args)
                        else:
                            entry[0]()
                    elif cls is Event:
                        if entry.cancelled:
                            self._cancelled -= 1
                            continue
                        entry._sim = None
                        processed += 1
                        entry.fn(*entry.args)
                    else:  # a _Chain: dispatch the (rest of the) train
                        chain_fn = entry.fn
                        argslist = entry.argslist
                        i = entry.idx
                        n = len(argslist)
                        while i < n:
                            args = argslist[i]
                            i += 1
                            processed += 1
                            chain_fn(*args)
                        entry.idx = n
            cursor += 1
            self._cursor = cursor
        self._events_processed = processed
        return processed - start

    def _drain_limited(self, t_end: float, limit: int) -> int:
        heap = self._heap
        wheel = self._wheel
        buckets = self._buckets
        n_slots = self._n_slots
        inv = self._inv_width
        processed = self._events_processed
        start = processed
        limit += processed
        cursor = self._cursor
        while processed < limit:
            if not self._n_wheel:
                if not heap or heap[0] >= t_end:
                    break
                jump = int(heap[0] * inv)
                if jump > cursor:
                    cursor = jump
                    self._cursor = cursor
            horizon = cursor + n_slots
            while heap and int(heap[0] * inv) < horizon:
                t = heappop(heap)
                heappush(wheel[int(t * inv) % n_slots], t)
                self._n_wheel += 1
            slot = wheel[cursor % n_slots]
            while slot and processed < limit:
                time = slot[0]
                if time >= t_end:
                    self._events_processed = processed
                    return processed - start
                heappop(slot)
                self._n_wheel -= 1
                self.now = time
                bucket = buckets.pop(time)
                if bucket.__class__ is not list:
                    bucket = [bucket]
                i = 0
                n_entries = len(bucket)
                while i < n_entries:
                    if processed >= limit:
                        break
                    entry = bucket[i]
                    cls = entry.__class__
                    if cls is tuple:
                        i += 1
                        processed += 1
                        entry[0](*entry[1])
                    elif cls is Event:
                        i += 1
                        if entry.cancelled:
                            self._cancelled -= 1
                            continue
                        entry._sim = None
                        processed += 1
                        entry.fn(*entry.args)
                    else:
                        chain_fn = entry.fn
                        argslist = entry.argslist
                        j = entry.idx
                        n = len(argslist)
                        while j < n and processed < limit:
                            args = argslist[j]
                            j += 1
                            processed += 1
                            chain_fn(*args)
                        entry.idx = j
                        if j < n:
                            break  # budget expired mid-train: keep anchor
                        i += 1
                if i < n_entries:
                    # Budget expired mid-bucket: re-file the suffix
                    # ahead of anything scheduled at this instant
                    # during the partial dispatch (same discipline as
                    # the base class).
                    rest = bucket[i:]
                    tail = buckets.get(time)
                    if tail is None:
                        self._file_instant(time)
                    elif tail.__class__ is list:
                        rest.extend(tail)
                    else:
                        rest.append(tail)
                    buckets[time] = rest
                    self._events_processed = processed
                    return processed - start
            if slot:
                break  # budget expired exactly at a bucket boundary
            cursor += 1
            self._cursor = cursor
        self._events_processed = processed
        return processed - start

    def run_until(self, t_end: float) -> None:
        super().run_until(t_end)
        # Every remaining instant is >= t_end, hence >= the slot of
        # t_end — advancing the cursor here keeps post-window filings
        # inside the wheel instead of bouncing them off the overflow
        # heap. (Monotone in t_end, so never moves backwards.)
        jump = int(t_end * self._inv_width)
        if jump > self._cursor:
            self._cursor = jump

    def run(self, max_events: int = 100_000_000) -> None:
        executed = self._drain_limited(_INF, max_events)
        if executed >= max_events:
            if self.pending_live:
                raise RuntimeError(f"simulation exceeded {max_events} events")
            self._heap.clear()
            self._buckets.clear()
            for slot in self._wheel:
                slot.clear()
            self._n_wheel = 0
            self._cancelled = 0
