"""Heap-based discrete-event simulator.

Time is measured in nanoseconds (floats). The engine guarantees that
events scheduled for the same instant fire in scheduling order, which
keeps component interactions deterministic run-to-run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can
    cancel them. A cancelled event stays in the heap but is skipped
    when it surfaces (lazy deletion, the standard heapq idiom).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing. Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, {self.fn.__qualname__}, {state})"


class Simulator:
    """A minimal discrete-event simulation kernel.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, callback, arg1, arg2)
        sim.run_until(1_000.0)

    The clock never moves backwards; scheduling an event in the past
    raises ``ValueError`` to surface modelling bugs early.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute time ``time`` ns."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    def run_until(self, t_end: float) -> None:
        """Execute events in timestamp order until the clock reaches ``t_end``.

        Events scheduled exactly at ``t_end`` are *not* executed; the
        clock is left at ``t_end`` so back-to-back windows compose.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event.time >= t_end:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.fn(*event.args)
        self.now = t_end

    def run(self, max_events: int = 100_000_000) -> None:
        """Execute all pending events (bounded by ``max_events``)."""
        heap = self._heap
        executed = 0
        while heap and executed < max_events:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            executed += 1
            event.fn(*event.args)
        if heap and executed >= max_events:
            raise RuntimeError(f"simulation exceeded {max_events} events")
