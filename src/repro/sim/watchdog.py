"""No-progress (livelock) detection for chunked simulation drives.

Two shipped bug classes motivated this module: the PR 6 wheel-cursor
backwards clock and the PR 7 float-boundary pump livelock, where a
DRAM pump re-armed itself at a ``next_ready`` instant that token
accrual kept landing ulps short of — the clock froze while the event
count grew without bound, and the process simply hung. Both share one
observable signature: **events keep firing but simulated time does not
advance**, even though pending work exists.

:class:`Watchdog` detects exactly that signature. ``Host.run`` probes
it between event chunks when ``REPRO_WATCHDOG`` is set (see
:func:`budget_from_env`): whenever the clock advances the event
baseline resets; if more than ``budget`` events burn at a frozen
clock, a structured :class:`StallError` is raised carrying a state
dump — clock, event counters, pending depth, per-channel pump state
and every credit pool with registered waiters — instead of hanging the
run. Budgets are generous (default 500k events) because legitimate
same-instant trains are common; a true livelock blows through any
budget in milliseconds.

The watchdog is pure observation: it never perturbs the schedule, so
enabling it cannot change simulation results.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

DEFAULT_BUDGET = 500_000


class StallError(RuntimeError):
    """A no-progress livelock, with component/clock diagnostics.

    ``details`` maps diagnostic keys (``clock_ns``,
    ``events_processed``, ``events_at_stuck_clock``, ``pending``,
    ``pending_live``, ``budget``, plus ``channels`` / ``pools`` when a
    host was available) to their values at detection time.
    """

    def __init__(self, message: str, details: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.details: Dict[str, Any] = dict(details or {})


def budget_from_env() -> Optional[int]:
    """The ``REPRO_WATCHDOG`` event budget, or ``None`` when off.

    ``off``/unset disables the watchdog (and with it the chunked drive
    it needs, unless checkpointing asks for one); ``on`` uses
    :data:`DEFAULT_BUDGET`; an integer sets the budget directly.
    """
    raw = os.environ.get("REPRO_WATCHDOG", "").strip().lower()
    if raw in ("", "off", "0", "no", "false"):
        return None
    if raw in ("on", "1", "yes", "true"):
        return DEFAULT_BUDGET
    try:
        budget = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_WATCHDOG must be on/off or an event budget, got {raw!r}"
        ) from None
    if budget <= 0:
        raise ValueError(f"REPRO_WATCHDOG budget must be positive, got {budget}")
    return budget


def from_env() -> Optional["Watchdog"]:
    """A :class:`Watchdog` per ``REPRO_WATCHDOG``, or ``None`` when off."""
    budget = budget_from_env()
    return None if budget is None else Watchdog(budget)


def dump_state(sim, host=None) -> Dict[str, Any]:
    """A diagnostic snapshot of scheduler (and, if given, host) state."""
    details: Dict[str, Any] = {
        "clock_ns": sim.now,
        "events_processed": sim.events_processed,
        "pending": sim.pending,
        "pending_live": sim.pending_live,
    }
    if host is None:
        return details
    channels = []
    for channel in getattr(getattr(host, "mc", None), "channels", ()):
        pump = channel._pump_event
        channels.append(
            {
                "channel": channel.channel_id,
                "mode": channel.mode.value,
                "busy_until_ns": channel._busy_until,
                "pump_armed_at_ns": None if pump is None else pump.time,
            }
        )
    details["channels"] = channels
    pools = []
    for pool in host.domains.pools():
        if pool.waiter_count == 0:
            continue
        pools.append(
            {
                "pool": pool.name,
                "waiters": pool.waiter_count,
                "in_use": pool.occ.value,
                "capacity": pool.capacity,
                "reserved": pool.reserved,
            }
        )
    details["pools_with_waiters"] = pools
    return details


class Watchdog:
    """Raise :class:`StallError` when events burn at a frozen clock.

    Probe :meth:`observe` between event chunks. Any clock advance
    resets the baseline, so only a genuinely stuck clock — the
    signature of credit-waiter starvation and pump re-arm loops —
    accumulates toward the budget.
    """

    __slots__ = ("budget", "_last_now", "_events_at_advance")

    def __init__(self, budget: int = DEFAULT_BUDGET):
        if budget <= 0:
            raise ValueError(f"watchdog budget must be positive, got {budget}")
        self.budget = budget
        self._last_now = -1.0
        self._events_at_advance = 0

    def arm(self, sim) -> None:
        """Reset the baseline to the simulator's current position."""
        self._last_now = sim.now
        self._events_at_advance = sim.events_processed

    def observe(self, host_or_sim) -> None:
        """Check progress; raises :class:`StallError` on a stall."""
        sim = getattr(host_or_sim, "sim", host_or_sim)
        if sim.now > self._last_now:
            self._last_now = sim.now
            self._events_at_advance = sim.events_processed
            return
        burned = sim.events_processed - self._events_at_advance
        if burned < self.budget:
            return
        host = host_or_sim if host_or_sim is not sim else None
        details = dump_state(sim, host)
        details["events_at_stuck_clock"] = burned
        details["budget"] = self.budget
        raise StallError(
            f"no progress: {burned} events executed with the clock stuck at "
            f"{sim.now:.3f} ns ({sim.pending_live} live events pending) — "
            f"likely a re-arm loop or credit-waiter starvation",
            details,
        )
