"""Deterministic checkpoint/restore of a live simulation.

A checkpoint is one checksummed blob — the same ``RRC1`` + sha256
framing as the run cache (:mod:`repro.experiments.runcache`), with the
same quarantine discipline for corrupt files — holding the pickled
:class:`~repro.topology.host.Host` object graph mid-run: the engine
heap + FIFO buckets (+ wheel slots/cursor), every credit pool with its
waiter callbacks, reservations and occupancy integrals, the SoA DRAM
kernel arrays + open-row dicts + head caches, bank-regulator token
buckets, the LLC tag store + ddio pool, CHA/IIO/LFB/PCIe/core
in-flight state and telemetry counters. Module-level state the host
pickle cannot see — the :mod:`repro.sim.records` Request free list —
rides in the same pickle (identity-preserving via the shared memo),
along with a :class:`RunState` cursor recording where inside
``Host.run`` the run was and a fingerprint of the behaviour-affecting
environment knobs.

Determinism discipline: when a checkpoint plan is active, ``Host.run``
drives its windows through ``Simulator._drain_limited`` in fixed event
chunks. The engine re-files a partially-dispatched bucket's suffix
*ahead of* same-instant later arrivals, so chunked dispatch executes
the exact event sequence of an unchunked drain — checkpoints, watchdog
probes and preemption points at chunk boundaries can never perturb
results, and a restored run finishes **bit-identical** to an
uninterrupted one.

Knobs:

* ``REPRO_CKPT`` — snapshot cadence: ``events:N`` (every N executed
  events), ``time:T`` (every T simulated ns), a bare integer (events),
  or ``on`` for the default cadence. Requires a destination.
* ``REPRO_CKPT_PATH`` / ``REPRO_CKPT_DIR`` — destination file (or
  directory, file ``host.ckpt``). The sweep supervisor overrides both
  with a per-task path in its journal directory (:func:`begin_task`).

Preemption: while a plan is active and the drive runs on the main
thread, SIGTERM is routed to *checkpoint-and-stop* — the current chunk
finishes, a final checkpoint is written, and the run either exits with
:data:`PREEMPT_EXIT_CODE` (pool workers) or raises :class:`Preempted`
(in-process runs). The next attempt resumes from the blob instead of
recomputing. :func:`arm_preempt` triggers the same path at a
deterministic event count (the chaos ``preempt`` fault and the tests).
"""

from __future__ import annotations

import contextlib
import os
import signal
import tempfile
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: exit status of a worker that checkpointed and stopped on SIGTERM /
#: an armed preemption (EX_TEMPFAIL: the task is retryable — resume).
PREEMPT_EXIT_CODE = 75

#: events per ``_drain_limited`` chunk when a plan or watchdog drives
#: the run. Large enough to keep loop overhead invisible, small enough
#: that a SIGTERM is honoured within milliseconds.
CHUNK_EVENTS = 4096

DEFAULT_EVERY_EVENTS = 200_000

CKPT_VERSION = 1
_FORMAT = "host-ckpt"


class CheckpointError(RuntimeError):
    """A checkpoint blob could not be loaded/validated."""


class Preempted(RuntimeError):
    """An in-process run was checkpointed and stopped mid-run.

    ``path`` is the checkpoint file; finish the run with
    ``Host.restore(path).resume_run()``.
    """

    def __init__(self, message: str, path: str):
        super().__init__(message)
        self.path = path


@dataclass
class RunState:
    """Where inside ``Host.run`` an interrupted run was.

    Everything ``_run_phases`` needs to finish the run exactly as the
    uninterrupted one would: the phase and its absolute end time, the
    measurement-window origin (``t_start`` / ``events_before``, so the
    resumed RunResult's deltas match), and the run identity that gates
    resumption. ``seq`` counts checkpoints written (lineage).
    """

    run_key: str
    warmup_ns: float
    measure_ns: float
    phase: str = "warmup"
    t_end: float = 0.0
    t_start: float = 0.0
    events_before: int = 0
    seq: int = 0


# ----------------------------------------------------------------------
# Knob parsing and per-task destination plumbing
# ----------------------------------------------------------------------

_TASK_CKPT: Optional[str] = None
_RUN_ORDINAL = 0
_WARNED_NO_PATH = False


def interval_spec() -> Tuple[Optional[int], Optional[float]]:
    """Parse ``REPRO_CKPT`` into ``(every_events, every_ns)``."""
    raw = os.environ.get("REPRO_CKPT", "").strip().lower()
    if raw in ("", "off", "0", "no", "false"):
        return (None, None)
    if raw in ("on", "1", "yes", "true"):
        return (DEFAULT_EVERY_EVENTS, None)
    kind, _, value = raw.partition(":")
    try:
        if kind == "events":
            events = int(value)
        elif kind == "time":
            every_ns = float(value)
            if not every_ns > 0:
                raise ValueError
            return (None, every_ns)
        else:
            events = int(raw)
        if events <= 0:
            raise ValueError
        return (events, None)
    except ValueError:
        raise ValueError(
            f"REPRO_CKPT must be on/off, events:N, time:T or an event "
            f"count, got {raw!r}"
        ) from None


def begin_task(path: Optional[str]) -> None:
    """Enter a supervised task: set its checkpoint file, reset run
    numbering and clear any stale preemption state (pool workers are
    reused across tasks)."""
    global _TASK_CKPT, _RUN_ORDINAL
    _TASK_CKPT = path
    _RUN_ORDINAL = 0
    disarm_preempt()


def end_task() -> None:
    """Leave a supervised task (see :func:`begin_task`)."""
    begin_task(None)


def checkpoint_path() -> Optional[Path]:
    """The active checkpoint destination, or ``None``.

    A supervisor-provided per-task path wins over ``REPRO_CKPT_PATH``,
    which wins over ``REPRO_CKPT_DIR``.
    """
    if _TASK_CKPT:
        return Path(_TASK_CKPT)
    path = os.environ.get("REPRO_CKPT_PATH", "").strip()
    if path:
        return Path(path)
    directory = os.environ.get("REPRO_CKPT_DIR", "").strip()
    if directory:
        return Path(directory) / "host.ckpt"
    return None


def active_plan() -> Optional["CheckpointPlan"]:
    """The checkpoint plan ``Host.run`` should follow, or ``None``.

    A destination without a cadence is a *preemption-only* plan: the
    run is driven in chunks (so SIGTERM / armed preemption can
    checkpoint-and-stop, and an existing blob is resumed) but no
    periodic snapshots are written.
    """
    global _WARNED_NO_PATH
    path = checkpoint_path()
    every_events, every_ns = interval_spec()
    if path is None:
        if (every_events, every_ns) != (None, None) and not _WARNED_NO_PATH:
            _WARNED_NO_PATH = True
            warnings.warn(
                "REPRO_CKPT is set but no destination is configured; "
                "set REPRO_CKPT_PATH or REPRO_CKPT_DIR (checkpointing "
                "stays off)",
                RuntimeWarning,
                stacklevel=2,
            )
        return None
    return CheckpointPlan(path, every_events, every_ns)


def preemption_wanted(task_timeout_s: float = 0.0) -> bool:
    """Whether the supervisor should hand tasks checkpoint paths.

    True when the user asked for checkpoints (``REPRO_CKPT*``), when
    task timeouts can preempt runs mid-flight, or when chaos injects
    ``preempt`` faults — the three ways a run can be interrupted with
    the expectation of resuming.
    """
    if checkpoint_path() is not None or interval_spec() != (None, None):
        return True
    if task_timeout_s > 0:
        return True
    from repro.experiments import chaos

    cfg = chaos.config()
    return cfg is not None and cfg.preempt > 0.0


class CheckpointPlan:
    """A destination plus cadence, with due-time tracking."""

    __slots__ = ("path", "every_events", "every_ns", "_next_events", "_next_ns")

    def __init__(
        self,
        path: Path,
        every_events: Optional[int],
        every_ns: Optional[float],
    ):
        self.path = Path(path)
        self.every_events = every_events
        self.every_ns = every_ns
        self._next_events: Optional[int] = None
        self._next_ns: Optional[float] = None

    def arm(self, sim) -> None:
        """Start cadence tracking from the simulator's position."""
        if self.every_events is not None:
            self._next_events = sim.events_processed + self.every_events
        if self.every_ns is not None:
            self._next_ns = sim.now + self.every_ns

    def due(self, sim) -> bool:
        """Whether a periodic snapshot is due at this chunk boundary."""
        if self._next_events is not None and sim.events_processed >= self._next_events:
            return True
        if self._next_ns is not None and sim.now >= self._next_ns:
            return True
        return False

    def advance(self, sim) -> None:
        """Move the cadence past the simulator's position."""
        if self._next_events is not None:
            while sim.events_processed >= self._next_events:
                self._next_events += self.every_events
        if self._next_ns is not None:
            while sim.now >= self._next_ns:
                self._next_ns += self.every_ns

    def discard(self) -> None:
        """Remove the blob — the run completed, nothing to resume."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


# ----------------------------------------------------------------------
# Snapshot / restore
# ----------------------------------------------------------------------


def _knob_fingerprint() -> Dict[str, Any]:
    """Behaviour-affecting environment knobs, resolved to values.

    A checkpoint written under one knob set must not silently resume
    under another: the restored object graph would keep the old
    behaviour (it is baked into the constructed components) while
    fresh state used the new, and the "bit-identical to uninterrupted"
    contract would be unfalsifiable. Compared on restore. The
    resolution itself is one :meth:`~repro.sim.knobs.KnobSet.resolve`
    — the same object hosts and clusters are constructed from.
    """
    from repro.sim.knobs import KnobSet

    return KnobSet.resolve().fingerprint()


def run_key(host, warmup_ns: float, measure_ns: float) -> str:
    """Stable identity of one ``Host.run`` call within a task.

    Hashes the host's construction parameters, the window sizes and a
    per-task ordinal (tasks like ``ColocationExperiment.point`` call
    ``Host.run`` several times on one checkpoint path; the ordinal
    binds the blob to the interrupted call, and earlier calls simply
    miss and run fresh). :func:`begin_task` resets the numbering so a
    retried attempt counts identically.
    """
    global _RUN_ORDINAL
    ordinal = _RUN_ORDINAL
    _RUN_ORDINAL += 1
    import hashlib
    import pickle

    digest = hashlib.sha256()
    ident = (
        ordinal,
        float(warmup_ns),
        float(measure_ns),
        host.burst,
        host.validate,
        len(host.cores),
        sorted(host.devices),
    )
    digest.update(repr(ident).encode())
    digest.update(pickle.dumps(host.config, protocol=4))
    return digest.hexdigest()


def save(host, state: RunState, path) -> Path:
    """Write one atomic, checksummed checkpoint blob.

    The Request free list is pickled in the same blob as the host
    graph, so pool entries that are also reachable from the host keep
    their identity through the shared pickle memo.
    """
    from repro.experiments.runcache import encode_blob
    from repro.sim import records

    payload = {
        "format": _FORMAT,
        "version": CKPT_VERSION,
        "state": state,
        "knobs": _knob_fingerprint(),
        "pool": records.snapshot_pool(),
        "host": host,
    }
    blob = encode_blob(payload)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".ckpt-tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return path


def _quarantine(path: Path, reason: str) -> None:
    """Move a corrupt blob aside (same discipline as the run cache)."""
    qdir = path.parent / "quarantine"
    where = "deleted"
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        os.replace(path, qdir / path.name)
        where = f"quarantined to {qdir / path.name}"
    except OSError:
        with contextlib.suppress(OSError):
            os.unlink(path)
    warnings.warn(
        f"corrupt checkpoint {path} ({reason}); {where}",
        RuntimeWarning,
        stacklevel=3,
    )


def load(path) -> Dict[str, Any]:
    """Read and verify a checkpoint blob; corrupt files are
    quarantined and raise :class:`CheckpointError`."""
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    from repro.experiments.runcache import decode_blob

    ok, payload = decode_blob(blob)
    if not ok:
        _quarantine(path, "bad frame or checksum")
        raise CheckpointError(f"corrupt checkpoint {path}")
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        _quarantine(path, "not a host checkpoint")
        raise CheckpointError(f"{path} is not a host checkpoint")
    if payload.get("version") != CKPT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {payload.get('version')!r}, "
            f"expected {CKPT_VERSION}"
        )
    return payload


def restore_payload(payload: Dict[str, Any]):
    """Reinstall a loaded checkpoint; returns the live host.

    Refuses a knob mismatch (see :func:`_knob_fingerprint`), restores
    the module-level Request pool, and — when ``REPRO_VALIDATE=1`` —
    runs the structural post-restore invariant walk over the revived
    graph before handing it back.
    """
    saved = payload.get("knobs", {})
    current = _knob_fingerprint()
    mismatched = {
        key: (value, current.get(key))
        for key, value in saved.items()
        if current.get(key) != value
    }
    if mismatched:
        raise CheckpointError(
            f"environment knobs changed since checkpoint: {mismatched} "
            f"(saved, current) — resume under the original knobs or run fresh"
        )
    from repro.sim import records

    records.restore_pool(payload["pool"])
    host = payload["host"]
    host._resume_state = payload["state"]
    from repro.validate.invariants import enabled as validate_enabled

    if validate_enabled():
        from repro.validate.probes import Validator

        validator = host._validator if host._validator is not None else Validator()
        validator.post_restore(host)
    return host


_CLUSTER_FORMAT = "cluster-ckpt"


def save_cluster(cluster, path) -> Path:
    """Snapshot a whole :class:`~repro.topology.cluster.Cluster`.

    Same blob discipline as a host checkpoint — one checksummed pickle
    of the full object graph (hosts, fabric, the shared engine, every
    pool/waiter), the module-level Request free list riding in the
    same memo, and the knob fingerprint gating restore.
    """
    from repro.experiments.runcache import encode_blob
    from repro.sim import records

    payload = {
        "format": _CLUSTER_FORMAT,
        "version": CKPT_VERSION,
        "knobs": _knob_fingerprint(),
        "pool": records.snapshot_pool(),
        "cluster": cluster,
    }
    blob = encode_blob(payload)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".ckpt-tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return path


def load_cluster(path):
    """Revive a :func:`save_cluster` blob; returns the live cluster.

    Verifies frame + checksum (corrupt blobs are quarantined), the
    format/version markers, and the knob fingerprint — a rack
    checkpointed under one knob set must not silently resume under
    another — then restores the shared Request pool.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    from repro.experiments.runcache import decode_blob

    ok, payload = decode_blob(blob)
    if not ok:
        _quarantine(path, "bad frame or checksum")
        raise CheckpointError(f"corrupt checkpoint {path}")
    if not isinstance(payload, dict) or payload.get("format") != _CLUSTER_FORMAT:
        _quarantine(path, "not a cluster checkpoint")
        raise CheckpointError(f"{path} is not a cluster checkpoint")
    if payload.get("version") != CKPT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {payload.get('version')!r}, "
            f"expected {CKPT_VERSION}"
        )
    saved = payload.get("knobs", {})
    current = _knob_fingerprint()
    mismatched = {
        key: (value, current.get(key))
        for key, value in saved.items()
        if current.get(key) != value
    }
    if mismatched:
        raise CheckpointError(
            f"environment knobs changed since checkpoint: {mismatched} "
            f"(saved, current) — resume under the original knobs or run fresh"
        )
    from repro.sim import records

    records.restore_pool(payload["pool"])
    return payload["cluster"]


def try_resume(path, key: str):
    """Resume from ``path`` if it holds this exact run; else ``None``.

    Missing, corrupt, foreign-run or knob-mismatched blobs all fall
    back to a fresh (still deterministic) run — resumption is an
    optimisation, never a correctness dependency.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = load(path)
    except CheckpointError:
        return None
    state = payload.get("state")
    if not isinstance(state, RunState) or state.run_key != key:
        return None
    try:
        return restore_payload(payload)
    except CheckpointError as exc:
        warnings.warn(
            f"not resuming from {path}: {exc}", RuntimeWarning, stacklevel=2
        )
        return None


# ----------------------------------------------------------------------
# Preemption (SIGTERM and armed event counts)
# ----------------------------------------------------------------------

_SIGTERM_SEEN = False
_ARMED_AT: Optional[int] = None
_EXIT_ON_PREEMPT = False


def _on_sigterm(signum, frame) -> None:
    global _SIGTERM_SEEN
    _SIGTERM_SEEN = True


def request_preempt() -> None:
    """Ask the current drive to checkpoint-and-stop at the next chunk
    boundary (what the SIGTERM handler does; exposed for tests)."""
    global _SIGTERM_SEEN
    _SIGTERM_SEEN = True


def arm_preempt(events: int, exit_process: bool = False) -> None:
    """Preempt deterministically once ``events_processed`` reaches
    ``events``. ``exit_process`` makes the preemption exit with
    :data:`PREEMPT_EXIT_CODE` (the chaos fault in pool workers)
    instead of raising :class:`Preempted`."""
    global _ARMED_AT, _EXIT_ON_PREEMPT
    _ARMED_AT = int(events)
    _EXIT_ON_PREEMPT = bool(exit_process)


def disarm_preempt() -> None:
    """Clear armed/pending preemption state."""
    global _ARMED_AT, _EXIT_ON_PREEMPT, _SIGTERM_SEEN
    _ARMED_AT = None
    _EXIT_ON_PREEMPT = False
    _SIGTERM_SEEN = False


def preempt_reason(sim) -> Optional[str]:
    """Why the drive should stop now, or ``None`` to keep going."""
    if _SIGTERM_SEEN:
        return "sigterm"
    if _ARMED_AT is not None and sim.events_processed >= _ARMED_AT:
        return "armed"
    return None


def execute_preempt(host, state: RunState, plan: CheckpointPlan, reason: str):
    """Checkpoint, then stop the run (exit or raise; never returns)."""
    state.seq += 1
    save(host, state, plan.path)
    exit_process = _EXIT_ON_PREEMPT if reason == "armed" else _in_worker()
    disarm_preempt()
    if exit_process:
        os._exit(PREEMPT_EXIT_CODE)
    raise Preempted(
        f"run preempted ({reason}) at {state.seq} checkpoints, "
        f"t={host.sim.now:.1f} ns; resume from {plan.path}",
        str(plan.path),
    )


def _in_worker() -> bool:
    from repro.experiments import parallel

    return parallel._IN_WORKER


@contextlib.contextmanager
def sigterm_to_checkpoint(enabled: bool = True):
    """Route SIGTERM to checkpoint-and-stop for the enclosed drive.

    Installed only on the main thread (signal API constraint); the
    previous handler is restored on exit. Off the main thread the
    drive still honours :func:`request_preempt` / :func:`arm_preempt`.
    """
    if not enabled or threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.getsignal(signal.SIGTERM)
    signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
