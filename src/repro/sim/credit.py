"""First-class credit runtime: one algebra for every credit loop.

The paper's §4 observation is that every host-network domain is the
same mechanism — a credit pool of ``C`` cachelines whose round-trip
hold time ``L`` bounds throughput at ``T <= C * 64 / L``. The
simulator's four loops (LFB, IIO read/write buffers, CHA admission
stages, RPQ/WPQ) historically each carried a bespoke counter pair;
:class:`CreditPool` unifies them:

* **weighted acquire/release** — burst-mode macro-requests
  (``REPRO_BURST``) move ``req.lines`` credits per call;
* **FIFO one-shot waiters** — a blocked sender registers a callback
  that fires exactly once, in registration order, when credits free
  (replacing the IIO's broadcast-to-everyone list);
* **lifetime alloc/free counters** — the credit-conservation identity
  (credits freed == credits acquired net of occupancy drift) checked
  by :mod:`repro.validate`;
* **occupancy integral** — time-averaged credits-in-use via the shared
  :class:`~repro.telemetry.counters.OccupancyCounter`;
* **credit-hold latency** — ``release_held`` accumulates the domain
  latency ``L`` (time from acquire to release) per pool;
* **reservations** — RPQ/WPQ slots claimed for requests in transit
  from the CHA (``reserve``/``commit``).

:class:`DomainTracker` maps the four Fig. 5 domains onto their pools
and produces :class:`DomainSnapshot`\\ s — the live (C, occupancy, L,
T) tuple plus the bound utilization ``T*L/(C*64)`` — surfaced on
:class:`~repro.topology.host.RunResult` and consumed by
:mod:`repro.model` and :class:`repro.core.domain.Domain`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.domain import DomainKind
from repro.sim.records import CACHELINE_BYTES
from repro.telemetry.counters import CounterHub, LatencyStat, OccupancyCounter


class CreditPool:
    """One credit-based flow-control loop.

    ``capacity`` is the pool size in cachelines (the paper's ``C``).
    ``soft=True`` marks pools whose *admission* threshold is the
    capacity but whose occupancy may legitimately overshoot it (the
    CHA write stage: DDIO eviction writebacks enter without passing
    ingress); the validator then only checks ``occupancy >= 0``.

    Callers enforce admission themselves via :meth:`has_room` /
    :meth:`can_accept`; ``acquire`` does not re-check, so components
    keep their historical, component-specific error messages.

    The SoA kernels (``dram/kernel.py``, ``uncore/kernel.py``) inline
    these method bodies statement-for-statement on their hot paths;
    ``tests/test_credit.py::TestInlinedFastPaths`` replays the inlined
    recipes against the canonical methods, so any change here must
    update the kernels and will fail those tests until it does.
    """

    __slots__ = (
        "name",
        "capacity",
        "soft",
        "occ",
        "reserved",
        "alloc_count",
        "free_count",
        "latency",
        "_occ_update",
        "_waiters",
    )

    def __init__(
        self,
        name: str,
        occupancy: OccupancyCounter,
        capacity: Optional[int] = None,
        soft: bool = False,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError("credit pool capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.soft = soft
        self.occ = occupancy
        # Prebound: acquire/release run once per cacheline (or per
        # macro-request), so skip the attribute walk to the counter.
        self._occ_update = occupancy.update
        #: slots claimed for requests in transit (RPQ/WPQ admission).
        self.reserved = 0
        #: lifetime credit-event counts, consumed by the credit
        #: conservation check of :mod:`repro.validate` (credits freed
        #: must equal credits acquired, net of occupancy drift).
        self.alloc_count = 0
        self.free_count = 0
        #: credit-hold-time accumulation (the domain latency ``L``),
        #: fed by :meth:`release_held`; window-reset by the hub.
        self.latency = LatencyStat()
        self._waiters: Deque[Callable[[], None]] = deque()

    # -------------------------- read API -------------------------------

    @property
    def in_use(self) -> int:
        """Credits currently held."""
        return self.occ.value

    @property
    def value(self) -> int:
        """Alias for :attr:`in_use` (OccupancyCounter-compatible)."""
        return self.occ.value

    @property
    def max_seen(self) -> int:
        """High-water mark of credits held this window."""
        return self.occ.max_seen

    @property
    def free_credits(self) -> int:
        """Credits available right now (unbounded pools report 0)."""
        if self.capacity is None:
            return 0
        return self.capacity - self.occ.value

    def has_room(self, n: int = 1) -> bool:
        """Whether ``n`` credits can be acquired at once."""
        if self.capacity is None:
            return True
        return self.occ.value + n <= self.capacity

    def can_accept(self, n: int = 1) -> bool:
        """Whether ``n`` credits are free, counting reservations."""
        if self.capacity is None:
            return True
        return self.occ.value + self.reserved + n <= self.capacity

    def average(self, now: float) -> float:
        """Time-averaged credits in use over the current window."""
        return self.occ.average(now)

    # ------------------------ credit movement ---------------------------

    def acquire(self, now: float, n: int = 1) -> None:
        """Consume ``n`` credits at time ``now``."""
        self.alloc_count += n
        self._occ_update(now, n)

    def release(self, now: float, n: int = 1) -> None:
        """Replenish ``n`` credits; wakes registered waiters (FIFO)."""
        self.free_count += n
        self._occ_update(now, -n)
        if self._waiters:
            self._drain_waiters()

    def release_held(self, now: float, t_acquire: float, n: int = 1) -> None:
        """Release ``n`` credits held since ``t_acquire``, accumulating
        the hold time — the domain latency ``L`` of §4.1."""
        self.latency.record(now - t_acquire, n)
        self.free_count += n
        self._occ_update(now, -n)
        if self._waiters:
            self._drain_waiters()

    # -------------------------- reservations ----------------------------

    def reserve(self, n: int = 1) -> None:
        """Claim ``n`` credits for a request in transit (no occupancy
        yet); the caller must have checked :meth:`can_accept`."""
        self.reserved += n

    def commit(self, now: float, n: int = 1) -> None:
        """Convert ``n`` reserved credits into held credits."""
        self.reserved -= n
        self.alloc_count += n
        self._occ_update(now, n)

    # ---------------------------- waiters -------------------------------

    def add_waiter(self, callback: Callable[[], None]) -> None:
        """Register a one-shot callback fired at the next release.

        Waiters are served in registration order and removed as they
        fire; a still-blocked sender re-registers from its callback
        (those registrations wait for the *next* release, so one
        release cannot spin on a sender it cannot satisfy).
        """
        self._waiters.append(callback)

    @property
    def waiter_count(self) -> int:
        """Waiters currently registered (fairness/leak tests)."""
        return len(self._waiters)

    def _drain_waiters(self) -> None:
        pending = self._waiters
        self._waiters = deque()
        while pending:
            pending.popleft()()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else str(self.capacity)
        return (
            f"CreditPool({self.name!r}, in_use={self.occ.value}/{cap}, "
            f"reserved={self.reserved}, allocs={self.alloc_count}, "
            f"frees={self.free_count})"
        )


@dataclass(frozen=True)
class DomainSnapshot:
    """Live (C, occupancy, L, T) of one Fig. 5 domain over a window.

    All values are exact simulation measurements; ``credits_in_use``
    is the time-averaged occupancy integral of the domain's pools,
    ``latency_ns`` the lines-weighted mean domain latency, and
    ``throughput_bytes_per_ns`` the domain's completed cachelines
    converted to bytes/ns (== GB/s).
    """

    kind: str
    #: pool size C, in cachelines (summed over the domain's pools —
    #: e.g. every core's LFB for the C2M domains)
    credits: float
    #: time-averaged credits held over the window
    credits_in_use: float
    #: instantaneous credits held at collection time
    occupancy_now: int
    #: credit events within the window (lines-weighted); the C2M
    #: domains share the LFB pool, so their alloc/free counts cover
    #: both directions
    allocs: int
    frees: int
    #: mean domain latency L (ns) from direct per-request timestamps
    latency_ns: float
    #: cachelines that completed the domain round trip this window
    completions: int
    #: achieved domain throughput T (bytes/ns == GB/s)
    throughput_bytes_per_ns: float

    @property
    def bound_bytes_per_ns(self) -> float:
        """The §4.1 bound ``C * 64 / L`` (inf when L is unmeasured)."""
        if self.latency_ns <= 0:
            return float("inf")
        return self.credits * CACHELINE_BYTES / self.latency_ns

    @property
    def bound_utilization(self) -> float:
        """``T * L / (C * 64)``: how much of the credit bound is used.

        1.0 means the domain runs at its bound (saturated credits);
        the validator demands this never exceeds 1 beyond tolerance.
        """
        if self.credits <= 0:
            return 0.0
        return (
            self.throughput_bytes_per_ns
            * self.latency_ns
            / (self.credits * CACHELINE_BYTES)
        )


#: hub latency-stat prefix recording each domain's per-request L
#: (per traffic class; the tracker aggregates over classes).
_DOMAIN_PREFIXES: Dict[DomainKind, str] = {
    DomainKind.C2M_READ: "domain.c2m_read.",
    DomainKind.C2M_WRITE: "domain.c2m_write.",
    DomainKind.P2M_READ: "domain.p2m_read.",
    DomainKind.P2M_WRITE: "domain.p2m_write.",
    DomainKind.LLC_DDIO: "domain.llc_ddio.",
}


class DomainTracker:
    """Registry mapping the four Fig. 5 domains onto credit pools.

    The host registers each pool at construction (IIO buffers) or as
    senders attach (per-core LFBs); auxiliary pools (CHA stages,
    RPQ/WPQ) are *tracked* without a domain so the validator can walk
    every pool through one uniform conservation probe.
    """

    def __init__(self, hub: CounterHub):
        self._hub = hub
        self._domains: Dict[DomainKind, List[CreditPool]] = {}
        self._pools: List[CreditPool] = []
        self._marks: Dict[str, Tuple[int, int]] = {}

    # --------------------------- registration ---------------------------

    def register(self, kind: DomainKind, pool: CreditPool) -> None:
        """Attach ``pool`` to a domain (a pool may serve two domains:
        the LFB backs both C2M-Read and C2M-Write)."""
        self._domains.setdefault(kind, []).append(pool)
        self.track(pool)

    def track(self, pool: CreditPool) -> None:
        """Track a pool for the uniform validator walk only."""
        if all(existing is not pool for existing in self._pools):
            self._pools.append(pool)

    def pools(self) -> List[CreditPool]:
        """Every tracked pool, in registration order, deduplicated."""
        return list(self._pools)

    def domain_pools(self, kind: DomainKind) -> List[CreditPool]:
        """The pools backing one domain (empty if none registered)."""
        return list(self._domains.get(kind, ()))

    @property
    def kinds(self) -> List[DomainKind]:
        """Domains with at least one registered pool."""
        return list(self._domains)

    # ----------------------------- windows ------------------------------

    def begin_window(self, now: float) -> None:
        """Mark window-start credit counts (hub reset covers the rest)."""
        self._marks = {
            pool.name: (pool.alloc_count, pool.free_count)
            for pool in self._pools
        }

    # ---------------------------- snapshots -----------------------------

    def snapshot(
        self, kind: DomainKind, now: float, elapsed_ns: float
    ) -> DomainSnapshot:
        """Materialize one domain's live (C, occupancy, L, T)."""
        pools = self._domains.get(kind, ())
        credits = 0.0
        avg_occ = 0.0
        occ_now = 0
        allocs = 0
        frees = 0
        for pool in pools:
            if pool.capacity is not None:
                credits += pool.capacity
            avg_occ += pool.occ.average(now)
            occ_now += pool.occ.value
            mark_alloc, mark_free = self._marks.get(pool.name, (0, 0))
            allocs += pool.alloc_count - mark_alloc
            frees += pool.free_count - mark_free
        total = 0.0
        count = 0
        prefix = self._hub.scoped(_DOMAIN_PREFIXES[kind])
        for name, stat in self._hub._latencies.items():
            if name.startswith(prefix):
                total += stat.total
                count += stat.count
        latency = total / count if count else 0.0
        throughput = (
            count * CACHELINE_BYTES / elapsed_ns if elapsed_ns > 0 else 0.0
        )
        return DomainSnapshot(
            kind=kind.value,
            credits=credits,
            credits_in_use=avg_occ,
            occupancy_now=occ_now,
            allocs=allocs,
            frees=frees,
            latency_ns=latency,
            completions=count,
            throughput_bytes_per_ns=throughput,
        )

    def snapshot_all(
        self, now: float, elapsed_ns: float
    ) -> Dict[str, DomainSnapshot]:
        """Snapshots for every registered domain, keyed by kind value."""
        return {
            kind.value: self.snapshot(kind, now, elapsed_ns)
            for kind in self._domains
        }
