"""Request records that flow through the simulated host network.

A :class:`Request` represents a single cacheline (64 B) transfer. Its
timestamp fields are filled in as it traverses the host network and are
the raw material for all domain-latency measurements (§4.2 of the
paper): every latency the paper derives from uncore counters via
Little's law can be cross-checked here against direct per-request
timestamps.
"""

from __future__ import annotations

import enum
import os
from typing import List, Optional

CACHELINE_BYTES = 64


def burst_factor() -> int:
    """The configured macro-event burst factor (``REPRO_BURST``).

    1 (the default) means exact per-cacheline simulation; N>1 lets
    device DMA engines and core issue loops emit one macro-request per
    N-line burst (see DESIGN.md §5). Invalid values raise so typos
    don't silently fall back to exact mode.
    """
    raw = os.environ.get("REPRO_BURST", "").strip()
    if not raw:
        return 1
    try:
        n = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_BURST must be a positive integer, got {raw!r}")
    if n < 1:
        raise ValueError(f"REPRO_BURST must be >= 1, got {n}")
    return n


class RequestSource(enum.Enum):
    """Who generated the request: a core (C2M) or a peripheral (P2M)."""

    C2M = "c2m"
    P2M = "p2m"


class RequestKind(enum.Enum):
    """Memory-level direction of the request.

    ``READ`` moves data from DRAM toward the requester; ``WRITE``
    moves data toward DRAM. Note the inversion for storage/network
    workloads: a storage *read* generates memory *writes* (DMA into
    host memory) and vice versa (§2.2).
    """

    READ = "read"
    WRITE = "write"


class Request:
    """A single cacheline request traversing the host network.

    Attributes:
        source: C2M (from a core) or P2M (from a peripheral device).
        kind: READ or WRITE at the memory level.
        line_addr: cacheline-granularity physical address (integer).
        requester_id: index of the issuing core or device.
        traffic_class: free-form label used by telemetry to group
            requests (e.g. ``"c2m"``, ``"p2m"``, ``"copy"``).

    Timestamps (ns, ``None`` until reached):
        t_alloc: domain credit allocated (LFB entry / IIO entry).
        t_cha_admit: admitted into the CHA.
        t_queue_admit: admitted into the MC RPQ/WPQ.
        t_service: data transferred on the memory channel.
        t_free: domain credit replenished (end of domain latency).
    """

    __slots__ = (
        "source",
        "kind",
        "line_addr",
        "requester_id",
        "traffic_class",
        "t_alloc",
        "t_cha_admit",
        "t_queue_admit",
        "t_service",
        "t_free",
        "channel_id",
        "bank_id",
        "row_id",
        "row_outcome",
        "on_complete",
        "on_serviced",
        "on_cha_admit",
        "tag",
        "queue_seq",
        "lines",
        "cls_id",
        "ucls_id",
    )

    def __init__(
        self,
        source: RequestSource,
        kind: RequestKind,
        line_addr: int,
        requester_id: int = 0,
        traffic_class: Optional[str] = None,
    ):
        self.source = source
        self.kind = kind
        self.line_addr = line_addr
        self.requester_id = requester_id
        self.traffic_class = traffic_class or source.value
        self.t_alloc: Optional[float] = None
        self.t_cha_admit: Optional[float] = None
        self.t_queue_admit: Optional[float] = None
        self.t_service: Optional[float] = None
        self.t_free: Optional[float] = None
        # Filled in by the DRAM address mapper / banks.
        self.channel_id: int = -1
        self.bank_id: int = -1
        self.row_id: int = -1
        self.row_outcome: Optional[str] = None  # "hit" | "miss" | "conflict"
        # Optional completion callback (set by the endpoint that issued it):
        # invoked at data transmission for reads, at WPQ admission for writes.
        self.on_complete = None
        # Optional service hook (set by the CHA): invoked when a read's data
        # leaves the memory channel, used for in-flight tracking.
        self.on_serviced = None
        # Optional admission hook: invoked when the CHA admits the request.
        # Cores use it to end the C2M-Write domain (LFB -> CHA).
        self.on_cha_admit = None
        # Free-form payload for the issuing endpoint (e.g. the RFO read
        # a writeback belongs to). Never inspected by the fabric.
        self.tag = None
        # Monotonic admission order within the MC queue (scheduler age).
        self.queue_seq = 0
        # Cachelines this request stands for: 1 in exact mode, the
        # burst factor for REPRO_BURST macro-requests. Every counter
        # and credit update is weighted by it.
        self.lines = 1
        # Interned traffic-class id, assigned by the SoA channel kernel
        # at MC admission (dram/kernel.py). -1 = not yet interned.
        self.cls_id = -1
        # Uncore-kernel class id, assigned at CHA admission
        # (uncore/kernel.py) — distinct interning table from cls_id.
        self.ucls_id = -1

    @property
    def is_read(self) -> bool:
        """True for memory-level reads."""
        return self.kind is RequestKind.READ

    @property
    def is_write(self) -> bool:
        """True for memory-level writes."""
        return self.kind is RequestKind.WRITE

    @property
    def domain_latency(self) -> Optional[float]:
        """Credit hold time: allocation to replenishment (ns)."""
        if self.t_alloc is None or self.t_free is None:
            return None
        return self.t_free - self.t_alloc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request({self.source.value}-{self.kind.value}, "
            f"line={self.line_addr:#x}, cls={self.traffic_class})"
        )


# ----------------------------------------------------------------------
# Request free-list pool
#
# Every cacheline costs a Request allocation; on the hot paths that is
# a measurable slice of per-event time (object + five None timestamp
# stores + GC pressure). Endpoints that *retire* a request hand it
# back via release_request(); issue sites acquire via
# acquire_request(), which reinitialises every slot a fresh Request
# would have, so recycling is observationally identical to
# construction. REPRO_POOL=off disables recycling (diagnostic aid:
# any behavioural difference with the pool on is a lifetime bug).

_POOL: List[Request] = []
_POOL_CAP = 4096
_POOL_ENABLED = os.environ.get("REPRO_POOL", "on").strip().lower() not in (
    "off",
    "0",
)


def acquire_request(
    source: RequestSource,
    kind: RequestKind,
    line_addr: int,
    requester_id: int = 0,
    traffic_class: Optional[str] = None,
) -> Request:
    """A fresh-looking :class:`Request`, recycled when the pool has one."""
    pool = _POOL
    if not pool:
        return Request(source, kind, line_addr, requester_id, traffic_class)
    req = pool.pop()
    req.source = source
    req.kind = kind
    req.line_addr = line_addr
    req.requester_id = requester_id
    req.traffic_class = traffic_class or source.value
    req.t_alloc = None
    req.t_cha_admit = None
    req.t_queue_admit = None
    req.t_service = None
    req.t_free = None
    req.channel_id = -1
    req.bank_id = -1
    req.row_id = -1
    req.row_outcome = None
    req.queue_seq = 0
    req.lines = 1
    # Callbacks and tag were already cleared at release time.
    return req


def release_request(req: Request) -> None:
    """Retire ``req`` into the free list (caller must hold the last ref).

    Only endpoints that end a request's lifecycle may call this: after
    release no heap entry, queue, stage set or callback may still
    reference the object. Callback/tag slots are cleared eagerly so
    recycled requests never pin issuer state for the GC.
    """
    req.on_complete = None
    req.on_serviced = None
    req.on_cha_admit = None
    req.tag = None
    if _POOL_ENABLED and len(_POOL) < _POOL_CAP:
        _POOL.append(req)


def snapshot_pool() -> List[Request]:
    """The free list, in order, for checkpointing.

    The pool is module state, invisible to a Host pickle, yet it
    steers which object ``acquire_request`` hands out next — a resumed
    run must replay the exact acquire sequence, so the checkpoint
    captures the list (a shallow copy; the Requests themselves ride
    along in the same pickle as the host graph, preserving identity).
    """
    return list(_POOL)


def restore_pool(entries: List[Request]) -> None:
    """Reinstall a checkpointed free list (see :func:`snapshot_pool`)."""
    _POOL.clear()
    _POOL.extend(entries)


def pool_enabled() -> bool:
    """Whether request recycling is on (the ``REPRO_POOL`` knob)."""
    return _POOL_ENABLED
