"""Host congestion control for single-host traffic (§7 future work).

The paper closes by suggesting "new mechanisms for host network
resource allocation (e.g., extending ideas in hostCC [2] to the case
of all traffic contained within a single host)". This module is that
extension, built from the ingredients hostCC uses on real hardware:

* **congestion signal** — the P2M-Write domain latency, measured the
  same way the paper measures it (credit allocation to replenishment
  at the IIO), sampled per control interval;
* **actuator** — Intel MBA-style per-core memory-bandwidth throttling,
  modelled as a minimum spacing between issued memory operations
  (:attr:`repro.cpu.core.Core.throttle_gap_ns`);
* **control law** — AIMD: when the sampled P2M-Write latency exceeds
  the target, increase the throttle gap multiplicatively; otherwise
  relax it additively.

The controller trades C2M throughput for P2M-Write latency: in the
red regime it caps the latency near the target (protecting the P2M
app's credit budget) at the cost of slowing the offending cores — the
policy knob the paper argues hosts currently lack.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.core import Core
from repro.topology.host import Host


class HostCongestionController:
    """AIMD controller from P2M-Write latency to core throttling.

    Args:
        host: the host to control (attach after adding all cores).
        target_latency_ns: P2M-Write domain latency setpoint. A good
            default is ~1.3x the unloaded ~300 ns.
        interval_ns: control period.
        cores: cores to throttle (defaults to every core on the host).
        max_gap_ns: upper bound on the per-op throttle gap.
        increase_factor / relax_step_ns: AIMD parameters.
    """

    def __init__(
        self,
        host: Host,
        target_latency_ns: float = 390.0,
        interval_ns: float = 2_000.0,
        cores: Optional[List[Core]] = None,
        max_gap_ns: float = 200.0,
        increase_factor: float = 1.5,
        relax_step_ns: float = 2.0,
        traffic_class: str = "p2m",
    ):
        if target_latency_ns <= 0 or interval_ns <= 0:
            raise ValueError("target latency and interval must be positive")
        self.host = host
        self.target_latency_ns = target_latency_ns
        self.interval_ns = interval_ns
        self.cores = cores if cores is not None else list(host.cores)
        self.max_gap_ns = max_gap_ns
        self.increase_factor = increase_factor
        self.relax_step_ns = relax_step_ns
        self._stat = host.hub.latency(f"domain.p2m_write.{traffic_class}")
        self._last_total = 0.0
        self._last_count = 0
        self.gap_ns = 0.0
        self.gap_history: List[float] = []
        self.latency_history: List[float] = []
        host.sim.schedule(interval_ns, self._tick)

    # ------------------------------------------------------------------

    def _sample_latency(self) -> Optional[float]:
        """Average P2M-Write latency over the last interval, or None
        if no writes completed (counter resets are handled)."""
        total, count = self._stat.total, self._stat.count
        d_total = total - self._last_total
        d_count = count - self._last_count
        self._last_total, self._last_count = total, count
        if d_count <= 0 or d_total < 0:
            return None
        return d_total / d_count

    def _tick(self) -> None:
        latency = self._sample_latency()
        if latency is not None:
            self.latency_history.append(latency)
            if latency > self.target_latency_ns:
                self.gap_ns = min(
                    self.max_gap_ns,
                    max(self.relax_step_ns, self.gap_ns) * self.increase_factor,
                )
            else:
                self.gap_ns = max(0.0, self.gap_ns - self.relax_step_ns)
            self._apply()
        self.gap_history.append(self.gap_ns)
        self.host.sim.schedule(self.interval_ns, self._tick)

    def _apply(self) -> None:
        for core in self.cores:
            core.throttle_gap_ns = self.gap_ns
            # Wake a throttled core that may be waiting on the old gap.
            core.kick()

    # ------------------------------------------------------------------

    @property
    def throttling_active(self) -> bool:
        """Whether any throttle gap is currently applied."""
        return self.gap_ns > 0.0

    def average_latency(self) -> float:
        """Mean of the per-interval P2M-Write latency samples."""
        if not self.latency_history:
            return 0.0
        return sum(self.latency_history) / len(self.latency_history)
