"""Extensions: the paper's §7 future-work directions, implemented.

* :mod:`repro.ext.hostcc` — host-network congestion control for
  traffic contained within a single host, extending the hostCC [2]
  idea the paper points at: monitor the P2M-Write domain latency and
  actuate MBA-style per-core memory-bandwidth throttling.
* The MC-side isolation policy ("new memory controller scheduling
  mechanisms to better isolate C2M/P2M traffic") lives in the memory
  controller itself: ``HostConfig(p2m_write_priority=True)``.
"""

from repro.ext.hostcc import HostCongestionController

__all__ = ["HostCongestionController"]
