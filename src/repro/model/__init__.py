"""The paper's analytical latency model (§6).

The model expresses average read/write domain latency as a constant
(the unloaded datapath) plus queueing delay at the MC (reads) or
admission delay into the WPQ (writes), driven entirely by measurable
counters (Table 2). Estimated throughput then follows from the domain
bound ``T <= C * 64 / L`` and is validated against measured throughput
(Fig. 11), with a per-component breakdown (Fig. 12).
"""

from repro.model.inputs import FormulaInputs, domain_credits
from repro.model.read_latency import ReadLatencyBreakdown, read_domain_latency, read_queueing_delay
from repro.model.write_latency import (
    WriteLatencyBreakdown,
    write_admission_delay,
    write_domain_latency,
)
from repro.model.validation import (
    ThroughputEstimate,
    calibrate_read_constant,
    calibrate_write_constant,
    estimate_c2m_throughput,
    estimate_p2m_throughput,
    signed_error,
)

__all__ = [
    "FormulaInputs",
    "domain_credits",
    "ReadLatencyBreakdown",
    "read_domain_latency",
    "read_queueing_delay",
    "WriteLatencyBreakdown",
    "write_admission_delay",
    "write_domain_latency",
    "ThroughputEstimate",
    "calibrate_read_constant",
    "calibrate_write_constant",
    "estimate_c2m_throughput",
    "estimate_p2m_throughput",
    "signed_error",
]
