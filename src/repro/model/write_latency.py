"""Write-domain latency formula (Fig. 10).

    L_write = Constant_write + AD_write
    AD_write = P_fill_WPQ * X_write
    X_write = N_waiting * (#switches / lines_written) * t_RTW (Switching)
            + N_waiting * (lines_read / lines_written) * t_Trans (Read HoL)
            + (N_waiting - 1) * t_Trans                          (Write HoL)
            + (#ACT_write * t_ACT + #PRE_write * t_PRE)
              / lines_written                                    (Top-of-queue)

Writes complete at WPQ admission, so latency only inflates when the
WPQ is full (probability ``P_fill_WPQ``); the waiting time is the dual
of the read expression with ``N_waiting`` — writes ahead of ours that
must be processed to make queue space — in place of ``O_RPQ`` (§6.1).
Applies to the P2M-Write domain; C2M-Write latency is not modelled
(treated as constant, §6.1), which is exactly the asymmetry that lets
the red regime hit P2M but not C2M.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DramTiming
from repro.model.inputs import FormulaInputs


@dataclass(frozen=True)
class WriteLatencyBreakdown:
    """Additive components of write admission delay, already scaled by
    ``P_fill_WPQ`` (so they sum to ``AD_write``, comparable to
    Fig. 12's stacked bars)."""

    switching: float
    read_hol: float
    write_hol: float
    top_of_queue: float

    @property
    def total(self) -> float:
        """AD_write: the sum of all four (already P_fill-scaled) parts."""
        return self.switching + self.read_hol + self.write_hol + self.top_of_queue


def write_admission_delay(
    inputs: FormulaInputs, timing: DramTiming
) -> WriteLatencyBreakdown:
    """AD_write = P_fill_WPQ * X_write, broken into components."""
    if inputs.lines_written <= 0 or inputs.p_fill_wpq <= 0:
        return WriteLatencyBreakdown(0.0, 0.0, 0.0, 0.0)
    n = inputs.n_waiting
    p = inputs.p_fill_wpq
    switching = n * (inputs.switches_rtw / inputs.lines_written) * timing.t_rtw
    read_hol = n * (inputs.lines_read / inputs.lines_written) * timing.t_trans
    write_hol = max(0.0, n - 1.0) * timing.t_trans
    top_of_queue = (
        inputs.act_write * timing.t_act + inputs.pre_conflict_write * timing.t_pre
    ) / inputs.lines_written
    return WriteLatencyBreakdown(
        switching=p * switching,
        read_hol=p * read_hol,
        write_hol=p * write_hol,
        top_of_queue=p * top_of_queue,
    )


def write_domain_latency(
    constant: float, inputs: FormulaInputs, timing: DramTiming
) -> float:
    """L_write = Constant_write + AD_write (average, ns)."""
    if constant < 0:
        raise ValueError("constant must be non-negative")
    return constant + write_admission_delay(inputs, timing).total
