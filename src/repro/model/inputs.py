"""Analytical-formula inputs (Table 2).

+---------------------+------------------------------------------------+
| P_fill_WPQ          | probability that the WPQ is full               |
| N_waiting           | # write requests awaiting WPQ admission        |
| #switches           | # switches between read and write mode        |
| lines_read/written  | # cachelines read / written                    |
| O_RPQ               | average RPQ occupancy                          |
| PRE_conflict r/w    | # precharges due to row conflicts              |
| ACT r/w             | # activations                                  |
+---------------------+------------------------------------------------+

All inputs are captured with MC counters except ``N_waiting``, which
comes from CHA counters (the backlog lives there when the WPQ is
full), exactly as in §6.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.topology.host import RunResult


@dataclass(frozen=True)
class FormulaInputs:
    """Measured inputs for the read/write latency formulae.

    Counts are totals over the measurement window (the formulae only
    use scale-invariant ratios of them); occupancies are per-channel
    averages, matching how the paper programs the MC counters.
    """

    p_fill_wpq: float
    n_waiting: float
    switches_wtr: int  # write -> read transitions (blocks reads, t_WTR)
    switches_rtw: int  # read -> write transitions (blocks writes, t_RTW)
    lines_read: int
    lines_written: int
    o_rpq: float
    act_read: int
    act_write: int
    pre_conflict_read: int
    pre_conflict_write: int

    def __post_init__(self) -> None:
        if not 0 <= self.p_fill_wpq <= 1:
            raise ValueError("p_fill_wpq must be a probability")
        if self.n_waiting < 0 or self.o_rpq < 0:
            raise ValueError("occupancies must be non-negative")

    @classmethod
    def from_run(cls, result: RunResult) -> "FormulaInputs":
        """Extract the Table 2 inputs from a measurement window."""
        return cls(
            p_fill_wpq=result.wpq_full_fraction,
            n_waiting=result.cha_write_waiting_avg,
            switches_wtr=result.switches_wtr,
            switches_rtw=result.switches_rtw,
            lines_read=result.lines_read,
            lines_written=result.lines_written,
            o_rpq=result.rpq_avg_occupancy,
            act_read=result.act_read,
            act_write=result.act_write,
            pre_conflict_read=result.pre_conflict_read,
            pre_conflict_write=result.pre_conflict_write,
        )


def domain_credits(result: RunResult, kind: str) -> Optional[float]:
    """Credit-pool size ``C`` of one Fig. 5 domain, in cachelines,
    from the run's live :class:`~repro.sim.credit.DomainSnapshot`\\ s.

    This is the measured counterpart of the config-derived credit
    counts the §6.2 estimators default to (``n_cores * LFB`` for C2M,
    the IIO buffer sizes for P2M): the snapshot sums the capacities of
    the pools actually registered during the run, so per-core
    ``lfb_size`` overrides are reflected. Returns ``None`` when the
    domain had no registered pools (e.g. a run without cores asked for
    ``"c2m_read"``).
    """
    snapshot = result.domain_snapshots.get(kind)
    if snapshot is None or snapshot.credits <= 0:
        return None
    return snapshot.credits


def ddio_credits(result: RunResult) -> Optional[float]:
    """Credits ``C`` of the fifth (llc.ddio) domain, in cachelines.

    ``None`` on runs without DDIO (no ``llc.ddio`` snapshot). The
    credits are the DDIO slice capacity ``n_sets * ddio_ways``, so §6
    what-ifs can resize the slice (e.g. "would 4 DDIO ways absorb this
    buffer?") via :func:`ddio_throughput_bound`.
    """
    return domain_credits(result, "llc.ddio")


def ddio_throughput_bound(
    result: RunResult, credits: Optional[float] = None
) -> Optional[float]:
    """The DDIO domain's ``C * 64 / L`` bound in bytes/ns (== GB/s).

    ``credits`` overrides the measured slice capacity for what-if
    resizing; the measured DMA-line residency ``L`` is kept. Returns
    ``None`` when the run has no llc.ddio snapshot or the domain saw
    no evictions (L unmeasured — the slice absorbed everything, i.e.
    the bound is not binding).
    """
    snapshot = result.domain_snapshots.get("llc.ddio")
    if snapshot is None or snapshot.latency_ns <= 0:
        return None
    c = snapshot.credits if credits is None else credits
    if c <= 0:
        return None
    return c * 64 / snapshot.latency_ns
