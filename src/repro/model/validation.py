"""Applying the formula and validating against measured throughput
(§6.2, Figs. 11/12).

Constants are calibrated from unloaded runs (the paper sets them from
the §4.2 unloaded domain latencies): the constant is the measured
domain latency minus whatever queueing delay the formula attributes to
the unloaded window, so the formula is exact at the calibration point
and is *tested* by how well it tracks latency inflation under load.

Throughput estimation then follows §4's bound:

* C2M: ``T = n_cores * LFB * 64 / L`` (the LFB is fully utilized);
* P2M: ``T = min(offered rate, credits * 64 / L)`` (spare credits mask
  inflation until the bound crosses the offered load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.timing import DramTiming
from repro.model.inputs import FormulaInputs
from repro.model.read_latency import read_domain_latency, read_queueing_delay
from repro.model.write_latency import write_admission_delay, write_domain_latency
from repro.sim.records import CACHELINE_BYTES
from repro.topology.host import RunResult


@dataclass(frozen=True)
class ThroughputEstimate:
    """A formula estimate next to the measured value (bytes/ns)."""

    estimated: float
    measured: float

    @property
    def error(self) -> float:
        """Signed relative error: positive = overestimation (Fig. 11)."""
        return signed_error(self.estimated, self.measured)


def signed_error(estimated: float, measured: float) -> float:
    """(estimated - measured) / measured; positive = overestimation."""
    if measured <= 0:
        raise ValueError("measured value must be positive")
    return (estimated - measured) / measured


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------


def calibrate_read_constant(
    unloaded: RunResult,
    timing: DramTiming,
    domain: str = "c2m_read",
    traffic_class: str = "c2m",
) -> float:
    """Constant_read from an unloaded (isolated, low-load) run."""
    measured = unloaded.latency(domain, traffic_class)
    if measured <= 0:
        raise ValueError(f"no latency samples for {domain}.{traffic_class}")
    queueing = read_queueing_delay(FormulaInputs.from_run(unloaded), timing).total
    return max(0.0, measured - queueing)


def calibrate_write_constant(
    unloaded: RunResult,
    timing: DramTiming,
    domain: str = "p2m_write",
    traffic_class: str = "p2m",
) -> float:
    """Constant_write from an unloaded run."""
    measured = unloaded.latency(domain, traffic_class)
    if measured <= 0:
        raise ValueError(f"no latency samples for {domain}.{traffic_class}")
    admission = write_admission_delay(FormulaInputs.from_run(unloaded), timing).total
    return max(0.0, measured - admission)


# ----------------------------------------------------------------------
# Throughput estimation
# ----------------------------------------------------------------------


def estimate_c2m_throughput(
    result: RunResult,
    constant_read: float,
    n_cores: int,
    store_stream: bool = False,
    constant_write: float = 0.0,
    cha_admission_correction: bool = False,
    credits: Optional[float] = None,
) -> ThroughputEstimate:
    """Estimate C2M memory throughput from the read-domain formula.

    For C2M-ReadWrite the LFB entry covers the read plus the write
    handoff, so the per-request latency is ``L_read + Constant_write``
    and each request moves two lines (RFO read + writeback), as in
    §6.2 "for C2M-ReadWrite, we use the C2M-Read domain latency plus a
    constant".

    ``cha_admission_correction`` adds the measured CHA admission delay
    (the §6.2 fix for quadrant 3 beyond 4 C2M cores).

    ``credits`` overrides the config-derived credit count
    ``n_cores * LFB`` — pass
    :func:`repro.model.inputs.domain_credits(result, "c2m_read")
    <repro.model.inputs.domain_credits>` to use the run's live
    snapshot (identical for homogeneous cores; differs when per-core
    ``lfb_size`` overrides are in play).
    """
    timing = result.config.dram_timing
    inputs = FormulaInputs.from_run(result)
    latency = read_domain_latency(constant_read, inputs, timing)
    if store_stream:
        latency += constant_write
    if cha_admission_correction:
        latency += result.cha_admission_delay.get("c2m", 0.0)
    lines_per_request = 2.0 if store_stream else 1.0
    if credits is None:
        credits = n_cores * result.config.effective_lfb_size
    estimated = credits * lines_per_request * CACHELINE_BYTES / latency
    return ThroughputEstimate(estimated=estimated, measured=result.class_bandwidth("c2m"))


def estimate_p2m_throughput(
    result: RunResult,
    constant: float,
    is_write: bool,
    offered_rate: Optional[float] = None,
    measured: Optional[float] = None,
    cha_admission_correction: bool = False,
    credits: Optional[float] = None,
) -> ThroughputEstimate:
    """Estimate P2M throughput from the matching domain formula.

    ``offered_rate`` caps the estimate (spare credits mean the domain
    meets its offered load until the bound crosses it); it defaults to
    the configured device rate. ``credits`` overrides the IIO buffer
    size from the config — pass the run's live snapshot credits via
    :func:`repro.model.inputs.domain_credits`.
    """
    config = result.config
    timing = config.dram_timing
    inputs = FormulaInputs.from_run(result)
    if is_write:
        latency = write_domain_latency(constant, inputs, timing)
        if credits is None:
            credits = config.iio_write_entries
    else:
        latency = read_domain_latency(constant, inputs, timing)
        if credits is None:
            credits = config.iio_read_entries
    if cha_admission_correction:
        latency += result.cha_admission_delay.get("p2m", 0.0)
    bound = credits * CACHELINE_BYTES / latency
    if offered_rate is None:
        offered_rate = config.device_rate
    estimated = min(offered_rate, bound)
    if measured is None:
        measured = result.class_bandwidth("p2m")
    return ThroughputEstimate(estimated=estimated, measured=measured)
