"""Read-domain latency formula (Fig. 9).

    L_read = Constant_read + QD_read

    QD_read = O_RPQ * (#switches / lines_read) * t_WTR      (Switching)
            + O_RPQ * (lines_written / lines_read) * t_Trans (Write HoL)
            + (O_RPQ - 1) * t_Trans                          (Read HoL)
            + (#ACT_read * t_ACT + #PRE_read * t_PRE)
              / lines_read                                   (Top-of-queue)

Applies to both the C2M-Read and P2M-Read domains; only the constant
differs (they have non-shared hops, §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DramTiming
from repro.model.inputs import FormulaInputs


@dataclass(frozen=True)
class ReadLatencyBreakdown:
    """Additive components of read queueing delay (Fig. 12)."""

    switching: float
    write_hol: float
    read_hol: float
    top_of_queue: float

    @property
    def total(self) -> float:
        """QD_read: the sum of all four components."""
        return self.switching + self.write_hol + self.read_hol + self.top_of_queue


def read_queueing_delay(
    inputs: FormulaInputs, timing: DramTiming
) -> ReadLatencyBreakdown:
    """Average queueing delay for reads at the MC (Fig. 9)."""
    if inputs.lines_read <= 0:
        return ReadLatencyBreakdown(0.0, 0.0, 0.0, 0.0)
    o_rpq = inputs.o_rpq
    switching = o_rpq * (inputs.switches_wtr / inputs.lines_read) * timing.t_wtr
    write_hol = o_rpq * (inputs.lines_written / inputs.lines_read) * timing.t_trans
    read_hol = max(0.0, o_rpq - 1.0) * timing.t_trans
    top_of_queue = (
        inputs.act_read * timing.t_act + inputs.pre_conflict_read * timing.t_pre
    ) / inputs.lines_read
    return ReadLatencyBreakdown(
        switching=switching,
        write_hol=write_hol,
        read_hol=read_hol,
        top_of_queue=top_of_queue,
    )


def read_domain_latency(
    constant: float, inputs: FormulaInputs, timing: DramTiming
) -> float:
    """L_read = Constant_read + QD_read (average, ns)."""
    if constant < 0:
        raise ValueError("constant must be non-negative")
    return constant + read_queueing_delay(inputs, timing).total
