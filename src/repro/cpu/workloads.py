"""C2M workload generators (§2.2).

The paper generates C2M traffic with a modified STREAM benchmark:

* *C2M-Read* — sequential 64 B loads over a 1 GB buffer → 100% memory
  reads;
* *C2M-ReadWrite* — sequential 64 B stores → 50% reads + 50% writes,
  because every store first fetches the line (read-for-ownership) and
  the dirty line is later written back.

Workloads expose a small protocol the :class:`repro.cpu.core.Core`
drives:

* ``try_next(now)`` → ``(line_addr, op)`` or ``None`` when the
  workload is think-gated or self-limits its parallelism. ``op`` is
  ``OP_LOAD`` (0/False), ``OP_STORE`` (1/True: RFO read + writeback),
  or ``OP_NT_STORE`` (2: non-temporal/fast-string store that skips the
  RFO and goes straight to the write path);
* ``wake_time(now)`` → absolute time to retry after a ``None``;
* ``on_issue(now)`` / ``on_complete(now)`` — bookkeeping hooks;
* ``ops_completed`` — completed memory operations (throughput metric).
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.dram.region import Region


#: operation codes returned by ``try_next`` (OP_LOAD/OP_STORE are
#: bool-compatible so simple workloads can return True/False).
OP_LOAD = 0
OP_STORE = 1
OP_NT_STORE = 2


class MemoryWorkload:
    """Base class implementing the bookkeeping common to all workloads."""

    def __init__(self, traffic_class: str = "c2m"):
        self.traffic_class = traffic_class
        self.ops_completed = 0
        self.ops_issued = 0

    def try_next(self, now: float) -> Optional[Tuple[int, bool]]:
        """Next operation as ``(line_addr, op)``, or None when gated.

        ``op`` is OP_LOAD / OP_STORE / OP_NT_STORE (plain bools work
        for the first two).
        """
        raise NotImplementedError

    def wake_time(self, now: float) -> Optional[float]:
        """Absolute retry time after ``try_next`` returned None."""
        return None

    def on_issue(self, now: float) -> None:
        """The core issued one operation."""
        self.ops_issued += 1

    def on_complete(self, now: float, was_store: bool = False) -> None:
        """One operation fully resolved (store: writeback handed off)."""
        self.ops_completed += 1

    def reset_stats(self, now: float) -> None:
        """Start a fresh measurement window."""
        self.ops_completed = 0
        self.ops_issued = 0


class SequentialStreamWorkload(MemoryWorkload):
    """STREAM-style sequential walk over a private buffer.

    ``store_fraction`` selects the instruction mix: 0.0 is C2M-Read,
    1.0 is C2M-ReadWrite, intermediate values interleave
    deterministically (every ``1/store_fraction``-th op is a store) so
    traffic ratios are exact rather than sampled.
    """

    def __init__(
        self,
        region: Region,
        store_fraction: float = 0.0,
        traffic_class: str = "c2m",
    ):
        super().__init__(traffic_class)
        if not 0.0 <= store_fraction <= 1.0:
            raise ValueError("store_fraction must be in [0, 1]")
        self.region = region
        self.store_fraction = store_fraction
        self._pos = 0
        self._store_accum = 0.0

    def try_next(self, now: float) -> Optional[Tuple[int, bool]]:
        addr = self.region.line(self._pos)
        self._pos += 1
        if self._pos >= self.region.n_lines:
            self._pos = 0
        self._store_accum += self.store_fraction
        is_store = False
        if self._store_accum >= 1.0:
            self._store_accum -= 1.0
            is_store = True
        return addr, is_store


class RandomAccessWorkload(MemoryWorkload):
    """Uniform-random accesses over a private buffer (GAPBS-style)."""

    def __init__(
        self,
        region: Region,
        store_fraction: float = 0.0,
        seed: int = 0,
        traffic_class: str = "c2m",
    ):
        super().__init__(traffic_class)
        self.region = region
        self.store_fraction = store_fraction
        self._rng = random.Random(seed)

    def try_next(self, now: float) -> Optional[Tuple[int, bool]]:
        addr = self.region.line(self._rng.randrange(self.region.n_lines))
        is_store = self._rng.random() < self.store_fraction
        return addr, is_store


#: 1 GB buffer in cachelines, the paper's STREAM buffer size.
GIB_LINES = (1 << 30) // 64


def c2m_read(region: Region, traffic_class: str = "c2m") -> SequentialStreamWorkload:
    """The paper's C2M-Read workload: sequential loads over 1 GB."""
    return SequentialStreamWorkload(
        region, store_fraction=0.0, traffic_class=traffic_class
    )


def c2m_read_write(
    region: Region, traffic_class: str = "c2m"
) -> SequentialStreamWorkload:
    """The paper's C2M-ReadWrite workload: sequential stores over 1 GB."""
    return SequentialStreamWorkload(
        region, store_fraction=1.0, traffic_class=traffic_class
    )
