"""Line Fill Buffer: the per-core credit pool of the C2M domains.

An LFB entry is allocated on an L1 miss and freed when the miss is
fully resolved — for loads, when data returns from DRAM (C2M-Read
domain, LFB→DRAM); for stores, additionally when the writeback is
handed to the CHA (C2M-Write domain, LFB→CHA). The entry is held for
the whole round trip to prevent duplicate requests to the same line
(§4.2, refs. [30, 67]).
"""

from __future__ import annotations

from repro.telemetry.counters import OccupancyCounter


class LineFillBuffer:
    """Credit pool with occupancy telemetry."""

    def __init__(self, occupancy: OccupancyCounter, size: int):
        if size <= 0:
            raise ValueError("LFB size must be positive")
        self.size = size
        self._occ = occupancy
        #: lifetime credit-event counts, consumed by the credit
        #: conservation check of :mod:`repro.validate` (credits freed
        #: must equal credits acquired, net of occupancy drift).
        self.alloc_count = 0
        self.free_count = 0

    @property
    def in_use(self) -> int:
        """Entries currently held (credits consumed)."""
        return self._occ.value

    @property
    def has_free_entry(self) -> bool:
        """Whether a new miss can allocate an entry."""
        return self._occ.value < self.size

    def alloc(self, now: float) -> None:
        """Consume one credit (entry allocated on an L1 miss)."""
        if not self.has_free_entry:
            raise RuntimeError("LFB allocation without a free entry")
        self.alloc_count += 1
        self._occ.update(now, +1)

    def free(self, now: float) -> None:
        """Replenish one credit (the miss fully resolved)."""
        self.free_count += 1
        self._occ.update(now, -1)

    def average_occupancy(self, now: float) -> float:
        """Time-averaged entries in use over the current window."""
        return self._occ.average(now)
