"""Line Fill Buffer: the per-core credit pool of the C2M domains.

An LFB entry is allocated on an L1 miss and freed when the miss is
fully resolved — for loads, when data returns from DRAM (C2M-Read
domain, LFB→DRAM); for stores, additionally when the writeback is
handed to the CHA (C2M-Write domain, LFB→CHA). The entry is held for
the whole round trip to prevent duplicate requests to the same line
(§4.2, refs. [30, 67]).

The LFB is a :class:`~repro.sim.credit.CreditPool` with the historic
alloc/free vocabulary kept as thin aliases; the credit-conservation
counters, occupancy integral and hold-time stat all come from the
shared runtime.
"""

from __future__ import annotations

from repro.sim.credit import CreditPool
from repro.telemetry.counters import OccupancyCounter


class LineFillBuffer(CreditPool):
    """Per-core credit pool with occupancy telemetry."""

    __slots__ = ("size",)

    def __init__(
        self, occupancy: OccupancyCounter, size: int, name: str = "lfb"
    ):
        if size <= 0:
            raise ValueError("LFB size must be positive")
        super().__init__(name, occupancy, size)
        self.size = size

    @property
    def has_free_entry(self) -> bool:
        """Whether a new miss can allocate an entry."""
        return self.occ.value < self.size

    def alloc(self, now: float, n: int = 1) -> None:
        """Consume ``n`` credits (entries allocated on L1 misses)."""
        if self.occ.value + n > self.size:
            raise RuntimeError("LFB allocation without a free entry")
        self.acquire(now, n)

    def free(self, now: float, n: int = 1) -> None:
        """Replenish ``n`` credits (the misses fully resolved)."""
        self.release(now, n)

    def free_held(self, now: float, t_alloc: float, n: int = 1) -> None:
        """Replenish ``n`` credits held since ``t_alloc``, feeding the
        pool's credit-hold-time stat (the full LFB round trip)."""
        self.release_held(now, t_alloc, n)

    def average_occupancy(self, now: float) -> float:
        """Time-averaged entries in use over the current window."""
        return self.occ.average(now)
