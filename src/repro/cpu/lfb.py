"""Line Fill Buffer: the per-core credit pool of the C2M domains.

An LFB entry is allocated on an L1 miss and freed when the miss is
fully resolved — for loads, when data returns from DRAM (C2M-Read
domain, LFB→DRAM); for stores, additionally when the writeback is
handed to the CHA (C2M-Write domain, LFB→CHA). The entry is held for
the whole round trip to prevent duplicate requests to the same line
(§4.2, refs. [30, 67]).
"""

from __future__ import annotations

from repro.telemetry.counters import OccupancyCounter


class LineFillBuffer:
    """Credit pool with occupancy telemetry."""

    def __init__(self, occupancy: OccupancyCounter, size: int):
        if size <= 0:
            raise ValueError("LFB size must be positive")
        self.size = size
        self._occ = occupancy
        # Prebound: alloc/free run once per cacheline, so skip the
        # attribute walk to the counter's update method.
        self._occ_update = occupancy.update
        #: lifetime credit-event counts, consumed by the credit
        #: conservation check of :mod:`repro.validate` (credits freed
        #: must equal credits acquired, net of occupancy drift).
        self.alloc_count = 0
        self.free_count = 0

    @property
    def in_use(self) -> int:
        """Entries currently held (credits consumed)."""
        return self._occ.value

    @property
    def has_free_entry(self) -> bool:
        """Whether a new miss can allocate an entry."""
        return self._occ.value < self.size

    def has_room(self, n: int) -> bool:
        """Whether ``n`` entries can be allocated at once (burst mode)."""
        return self._occ.value + n <= self.size

    def alloc(self, now: float, n: int = 1) -> None:
        """Consume ``n`` credits (entries allocated on L1 misses)."""
        if self._occ.value + n > self.size:
            raise RuntimeError("LFB allocation without a free entry")
        self.alloc_count += n
        self._occ_update(now, n)

    def free(self, now: float, n: int = 1) -> None:
        """Replenish ``n`` credits (the misses fully resolved)."""
        self.free_count += n
        self._occ_update(now, -n)

    def average_occupancy(self, now: float) -> float:
        """Time-averaged entries in use over the current window."""
        return self._occ.average(now)
