"""Compute substrate: cores, Line Fill Buffers, and C2M workloads.

The Line Fill Buffer (LFB) is the credit pool of both C2M domains
(§4.1): 10–12 entries per core on the paper's servers, fully utilized
by memory-intensive workloads because cores issue instructions two
orders of magnitude faster than the C2M-Read domain latency (§5.1) —
so any domain-latency inflation translates directly into C2M
throughput degradation.
"""

from repro.cpu.lfb import LineFillBuffer
from repro.cpu.core import Core
from repro.cpu.workloads import (
    MemoryWorkload,
    RandomAccessWorkload,
    SequentialStreamWorkload,
    c2m_read,
    c2m_read_write,
)

__all__ = [
    "LineFillBuffer",
    "Core",
    "MemoryWorkload",
    "RandomAccessWorkload",
    "SequentialStreamWorkload",
    "c2m_read",
    "c2m_read_write",
]
