"""Core issue model.

A core issues memory operations as fast as its LFB allows (§5.1: a
3 GHz core can issue every ~0.3 ns, two orders of magnitude below the
C2M-Read domain latency, so the LFB is the binding constraint for
memory-intensive workloads). Loads hold their LFB entry until data
returns (C2M-Read domain); stores additionally hold it until the
writeback is admitted by the CHA (C2M-Write domain), which makes the
measured LFB latency for the ReadWrite workload the *sum* of the two
domain latencies — exactly the property the paper exploits in §4.2.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.cpu.lfb import LineFillBuffer
from repro.cpu.workloads import OP_NT_STORE, MemoryWorkload
from repro.dram.controller import MemoryController
from repro.sim.engine import Simulator
from repro.sim.records import (
    Request,
    RequestKind,
    RequestSource,
    acquire_request,
    release_request,
)
from repro.telemetry.counters import CounterHub
from repro.uncore.kernel import uncore_enabled


class Core:
    """One core running one memory workload through its LFB."""

    def __init__(
        self,
        sim: Simulator,
        hub: CounterHub,
        core_id: int,
        mc: MemoryController,
        cha_admission: Callable[[Request], None],
        workload: MemoryWorkload,
        lfb_size: int = 12,
        t_core_to_cha: float = 10.0,
        t_data_return: float = 33.0,
        burst: int = 1,
    ):
        self._sim = sim
        self._hub = hub
        self.core_id = core_id
        self._mc = mc
        self._cha_admission = cha_admission
        self.workload = workload
        self.lfb = LineFillBuffer(
            hub.occupancy(f"core{core_id}.lfb", lfb_size),
            lfb_size,
            name=hub.scoped(f"core{core_id}.lfb"),
        )
        hub.register_pool(self.lfb)
        self.t_core_to_cha = t_core_to_cha
        self.t_data_return = t_data_return
        # Macro-event burst factor (REPRO_BURST): operations per
        # macro-request. Clamped to the LFB so a burst can allocate.
        self.burst = max(1, min(burst, lfb_size))
        # Batched train credits (REPRO_UNCORE): one weighted LFB
        # allocation per gathered train instead of one per channel
        # group. Bit-identical — same-instant acquires commute (dt=0
        # after the first, monotone high-water mark) — but cheaper.
        # Evaluated unconditionally so an invalid knob value raises.
        self._batch_credits = uncore_enabled() and self.burst > 1
        #: lookahead buffer for burst mode: an op fetched from the
        #: workload that could not join the current macro-request
        #: because its kind differs (already counted by ``on_issue``).
        self._pending_op: Optional[Tuple[int, int]] = None
        # A workload's traffic class is fixed at construction, so the
        # per-request domain stats can be bound once here instead of
        # rebuilding the f-string key on every completion.
        tc = workload.traffic_class
        self._lat_read = hub.latency(f"domain.c2m_read.{tc}")
        self._lat_write = hub.latency(f"domain.c2m_write.{tc}")
        self._lat_lfb = hub.latency(f"lfb.total.{tc}")
        #: minimum spacing between issued operations (ns); 0 disables.
        #: Models Intel MBA-style memory-bandwidth throttling, the knob
        #: hostCC [2] actuates (used by repro.ext.hostcc).
        self.throttle_gap_ns = 0.0
        self._next_issue_allowed = 0.0
        self._wake_event = None
        self.reads_completed = 0
        self.stores_completed = 0

    def start(self) -> None:
        """Begin issuing at the current simulation time."""
        self._try_issue()

    def kick(self) -> None:
        """Re-evaluate issue eligibility now (external state changed:
        new data available to a consumer workload, throttle adjusted)."""
        self._try_issue()

    # ------------------------------------------------------------------
    # Issue path
    # ------------------------------------------------------------------

    def _try_issue(self) -> None:
        if self.burst > 1:
            self._try_issue_burst()
            return
        now = self._sim.now
        while self.lfb.has_free_entry:
            if self.throttle_gap_ns > 0 and now < self._next_issue_allowed:
                self._arm_wake_at(self._next_issue_allowed)
                return
            nxt = self.workload.try_next(now)
            if nxt is None:
                self._arm_wake()
                return
            if self.throttle_gap_ns > 0:
                self._next_issue_allowed = now + self.throttle_gap_ns
            addr, op = nxt
            self.workload.on_issue(now)
            if op == OP_NT_STORE:
                self._issue_nt_store(addr, now)
            else:
                self._issue(addr, bool(op), now)

    def _try_issue_burst(self) -> None:
        """Burst-mode issue loop: gather up to ``burst`` consecutive
        same-kind operations into one macro-request (one LFB burst
        allocation, one trip through the memory system)."""
        now = self._sim.now
        workload = self.workload
        lfb = self.lfb
        while True:
            free = lfb.size - lfb.in_use
            if free <= 0:
                return  # completions re-enter via _try_issue
            if self.throttle_gap_ns > 0 and now < self._next_issue_allowed:
                self._arm_wake_at(self._next_issue_allowed)
                return
            nxt = self._pending_op
            if nxt is not None:
                self._pending_op = None
            else:
                nxt = workload.try_next(now)
                if nxt is None:
                    self._arm_wake()
                    return
                workload.on_issue(now)
            addr, op = nxt
            cap = self.burst if self.burst < free else free
            # Split the gathered lines by home memory channel:
            # consecutive lines interleave across channels, so a
            # single-channel macro-request would collapse the channel
            # parallelism the per-line simulation exploits.
            mapper = self._mc.mapper
            groups: dict = {}
            groups.setdefault(mapper.map(addr).channel, []).append(addr)
            n = 1
            while n < cap:
                follow = workload.try_next(now)
                if follow is None:
                    break
                workload.on_issue(now)
                if follow[1] != op:
                    # Kind switch: the fetched op starts the next
                    # macro-request rather than joining this one.
                    self._pending_op = follow
                    break
                groups.setdefault(mapper.map(follow[0]).channel, []).append(
                    follow[0]
                )
                n += 1
            if self.throttle_gap_ns > 0:
                self._next_issue_allowed = now + self.throttle_gap_ns * n
            if self._batch_credits:
                # One weighted pool transaction covers the whole train
                # (n == sum of channel-group sizes).
                lfb.alloc(now, n)
                for group in groups.values():
                    if op == OP_NT_STORE:
                        self._issue_nt_store(group[0], now, len(group), alloc=False)
                    else:
                        self._issue(group[0], bool(op), now, len(group), alloc=False)
            else:
                for group in groups.values():
                    if op == OP_NT_STORE:
                        self._issue_nt_store(group[0], now, len(group))
                    else:
                        self._issue(group[0], bool(op), now, len(group))

    def _arm_wake(self) -> None:
        wake = self.workload.wake_time(self._sim.now)
        if wake is None:
            return
        self._arm_wake_at(wake)

    def _arm_wake_at(self, wake: float) -> None:
        if self._wake_event is not None and not self._wake_event.cancelled:
            if self._wake_event.time <= wake:
                return
            self._wake_event.cancel()
        self._wake_event = self._sim.schedule_at_cancellable(
            max(wake, self._sim.now), self._on_wake
        )

    def _on_wake(self) -> None:
        self._wake_event = None
        self._try_issue()

    def _issue(
        self, addr: int, is_store: bool, now: float, n: int = 1,
        alloc: bool = True,
    ) -> None:
        req = acquire_request(
            RequestSource.C2M,
            RequestKind.READ,
            addr,
            requester_id=self.core_id,
            traffic_class=self.workload.traffic_class,
        )
        req.t_alloc = now
        req.tag = is_store
        req.lines = n
        if alloc:
            self.lfb.alloc(now, n)
        self._mc.assign(req)
        req.on_complete = self._on_read_serviced
        self._sim.schedule(self.t_core_to_cha, self._cha_admission, req)

    def _issue_nt_store(
        self, addr: int, now: float, n: int = 1, alloc: bool = True
    ) -> None:
        """Non-temporal (fast-string) store: no RFO read; the line goes
        straight down the write path, holding its fill/write-combining
        buffer entry until CHA admission (the C2M-Write domain)."""
        wb = acquire_request(
            RequestSource.C2M,
            RequestKind.WRITE,
            addr,
            requester_id=self.core_id,
            traffic_class=self.workload.traffic_class,
        )
        wb.t_alloc = now
        wb.lines = n
        if alloc:
            self.lfb.alloc(now, n)
        self._mc.assign(wb)
        wb.on_cha_admit = self._on_nt_store_admitted
        self._sim.schedule(self.t_core_to_cha, self._cha_admission, wb)

    def _on_nt_store_admitted(self, wb: Request) -> None:
        now = self._sim.now
        lines = wb.lines
        self._lat_write.record(now - wb.t_alloc, lines)
        wb.t_free = now
        self.lfb.free_held(now, wb.t_alloc, lines)
        self.stores_completed += lines
        if lines == 1:
            self.workload.on_complete(now, was_store=True)
        else:
            for _ in range(lines):
                self.workload.on_complete(now, was_store=True)
        # ``wb`` continues down the write path (WPQ or LLC absorption)
        # and is released there.
        self._try_issue()

    # ------------------------------------------------------------------
    # Completion path
    # ------------------------------------------------------------------

    def _on_read_serviced(self, req: Request) -> None:
        """Data left the memory channel (or the LLC); schedule the
        return hop to the core."""
        self._sim.schedule(self.t_data_return, self._on_data, req)

    def _on_data(self, req: Request) -> None:
        now = self._sim.now
        lines = req.lines
        self._lat_read.record(now - req.t_alloc, lines)
        if req.tag:  # store: the RFO completed, hand off the writeback
            self._begin_writeback(req, now)
            return
        req.t_free = now
        self.lfb.free_held(now, req.t_alloc, lines)
        self.reads_completed += lines
        self._lat_lfb.record(now - req.t_alloc, lines)
        if lines == 1:
            self.workload.on_complete(now, was_store=False)
        else:
            for _ in range(lines):
                self.workload.on_complete(now, was_store=False)
        # Last stop of a load's lifecycle: no component references it.
        release_request(req)
        self._try_issue()

    def _begin_writeback(self, read_req: Request, now: float) -> None:
        wb = acquire_request(
            RequestSource.C2M,
            RequestKind.WRITE,
            read_req.line_addr,
            requester_id=self.core_id,
            traffic_class=read_req.traffic_class,
        )
        wb.t_alloc = now
        wb.tag = read_req
        wb.lines = read_req.lines
        self._mc.assign(wb)
        wb.on_cha_admit = self._on_writeback_admitted
        self._sim.schedule(self.t_core_to_cha, self._cha_admission, wb)

    def _on_writeback_admitted(self, wb: Request) -> None:
        """CHA admitted the writeback: the C2M-Write domain ends here
        (writes are asynchronous past the CHA, §3)."""
        now = self._sim.now
        lines = wb.lines
        read_req: Request = wb.tag
        self._lat_write.record(now - wb.t_alloc, lines)
        self._lat_lfb.record(now - read_req.t_alloc, lines)
        read_req.t_free = now
        self.lfb.free_held(now, read_req.t_alloc, lines)
        self.stores_completed += lines
        if lines == 1:
            self.workload.on_complete(now, was_store=True)
        else:
            for _ in range(lines):
                self.workload.on_complete(now, was_store=True)
        # The RFO read's lifecycle ends here; the writeback itself
        # continues (WPQ or LLC absorption) and is released there.
        wb.tag = None
        release_request(read_req)
        self._try_issue()

    # ------------------------------------------------------------------

    def reset_stats(self, now: float) -> None:
        """Start a fresh measurement window (core + workload)."""
        self.reads_completed = 0
        self.stores_completed = 0
        self.workload.reset_stats(now)
