"""Core issue model.

A core issues memory operations as fast as its LFB allows (§5.1: a
3 GHz core can issue every ~0.3 ns, two orders of magnitude below the
C2M-Read domain latency, so the LFB is the binding constraint for
memory-intensive workloads). Loads hold their LFB entry until data
returns (C2M-Read domain); stores additionally hold it until the
writeback is admitted by the CHA (C2M-Write domain), which makes the
measured LFB latency for the ReadWrite workload the *sum* of the two
domain latencies — exactly the property the paper exploits in §4.2.
"""

from __future__ import annotations

from typing import Callable

from repro.cpu.lfb import LineFillBuffer
from repro.cpu.workloads import OP_NT_STORE, MemoryWorkload
from repro.dram.controller import MemoryController
from repro.sim.engine import Simulator
from repro.sim.records import Request, RequestKind, RequestSource
from repro.telemetry.counters import CounterHub


class Core:
    """One core running one memory workload through its LFB."""

    def __init__(
        self,
        sim: Simulator,
        hub: CounterHub,
        core_id: int,
        mc: MemoryController,
        cha_admission: Callable[[Request], None],
        workload: MemoryWorkload,
        lfb_size: int = 12,
        t_core_to_cha: float = 10.0,
        t_data_return: float = 33.0,
    ):
        self._sim = sim
        self._hub = hub
        self.core_id = core_id
        self._mc = mc
        self._cha_admission = cha_admission
        self.workload = workload
        self.lfb = LineFillBuffer(
            hub.occupancy(f"core{core_id}.lfb", lfb_size), lfb_size
        )
        self.t_core_to_cha = t_core_to_cha
        self.t_data_return = t_data_return
        #: minimum spacing between issued operations (ns); 0 disables.
        #: Models Intel MBA-style memory-bandwidth throttling, the knob
        #: hostCC [2] actuates (used by repro.ext.hostcc).
        self.throttle_gap_ns = 0.0
        self._next_issue_allowed = 0.0
        self._wake_event = None
        self.reads_completed = 0
        self.stores_completed = 0

    def start(self) -> None:
        """Begin issuing at the current simulation time."""
        self._try_issue()

    def kick(self) -> None:
        """Re-evaluate issue eligibility now (external state changed:
        new data available to a consumer workload, throttle adjusted)."""
        self._try_issue()

    # ------------------------------------------------------------------
    # Issue path
    # ------------------------------------------------------------------

    def _try_issue(self) -> None:
        now = self._sim.now
        while self.lfb.has_free_entry:
            if self.throttle_gap_ns > 0 and now < self._next_issue_allowed:
                self._arm_wake_at(self._next_issue_allowed)
                return
            nxt = self.workload.try_next(now)
            if nxt is None:
                self._arm_wake()
                return
            if self.throttle_gap_ns > 0:
                self._next_issue_allowed = now + self.throttle_gap_ns
            addr, op = nxt
            self.workload.on_issue(now)
            if op == OP_NT_STORE:
                self._issue_nt_store(addr, now)
            else:
                self._issue(addr, bool(op), now)

    def _arm_wake(self) -> None:
        wake = self.workload.wake_time(self._sim.now)
        if wake is None:
            return
        self._arm_wake_at(wake)

    def _arm_wake_at(self, wake: float) -> None:
        if self._wake_event is not None and not self._wake_event.cancelled:
            if self._wake_event.time <= wake:
                return
            self._wake_event.cancel()
        self._wake_event = self._sim.schedule_at_cancellable(
            max(wake, self._sim.now), self._on_wake
        )

    def _on_wake(self) -> None:
        self._wake_event = None
        self._try_issue()

    def _issue(self, addr: int, is_store: bool, now: float) -> None:
        req = Request(
            RequestSource.C2M,
            RequestKind.READ,
            addr,
            requester_id=self.core_id,
            traffic_class=self.workload.traffic_class,
        )
        req.t_alloc = now
        req.tag = is_store
        self.lfb.alloc(now)
        self._mc.assign(req)
        req.on_complete = self._on_read_serviced
        self._sim.schedule(self.t_core_to_cha, self._cha_admission, req)

    def _issue_nt_store(self, addr: int, now: float) -> None:
        """Non-temporal (fast-string) store: no RFO read; the line goes
        straight down the write path, holding its fill/write-combining
        buffer entry until CHA admission (the C2M-Write domain)."""
        wb = Request(
            RequestSource.C2M,
            RequestKind.WRITE,
            addr,
            requester_id=self.core_id,
            traffic_class=self.workload.traffic_class,
        )
        wb.t_alloc = now
        self.lfb.alloc(now)
        self._mc.assign(wb)
        wb.on_cha_admit = self._on_nt_store_admitted
        self._sim.schedule(self.t_core_to_cha, self._cha_admission, wb)

    def _on_nt_store_admitted(self, wb: Request) -> None:
        now = self._sim.now
        tc = wb.traffic_class
        self._hub.latency(f"domain.c2m_write.{tc}").record(now - wb.t_alloc)
        wb.t_free = now
        self.lfb.free(now)
        self.stores_completed += 1
        self.workload.on_complete(now, was_store=True)
        self._try_issue()

    # ------------------------------------------------------------------
    # Completion path
    # ------------------------------------------------------------------

    def _on_read_serviced(self, req: Request) -> None:
        """Data left the memory channel (or the LLC); schedule the
        return hop to the core."""
        self._sim.schedule(self.t_data_return, self._on_data, req)

    def _on_data(self, req: Request) -> None:
        now = self._sim.now
        tc = req.traffic_class
        self._hub.latency(f"domain.c2m_read.{tc}").record(now - req.t_alloc)
        if req.tag:  # store: the RFO completed, hand off the writeback
            self._begin_writeback(req, now)
            return
        req.t_free = now
        self.lfb.free(now)
        self.reads_completed += 1
        self._hub.latency(f"lfb.total.{tc}").record(now - req.t_alloc)
        self.workload.on_complete(now, was_store=False)
        self._try_issue()

    def _begin_writeback(self, read_req: Request, now: float) -> None:
        wb = Request(
            RequestSource.C2M,
            RequestKind.WRITE,
            read_req.line_addr,
            requester_id=self.core_id,
            traffic_class=read_req.traffic_class,
        )
        wb.t_alloc = now
        wb.tag = read_req
        self._mc.assign(wb)
        wb.on_cha_admit = self._on_writeback_admitted
        self._sim.schedule(self.t_core_to_cha, self._cha_admission, wb)

    def _on_writeback_admitted(self, wb: Request) -> None:
        """CHA admitted the writeback: the C2M-Write domain ends here
        (writes are asynchronous past the CHA, §3)."""
        now = self._sim.now
        tc = wb.traffic_class
        read_req: Request = wb.tag
        self._hub.latency(f"domain.c2m_write.{tc}").record(now - wb.t_alloc)
        self._hub.latency(f"lfb.total.{tc}").record(now - read_req.t_alloc)
        read_req.t_free = now
        self.lfb.free(now)
        self.stores_completed += 1
        self.workload.on_complete(now, was_store=True)
        self._try_issue()

    # ------------------------------------------------------------------

    def reset_stats(self, now: float) -> None:
        """Start a fresh measurement window (core + workload)."""
        self.reads_completed = 0
        self.stores_completed = 0
        self.workload.reset_stats(now)
