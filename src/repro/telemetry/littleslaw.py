"""Little's-law helpers (``L = O / R``), the paper's §4.2 methodology.

The paper cannot observe per-request latency on real hardware, so it
derives average latency from average occupancy ``O`` and arrival rate
``R``. The simulator *can* observe per-request latency, which makes
these helpers both a reproduction of the methodology and a target for
consistency tests (Little's-law estimates must agree with direct
timestamps in steady state).
"""

from __future__ import annotations


def littles_law_latency(avg_occupancy: float, rate_per_ns: float) -> float:
    """Average latency (ns) from average occupancy and arrival rate.

    Args:
        avg_occupancy: time-averaged number of in-flight requests.
        rate_per_ns: request arrival (== completion, in steady state)
            rate in requests per nanosecond.

    Returns:
        Average latency in nanoseconds; 0.0 when the rate is zero
        (an idle system has no meaningful latency sample).

    Raises:
        ValueError: on negative occupancy or negative rate — both are
            accounting bugs (a queue cannot hold fewer than zero
            requests), not meaningful inputs.
    """
    if avg_occupancy < 0:
        raise ValueError(f"negative occupancy {avg_occupancy}; accounting bug")
    if rate_per_ns < 0:
        raise ValueError(f"negative rate {rate_per_ns}; accounting bug")
    if rate_per_ns == 0:
        return 0.0
    return avg_occupancy / rate_per_ns


def littles_law_occupancy(latency_ns: float, rate_per_ns: float) -> float:
    """Average occupancy implied by a latency and an arrival rate."""
    if latency_ns < 0 or rate_per_ns < 0:
        raise ValueError("latency and rate must be non-negative")
    return latency_ns * rate_per_ns
