"""Measurement methodology from §4.2 of the paper.

The paper programs Intel uncore performance counters to aggregate
queue/buffer occupancy every clock cycle and samples them in software,
then derives average latency with Little's law (``L = O / R``). This
package provides the simulated equivalent: time-weighted occupancy
integrals, arrival/completion counters, windowed samplers, and
per-bank load statistics (bank-deviation CDF of Fig. 7d).
"""

from repro.telemetry.counters import (
    ClassStats,
    CounterHub,
    LatencyStat,
    OccupancyCounter,
    RateCounter,
)
from repro.telemetry.littleslaw import littles_law_latency, littles_law_occupancy
from repro.telemetry.bankstats import BankLoadSampler, bank_deviation_cdf

__all__ = [
    "ClassStats",
    "CounterHub",
    "LatencyStat",
    "OccupancyCounter",
    "RateCounter",
    "littles_law_latency",
    "littles_law_occupancy",
    "BankLoadSampler",
    "bank_deviation_cdf",
]
