"""Simulated uncore performance counters.

Each counter mirrors a capability of the Intel uncore PMU that the
paper relies on (§4.2):

* :class:`OccupancyCounter` — per-cycle occupancy aggregation for a
  queue or buffer (RPQ, WPQ, LFB, IIO buffers, CHA pools).
* :class:`RateCounter` — request arrival counting with umask-style
  classification by traffic class.
* :class:`LatencyStat` — direct per-request latency accumulation. Real
  hardware cannot observe this; the simulator can, which lets the test
  suite validate the paper's Little's-law methodology against ground
  truth.
* :class:`CounterHub` — registry + reset for a measurement window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.credit import CreditPool


class OccupancyCounter:
    """Time-weighted occupancy integral for a queue or buffer.

    ``update`` must be called with the simulation time *before* the
    occupancy changes. The average occupancy over a window is
    ``integral / elapsed`` which is exactly what the hardware's
    per-cycle aggregation computes.

    Also tracks the fraction of time the tracked resource sits at a
    given capacity (used for the "fraction of time WPQ is full"
    measurements of Figs. 7f / 8e).
    """

    __slots__ = (
        "capacity",
        "value",
        "_integral",
        "_full_time",
        "_last_t",
        "_window_start",
        "max_seen",
    )

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity
        self.value = 0
        self._integral = 0.0
        self._full_time = 0.0
        self._last_t = 0.0
        self._window_start = 0.0
        self.max_seen = 0

    def update(self, now: float, delta: int) -> None:
        """Apply ``delta`` to the occupancy at time ``now``."""
        # _accumulate is inlined here: this is the hottest telemetry
        # call in the simulator (every credit alloc/free lands here).
        value = self.value
        capacity = self.capacity
        dt = now - self._last_t
        if dt > 0:
            self._integral += value * dt
            if capacity is not None and value >= capacity:
                self._full_time += dt
            self._last_t = now
        value += delta
        self.value = value
        if value < 0:
            raise ValueError("occupancy went negative; accounting bug")
        if capacity is not None and value > capacity:
            raise ValueError(
                f"occupancy {value} exceeds capacity {capacity}"
            )
        if value > self.max_seen:
            self.max_seen = value

    def _accumulate(self, now: float) -> None:
        dt = now - self._last_t
        if dt > 0:
            self._integral += self.value * dt
            if self.capacity is not None and self.value >= self.capacity:
                self._full_time += dt
            self._last_t = now

    def reset(self, now: float) -> None:
        """Start a fresh measurement window at ``now`` (occupancy kept)."""
        self._integral = 0.0
        self._full_time = 0.0
        self._last_t = now
        self._window_start = now
        self.max_seen = self.value

    def average(self, now: float) -> float:
        """Average occupancy over the current window."""
        self._accumulate(now)
        elapsed = now - self._window_start
        if elapsed <= 0:
            return float(self.value)
        return self._integral / elapsed

    def full_fraction(self, now: float) -> float:
        """Fraction of the window during which the resource was full."""
        if self.capacity is None:
            return 0.0
        self._accumulate(now)
        elapsed = now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self._full_time / elapsed


class RateCounter:
    """Event counter with arrival-rate derivation over a window."""

    __slots__ = ("count", "_window_start")

    def __init__(self) -> None:
        self.count = 0
        self._window_start = 0.0

    def increment(self, n: int = 1) -> None:
        """Count ``n`` events."""
        self.count += n

    def reset(self, now: float) -> None:
        """Start a fresh window."""
        self.count = 0
        self._window_start = now

    def rate(self, now: float) -> float:
        """Arrivals per nanosecond over the current window."""
        elapsed = now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self.count / elapsed


class LatencyStat:
    """Direct latency accumulation (sum + count + max)."""

    __slots__ = ("total", "count", "max_seen")

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0
        self.max_seen = 0.0

    def record(self, latency: float, n: int = 1) -> None:
        """Accumulate one latency sample (``n`` identical samples for
        a burst-mode macro-request standing for ``n`` cachelines)."""
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        if n == 1:
            self.total += latency
            self.count += 1
        else:
            self.total += latency * n
            self.count += n
        if latency > self.max_seen:
            self.max_seen = latency

    def reset(self, now: float = 0.0) -> None:
        """Discard accumulated samples."""
        self.total = 0.0
        self.count = 0
        self.max_seen = 0.0

    @property
    def average(self) -> float:
        """Mean of recorded samples (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count


class ClassStats:
    """Per-traffic-class bundle: arrivals, completions, latency.

    Mirrors the paper's use of CHA umask/opcode filtering to classify
    requests by source (CPU/peripheral) and type (read/write).
    """

    __slots__ = ("arrivals", "completions", "latency")

    def __init__(self) -> None:
        self.arrivals = RateCounter()
        self.completions = RateCounter()
        self.latency = LatencyStat()

    def reset(self, now: float) -> None:
        """Start a fresh window for every sub-counter."""
        self.arrivals.reset(now)
        self.completions.reset(now)
        self.latency.reset(now)


class CounterHub:
    """Registry of all counters in a host, reset as one unit.

    The experiment runner resets the hub after warmup so every derived
    metric covers exactly the measurement window.

    A non-empty ``namespace`` prefixes every registered name with
    ``"<namespace>."`` at get-or-create time, so several hosts composed
    into one cluster keep globally-distinguishable counter and pool
    names (``h0.iio.write``, ``h1.iio.write``, ...). The default empty
    namespace leaves every name byte-identical to the historical
    layout — single-host fingerprints cannot move. Collection code
    that parses registry keys by prefix uses :meth:`scoped` /
    :meth:`local` to translate between bare and namespaced names.
    """

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._prefix = f"{namespace}." if namespace else ""
        self._occupancy: Dict[str, OccupancyCounter] = {}
        self._rates: Dict[str, RateCounter] = {}
        self._latencies: Dict[str, LatencyStat] = {}
        self._classes: Dict[str, ClassStats] = {}
        self._pools: Dict[str, "CreditPool"] = {}
        self._window_start = 0.0

    @property
    def window_start(self) -> float:
        """When the current measurement window began."""
        return self._window_start

    def scoped(self, name: str) -> str:
        """The registry key for a bare name (namespace applied)."""
        return self._prefix + name

    def local(self, name: str) -> str:
        """The bare name for a registry key (namespace stripped)."""
        if self._prefix and name.startswith(self._prefix):
            return name[len(self._prefix):]
        return name

    def occupancy(self, name: str, capacity: Optional[int] = None) -> OccupancyCounter:
        """Get-or-create the named occupancy counter."""
        name = self._prefix + name
        counter = self._occupancy.get(name)
        if counter is None:
            counter = OccupancyCounter(capacity)
            self._occupancy[name] = counter
        return counter

    def pool(
        self,
        name: str,
        capacity: Optional[int] = None,
        soft: bool = False,
    ) -> "CreditPool":
        """Get-or-create the named credit pool.

        The pool's occupancy counter is registered under the same name
        so existing counter-based telemetry keeps working; ``soft``
        pools get an uncapped counter (their occupancy may transiently
        exceed the admission threshold, e.g. the CHA write stage under
        DDIO eviction writebacks).
        """
        # Imported lazily: the credit runtime builds on these counters,
        # so a module-level import would be circular.
        from repro.sim.credit import CreditPool

        scoped = self._prefix + name
        pool = self._pools.get(scoped)
        if pool is None:
            occ = self.occupancy(name, None if soft else capacity)
            pool = CreditPool(scoped, occ, capacity, soft=soft)
            self._pools[scoped] = pool
        return pool

    def register_pool(self, pool: "CreditPool") -> None:
        """Adopt an externally-constructed pool (e.g. a per-core LFB)
        into the hub's window-reset cycle."""
        self._pools[pool.name] = pool

    def rate(self, name: str) -> RateCounter:
        """Get-or-create the named rate counter."""
        name = self._prefix + name
        counter = self._rates.get(name)
        if counter is None:
            counter = RateCounter()
            self._rates[name] = counter
        return counter

    def latency(self, name: str) -> LatencyStat:
        """Get-or-create the named latency stat."""
        name = self._prefix + name
        stat = self._latencies.get(name)
        if stat is None:
            stat = LatencyStat()
            self._latencies[name] = stat
        return stat

    def traffic_class(self, name: str) -> ClassStats:
        """Get-or-create the per-class counter bundle."""
        name = self._prefix + name
        stats = self._classes.get(name)
        if stats is None:
            stats = ClassStats()
            self._classes[name] = stats
        return stats

    def names(self) -> Iterable[str]:
        """All registered counter names."""
        yield from self._occupancy
        yield from self._rates
        yield from self._latencies
        yield from self._classes

    def reset(self, now: float) -> None:
        """Start a fresh measurement window for every counter."""
        self._window_start = now
        for counter in self._occupancy.values():
            counter.reset(now)
        for counter in self._rates.values():
            counter.reset(now)
        for stat in self._latencies.values():
            stat.reset(now)
        for stats in self._classes.values():
            stats.reset(now)
        # Pool occupancy counters are reset through the occupancy
        # registry above; the hold-time stats live on the pools. The
        # lifetime alloc/free counts are deliberately *not* reset —
        # the validator and the DomainTracker snapshot them at window
        # start instead (credit conservation spans windows).
        for pool in self._pools.values():
            pool.latency.reset(now)
