"""Per-bank load sampling and the bank-deviation CDF (Fig. 7d).

The paper measures DRAM bank load imbalance by sampling, every 1000
read requests, the number of requests mapped to each bank, and defines
*bank deviation* of a sample as the ratio of the maximally loaded
bank's load to the average load across banks. The CDF of bank
deviation across samples quantifies load imbalance — one of the two
root causes (with row misses) of queueing at the memory controller
before bandwidth saturation (§5.1).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence

try:
    import numpy as np
except ImportError:  # minimal interpreters (e.g. the 3.10 floor check)
    np = None  # type: ignore[assignment]


class BankLoadSampler:
    """Samples per-bank request counts every ``sample_every`` requests.

    The paper's measurement uses a dedicated core busy-polling MC
    counters for 4 banks of one DIMM; the simulator tracks all banks of
    one channel which is strictly more information with the same
    semantics.
    """

    def __init__(self, n_banks: int, sample_every: int = 1000):
        if n_banks <= 0:
            raise ValueError("n_banks must be positive")
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.n_banks = n_banks
        self.sample_every = sample_every
        #: per-bank request counts for the sample in progress. Public
        #: (and zeroed *in place*) so the SoA channel kernel can inline
        #: :meth:`record` while holding a direct reference to the list.
        self.counts = [0] * n_banks
        self.seen = 0
        self.deviations: List[float] = []

    def record(self, bank_id: int) -> None:
        """Record one request mapped to ``bank_id``."""
        self.counts[bank_id] += 1
        self.seen += 1
        if self.seen >= self.sample_every:
            self._flush()

    def _flush(self) -> None:
        counts = self.counts
        total = sum(counts)
        if total > 0:
            mean = total / self.n_banks
            self.deviations.append(max(counts) / mean)
        for b in range(self.n_banks):
            counts[b] = 0
        self.seen = 0

    def reset(self) -> None:
        """Drop partial counts and collected samples.

        Unlike the occupancy counters, the sampler keeps no time state
        — counts are per-request — so (unlike every other telemetry
        ``reset``) there is no ``now`` parameter to honor.
        """
        counts = self.counts
        for b in range(self.n_banks):
            counts[b] = 0
        self.seen = 0
        self.deviations = []

    def fraction_at_least(self, threshold: float) -> float:
        """Fraction of samples whose bank deviation is >= ``threshold``."""
        if not self.deviations:
            return 0.0
        hits = sum(1 for d in self.deviations if d >= threshold)
        return hits / len(self.deviations)


def bank_deviation_cdf(
    deviations: Sequence[float], grid: Sequence[float] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of bank deviation samples.

    Returns ``(x, F)`` arrays suitable for plotting against Fig. 7d.
    ``grid`` defaults to the sorted sample values. Without numpy the
    same values come back as plain lists.
    """
    if np is None:
        data = sorted(float(d) for d in deviations)
        n = len(data)
        if n == 0:
            return [], []  # type: ignore[return-value]
        if grid is None:
            return data, [k / n for k in range(1, n + 1)]  # type: ignore[return-value]
        x = [float(g) for g in grid]
        return x, [bisect_right(data, g) / n for g in x]  # type: ignore[return-value]
    data = np.asarray(sorted(deviations), dtype=float)
    if data.size == 0:
        return np.array([]), np.array([])
    if grid is None:
        x = data
        f = np.arange(1, data.size + 1) / data.size
        return x, f
    x = np.asarray(grid, dtype=float)
    f = np.searchsorted(data, x, side="right") / data.size
    return x, f
