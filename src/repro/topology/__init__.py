"""Host assembly: wire cores, CHA, LLC, MC, IIO, and PCIe devices into
a runnable host (Fig. 4), with configuration presets for the paper's
two testbeds (Table 1).
"""

from repro.topology.host import Host, RunResult
from repro.topology.presets import HostConfig, cascade_lake, ice_lake

__all__ = ["Host", "RunResult", "HostConfig", "cascade_lake", "ice_lake"]
