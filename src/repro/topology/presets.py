"""Host configurations, including the paper's two testbeds (Table 1).

+---------+--------------------+----------------+
|         | Ice Lake           | Cascade Lake   |
+---------+--------------------+----------------+
| CPU     | Xeon Platinum 8362 | Xeon Gold 6234 |
| Cores   | 32 @ 2.8 GHz       | 8 @ 3.3 GHz    |
| LLC     | 48 MB              | 24 MB          |
| DRAM    | 4 x 3200 MHz DDR4  | 2 x 2933 DDR4  |
| DRAM BW | 102.4 GB/s         | 46.9 GB/s      |
| PCIe    | 8 x PM173X NVMe    | 4 x P5800X     |
| PCIe BW | 32 GB/s            | 16 GB/s        |
+---------+--------------------+----------------+

All bandwidth figures are theoretical maxima; the configured *device
rate* reflects what the paper's devices actually sustain (~112 Gb/s on
Cascade Lake, §2; ~28 GB/s on Ice Lake).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dram.timing import DramTiming, ddr4_timing


@dataclass(frozen=True)
class HostConfig:
    """Every tunable of the simulated host, with paper-calibrated defaults."""

    name: str
    # Compute
    n_cores: int
    core_freq_ghz: float
    lfb_size: int
    prefetch_enabled: bool = False
    prefetch_degree: int = 8
    # Memory interconnect
    dram_speed_mt_s: int = 2933
    n_channels: int = 2
    n_banks: int = 32
    lines_per_row: int = 128
    rpq_size: int = 48
    wpq_size: int = 48
    wpq_hi_fraction: float = 0.7
    wpq_lo_fraction: float = 0.2
    min_write_drain: int = 10_000  # effectively: drain to the low watermark
    min_read_batch: int = 96
    # §7 future-work MC isolation policy: serve peripheral writes ahead
    # of core writebacks in write drains (off = paper's baseline MC).
    p2m_write_priority: bool = False
    xor_bank_hash: bool = True
    bank_sample_every: int = 1000
    # Per-bank bandwidth regulation + bank partitioning ("Per-Bank
    # Memory Bandwidth Regulation", PAPERS.md). Off by default — the
    # paper's baseline MC has neither. ``bank_reg_share`` is the
    # fraction of the channel line rate (1 / t_trans) one bank's token
    # bucket refills at; ``bank_reg_burst_lines`` is the bucket depth.
    # ``bank_partition_classes`` > 1 confines each traffic class to a
    # contiguous ``n_banks // N`` bank slice (0 = no partitioning).
    # ``REPRO_BANK_REG`` force-toggles ``bank_reg_enabled`` over this.
    bank_reg_enabled: bool = False
    bank_reg_share: float = 0.5
    bank_reg_burst_lines: int = 64
    bank_partition_classes: int = 0
    # Physical page placement: ordinary 4 KB pages are scattered across
    # DRAM, which drives the row-miss and bank-imbalance root causes of
    # §5.1. Disable for hugepage/physically-contiguous ablations.
    page_scatter: bool = True
    page_size_bytes: int = 4096
    # Processor interconnect
    cha_write_capacity: int = 256
    cha_read_capacity: int = 96
    t_core_to_cha: float = 10.0
    t_cha_to_mc: float = 15.0
    t_data_return: float = 33.0
    t_llc_hit: float = 22.0
    # LLC / DDIO
    llc_size_bytes: int = 24 << 20
    llc_ways: int = 12
    ddio_ways: int = 2
    llc_mode: str = "bypass"  # "bypass" (quadrants, §2.2) or "full" (apps)
    ddio_enabled: bool = False
    # Peripheral interconnect
    iio_write_entries: int = 92
    iio_read_entries: int = 200
    t_iio_to_cha: float = 40.0
    pcie_bandwidth: float = 16.0  # bytes/ns == GB/s, theoretical
    pcie_t_prop: float = 240.0
    device_rate: float = 14.0  # sustained device media/engine rate

    @property
    def dram_timing(self) -> DramTiming:
        """DDR4 timing derived from the configured transfer rate."""
        return ddr4_timing(self.dram_speed_mt_s)

    @property
    def theoretical_mem_bandwidth(self) -> float:
        """Peak memory bandwidth (bytes/ns == GB/s)."""
        return self.n_channels * self.dram_timing.channel_bandwidth_bytes_per_ns

    @property
    def effective_lfb_size(self) -> int:
        """LFB credits per core, including the prefetch approximation.

        The paper finds prefetching shifts absolute throughput but not
        degradation ratios (§2.2); we model it as additional in-flight
        line-fill capacity for the streaming workloads.
        """
        if self.prefetch_enabled:
            return self.lfb_size + self.prefetch_degree
        return self.lfb_size

    def with_overrides(self, **kwargs) -> "HostConfig":
        """Return a modified copy (ablation/bench convenience)."""
        return replace(self, **kwargs)


def cascade_lake(**overrides) -> HostConfig:
    """The paper's Cascade Lake testbed (Xeon Gold 6234)."""
    config = HostConfig(
        name="cascade-lake",
        n_cores=8,
        core_freq_ghz=3.3,
        lfb_size=10,
        dram_speed_mt_s=2933,
        n_channels=2,
        llc_size_bytes=24 << 20,
        pcie_bandwidth=16.0,
        device_rate=14.0,
    )
    if overrides:
        config = config.with_overrides(**overrides)
    return config


def ice_lake(**overrides) -> HostConfig:
    """The paper's Ice Lake testbed (Xeon Platinum 8362)."""
    config = HostConfig(
        name="ice-lake",
        n_cores=32,
        core_freq_ghz=2.8,
        lfb_size=12,
        dram_speed_mt_s=3200,
        n_channels=4,
        llc_size_bytes=48 << 20,
        pcie_bandwidth=32.0,
        device_rate=28.0,
        cha_write_capacity=512,
        cha_read_capacity=192,
        iio_write_entries=184,
        iio_read_entries=400,
    )
    if overrides:
        config = config.with_overrides(**overrides)
    return config
