"""Rack fabric model: links, switch ports, ECN marking, per-hop PFC.

The paper measured two physical servers on one 100 Gb/s link; ROADMAP
item 1 turns :class:`~repro.topology.host.Host` into a composable node
so a modelled rack can run experiments the authors couldn't. This
module supplies the network between the hosts:

* :class:`Link` — a point-to-point wire with bandwidth (serialization)
  and propagation delay, the same two-term model as
  :class:`~repro.pcie.link.PcieLink`.
* :class:`SwitchPort` — one output-queued switch port: a FIFO of
  cachelines draining onto its link, ECN marking above a queue-depth
  threshold (the DCTCP congestion signal), and per-hop PFC — when the
  queue crosses the pause threshold every upstream feeder is paused,
  which is exactly the head-of-line coupling real PFC exhibits.
* :class:`FabricSender` — a paced injector standing for a NIC's
  transmit pipeline, pausable by first-hop PFC, rate-settable by a
  congestion-control loop.
* :class:`LeafSpineFabric` — hosts round-robined onto leaf switches,
  leaves fully meshed to spines (the standard 2-tier Clos / EFraS
  embedding shape); flow paths share ports, so cross-host contention
  composes in the switch queues.

The transfer unit is one cacheline (64 B), matching the rest of the
simulator: a "packet" is its line count, and per-line service at link
rate reproduces store-and-forward serialization without introducing a
second granularity.

Conservation discipline: every port maintains lifetime enqueue /
forward / drop counters next to its window stats, and
:meth:`LeafSpineFabric.check_conservation` asserts
``enqueued == forwarded + dropped + queued`` on every port — the
fabric analogue of the credit-conservation probe in
:mod:`repro.validate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.records import CACHELINE_BYTES


class Link:
    """A unidirectional point-to-point wire.

    ``send()`` serializes one payload at the link bandwidth behind any
    payload still on the wire and returns the far-end arrival time
    (serialization end + propagation). Same busy-cursor model as the
    PCIe link, one direction per instance (fabric links are modelled
    per-port, so each direction belongs to its sending port).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bytes_per_ns: float,
        t_prop: float = 500.0,
    ):
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        if t_prop < 0:
            raise ValueError("propagation delay must be non-negative")
        self._sim = sim
        self.bandwidth = bandwidth_bytes_per_ns
        self.t_prop = t_prop
        self._free = 0.0
        self.bytes_sent = 0

    def next_free(self) -> float:
        """Earliest time a new payload can start serializing."""
        free = self._free
        now = self._sim.now
        return free if free > now else now

    def send(self, payload_bytes: int) -> float:
        """Serialize a payload; returns the far-end arrival time."""
        start = self.next_free()
        self._free = start + payload_bytes / self.bandwidth
        self.bytes_sent += payload_bytes
        return self._free + self.t_prop

    def reset_stats(self, now: float = 0.0) -> None:
        """Zero the byte counter (serialization state is kept)."""
        self.bytes_sent = 0


class FabricLine:
    """One cacheline in flight through the fabric.

    ``deliver(now, marked)`` is the terminal callback at the egress
    edge (the receiving NIC); ``marked`` carries the CE codepoint set
    by any congested port along the path.
    """

    __slots__ = ("deliver", "marked")

    def __init__(self, deliver: Callable[[float, bool], None]):
        self.deliver = deliver
        self.marked = False


class SwitchPort:
    """One output-queued switch port: FIFO + ECN + per-hop PFC.

    Lines enqueue from upstream (a sender or another port), drain one
    per serialization slot onto the port's :class:`Link`, and hand off
    to ``downstream`` (the next port's :meth:`enqueue`, or the egress
    adapter) at wire arrival time.

    * **ECN** — a line enqueued while the queue holds at least
      ``ecn_threshold`` lines is CE-marked (DCTCP's switch behaviour).
    * **PFC** — with ``pfc_enabled``, crossing ``pause_hi`` queued
      lines pauses every registered upstream (their drains stop;
      senders stop pacing) until the queue drains to ``pause_lo`` —
      pause propagates hop-by-hop because a paused upstream port's own
      queue then grows past its own threshold.
    * **Loss** — without PFC, lines arriving at a full queue are
      dropped and counted (DCTCP's loss signal under extreme load).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        link: Link,
        queue_capacity: int = 8192,
        ecn_threshold: Optional[int] = None,
        pfc_enabled: bool = True,
        pause_threshold: float = 0.75,
        resume_threshold: float = 0.25,
    ):
        if queue_capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self._sim = sim
        self.name = name
        self.link = link
        self.queue_capacity = queue_capacity
        self.ecn_threshold = ecn_threshold
        self.pfc_enabled = pfc_enabled
        self.pause_hi = max(1, int(queue_capacity * pause_threshold))
        self.pause_lo = max(0, int(queue_capacity * resume_threshold))
        self.downstream: Optional[Callable[[FabricLine], None]] = None
        #: upstream feeders to PFC-pause; anything exposing
        #: ``set_downstream_paused(flag)`` (ports, senders).
        self._upstreams: List[object] = []
        self._queue: List[FabricLine] = []
        #: cursor into _queue (popleft without deque, keeps pickling
        #: and repr simple; compacted on drain)
        self._head = 0
        self._draining = False
        self.paused_downstream = False
        self.pausing_upstream = False
        # -- window stats (reset_stats) --
        self.lines_enqueued = 0
        self.lines_forwarded = 0
        self.lines_marked = 0
        self.lines_dropped = 0
        self.max_depth = 0
        self.paused_time = 0.0
        self._pause_started = 0.0
        self._window_start = 0.0
        # -- lifetime conservation counters (never reset) --
        self.total_enqueued = 0
        self.total_forwarded = 0
        self.total_dropped = 0

    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Lines currently queued."""
        return len(self._queue) - self._head

    def add_upstream(self, upstream: object) -> None:
        """Register a feeder to pause when this queue congests."""
        if all(existing is not upstream for existing in self._upstreams):
            self._upstreams.append(upstream)

    def enqueue(self, line: FabricLine) -> None:
        """One line arrives from upstream."""
        now = self._sim.now
        depth = self.depth
        self.lines_enqueued += 1
        self.total_enqueued += 1
        if depth >= self.queue_capacity:
            # PFC upstream should prevent this; without it (lossy
            # fabric) the line is dropped — DCTCP's loss signal.
            self.lines_dropped += 1
            self.total_dropped += 1
            return
        if self.ecn_threshold is not None and depth >= self.ecn_threshold:
            if not line.marked:
                line.marked = True
                self.lines_marked += 1
        self._queue.append(line)
        depth += 1
        if depth > self.max_depth:
            self.max_depth = depth
        self._update_pfc(now)
        if not self._draining and not self.paused_downstream:
            self._draining = True
            self._sim.schedule(0.0, self._drain)

    def set_downstream_paused(self, flag: bool) -> None:
        """PFC from the next hop: stop/restart this port's drain."""
        if self.paused_downstream == flag:
            return
        self.paused_downstream = flag
        if not flag and not self._draining and self.depth > 0:
            self._draining = True
            self._sim.schedule(0.0, self._drain)

    def _drain(self) -> None:
        if self.paused_downstream or self.depth == 0:
            self._draining = False
            return
        queue = self._queue
        line = queue[self._head]
        self._head += 1
        if self._head > 64 and self._head * 2 >= len(queue):
            del queue[: self._head]
            self._head = 0
        now = self._sim.now
        arrival = self.link.send(CACHELINE_BYTES)
        self.lines_forwarded += 1
        self.total_forwarded += 1
        self._update_pfc(now)
        self._sim.schedule_at(arrival, self._deliver, line)
        # Next serialization slot: when the wire is free again.
        self._sim.schedule_at(self.link.next_free(), self._drain)

    def _deliver(self, line: FabricLine) -> None:
        self.downstream(line)

    def _update_pfc(self, now: float) -> None:
        if not self.pfc_enabled:
            return
        depth = self.depth
        if not self.pausing_upstream and depth >= self.pause_hi:
            self.pausing_upstream = True
            self._pause_started = now
            for upstream in self._upstreams:
                upstream.set_downstream_paused(True)
        elif self.pausing_upstream and depth <= self.pause_lo:
            self.pausing_upstream = False
            self.paused_time += now - self._pause_started
            for upstream in self._upstreams:
                upstream.set_downstream_paused(False)

    # ------------------------------------------------------------------

    def pause_fraction(self, now: float) -> float:
        """Fraction of the window this port paused its upstreams."""
        total = self.paused_time
        if self.pausing_upstream:
            total += now - self._pause_started
        elapsed = now - self._window_start
        if elapsed <= 0:
            return 0.0
        return total / elapsed

    def reset_stats(self, now: float) -> None:
        """Start a fresh measurement window (queue state is kept)."""
        self.lines_enqueued = 0
        self.lines_forwarded = 0
        self.lines_marked = 0
        self.lines_dropped = 0
        self.max_depth = self.depth
        self.paused_time = 0.0
        self._window_start = now
        if self.pausing_upstream:
            self._pause_started = now
        self.link.reset_stats(now)


class FabricSender:
    """A paced line injector: one flow's transmit side onto the fabric.

    Stands for the wire-facing half of the sending NIC: lines leave at
    ``rate`` bytes/ns toward the first-hop port, stop while that port
    asserts PFC, and the rate is adjustable mid-run (the DCTCP control
    loop's actuator). Lossless by construction — a paused sender
    defers, it never drops.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        first_hop: SwitchPort,
        deliver: Callable[[float, bool], None],
        rate: float,
    ):
        self._sim = sim
        self.name = name
        self.first_hop = first_hop
        self.deliver = deliver
        self.rate = rate
        self.lines_sent = 0
        self.total_sent = 0
        self.paused = False
        self.paused_time = 0.0
        self._pause_started = 0.0
        self._window_start = 0.0
        self._pending = False
        first_hop.add_upstream(self)

    def start(self) -> None:
        """Begin pacing (idempotent)."""
        if self.rate > 0 and not self._pending:
            self._schedule()

    def set_rate(self, rate: float) -> None:
        """Adjust the pacing rate (congestion-control actuator)."""
        self.rate = rate
        if rate > 0 and not self._pending:
            self._schedule()

    def set_downstream_paused(self, flag: bool) -> None:
        """First-hop PFC: stop/restart pacing."""
        if self.paused == flag:
            return
        now = self._sim.now
        self.paused = flag
        if flag:
            self._pause_started = now
        else:
            self.paused_time += now - self._pause_started
            if self.rate > 0 and not self._pending:
                self._schedule()

    def _schedule(self) -> None:
        self._pending = True
        self._sim.schedule(CACHELINE_BYTES / self.rate, self._on_pace)

    def _on_pace(self) -> None:
        self._pending = False
        if not self.paused:
            self.lines_sent += 1
            self.total_sent += 1
            self.first_hop.enqueue(FabricLine(self.deliver))
        if self.rate > 0 and not self.paused:
            self._schedule()

    def pause_fraction(self, now: float) -> float:
        """Fraction of the window first-hop PFC held this sender."""
        total = self.paused_time
        if self.paused:
            total += now - self._pause_started
        elapsed = now - self._window_start
        if elapsed <= 0:
            return 0.0
        return total / elapsed

    def reset_stats(self, now: float) -> None:
        """Start a fresh measurement window."""
        self.lines_sent = 0
        self.paused_time = 0.0
        self._window_start = now
        if self.paused:
            self._pause_started = now


@dataclass
class PortStats:
    """One port's window measurements (ClusterResult payload)."""

    lines_enqueued: int
    lines_forwarded: int
    lines_marked: int
    lines_dropped: int
    max_depth: int
    depth_now: int
    pause_fraction: float


@dataclass
class FabricStats:
    """Window stats for every port plus fabric-wide totals."""

    ports: Dict[str, PortStats] = field(default_factory=dict)
    lines_forwarded: int = 0
    lines_marked: int = 0
    lines_dropped: int = 0
    pause_time_ports: int = 0

    @property
    def mark_fraction(self) -> float:
        """CE-marked share of forwarded lines."""
        if self.lines_forwarded == 0:
            return 0.0
        return self.lines_marked / self.lines_forwarded


class LeafSpineFabric:
    """A 2-tier Clos: hosts on leaves, leaves meshed to spines.

    Hosts are assigned round-robin to ``n_leaves`` leaf switches. A
    flow from host ``s`` to host ``d`` traverses

    * ``leaf_up``: leaf(s)'s uplink port toward the flow's spine
      (spine chosen by source leaf, so one leaf's flows to different
      destinations share its uplink queue),
    * ``spine_down``: the spine's downlink port toward leaf(d),
    * ``leaf_down``: leaf(d)'s edge port toward host ``d`` — the
      incast bottleneck, fed by every spine (and by same-leaf
      senders, which skip the spine hop entirely).

    Ports are created on first use, so an experiment only pays for the
    paths its flows exercise; every created port appears in
    :meth:`stats` and the conservation walk.
    """

    def __init__(
        self,
        sim: Simulator,
        n_hosts: int,
        n_leaves: Optional[int] = None,
        n_spines: int = 1,
        link_bandwidth: float = 12.5,
        t_prop: float = 500.0,
        queue_capacity: int = 8192,
        ecn_threshold: Optional[int] = None,
        pfc_enabled: bool = True,
    ):
        if n_hosts <= 0:
            raise ValueError("a fabric needs at least one host")
        if n_spines <= 0:
            raise ValueError("a fabric needs at least one spine")
        self._sim = sim
        self.n_hosts = n_hosts
        self.n_leaves = max(1, n_leaves if n_leaves is not None else (n_hosts + 3) // 4)
        self.n_spines = n_spines
        self.link_bandwidth = link_bandwidth
        self.t_prop = t_prop
        self.queue_capacity = queue_capacity
        self.ecn_threshold = ecn_threshold
        self.pfc_enabled = pfc_enabled
        self._ports: Dict[str, SwitchPort] = {}
        self.senders: List[FabricSender] = []
        #: per-host terminal delivery (set by Cluster when a host's NIC
        #: attaches); keyed by host index.
        self._edges: Dict[int, Callable[[float, bool], None]] = {}

    # ------------------------------------------------------------------

    def leaf_of(self, host: int) -> int:
        """The leaf switch a host hangs off."""
        return host % self.n_leaves

    def _port(self, name: str) -> SwitchPort:
        port = self._ports.get(name)
        if port is None:
            port = SwitchPort(
                self._sim,
                name,
                Link(self._sim, self.link_bandwidth, self.t_prop),
                queue_capacity=self.queue_capacity,
                ecn_threshold=self.ecn_threshold,
                pfc_enabled=self.pfc_enabled,
            )
            self._ports[name] = port
        return port

    def attach_edge(
        self, host: int, deliver: Callable[[float, bool], None]
    ) -> None:
        """Record a host's ingress adapter (actual delivery is
        per-line — see :class:`_EdgeDelivery`)."""
        self._edges[host] = deliver

    def path(self, src: int, dst: int) -> List[SwitchPort]:
        """Get-or-create the port chain for a ``src → dst`` flow."""
        for host in (src, dst):
            if not 0 <= host < self.n_hosts:
                raise ValueError(f"host index {host} out of range")
        if src == dst:
            raise ValueError("a flow needs two distinct hosts")
        if dst not in self._edges:
            raise ValueError(f"host {dst} has no attached ingress edge")
        leaf_s = self.leaf_of(src)
        leaf_d = self.leaf_of(dst)
        edge = self._port(f"leaf{leaf_d}.down.h{dst}")
        edge.downstream = _EdgeDelivery(self._sim)
        if leaf_s == leaf_d:
            return [edge]
        spine = leaf_s % self.n_spines
        up = self._port(f"leaf{leaf_s}.up.s{spine}")
        down = self._port(f"spine{spine}.down.leaf{leaf_d}")
        up.downstream = down.enqueue
        down.downstream = edge.enqueue
        down.add_upstream(up)
        edge.add_upstream(down)
        return [up, down, edge]

    def connect(
        self,
        src: int,
        dst: int,
        deliver: Callable[[float, bool], None],
        rate: float,
        name: Optional[str] = None,
    ) -> FabricSender:
        """Create a paced ``src → dst`` flow; returns its sender.

        ``deliver`` is the terminal callback on the destination host
        (normally :meth:`repro.pcie.nic.Nic.fabric_deliver`, attached
        via :meth:`attach_edge` by the cluster).
        """
        self.attach_edge(dst, deliver)
        hops = self.path(src, dst)
        sender = FabricSender(
            self._sim,
            name or f"h{src}->h{dst}",
            hops[0],
            deliver,
            rate,
        )
        self.senders.append(sender)
        return sender

    def edge_port(self, dst: int) -> Optional[SwitchPort]:
        """The last-hop port toward a host, if any flow created it."""
        return self._ports.get(f"leaf{self.leaf_of(dst)}.down.h{dst}")

    # ------------------------------------------------------------------

    def reset_stats(self, now: float) -> None:
        """Start a fresh measurement window on every port and sender."""
        for port in self._ports.values():
            port.reset_stats(now)
        for sender in self.senders:
            sender.reset_stats(now)

    def stats(self, now: float) -> FabricStats:
        """Window stats for every port, plus fabric totals."""
        stats = FabricStats()
        for name, port in sorted(self._ports.items()):
            stats.ports[name] = PortStats(
                lines_enqueued=port.lines_enqueued,
                lines_forwarded=port.lines_forwarded,
                lines_marked=port.lines_marked,
                lines_dropped=port.lines_dropped,
                max_depth=port.max_depth,
                depth_now=port.depth,
                pause_fraction=port.pause_fraction(now),
            )
            stats.lines_forwarded += port.lines_forwarded
            stats.lines_marked += port.lines_marked
            stats.lines_dropped += port.lines_dropped
            if port.pausing_upstream or port.paused_time > 0:
                stats.pause_time_ports += 1
        return stats

    def check_conservation(self) -> int:
        """Assert ``enqueued == forwarded + dropped + queued`` on every
        port (lifetime counters, so window resets cannot hide a leak).
        Returns the number of checks performed."""
        checks = 0
        for name, port in self._ports.items():
            expected = port.total_forwarded + port.total_dropped + port.depth
            if port.total_enqueued != expected:
                raise AssertionError(
                    f"fabric port {name} leaks lines: enqueued "
                    f"{port.total_enqueued} != forwarded {port.total_forwarded}"
                    f" + dropped {port.total_dropped} + queued {port.depth}"
                )
            checks += 1
        return checks


class _EdgeDelivery:
    """Terminal hop adapter: unwrap a FabricLine at the host edge.

    Delivery is per-line (``line.deliver`` was bound by the flow's
    sender), so several flows into one host — each with its own
    receive NIC — share the edge port's queue yet land in their own
    buffers.
    """

    __slots__ = ("_sim",)

    def __init__(self, sim: Simulator):
        self._sim = sim

    def __call__(self, line: FabricLine) -> None:
        line.deliver(self._sim.now, line.marked)


def gbps(rate_gbps: float) -> float:
    """Convert Gb/s to the simulator's bytes/ns unit."""
    if rate_gbps < 0:
        raise ValueError("rate must be non-negative")
    return rate_gbps / 8.0


#: ports-per-path tuple alias used by tests
PathPorts = Tuple[SwitchPort, ...]
