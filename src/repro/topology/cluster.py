"""N hosts on one shared clock, coupled by a leaf/spine fabric.

:class:`Cluster` is the rack-scale driver ROADMAP item 1 asks for: it
resolves one frozen :class:`~repro.sim.knobs.KnobSet`, builds one
event engine, and constructs N :class:`~repro.topology.host.Host`
nodes onto it — each with its own counter/pool namespace (``h0``,
``h1``, ...) so every registry name stays globally unique — plus a
:class:`~repro.topology.fabric.LeafSpineFabric` between them. Flows
(:meth:`add_flow`) pace cachelines from a source host through shared
switch queues into the destination host's NIC, where they become
ordinary P2M DMA writes; ECN marks picked up in congested queues feed
the DCTCP control loop, and PFC pause propagates switch-by-switch back
to the sender. Cross-host fabric contention therefore composes with
per-host domain contention — the experiment class the paper's two
physical servers could not express.

Determinism contract: a 1-host cluster with no flows drives the exact
event sequence of ``Host.run`` (same warmup/measure windows on the
same engine), so its RunResult is **bit-identical** to a bare host run
— enforced by ``tests/test_cluster.py`` and the ``cluster_check.py``
CI gate next to the fig03 fingerprints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.pcie.nic import Nic
from repro.sim.engine import make_simulator
from repro.sim.knobs import KnobSet
from repro.sim.records import CACHELINE_BYTES
from repro.topology.fabric import (
    FabricSender,
    FabricStats,
    LeafSpineFabric,
    gbps,
)
from repro.topology.host import Host, RunResult
from repro.topology.presets import HostConfig
from repro.validate import ValidatingSimulator


class _FlowDelivery:
    """Per-flow terminal callback: count the line, hand it to the NIC.

    Several incast flows share one receive NIC, so the NIC's own
    delivery counter cannot attribute goodput per flow; this adapter
    rides in front of :meth:`~repro.pcie.nic.Nic.fabric_deliver` and
    keeps a window counter per flow (slotted + bound-method wiring, so
    cluster checkpoints stay picklable).
    """

    __slots__ = ("nic", "lines_delivered")

    def __init__(self, nic: Nic):
        self.nic = nic
        self.lines_delivered = 0

    def __call__(self, now: float, marked: bool = False) -> None:
        self.lines_delivered += 1
        self.nic.fabric_deliver(now, marked)

    def reset_stats(self) -> None:
        self.lines_delivered = 0


@dataclass
class ClusterFlow:
    """One paced src → dst flow and its endpoints."""

    src: int
    dst: int
    sender: FabricSender
    nic: Nic
    delivery: _FlowDelivery

    def delivered_bytes_per_ns(self, elapsed_ns: float) -> float:
        """This flow's receive-side goodput over a window (bytes/ns)."""
        return self.delivery.lines_delivered * CACHELINE_BYTES / elapsed_ns


@dataclass
class ClusterResult:
    """Per-host RunResults plus the fabric's window stats."""

    hosts: List[RunResult]
    fabric: FabricStats
    elapsed_ns: float
    #: fabric line-conservation checks that passed at window end
    fabric_checks: int = 0
    #: per-flow receive goodput (bytes/ns), in add_flow order
    flow_goodput: List[float] = field(default_factory=list)

    def host(self, index: int) -> RunResult:
        """One host's RunResult."""
        return self.hosts[index]

    @property
    def total_mem_bw(self) -> float:
        """Summed memory bandwidth across hosts (bytes/ns)."""
        return sum(result.mem_bw_total for result in self.hosts)


class Cluster:
    """N namespaced hosts + a leaf/spine fabric on one engine.

    Typical use::

        cluster = Cluster(cascade_lake(), n_hosts=2)
        cluster.hosts[1].add_stream_cores(2)          # dst-side C2M app
        add_rdma_write_flow(cluster, src=0, dst=1)    # net/rdma.py
        result = cluster.run(warmup_ns=20_000, measure_ns=80_000)

    ``link_gbps`` / ``t_prop_ns`` size every fabric link;
    ``ecn_threshold_lines`` enables CE marking (DCTCP fabrics),
    ``pfc_enabled`` hop-by-hop pause (RDMA fabrics). Queue capacity is
    in cachelines.
    """

    def __init__(
        self,
        config: HostConfig,
        n_hosts: int,
        seed: int = 1,
        validate: Optional[bool] = None,
        n_leaves: Optional[int] = None,
        n_spines: int = 1,
        link_gbps: float = 100.0,
        t_prop_ns: float = 500.0,
        queue_capacity_lines: int = 8192,
        ecn_threshold_lines: Optional[int] = None,
        pfc_enabled: bool = True,
        knobs: Optional[KnobSet] = None,
    ):
        if n_hosts <= 0:
            raise ValueError("a cluster needs at least one host")
        self.config = config
        #: one knob resolution for the whole rack: every host is built
        #: from the same frozen set, so two hosts on the shared clock
        #: cannot observe different knob values (see repro.sim.knobs).
        self.knobs = KnobSet.resolve() if knobs is None else knobs
        self.validate = self.knobs.validate if validate is None else bool(validate)
        self.sim = ValidatingSimulator() if self.validate else make_simulator()
        self.hosts: List[Host] = [
            Host(
                config,
                seed=seed + index,
                validate=self.validate,
                sim=self.sim,
                namespace=f"h{index}",
                knobs=self.knobs,
            )
            for index in range(n_hosts)
        ]
        self.fabric = LeafSpineFabric(
            self.sim,
            n_hosts,
            n_leaves=n_leaves,
            n_spines=n_spines,
            link_bandwidth=gbps(link_gbps),
            t_prop=t_prop_ns,
            queue_capacity=queue_capacity_lines,
            ecn_threshold=ecn_threshold_lines,
            pfc_enabled=pfc_enabled,
        )
        self.flows: List[ClusterFlow] = []
        self._started = False

    @property
    def n_hosts(self) -> int:
        """Hosts in the cluster."""
        return len(self.hosts)

    # ------------------------------------------------------------------
    # Flow wiring
    # ------------------------------------------------------------------

    def add_flow(
        self,
        src: int,
        dst: int,
        rate_gbps: float,
        buffer_bytes: int = 2 << 20,
        pfc_enabled: bool = True,
        nic_name: str = "nic",
    ) -> ClusterFlow:
        """Open a paced ``src → dst`` flow through the fabric.

        The destination host gets (or reuses) a fabric-fed NIC named
        ``nic_name`` — several flows to one host share it, which is
        exactly incast: they contend first in the last-hop switch
        queue, then in the NIC buffer, then for the host's IIO
        credits. With ``pfc_enabled`` the NIC's buffer pause stops the
        last-hop port's drain (and the congestion ripples upstream
        port by port); without it the fabric relies on ECN/loss.
        """
        dst_host = self.hosts[dst]
        nic = dst_host.devices.get(nic_name)
        if nic is None:
            nic = dst_host.add_nic(
                ingress_rate=0.0,
                buffer_bytes=buffer_bytes,
                pfc_enabled=pfc_enabled,
                name=nic_name,
            )
        elif not isinstance(nic, Nic):
            raise ValueError(f"device {nic_name!r} on host {dst} is not a NIC")
        delivery = _FlowDelivery(nic)
        sender = self.fabric.connect(src, dst, delivery, gbps(rate_gbps))
        edge = self.fabric.edge_port(dst)
        if pfc_enabled and edge is not None:
            # Hop-by-hop PFC's last link: the NIC buffer pauses the
            # edge port's drain, not just its own ingress process.
            nic.rx.on_pause_change = edge.set_downstream_paused
        flow = ClusterFlow(
            src=src, dst=dst, sender=sender, nic=nic, delivery=delivery
        )
        self.flows.append(flow)
        if self._started:
            sender.start()
        return flow

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start every host and every fabric sender (idempotent)."""
        if self._started:
            return
        self._started = True
        for host in self.hosts:
            host.start()
        for sender in self.fabric.senders:
            sender.start()

    def run(
        self, warmup_ns: float = 20_000.0, measure_ns: float = 80_000.0
    ) -> ClusterResult:
        """Warm up, measure, and collect per-host + fabric results.

        The cluster owns the clock: it advances the shared engine
        through both windows and opens/closes each host's measurement
        window via the extracted
        :meth:`~repro.topology.host.Host.begin_measurement` /
        :meth:`~repro.topology.host.Host.finalize_measurement` hooks.
        """
        self.start()
        sim = self.sim
        sim.run_until(sim.now + warmup_ns)
        for host in self.hosts:
            host.begin_measurement()
        self.fabric.reset_stats(sim.now)
        for flow in self.flows:
            flow.delivery.reset_stats()
        t_start = sim.now
        wall_before = time.perf_counter()
        sim.run_until(t_start + measure_ns)
        wall_s = time.perf_counter() - wall_before
        results = [host.finalize_measurement(wall_s) for host in self.hosts]
        elapsed = sim.now - t_start
        checks = self.fabric.check_conservation()
        return ClusterResult(
            hosts=results,
            fabric=self.fabric.stats(sim.now),
            elapsed_ns=elapsed,
            fabric_checks=checks,
            flow_goodput=[
                flow.delivered_bytes_per_ns(elapsed) for flow in self.flows
            ],
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Snapshot the whole rack (hosts + fabric + shared engine)
        into one checksummed blob with the knob fingerprint."""
        from repro.sim import checkpoint

        checkpoint.save_cluster(self, path)

    @classmethod
    def restore(cls, path) -> "Cluster":
        """Rebuild a live cluster from :meth:`save`'s blob (refuses a
        knob mismatch, restores the shared Request pool)."""
        from repro.sim import checkpoint

        return checkpoint.load_cluster(path)
