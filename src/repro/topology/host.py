"""Host assembly and measurement runs.

:class:`Host` wires the substrates into the architecture of Fig. 4 —
cores (LFB) → CHA (LLC) → MC (banks/channels) plus IIO ← PCIe ←
devices — runs warmup + measurement windows, and returns a
:class:`RunResult` with every metric the paper derives from uncore
counters, plus ground-truth per-request latencies the real hardware
cannot observe.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.domain import Domain, DomainKind
from repro.cpu.core import Core
from repro.cpu.workloads import MemoryWorkload, SequentialStreamWorkload
from repro.dram.controller import MemoryController
from repro.dram.region import ContiguousRegion, PagedRegion, Region
from repro.pcie.device import DmaDevice, SequentialDmaWorkload
from repro.pcie.link import PcieLink
from repro.pcie.nic import Nic
from repro.pcie.nvme import NvmeDevice
from repro.sim import checkpoint, watchdog
from repro.sim.credit import DomainSnapshot, DomainTracker
from repro.sim.engine import SimClock, Simulator, make_simulator
from repro.sim.knobs import KnobSet
from repro.sim.records import CACHELINE_BYTES, RequestKind
from repro.telemetry.counters import CounterHub
from repro.topology.presets import HostConfig
from repro.uncore.cha import CHA
from repro.uncore.iio import IIO
from repro.uncore.kernel import UncoreKernel
from repro.uncore.llc import LastLevelCache
from repro.validate import ValidatingSimulator, Validator


@dataclass
class RunResult:
    """Measurements from one window, keyed the way the paper reports them."""

    config: HostConfig
    elapsed_ns: float
    #: achieved memory bandwidth, bytes/ns (== GB/s), total and per class
    mem_bw_total: float
    mem_bw_by_class: Dict[str, float]
    #: per-class DRAM line counts
    lines_read_by_class: Dict[str, int]
    lines_written_by_class: Dict[str, int]
    #: average domain latencies (direct per-request measurement), by
    #: "<domain>.<traffic class>", e.g. "c2m_read.c2m"
    domain_latency: Dict[str, float]
    #: Little's-law cross-checks and occupancies
    lfb_avg_occupancy: Dict[str, float]
    iio_write_avg_occupancy: float
    iio_read_avg_occupancy: float
    iio_write_max_occupancy: int
    #: CHA metrics
    cha_admission_delay: Dict[str, float]
    cha_write_waiting_avg: float
    cha_pool_avg: float
    cha_inflight_p2m_reads_avg: float
    #: MC metrics (aggregated over channels)
    rpq_avg_occupancy: float
    wpq_avg_occupancy: float
    wpq_full_fraction: float
    lines_read: int
    lines_written: int
    switches_wtr: int
    switches_rtw: int
    act_read: int
    act_write: int
    pre_conflict_read: int
    pre_conflict_write: int
    row_miss_ratio: Dict[str, float]
    bank_deviations: List[float]
    #: app-level metrics
    workload_ops: Dict[str, int]
    device_lines: Dict[str, int]
    device_ios: Dict[str, int]
    extra: Dict[str, float] = field(default_factory=dict)
    #: engine performance over the measurement window (diagnostics;
    #: ``events_per_sec`` is wall-clock simulator throughput)
    events_processed: int = 0
    sim_wall_s: float = 0.0
    events_per_sec: float = 0.0
    #: invariant checks passed by :mod:`repro.validate` over this
    #: window; 0 when validation was off (the default)
    invariant_checks: int = 0
    #: live per-domain (C, occupancy, L, T) snapshots keyed by domain
    #: kind value ("c2m_read", ...), from the shared credit runtime
    domain_snapshots: Dict[str, DomainSnapshot] = field(default_factory=dict)

    # ------------------------- derived helpers -------------------------

    @property
    def mem_bw_utilization(self) -> float:
        """Fraction of the theoretical memory bandwidth in use."""
        return self.mem_bw_total / self.config.theoretical_mem_bandwidth

    def class_bandwidth(self, traffic_class: str) -> float:
        """Memory bandwidth of one traffic class (bytes/ns == GB/s)."""
        return self.mem_bw_by_class.get(traffic_class, 0.0)

    def class_read_rate(self, traffic_class: str) -> float:
        """DRAM read lines per ns for a traffic class."""
        return self.lines_read_by_class.get(traffic_class, 0) / self.elapsed_ns

    def class_write_rate(self, traffic_class: str) -> float:
        """DRAM write lines per ns for a traffic class."""
        return self.lines_written_by_class.get(traffic_class, 0) / self.elapsed_ns

    def latency(self, domain: str, traffic_class: str = "c2m") -> float:
        """Average domain latency, e.g. ``latency("c2m_read")``."""
        return self.domain_latency.get(f"{domain}.{traffic_class}", 0.0)

    def ops_rate(self, workload_name: str) -> float:
        """Completed workload operations per ns."""
        return self.workload_ops.get(workload_name, 0) / self.elapsed_ns

    def device_bandwidth(self, device_name: str) -> float:
        """Device data rate in bytes/ns (== GB/s)."""
        return self.device_lines.get(device_name, 0) * CACHELINE_BYTES / self.elapsed_ns

    def switches(self) -> int:
        """Total read/write mode transitions over the window."""
        return self.switches_wtr + self.switches_rtw

    def domain(self, kind: str) -> Optional[DomainSnapshot]:
        """One domain's live snapshot, e.g. ``domain("c2m_read")``."""
        return self.domain_snapshots.get(kind)

    def domains(self) -> Dict[str, Domain]:
        """Measured :class:`~repro.core.domain.Domain` objects built
        from the live snapshots (credits, latency and occupancy all
        come from the run rather than hand-entered constants). Domains
        that saw no completions this window are omitted — they have no
        measured latency to build on."""
        return {
            kind: Domain.from_snapshot(snapshot)
            for kind, snapshot in self.domain_snapshots.items()
            if snapshot.credits > 0 and snapshot.latency_ns > 0
        }


class Host:
    """A single-socket host built from a :class:`HostConfig`.

    Typical use::

        host = Host(cascade_lake())
        host.add_stream_cores(2, store_fraction=0.0)       # C2M-Read
        host.add_nvme(kind=RequestKind.WRITE)              # P2M-Write
        result = host.run(warmup_ns=20_000, measure_ns=80_000)
    """

    #: generous guard gap between allocated regions (lines)
    _REGION_GUARD = 1 << 20

    def __init__(
        self,
        config: HostConfig,
        seed: int = 1,
        validate: Optional[bool] = None,
        burst: Optional[int] = None,
        sim: Optional[Simulator] = None,
        namespace: str = "",
        knobs: Optional[KnobSet] = None,
    ):
        self.config = config
        #: the frozen ``REPRO_*`` knob resolution this host was built
        #: under. A :class:`~repro.topology.cluster.Cluster` resolves
        #: one set and passes it to every host, so two hosts on the
        #: same clock cannot observe different knob values.
        self.knobs = KnobSet.resolve() if knobs is None else knobs
        #: macro-event burst factor (lines per macro-request); ``None``
        #: defers to the ``REPRO_BURST`` environment knob. 1 (the
        #: default) is the exact per-line simulation.
        self.burst = self.knobs.burst if burst is None else max(1, int(burst))
        #: runtime invariant checking (repro.validate): ``None``
        #: defers to the ``REPRO_VALIDATE`` environment knob.
        self.validate = self.knobs.validate if validate is None else bool(validate)
        #: counter/pool namespace (empty for a standalone host); a
        #: cluster gives each host a distinct prefix ("h0", "h1", ...)
        #: so every registry name stays globally unique on the shared
        #: engine.
        self.namespace = namespace
        #: the event engine: private by default, injected when several
        #: hosts compose onto one shared clock. An injecting driver
        #: that wants invariant checking must inject a
        #: :class:`~repro.validate.ValidatingSimulator` itself.
        if sim is not None:
            self.sim = sim
        else:
            self.sim = ValidatingSimulator() if self.validate else make_simulator()
        self._validator: Optional[Validator] = Validator() if self.validate else None
        self.hub = CounterHub(namespace)
        self._rng = random.Random(seed)
        self._region_cursor = 0
        #: DDIO last mile: ``REPRO_DDIO`` force-overrides the config
        #: (forcing it on models the cache even for ``llc_mode="bypass"``
        #: configs, so any experiment can be re-run with DDIO).
        forced_ddio = self.knobs.ddio
        self.ddio_enabled = (
            config.ddio_enabled if forced_ddio is None else forced_ddio
        )
        #: per-bank regulation: ``REPRO_BANK_REG`` force-overrides.
        forced_reg = self.knobs.bank_reg
        bank_reg_on = (
            config.bank_reg_enabled if forced_reg is None else forced_reg
        )
        self.bank_reg_enabled = bank_reg_on
        self.mc = MemoryController(
            self.sim,
            self.hub,
            timing=config.dram_timing,
            n_channels=config.n_channels,
            n_banks=config.n_banks,
            lines_per_row=config.lines_per_row,
            rpq_size=config.rpq_size,
            wpq_size=config.wpq_size,
            wpq_hi_fraction=config.wpq_hi_fraction,
            wpq_lo_fraction=config.wpq_lo_fraction,
            min_write_drain=config.min_write_drain,
            min_read_batch=config.min_read_batch,
            p2m_write_priority=config.p2m_write_priority,
            xor_bank_hash=config.xor_bank_hash,
            bank_sample_every=config.bank_sample_every,
            bank_reg_rate=(
                config.bank_reg_share / config.dram_timing.t_trans
                if bank_reg_on
                else None
            ),
            bank_reg_burst_lines=config.bank_reg_burst_lines,
            bank_partition_classes=config.bank_partition_classes,
        )
        if config.llc_mode not in ("full", "bypass"):
            raise ValueError(f"unknown llc_mode {config.llc_mode!r}")
        self.llc: Optional[LastLevelCache] = None
        if config.llc_mode == "full" or self.ddio_enabled:
            self.llc = LastLevelCache(
                config.llc_size_bytes, config.llc_ways, config.ddio_ways
            )
        self.cha = CHA(
            self.sim,
            self.hub,
            self.mc,
            write_capacity=config.cha_write_capacity,
            read_capacity=config.cha_read_capacity,
            t_cha_to_mc=config.t_cha_to_mc,
            t_llc_hit=config.t_llc_hit,
            llc=self.llc,
            ddio_enabled=self.ddio_enabled,
        )
        self.iio = IIO(
            self.sim,
            self.hub,
            write_entries=config.iio_write_entries,
            read_entries=config.iio_read_entries,
            t_iio_to_cha=config.t_iio_to_cha,
        )
        #: SoA uncore kernel (REPRO_UNCORE): rebinds the CHA/IIO hot
        #: path onto fused array code. Constructed before any callback
        #: wiring below so every later ``self.cha.request_admission``
        #: reference picks up the kernel's bound method.
        self.uncore_kernel = None
        if self.knobs.uncore:
            self.uncore_kernel = UncoreKernel(self.cha, self.iio)
        self.iio.cha_admission = self.cha.request_admission
        #: the Fig. 5 domain registry over the shared credit runtime;
        #: per-core LFB pools join in :meth:`add_core`, and the
        #: auxiliary pools (CHA stages, RPQ/WPQ) are tracked so the
        #: validator walks every pool through one conservation probe.
        self.domains = DomainTracker(self.hub)
        self.domains.register(DomainKind.P2M_WRITE, self.iio.write_pool)
        self.domains.register(DomainKind.P2M_READ, self.iio.read_pool)
        self.domains.track(self.cha.read_stage)
        self.domains.track(self.cha.write_waiting)
        for channel in self.mc.channels:
            self.domains.track(channel.rpq_pool)
            self.domains.track(channel.wpq_pool)
        #: the fifth domain: each DMA-tagged LLC line holds one
        #: ``llc.ddio`` credit from install to eviction, so C is the
        #: DDIO slice in cachelines and L the DMA-line residency time.
        #: Soft because DDIO hits convert resident core lines beyond
        #: the slice's admission budget. Registered (and the cache
        #: prewarmed into the paper's steady state) *after* the tracker
        #: exists so the prewarm's credit events are accounted.
        self.llc_ddio_pool = None
        if self.llc is not None and self.ddio_enabled:
            pool = self.hub.pool(
                "llc.ddio",
                max(1, self.llc.ddio_capacity_bytes // CACHELINE_BYTES),
                soft=True,
            )
            self.llc_ddio_pool = pool
            self.domains.register(DomainKind.LLC_DDIO, pool)
            self.llc.attach_ddio_pool(
                pool,
                clock=SimClock(self.sim),
                latency=self.hub.latency("domain.llc_ddio.dma"),
            )
            # Steady state: the DDIO ways are already full of dirty
            # DMA lines (see LastLevelCache.prewarm_ddio).
            self.llc.prewarm_ddio(base_line=1 << 40)
        self.link = PcieLink(
            self.sim,
            bandwidth_bytes_per_ns=config.pcie_bandwidth,
            t_prop=config.pcie_t_prop,
        )
        self.cores: List[Core] = []
        self.devices: Dict[str, DmaDevice] = {}
        self._workloads: Dict[str, List[MemoryWorkload]] = {}
        self._started = False
        #: mid-run cursor set by checkpoint restore (see Host.restore)
        self._resume_state: Optional[checkpoint.RunState] = None
        #: open-window cursor (begin_measurement/finalize_measurement)
        self._window_t_start = 0.0
        self._window_events_before = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def alloc_region(self, lines: int) -> Region:
        """Allocate a private buffer (cacheline granularity).

        With ``config.page_scatter`` (the default, matching ordinary
        4 KB paging) the buffer is backed by pseudo-randomly placed
        page frames; otherwise it is physically contiguous with a
        pseudo-random sub-row offset so bank walks still decorrelate.
        """
        if self.config.page_scatter:
            page_lines = self.config.page_size_bytes // CACHELINE_BYTES
            return PagedRegion(
                lines, page_lines=page_lines, seed=self._rng.randrange(1 << 30)
            )
        span = self.config.lines_per_row * self.config.n_banks * self.config.n_channels
        offset = self._rng.randrange(span)
        start = self._region_cursor + offset
        self._region_cursor = start + lines + self._REGION_GUARD
        return ContiguousRegion(start, lines)

    def add_core(
        self,
        workload: MemoryWorkload,
        name: Optional[str] = None,
        lfb_size: Optional[int] = None,
    ) -> Core:
        """Attach one core running ``workload``.

        ``lfb_size`` overrides the per-core in-flight capacity, e.g.
        for sequential kernels whose hardware prefetching effectively
        widens it (the data copy of the DCTCP receive path).
        """
        core = Core(
            self.sim,
            self.hub,
            core_id=len(self.cores),
            mc=self.mc,
            cha_admission=self.cha.request_admission,
            workload=workload,
            lfb_size=lfb_size or self.config.effective_lfb_size,
            t_core_to_cha=self.config.t_core_to_cha,
            t_data_return=self.config.t_data_return,
            burst=self.burst,
        )
        self.cores.append(core)
        # The LFB backs both C2M domains: loads hold an entry until
        # data returns (C2M-Read), stores until CHA admission
        # (C2M-Write) — one pool, two Fig. 5 domains.
        self.domains.register(DomainKind.C2M_READ, core.lfb)
        self.domains.register(DomainKind.C2M_WRITE, core.lfb)
        key = name or workload.traffic_class
        self._workloads.setdefault(key, []).append(workload)
        return core

    def add_stream_cores(
        self,
        n_cores: int,
        store_fraction: float = 0.0,
        traffic_class: str = "c2m",
        region_bytes: int = 1 << 30,
    ) -> List[Core]:
        """Attach ``n_cores`` STREAM-style cores (§2.2 C2M workloads)."""
        cores = []
        region_lines = region_bytes // CACHELINE_BYTES
        for _ in range(n_cores):
            workload = SequentialStreamWorkload(
                self.alloc_region(region_lines),
                store_fraction=store_fraction,
                traffic_class=traffic_class,
            )
            cores.append(self.add_core(workload))
        return cores

    def add_nvme(
        self,
        kind: RequestKind = RequestKind.WRITE,
        io_size_bytes: int = 8 << 20,
        queue_depth: int = 8,
        device_rate: Optional[float] = None,
        t_io_gap: float = 0.0,
        region_bytes: int = 4 << 30,
        name: str = "nvme",
        traffic_class: str = "p2m",
    ) -> NvmeDevice:
        """Attach an NVMe device (aggregate of the testbed's SSDs).

        ``kind`` is the *memory-level* direction: WRITE models storage
        reads (FIO read test), READ models storage writes.
        """
        region_lines = region_bytes // CACHELINE_BYTES
        device = NvmeDevice(
            self.sim,
            self.hub,
            self.iio,
            self.link,
            self.mc,
            region=self.alloc_region(region_lines),
            io_size_bytes=io_size_bytes,
            queue_depth=queue_depth,
            kind=kind,
            device_rate=(
                device_rate if device_rate is not None else self.config.device_rate
            ),
            t_io_gap=t_io_gap,
            traffic_class=traffic_class,
            burst=self.burst,
        )
        device.t_host_return = self.config.t_iio_to_cha + self.config.t_cha_to_mc
        self.devices[name] = device
        return device

    def add_raw_dma(
        self,
        kind: RequestKind,
        device_rate: Optional[float] = None,
        region_bytes: int = 4 << 30,
        name: str = "dma",
        traffic_class: str = "p2m",
    ) -> DmaDevice:
        """Attach an open-loop sequential DMA generator (§2.2 P2M)."""
        region_lines = region_bytes // CACHELINE_BYTES
        workload = SequentialDmaWorkload(self.alloc_region(region_lines), kind)
        device = DmaDevice(
            self.sim,
            self.hub,
            self.iio,
            self.link,
            self.mc,
            workload,
            device_rate=(
                device_rate if device_rate is not None else self.config.device_rate
            ),
            t_host_return=self.config.t_iio_to_cha + self.config.t_cha_to_mc,
            traffic_class=traffic_class,
            burst=self.burst,
        )
        self.devices[name] = device
        return device

    def add_nic(
        self,
        ingress_rate: float = 0.0,
        egress_read_rate: float = 0.0,
        buffer_bytes: int = 2 << 20,
        pfc_enabled: bool = True,
        region_bytes: int = 4 << 30,
        name: str = "nic",
        traffic_class: str = "p2m",
    ) -> Nic:
        """Attach a NIC (RDMA / DCTCP case studies)."""
        region_lines = region_bytes // CACHELINE_BYTES
        nic = Nic(
            self.sim,
            self.hub,
            self.iio,
            self.link,
            self.mc,
            region=self.alloc_region(region_lines),
            ingress_rate=ingress_rate,
            egress_read_rate=egress_read_rate,
            buffer_bytes=buffer_bytes,
            pfc_enabled=pfc_enabled,
            traffic_class=traffic_class,
            burst=self.burst,
        )
        nic.t_host_return = self.config.t_iio_to_cha + self.config.t_cha_to_mc
        self.devices[name] = nic
        return nic

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start all cores and devices (idempotent)."""
        if self._started:
            return
        self._started = True
        if self._validator is not None:
            self._validator.install(self)
        for core in self.cores:
            core.start()
        for device in self.devices.values():
            device.start()

    def reset_measurement(self) -> None:
        """Start a fresh measurement window at the current time."""
        now = self.sim.now
        self.hub.reset(now)
        self.domains.begin_window(now)
        self.mc.reset_stats(now)
        for core in self.cores:
            core.reset_stats(now)
        for device in self.devices.values():
            device.reset_stats(now)
        if self.llc is not None:
            self.llc.reset_stats()
        self.link.reset_stats(now)
        if self.uncore_kernel is not None:
            self.uncore_kernel.reset_window()

    def begin_measurement(self) -> None:
        """Open a measurement window at the current simulation time.

        Resets every window counter, begins the validator window, and
        records the window cursor (start time + engine event count).
        Extracted from the run loop so an external driver that owns
        the clock — a :class:`~repro.topology.cluster.Cluster` — can
        open per-host windows itself and advance the shared engine
        between them.
        """
        self.reset_measurement()
        if self._validator is not None:
            self._validator.begin_window(self)
        self._window_t_start = self.sim.now
        self._window_events_before = self.sim.events_processed

    def finalize_measurement(self, wall_s: float = 0.0) -> RunResult:
        """Close the window opened by :meth:`begin_measurement`.

        Collects every metric over the window, fills in the engine
        diagnostics from the recorded cursor, and runs the validator's
        end-of-window probe walk. ``wall_s`` is the wall-clock time an
        external driver spent advancing the engine (0 leaves the
        events/s diagnostic unset).
        """
        result = self.collect(self.sim.now - self._window_t_start)
        result.events_processed = (
            self.sim.events_processed - self._window_events_before
        )
        result.sim_wall_s = wall_s
        result.events_per_sec = (
            result.events_processed / wall_s if wall_s > 0 else 0.0
        )
        if self._validator is not None:
            result.invariant_checks = self._validator.end_window(self)
        return result

    def run(self, warmup_ns: float = 20_000.0, measure_ns: float = 80_000.0) -> RunResult:
        """Warm up, measure, and collect results.

        When a checkpoint plan is active (``REPRO_CKPT`` /
        ``REPRO_CKPT_PATH`` / a supervisor-provided per-task path) the
        windows are driven in event chunks with periodic snapshots,
        SIGTERM checkpoints-and-stops, and an existing checkpoint for
        this exact run resumes instead of recomputing;
        ``REPRO_WATCHDOG`` adds livelock detection. All of it is
        result-invisible: the chunked drive dispatches the identical
        event sequence, so the RunResult stays bit-identical.
        """
        plan = checkpoint.active_plan()
        if plan is not None:
            key = checkpoint.run_key(self, warmup_ns, measure_ns)
            resumed = checkpoint.try_resume(plan.path, key)
            if resumed is not None:
                return resumed._run_phases(resumed._resume_state, plan)
        else:
            key = ""
        self.start()
        state = checkpoint.RunState(
            run_key=key,
            warmup_ns=warmup_ns,
            measure_ns=measure_ns,
            phase="warmup",
            t_end=self.sim.now + warmup_ns,
        )
        return self._run_phases(state, plan)

    @classmethod
    def restore(cls, path) -> "Host":
        """Rebuild a live host from a checkpoint file.

        Verifies the blob (checksum + knob fingerprint), reinstalls
        module-level state (the Request free list) and — when
        ``REPRO_VALIDATE=1`` — runs the structural post-restore
        invariant walk. The returned host carries the interrupted
        run's cursor: finish it with :meth:`resume_run` for a
        RunResult bit-identical to the uninterrupted run.
        """
        payload = checkpoint.load(path)
        return checkpoint.restore_payload(payload)

    def resume_run(self) -> RunResult:
        """Finish an interrupted :meth:`run` after :meth:`restore`."""
        state = self._resume_state
        if state is None:
            raise RuntimeError("nothing to resume: host was not restored mid-run")
        return self._run_phases(state, checkpoint.active_plan())

    def _run_phases(
        self,
        state: "checkpoint.RunState",
        plan: Optional["checkpoint.CheckpointPlan"],
    ) -> RunResult:
        """Drive the warmup/measure windows recorded in ``state``.

        Entered fresh (phase ``warmup``, nothing run yet) or resumed
        (either phase, clock mid-window): the state cursor carries
        everything needed to continue exactly where the interrupted
        run stopped.
        """
        wd = watchdog.from_env()
        # The SIGTERM-to-checkpoint handler covers both windows (and
        # the gap between them); the flag it sets is only acted on at
        # chunk boundaries inside _drive.
        with checkpoint.sigterm_to_checkpoint(enabled=plan is not None):
            if state.phase == "warmup":
                if state.t_end > self.sim.now:
                    self._drive(state.t_end, plan, wd, state)
                self.begin_measurement()
                state.phase = "measure"
                state.t_start = self._window_t_start
                state.events_before = self._window_events_before
                state.t_end = state.t_start + state.measure_ns
            else:
                # Resumed mid-measure: the window cursor lives in the
                # restored state, not on the freshly-rebuilt host.
                self._window_t_start = state.t_start
                self._window_events_before = state.events_before
            wall_before = time.perf_counter()
            self._drive(state.t_end, plan, wd, state)
            wall_s = time.perf_counter() - wall_before
        result = self.finalize_measurement(wall_s)
        if plan is not None:
            plan.discard()
        self._resume_state = None
        return result

    def _drive(
        self,
        t_end: float,
        plan: Optional["checkpoint.CheckpointPlan"],
        wd: Optional["watchdog.Watchdog"],
        state: "checkpoint.RunState",
    ) -> None:
        """Advance the clock to ``t_end``, plain or in event chunks.

        With neither a checkpoint plan nor a watchdog this is exactly
        ``sim.run_until`` — zero overhead on the default path. The
        chunked path dispatches the identical event sequence (the
        engine re-files partially-dispatched buckets in submission
        order), probing for snapshots, preemption and stalls only at
        chunk boundaries.
        """
        sim = self.sim
        if plan is None and wd is None:
            sim.run_until(t_end)
            return
        if not t_end >= sim.now:
            raise ValueError(f"cannot run backwards (t_end={t_end}, now={sim.now})")
        chunk = checkpoint.CHUNK_EVENTS
        if plan is not None:
            plan.arm(sim)
        if wd is not None:
            wd.arm(sim)
        while True:
            executed = sim._drain_limited(t_end, chunk)
            if plan is not None:
                reason = checkpoint.preempt_reason(sim)
                if reason is not None:
                    checkpoint.execute_preempt(self, state, plan, reason)
                if plan.due(sim):
                    plan.advance(sim)
                    state.seq += 1
                    checkpoint.save(self, state, plan.path)
            if wd is not None:
                wd.observe(self)
            if executed < chunk:
                break
        sim.run_until(t_end)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def collect(self, elapsed_ns: float) -> RunResult:
        """Snapshot every metric of the current window into a RunResult."""
        if self.uncore_kernel is not None:
            self.uncore_kernel.sync_stats()
        now = self.sim.now
        mc = self.mc
        classes = set()
        for channel in mc.channels:
            classes.update(channel.stats.class_lines_read)
            classes.update(channel.stats.class_lines_written)
        mem_bw_by_class = {
            tc: mc.class_bandwidth_bytes_per_ns(tc, elapsed_ns) for tc in classes
        }
        lines_read_by_class = {
            tc: mc.class_lines(tc, RequestKind.READ) for tc in classes
        }
        lines_written_by_class = {
            tc: mc.class_lines(tc, RequestKind.WRITE) for tc in classes
        }

        domain_latency: Dict[str, float] = {}
        cha_admission: Dict[str, float] = {}
        for name, stat in self.hub._latencies.items():
            if stat.count == 0:
                continue
            # Registry keys carry the host namespace; the RunResult
            # keys are host-local (a cluster distinguishes hosts by
            # RunResult position, not by key prefix).
            name = self.hub.local(name)
            if name.startswith("domain."):
                domain_latency[name[len("domain.") :]] = stat.average
            elif name.startswith("lfb.total."):
                domain_latency["lfb_total." + name[len("lfb.total.") :]] = stat.average
            elif name.startswith("cha_to_dram_read."):
                domain_latency[
                    "cha_dram_read." + name[len("cha_to_dram_read.") :]
                ] = stat.average
            elif name.startswith("cha_to_mc_write."):
                domain_latency[
                    "cha_mc_write." + name[len("cha_to_mc_write.") :]
                ] = stat.average
            elif name.startswith("cha.admission_delay."):
                cha_admission[name[len("cha.admission_delay.") :]] = stat.average

        lfb_by_class: Dict[str, float] = {}
        for core in self.cores:
            tc = core.workload.traffic_class
            lfb_by_class[tc] = lfb_by_class.get(tc, 0.0) + core.lfb.average_occupancy(
                now
            )

        row_miss: Dict[str, float] = {}
        for tc in classes:
            for kind in (RequestKind.READ, RequestKind.WRITE):
                ratio = mc.row_miss_ratio(tc, kind)
                row_miss[f"{tc}.{kind.value}"] = ratio

        workload_ops = {
            name: sum(w.ops_completed for w in workloads)
            for name, workloads in self._workloads.items()
        }
        device_lines = {}
        device_ios = {}
        for name, device in self.devices.items():
            workload = device.workload
            lines_done = getattr(workload, "lines_done", None)
            if lines_done is None:
                lines_done = getattr(workload, "lines_delivered", 0) + getattr(
                    workload, "lines_read", 0
                )
            device_lines[name] = lines_done
            ios = getattr(workload, "ios_completed", None)
            if ios is not None:
                device_ios[name] = ios

        extra: Dict[str, float] = {}
        for name, device in self.devices.items():
            if isinstance(device, Nic):
                extra[f"{name}.pause_fraction"] = device.pause_fraction()
                extra[f"{name}.loss_rate"] = device.loss_rate()
        if self.llc is not None:
            extra["llc.miss_ratio"] = self.llc.miss_ratio

        return RunResult(
            config=self.config,
            elapsed_ns=elapsed_ns,
            mem_bw_total=mc.bandwidth_bytes_per_ns(elapsed_ns),
            mem_bw_by_class=mem_bw_by_class,
            lines_read_by_class=lines_read_by_class,
            lines_written_by_class=lines_written_by_class,
            domain_latency=domain_latency,
            lfb_avg_occupancy=lfb_by_class,
            iio_write_avg_occupancy=self.iio.write_occ.average(now),
            iio_read_avg_occupancy=self.iio.read_occ.average(now),
            iio_write_max_occupancy=self.iio.write_occ.max_seen,
            cha_admission_delay=cha_admission,
            cha_write_waiting_avg=self.cha.write_waiting.average(now),
            cha_pool_avg=(
                self.cha.ingress_occ.average(now)
                + self.cha.read_stage.average(now)
                + self.cha.write_waiting.average(now)
            ),
            cha_inflight_p2m_reads_avg=self.hub.occupancy(
                "cha.inflight_reads.p2m"
            ).average(now),
            rpq_avg_occupancy=mc.avg_rpq_occupancy(now),
            wpq_avg_occupancy=mc.avg_wpq_occupancy(now),
            wpq_full_fraction=mc.wpq_full_fraction(now),
            lines_read=int(mc.total("lines_read")),
            lines_written=int(mc.total("lines_written")),
            switches_wtr=int(mc.total("switches_wtr")),
            switches_rtw=int(mc.total("switches_rtw")),
            act_read=int(mc.total("act_read")),
            act_write=int(mc.total("act_write")),
            pre_conflict_read=int(mc.total("pre_conflict_read")),
            pre_conflict_write=int(mc.total("pre_conflict_write")),
            row_miss_ratio=row_miss,
            bank_deviations=mc.bank_deviations(),
            workload_ops=workload_ops,
            device_lines=device_lines,
            device_ios=device_ios,
            extra=extra,
            domain_snapshots=self.domains.snapshot_all(now, elapsed_ns),
        )
