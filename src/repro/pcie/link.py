"""PCIe link model: full-duplex serialization plus propagation delay.

The link has independent upstream (device→host: DMA write data, read
requests) and downstream (host→device: read completions) directions,
each serializing payloads at the link bandwidth. The propagation term
models the end-to-end PCIe traversal the paper observes as the ~300 ns
unloaded P2M-Write domain latency (§4.2).
"""

from __future__ import annotations

from repro.sim.engine import Simulator


class PcieLink:
    """One PCIe attachment point (possibly aggregating several lanes/devices)."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bytes_per_ns: float,
        t_prop: float = 240.0,
    ):
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        if t_prop < 0:
            raise ValueError("propagation delay must be non-negative")
        self._sim = sim
        self.bandwidth = bandwidth_bytes_per_ns
        self.t_prop = t_prop
        self._up_free = 0.0
        self._down_free = 0.0
        self.bytes_upstream = 0
        self.bytes_downstream = 0

    # ------------------------------------------------------------------

    def upstream_next_free(self) -> float:
        """Earliest time a new upstream payload can start serializing."""
        return max(self._sim.now, self._up_free)

    def downstream_next_free(self) -> float:
        """Earliest time a new downstream payload can start serializing."""
        return max(self._sim.now, self._down_free)

    def send_upstream(self, payload_bytes: int) -> float:
        """Serialize a payload device→host; returns host arrival time."""
        start = self.upstream_next_free()
        self._up_free = start + payload_bytes / self.bandwidth
        self.bytes_upstream += payload_bytes
        return self._up_free + self.t_prop

    def send_downstream(self, payload_bytes: int) -> tuple[float, float]:
        """Serialize a payload host→device.

        Returns ``(serialized_at, device_arrival)``: credits tied to
        completion *issue* free at ``serialized_at``; the device sees
        the data at ``device_arrival``.
        """
        start = self.downstream_next_free()
        self._down_free = start + payload_bytes / self.bandwidth
        self.bytes_downstream += payload_bytes
        return self._down_free, self._down_free + self.t_prop

    def reset_stats(self, now: float = 0.0) -> None:
        """Zero byte counters (serialization state is kept)."""
        self.bytes_upstream = 0
        self.bytes_downstream = 0
