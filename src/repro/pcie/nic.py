"""NIC model: the substrate for the RDMA and DCTCP case studies
(§2.3, Appendices C–E).

Receive path (P2M writes): packets arrive from the network at the
ingress rate, queue in the NIC's receive buffer, and drain into host
memory through the DMA engine as IIO credits permit. Two buffer
policies mirror the paper's two transports:

* **PFC (lossless, RoCE)** — when the receive buffer crosses the pause
  threshold the NIC pauses the link; the paused-time fraction is the
  paper's "PFC pause fraction" (Appendix D.1). No packets are lost.
* **Lossy (DCTCP)** — when the buffer is full, arriving packets are
  dropped and counted; the transport reacts (Appendix D.2).

Transmit / remote-read path (P2M reads): the NIC DMA-reads host
memory at the egress rate (``ib_read_bw`` server side).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dram.region import Region
from repro.pcie.device import DmaDevice, DmaWorkload
from repro.sim.engine import Simulator
from repro.sim.records import CACHELINE_BYTES


class NicWorkload(DmaWorkload):
    """Ingress-queue DMA-write demand plus optional egress DMA reads."""

    def __init__(
        self,
        region: Region,
        buffer_bytes: int = 2 << 20,
        pfc_enabled: bool = True,
        egress_enabled: bool = False,
        pause_threshold: float = 0.75,
        resume_threshold: float = 0.25,
    ):
        self.region = region
        self.buffer_lines = max(1, buffer_bytes // CACHELINE_BYTES)
        self.pfc_enabled = pfc_enabled
        self.egress_enabled = egress_enabled
        # Ingress writes are always possible; egress reads only when
        # enabled (the device then skips the read pump entirely).
        self.emits_reads = egress_enabled
        self.pause_hi = max(1, int(self.buffer_lines * pause_threshold))
        self.pause_lo = max(0, int(self.buffer_lines * resume_threshold))
        self._write_pos = 0
        self._read_pos = 0
        self.queued_lines = 0
        self.paused = False
        self.lines_delivered = 0
        self.lines_read = 0
        self.lines_dropped = 0
        self.lines_arrived = 0
        #: CE-marked arrivals (set by congested fabric switch queues;
        #: the DCTCP receiver echoes these back to its sender's rate)
        self.lines_marked = 0
        self._pause_started = 0.0
        self.paused_time = 0.0
        self._window_start = 0.0
        #: PFC propagation hook: called with the new pause state on
        #: every transition, so a modelled fabric can stop the last-hop
        #: switch port's drain while this NIC's buffer is paused (the
        #: standalone host leaves it unset — pause then only gates the
        #: NIC's self-paced ingress, exactly the historical behaviour).
        self.on_pause_change: Optional[Callable[[bool], None]] = None

    # ------------------------- ingress side ----------------------------

    def on_ingress_line(self, now: float, marked: bool = False) -> None:
        """One cacheline worth of packet data arrives from the wire."""
        self.lines_arrived += 1
        if marked:
            self.lines_marked += 1
        if self.queued_lines >= self.buffer_lines:
            # PFC should prevent this; in lossy mode it is a packet drop.
            self.lines_dropped += 1
            return
        self.queued_lines += 1
        self._update_pause(now)

    def _update_pause(self, now: float) -> None:
        if not self.pfc_enabled:
            return
        if not self.paused and self.queued_lines >= self.pause_hi:
            self.paused = True
            self._pause_started = now
            if self.on_pause_change is not None:
                self.on_pause_change(True)
        elif self.paused and self.queued_lines <= self.pause_lo:
            self.paused = False
            self.paused_time += now - self._pause_started
            if self.on_pause_change is not None:
                self.on_pause_change(False)

    def pause_fraction(self, now: float) -> float:
        """Fraction of the window during which PFC paused the link."""
        total = self.paused_time
        if self.paused:
            total += now - self._pause_started
        elapsed = now - self._window_start
        if elapsed <= 0:
            return 0.0
        return total / elapsed

    def loss_rate(self) -> float:
        """Dropped / arrived lines over the window (lossy mode only)."""
        if self.lines_arrived == 0:
            return 0.0
        return self.lines_dropped / self.lines_arrived

    # -------------------------- DMA demand -----------------------------

    def next_write(self, now: float) -> Optional[int]:
        if self.queued_lines == 0:
            return None
        self.queued_lines -= 1
        self._update_pause(now)
        addr = self.region.line(self._write_pos)
        self._write_pos += 1
        if self._write_pos >= self.region.n_lines:
            self._write_pos = 0
        return addr

    def next_read(self, now: float) -> Optional[int]:
        if not self.egress_enabled:
            return None
        addr = self.region.line(self._read_pos)
        self._read_pos += 1
        if self._read_pos >= self.region.n_lines:
            self._read_pos = 0
        return addr

    def on_write_posted(self, line_addr: int, now: float) -> None:
        self.lines_delivered += 1

    def on_read_data(self, line_addr: int, now: float) -> None:
        self.lines_read += 1

    def reset_stats(self, now: float) -> None:
        self.lines_delivered = 0
        self.lines_read = 0
        self.lines_dropped = 0
        self.lines_arrived = 0
        self.lines_marked = 0
        self.paused_time = 0.0
        self._window_start = now
        if self.paused:
            self._pause_started = now


class Nic(DmaDevice):
    """A NIC: ingress process + DMA engine + optional egress reads.

    ``ingress_rate`` (bytes/ns) models the sender's wire rate into the
    receive path; ``egress_read_rate`` paces remote-read demand served
    by DMA reads of host memory. Either can be zero.
    """

    def __init__(
        self,
        sim: Simulator,
        hub,
        iio,
        link,
        mc,
        region: Region,
        ingress_rate: float = 0.0,
        egress_read_rate: float = 0.0,
        buffer_bytes: int = 2 << 20,
        pfc_enabled: bool = True,
        traffic_class: str = "p2m",
        burst: int = 1,
    ):
        self.rx = NicWorkload(
            region,
            buffer_bytes=buffer_bytes,
            pfc_enabled=pfc_enabled,
            egress_enabled=egress_read_rate > 0,
        )
        super().__init__(
            sim,
            hub,
            iio,
            link,
            mc,
            self.rx,
            device_rate=egress_read_rate if egress_read_rate > 0 else None,
            traffic_class=traffic_class,
            burst=burst,
        )
        self.ingress_rate = ingress_rate
        self.egress_read_rate = egress_read_rate
        self._ingress_pending = False

    def start(self) -> None:
        """Start the DMA engine and, if configured, the ingress flow."""
        super().start()
        if self.ingress_rate > 0:
            self._schedule_ingress()

    # --------------------------- ingress --------------------------------

    def set_ingress_rate(self, rate: float) -> None:
        """Adjust the sender rate (used by the DCTCP control loop)."""
        self.ingress_rate = rate
        if rate > 0 and not self._ingress_pending:
            self._schedule_ingress()

    def _schedule_ingress(self) -> None:
        interval = CACHELINE_BYTES / self.ingress_rate
        self._ingress_pending = True
        self._sim.schedule(interval, self._on_ingress)

    def _on_ingress(self) -> None:
        self._ingress_pending = False
        now = self._sim.now
        if not self.rx.paused:
            self.rx.on_ingress_line(now)
            self._pump()
        if self.ingress_rate > 0:
            self._schedule_ingress()

    # --------------------------- fabric ---------------------------------

    def fabric_deliver(self, now: float, marked: bool = False) -> None:
        """Terminal fabric hop: a line arrives from a modelled switch.

        Used instead of the self-paced ingress process when this NIC is
        the receive edge of a :class:`~repro.topology.fabric` flow
        (construct the NIC with ``ingress_rate=0`` then). The CE mark
        set by congested switch queues lands in ``rx.lines_marked``.
        """
        self.rx.on_ingress_line(now, marked=marked)
        self._pump()

    # --------------------------- metrics --------------------------------

    def delivered_bytes(self) -> int:
        """Bytes DMA-delivered into host memory this window."""
        return self.rx.lines_delivered * CACHELINE_BYTES

    def pause_fraction(self) -> float:
        """Fraction of the window with PFC asserted."""
        return self.rx.pause_fraction(self._sim.now)

    def loss_rate(self) -> float:
        """Packet-drop fraction at the (lossy) receive buffer."""
        return self.rx.loss_rate()
