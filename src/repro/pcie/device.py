"""Generic DMA engine behind a PCIe link.

A :class:`DmaDevice` drives the P2M datapaths of §3:

* DMA **writes** (storage reads / NIC receive): the device allocates an
  IIO write-buffer entry (PCIe credit) at initiation, serializes the
  cacheline upstream, and the credit is replenished at WPQ admission —
  posted semantics, the P2M-Write domain.
* DMA **reads** (storage writes / NIC transmit): non-posted; the IIO
  read-buffer entry is held until data returns from DRAM and the
  completion is issued back over the link — the P2M-Read domain.

The device paces itself at ``device_rate`` (its internal media/engine
speed), independent of the link bandwidth; both limits apply.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.controller import MemoryController
from repro.dram.region import Region
from repro.pcie.link import PcieLink
from repro.sim.engine import Simulator
from repro.sim.records import (
    CACHELINE_BYTES,
    Request,
    RequestKind,
    RequestSource,
    acquire_request,
    release_request,
)
from repro.telemetry.counters import CounterHub
from repro.uncore.iio import IIO
from repro.uncore.kernel import uncore_enabled

_INF = float("inf")


class DmaWorkload:
    """Protocol for device-side demand (subclassed by NVMe/NIC models)."""

    #: capability hints: a workload that can *never* produce demand in
    #: one direction sets the flag False so the device skips that
    #: direction's pump loop entirely (an empty-handed pump pass reads
    #: no mutable state, so skipping it is observationally identical).
    emits_writes = True
    emits_reads = True

    def next_write(self, now: float) -> Optional[int]:
        """Next line address to DMA-write, or None if none pending."""
        return None

    def next_read(self, now: float) -> Optional[int]:
        """Next line address to DMA-read, or None if none pending."""
        return None

    def wake_time(self, now: float) -> Optional[float]:
        """Absolute retry time after both ``next_*`` returned None."""
        return None

    def on_write_posted(self, line_addr: int, now: float) -> None:
        """The DMA write was admitted to the WPQ (or served by DDIO)."""

    def on_read_data(self, line_addr: int, now: float) -> None:
        """Read-completion data arrived back at the device."""

    def reset_stats(self, now: float) -> None:
        """Start a fresh measurement window."""


class SequentialDmaWorkload(DmaWorkload):
    """Infinite sequential DMA over a ring buffer — the paper's
    P2M-Write / P2M-Read microbenchmark traffic (§2.2)."""

    def __init__(self, region: Region, kind: RequestKind):
        self.region = region
        self.kind = kind
        self.emits_writes = kind is RequestKind.WRITE
        self.emits_reads = kind is RequestKind.READ
        self._pos = 0
        self.lines_done = 0

    def _next(self) -> int:
        addr = self.region.line(self._pos)
        self._pos += 1
        if self._pos >= self.region.n_lines:
            self._pos = 0
        return addr

    def next_write(self, now: float) -> Optional[int]:
        if self.kind is not RequestKind.WRITE:
            return None
        return self._next()

    def next_read(self, now: float) -> Optional[int]:
        if self.kind is not RequestKind.READ:
            return None
        return self._next()

    def on_write_posted(self, line_addr: int, now: float) -> None:
        self.lines_done += 1

    def on_read_data(self, line_addr: int, now: float) -> None:
        self.lines_done += 1

    def reset_stats(self, now: float) -> None:
        self.lines_done = 0


class DmaDevice:
    """DMA engine: paces line transfers through credits and the link."""

    def __init__(
        self,
        sim: Simulator,
        hub: CounterHub,
        iio: IIO,
        link: PcieLink,
        mc: MemoryController,
        workload: DmaWorkload,
        device_rate: Optional[float] = None,
        t_host_return: float = 55.0,
        traffic_class: str = "p2m",
        burst: int = 1,
    ):
        self._sim = sim
        self._hub = hub
        self._iio = iio
        self._link = link
        self._mc = mc
        self.workload = workload
        self.device_rate = device_rate
        self.t_host_return = t_host_return
        self.traffic_class = traffic_class
        # Macro-event burst factor (REPRO_BURST): lines per DMA
        # macro-request. Clamped so a burst can always obtain credits.
        self.burst = max(
            1, min(burst, iio.write_entries, iio.read_entries)
        )
        # Batched train credits (REPRO_UNCORE): one weighted IIO pool
        # transaction per gathered train instead of one per channel
        # group. Bit-identical — same-instant acquires commute — but
        # cuts the per-group pool traffic. Evaluated unconditionally so
        # an invalid knob value raises at construction.
        self._batch_credits = uncore_enabled() and self.burst > 1
        self._next_write_slot = 0.0
        self._next_read_slot = 0.0
        self._pump_event = None
        self.writes_posted = 0
        self.reads_completed = 0
        # One-shot credit waiters: when a pump blocks on credits, it
        # registers once on the pool it needs; the flags dedupe so a
        # device sits in each FIFO at most once.
        self._waiting_write_credit = False
        self._waiting_read_credit = False

    def start(self) -> None:
        """Begin pumping DMA at the current simulation time."""
        self._pump_now()

    # ------------------------------------------------------------------
    # Pumping
    # ------------------------------------------------------------------

    def _pump_now(self) -> None:
        self._pump()

    def _schedule_pump(self, at: float) -> None:
        at = max(at, self._sim.now)
        event = self._pump_event
        if event is not None and not event.cancelled and event.time <= at:
            return
        if event is not None:
            event.cancel()
        self._pump_event = self._sim.schedule_at_cancellable(at, self._on_pump_event)

    def _on_pump_event(self) -> None:
        self._pump_event = None
        self._pump()

    def _pump(self) -> None:
        workload = self.workload
        next_at = self._pump_writes() if workload.emits_writes else _INF
        if workload.emits_reads:
            at_read = self._pump_reads()
            if at_read < next_at:
                next_at = at_read
        if next_at != _INF:
            self._schedule_pump(next_at)

    def _pace(self) -> float:
        if self.device_rate is None:
            return 0.0
        return CACHELINE_BYTES / self.device_rate

    def _wait_for_credit(self, kind: RequestKind) -> None:
        """Register (once) as a FIFO one-shot waiter on a pool."""
        if kind is RequestKind.WRITE:
            if not self._waiting_write_credit:
                self._waiting_write_credit = True
                self._iio.write_pool.add_waiter(self._on_write_credit)
        else:
            if not self._waiting_read_credit:
                self._waiting_read_credit = True
                self._iio.read_pool.add_waiter(self._on_read_credit)

    def _on_write_credit(self) -> None:
        self._waiting_write_credit = False
        self._pump()

    def _on_read_credit(self) -> None:
        self._waiting_read_credit = False
        self._pump()

    def _pump_writes(self) -> float:
        """Send pending DMA writes; returns the next retry time."""
        now = self._sim.now
        burst = self.burst
        while True:
            if not self._iio.has_credit(RequestKind.WRITE, burst):
                self._wait_for_credit(RequestKind.WRITE)
                return float("inf")  # the pool waiter re-pumps
            start = max(now, self._next_write_slot, self._link.upstream_next_free())
            if start > now:
                return start
            addr = self.workload.next_write(now)
            if addr is None:
                wake = self.workload.wake_time(now)
                return wake if wake is not None else float("inf")
            if burst == 1:
                req = acquire_request(
                    RequestSource.P2M,
                    RequestKind.WRITE,
                    addr,
                    traffic_class=self.traffic_class,
                )
                self._iio.alloc(req)
                self._mc.assign(req)
                req.on_complete = self._on_write_posted
                arrival = self._link.send_upstream(CACHELINE_BYTES)
                self._next_write_slot = start + self._pace()
                self._sim.schedule_at(arrival, self._iio.on_dma_arrival, req)
                continue
            total = 0
            batch = self._batch_credits
            for group in self._gather_burst(addr, self.workload.next_write, now):
                req = acquire_request(
                    RequestSource.P2M,
                    RequestKind.WRITE,
                    group[0],
                    traffic_class=self.traffic_class,
                )
                lines = len(group)
                if lines > 1:
                    req.lines = lines
                    req.tag = group
                total += lines
                if batch:
                    req.t_alloc = now
                else:
                    self._iio.alloc(req)
                self._mc.assign(req)
                req.on_complete = self._on_write_posted
                arrival = self._link.send_upstream(CACHELINE_BYTES * lines)
                self._sim.schedule_at(arrival, self._iio.on_dma_arrival, req)
            if batch:
                # One weighted pool transaction for the whole train:
                # bit-identical to per-group acquires at one instant.
                self._iio.write_pool.acquire(now, total)
            self._next_write_slot = start + self._pace() * total

    def _pump_reads(self) -> float:
        now = self._sim.now
        burst = self.burst
        while True:
            if not self._iio.has_credit(RequestKind.READ, burst):
                self._wait_for_credit(RequestKind.READ)
                return float("inf")
            start = max(now, self._next_read_slot)
            if start > now:
                return start
            addr = self.workload.next_read(now)
            if addr is None:
                wake = self.workload.wake_time(now)
                return wake if wake is not None else float("inf")
            if burst == 1:
                req = acquire_request(
                    RequestSource.P2M,
                    RequestKind.READ,
                    addr,
                    traffic_class=self.traffic_class,
                )
                self._iio.alloc(req)
                self._mc.assign(req)
                req.on_complete = self._on_read_serviced
                self._next_read_slot = start + self._pace()
                # Read requests are small TLPs: propagation only.
                self._sim.schedule(self._link.t_prop, self._iio.on_dma_arrival, req)
                continue
            total = 0
            batch = self._batch_credits
            for group in self._gather_burst(addr, self.workload.next_read, now):
                req = acquire_request(
                    RequestSource.P2M,
                    RequestKind.READ,
                    group[0],
                    traffic_class=self.traffic_class,
                )
                lines = len(group)
                if lines > 1:
                    req.lines = lines
                    req.tag = group
                total += lines
                if batch:
                    req.t_alloc = now
                else:
                    self._iio.alloc(req)
                self._mc.assign(req)
                req.on_complete = self._on_read_serviced
                self._sim.schedule(self._link.t_prop, self._iio.on_dma_arrival, req)
            if batch:
                self._iio.read_pool.acquire(now, total)
            self._next_read_slot = start + self._pace() * total

    def _gather_burst(self, first: int, next_line, now: float):
        """Collect up to ``self.burst`` pending lines and split them by
        home memory channel: consecutive lines interleave across
        channels, so one single-channel macro-request would collapse
        the channel parallelism the per-line simulation exploits. One
        macro-request per channel group preserves it. Partial bursts
        are fine (the workload ran out of pending lines)."""
        mapper = self._mc.mapper
        groups: dict = {}
        groups.setdefault(mapper.map(first).channel, []).append(first)
        for _ in range(self.burst - 1):
            addr = next_line(now)
            if addr is None:
                break
            groups.setdefault(mapper.map(addr).channel, []).append(addr)
        return groups.values()

    # ------------------------------------------------------------------
    # Completions
    # ------------------------------------------------------------------

    def _on_write_posted(self, req: Request) -> None:
        now = self._sim.now
        self.writes_posted += req.lines
        # Update workload state before releasing the credit: the release
        # synchronously wakes credit waiters, which must observe the
        # post-completion demand (e.g. the next queued IO).
        if req.lines == 1:
            self.workload.on_write_posted(req.line_addr, now)
        else:
            for addr in req.tag:
                self.workload.on_write_posted(addr, now)
        self._iio.release(req)
        # The waiter queue only holds credit-blocked devices; a device
        # blocked on its own *demand* (e.g. a closed-loop workload at
        # queue depth) is not registered, so re-pump explicitly now
        # that the completion may have produced new demand.
        self._pump()

    def _on_read_serviced(self, req: Request) -> None:
        """Read data left the memory channel; traverse back to the IIO."""
        self._sim.schedule(self.t_host_return, self._on_read_at_iio, req)

    def _on_read_at_iio(self, req: Request) -> None:
        serialized_at, device_arrival = self._link.send_downstream(
            CACHELINE_BYTES * req.lines
        )
        self._sim.schedule_at(serialized_at, self._finish_read_credit, req)
        self._sim.schedule_at(device_arrival, self._finish_read_data, req)

    def _finish_read_credit(self, req: Request) -> None:
        """Completion issued: the non-posted credit is replenished."""
        self._iio.release(req)
        # As in _on_write_posted: demand-blocked (not credit-blocked)
        # senders are not in the waiter queue; re-evaluate explicitly.
        self._pump()

    def _finish_read_data(self, req: Request) -> None:
        now = self._sim.now
        self.reads_completed += req.lines
        if req.lines == 1:
            self.workload.on_read_data(req.line_addr, now)
        else:
            for addr in req.tag:
                self.workload.on_read_data(addr, now)
        # Last stop of a DMA read's lifecycle: the credit was released
        # at completion issue and no component still references it.
        release_request(req)
        self._pump()

    # ------------------------------------------------------------------

    def reset_stats(self, now: float) -> None:
        """Start a fresh measurement window (device + workload)."""
        self.writes_posted = 0
        self.reads_completed = 0
        self.workload.reset_stats(now)
