"""Peripheral interconnect substrate: PCIe link, DMA devices, NVMe, NIC.

PCIe flow control is credit-based (§3, ref. [54]): a device needs a
credit — backed by an IIO buffer entry — to send a request, and the
credit is replenished when the IIO frees the entry. DMA writes are
posted (complete at WPQ admission); DMA reads are non-posted (the
credit is held until data returns).
"""

from repro.pcie.link import PcieLink
from repro.pcie.device import DmaDevice, SequentialDmaWorkload
from repro.pcie.nvme import NvmeDevice
from repro.pcie.nic import Nic

__all__ = [
    "PcieLink",
    "DmaDevice",
    "SequentialDmaWorkload",
    "NvmeDevice",
    "Nic",
]
