"""NVMe SSD model: the substrate for the FIO P2M workloads (§2.1).

Storage semantics invert at the memory level: a storage *read* DMAs
data *into* host memory (P2M writes) and a storage *write* DMAs data
*out of* host memory (P2M reads). The model carves each IO into
cachelines, paces them at the device's media rate, and completes the
IO when its last line finishes — giving IOPS, the FIO metric.

``queue_depth`` controls offered load: depth 1 with 4 KB IOs is the
paper's low-load probe for the P2M-Write domain (§4.2, Fig. 6c);
large sequential IOs at higher depth saturate the device.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.region import Region
from repro.pcie.device import DmaDevice, DmaWorkload
from repro.sim.records import CACHELINE_BYTES, RequestKind


class NvmeWorkload(DmaWorkload):
    """IO-granular sequential DMA demand with bounded queue depth."""

    def __init__(
        self,
        region: Region,
        io_size_bytes: int,
        queue_depth: int,
        kind: RequestKind,
        t_io_gap: float = 0.0,
    ):
        if io_size_bytes % CACHELINE_BYTES != 0:
            raise ValueError("io_size must be a multiple of the cacheline size")
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        self.region = region
        self.lines_per_io = io_size_bytes // CACHELINE_BYTES
        self.queue_depth = queue_depth
        self.kind = kind
        self.emits_writes = kind is RequestKind.WRITE
        self.emits_reads = kind is RequestKind.READ
        self.t_io_gap = t_io_gap
        self._pos = 0
        self._inflight_ios = 0
        self._lines_left_in_io = 0
        # Remaining line completions per in-flight IO, oldest first.
        # Lines of one IO complete (nearly) in order, so decrementing
        # the head attributes completions to the right IO.
        self._completion_q: list[int] = []
        self._next_io_at = 0.0
        self.ios_completed = 0
        self.lines_done = 0

    # -------------------------- demand --------------------------------

    def _next_line(self, now: float) -> Optional[int]:
        if self._lines_left_in_io == 0:
            if self._inflight_ios >= self.queue_depth or now < self._next_io_at:
                return None
            self._inflight_ios += 1
            self._lines_left_in_io = self.lines_per_io
            self._completion_q.append(self.lines_per_io)
        self._lines_left_in_io -= 1
        addr = self.region.line(self._pos)
        self._pos += 1
        if self._pos >= self.region.n_lines:
            self._pos = 0
        return addr

    def next_write(self, now: float) -> Optional[int]:
        if self.kind is not RequestKind.WRITE:
            return None
        return self._next_line(now)

    def next_read(self, now: float) -> Optional[int]:
        if self.kind is not RequestKind.READ:
            return None
        return self._next_line(now)

    def wake_time(self, now: float) -> Optional[float]:
        if self._inflight_ios < self.queue_depth and now < self._next_io_at:
            return self._next_io_at
        return None

    # ------------------------ completions ------------------------------

    def _on_line_done(self, now: float) -> None:
        self.lines_done += 1
        if not self._completion_q:
            raise RuntimeError("IO completion without an in-flight IO")
        self._completion_q[0] -= 1
        if self._completion_q[0] == 0:
            self._completion_q.pop(0)
            self._inflight_ios -= 1
            self.ios_completed += 1
            self._next_io_at = now + self.t_io_gap

    def on_write_posted(self, line_addr: int, now: float) -> None:
        self._on_line_done(now)

    def on_read_data(self, line_addr: int, now: float) -> None:
        self._on_line_done(now)

    def reset_stats(self, now: float) -> None:
        self.ios_completed = 0
        self.lines_done = 0


class NvmeDevice(DmaDevice):
    """An NVMe SSD (or an aggregate of several) on a PCIe link."""

    def __init__(
        self,
        sim,
        hub,
        iio,
        link,
        mc,
        region: Region,
        io_size_bytes: int = 8 << 20,
        queue_depth: int = 8,
        kind: RequestKind = RequestKind.WRITE,
        device_rate: Optional[float] = None,
        t_io_gap: float = 0.0,
        traffic_class: str = "p2m",
        burst: int = 1,
    ):
        workload = NvmeWorkload(
            region=region,
            io_size_bytes=io_size_bytes,
            queue_depth=queue_depth,
            kind=kind,
            t_io_gap=t_io_gap,
        )
        super().__init__(
            sim,
            hub,
            iio,
            link,
            mc,
            workload,
            device_rate=device_rate,
            traffic_class=traffic_class,
            burst=burst,
        )

    @property
    def ios_completed(self) -> int:
        """IOs whose last line finished in the current window."""
        return self.workload.ios_completed

    @property
    def lines_done(self) -> int:
        """Cachelines transferred in the current window."""
        return self.workload.lines_done
