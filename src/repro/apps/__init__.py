"""Application models (§2.1, Appendix B).

* :mod:`repro.apps.redis` — Redis-like in-memory KV store under
  YCSB-C (read) and 100%-SET (write) workloads; C2M traffic with
  per-query compute, limited memory-level parallelism, and >95% cache
  miss ratio (1 M x 1 KB working set per core).
* :mod:`repro.apps.gapbs` — GAPBS-like graph kernels: PageRank
  (memory-bound random reads) and Betweenness Centrality (~80/20
  read/write, more compute per access).
* :mod:`repro.apps.fio` — FIO-like storage job driving the NVMe
  substrate (P2M traffic).
"""

from repro.apps.redis import RedisWorkload, add_redis_cores
from repro.apps.gapbs import GapbsWorkload, add_gapbs_cores
from repro.apps.fio import FioJob, add_fio

__all__ = [
    "RedisWorkload",
    "add_redis_cores",
    "GapbsWorkload",
    "add_gapbs_cores",
    "FioJob",
    "add_fio",
]
