"""FIO-like storage job (§2.1).

The paper's P2M application is FIO doing 8 MB sequential storage reads
against locally-attached NVMe — minimal compute, pure DMA traffic.
Storage reads are memory *writes* (data DMA'd into host memory);
storage writes are memory *reads*.

:func:`add_fio` attaches the job to a host and returns a
:class:`FioJob` handle whose IOPS/bandwidth properties match FIO's
reported metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.pcie.nvme import NvmeDevice
from repro.sim.records import CACHELINE_BYTES, RequestKind


@dataclass
class FioJob:
    """Handle on a running FIO-like job."""

    device: NvmeDevice
    io_size_bytes: int
    mode: str  # "read" (P2M writes) or "write" (P2M reads)

    @property
    def ios_completed(self) -> int:
        """IOs finished in the current measurement window."""
        return self.device.ios_completed

    def iops(self, elapsed_ns: float) -> float:
        """Completed IOs per second over a window."""
        if elapsed_ns <= 0:
            return 0.0
        return self.device.ios_completed / (elapsed_ns * 1e-9)

    def bandwidth(self, elapsed_ns: float) -> float:
        """Data rate in bytes/ns (== GB/s)."""
        if elapsed_ns <= 0:
            return 0.0
        return self.device.lines_done * CACHELINE_BYTES / elapsed_ns


def add_fio(
    host,
    mode: str = "read",
    io_size_bytes: int = 8 << 20,
    queue_depth: int = 8,
    device_rate: Optional[float] = None,
    t_io_gap: float = 0.0,
    region_bytes: int = 4 << 30,
    name: str = "fio",
    traffic_class: str = "p2m",
) -> FioJob:
    """Attach a FIO job to a host.

    Args:
        mode: ``"read"`` — sequential storage reads (the paper's
            default: a large P2M *write* stream); ``"write"`` —
            sequential storage writes (P2M reads).
        io_size_bytes: request size (the paper uses 8 MB).
        queue_depth: in-flight IOs (1 for the §4.2 low-load probe).
        t_io_gap: idle time between IOs (low-load probes).
    """
    if mode not in ("read", "write"):
        raise ValueError("mode must be 'read' or 'write'")
    kind = RequestKind.WRITE if mode == "read" else RequestKind.READ
    device = host.add_nvme(
        kind=kind,
        io_size_bytes=io_size_bytes,
        queue_depth=queue_depth,
        device_rate=device_rate,
        t_io_gap=t_io_gap,
        region_bytes=region_bytes,
        name=name,
        traffic_class=traffic_class,
    )
    return FioJob(device=device, io_size_bytes=io_size_bytes, mode=mode)
