"""GAPBS-like graph-processing model (§2.1, Appendix B).

The paper runs the GAP Benchmark Suite on a random graph of 2^25
nodes, degree 16 (~5 GB footprint, far beyond the LLC), shared across
all worker cores:

* **PageRank (PR)** — the §2.1 workload: random reads of neighbour
  rank values, nearly always stalled on memory, negligible compute.
  Its slowdown tracks C2M-Read domain latency inflation almost 1:1
  (1.28-1.98x in Fig. 1b).
* **Betweenness Centrality (BC)** — the Appendix B write-heavy
  workload: ~80% read / 20% write traffic, more compute per access
  and lower per-core memory intensity.

Performance is execution time; over a fixed measurement window the
slowdown equals the inverse ratio of edges processed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.cpu.workloads import MemoryWorkload
from repro.dram.region import Region
from repro.sim.records import CACHELINE_BYTES


class GapbsWorkload(MemoryWorkload):
    """One GAPBS worker core traversing a shared graph.

    Args:
        region: the shared graph arrays (rank/score vectors).
        algorithm: ``"pr"`` or ``"bc"``.
        mlp: outstanding irregular accesses (PR's gather loop exposes
            near-LFB parallelism; BC's dependency structure exposes less).
        compute_ns_per_edge: non-memory work per processed edge.
    """

    def __init__(
        self,
        region: Region,
        algorithm: str = "pr",
        mlp: Optional[int] = None,
        compute_ns_per_edge: Optional[float] = None,
        seed: int = 0,
        traffic_class: str = "c2m",
    ):
        super().__init__(traffic_class)
        if algorithm not in ("pr", "bc"):
            raise ValueError("algorithm must be 'pr' or 'bc'")
        self.region = region
        self.algorithm = algorithm
        if algorithm == "pr":
            self.mlp = mlp if mlp is not None else 12
            self.store_fraction = 0.0
            self.compute_ns_per_edge = (
                compute_ns_per_edge if compute_ns_per_edge is not None else 0.0
            )
        else:  # bc
            self.mlp = mlp if mlp is not None else 6
            self.store_fraction = 0.4  # 40% stores -> ~80/20 read/write lines
            self.compute_ns_per_edge = (
                compute_ns_per_edge if compute_ns_per_edge is not None else 18.0
            )
        self._rng = random.Random(seed)
        self._outstanding = 0
        self._compute_until = 0.0
        self.edges_processed = 0

    def try_next(self, now: float) -> Optional[Tuple[int, bool]]:
        if now < self._compute_until or self._outstanding >= self.mlp:
            return None
        self._outstanding += 1
        addr = self.region.line(self._rng.randrange(self.region.n_lines))
        is_store = self._rng.random() < self.store_fraction
        return addr, is_store

    def wake_time(self, now: float) -> Optional[float]:
        if now < self._compute_until:
            return self._compute_until
        return None

    def on_complete(self, now: float, was_store: bool = False) -> None:
        super().on_complete(now, was_store)
        self._outstanding -= 1
        self.edges_processed += 1
        if self.compute_ns_per_edge > 0:
            self._compute_until = max(self._compute_until, now) + self.compute_ns_per_edge

    def reset_stats(self, now: float) -> None:
        super().reset_stats(now)
        self.edges_processed = 0


def add_gapbs_cores(
    host,
    n_cores: int,
    algorithm: str = "pr",
    graph_bytes: int = 5 << 30,
    traffic_class: str = "c2m",
) -> List[GapbsWorkload]:
    """Attach GAPBS worker cores sharing one graph instance."""
    region = host.alloc_region(graph_bytes // CACHELINE_BYTES)
    workloads = []
    for i in range(n_cores):
        workload = GapbsWorkload(
            region,
            algorithm=algorithm,
            seed=2000 + i,
            traffic_class=traffic_class,
        )
        host.add_core(workload, name=f"gapbs-{algorithm}")
        workloads.append(workload)
    return workloads
