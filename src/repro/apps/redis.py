"""Redis-like in-memory key-value store model (§2.1).

The paper deploys sharded Redis: one server instance per core, clients
on separate cores, YCSB-C (100% GET, uniform random) over 1 M keys of
1 KB per server core — the working set far exceeds the LLC, so >95%
of value accesses miss all caches.

The model captures what determines Redis's sensitivity to host-network
contention: each query touches ``lines_per_query`` random cachelines
(a 1 KB value is 16 lines) with bounded memory-level parallelism,
plus a fixed compute cost (parsing, hashing, socket work). Queries
per second then degrade exactly as much as the memory phase's share of
query time times the C2M-Read latency inflation — the paper's
1.25-1.32x for its colocation experiments.

``RedisWorkload(query_mix="set")`` models the 100%-SET Redis-Write
variant of Appendix B (values are written: RFO + writeback, ~50/50
read/write traffic).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.cpu.workloads import MemoryWorkload
from repro.dram.region import Region
from repro.sim.records import CACHELINE_BYTES


class RedisWorkload(MemoryWorkload):
    """One Redis server core serving queries over a private keyspace.

    Args:
        region: keyspace backing store (1 M x 1 KB per core by default
            via :func:`add_redis_cores`).
        lines_per_query: cachelines touched per value (1 KB -> 16).
        mlp: memory-level parallelism of value accesses (dependent
            lookups limit this well below the LFB size).
        compute_ns: non-memory work per query (command parsing,
            hashing, IPC with the client core).
        query_mix: ``"get"`` (YCSB-C) or ``"set"`` (Redis-Write).
    """

    def __init__(
        self,
        region: Region,
        lines_per_query: int = 16,
        mlp: int = 4,
        compute_ns: float = 420.0,
        query_mix: str = "get",
        seed: int = 0,
        traffic_class: str = "c2m",
    ):
        super().__init__(traffic_class)
        if lines_per_query <= 0 or mlp <= 0:
            raise ValueError("lines_per_query and mlp must be positive")
        if query_mix not in ("get", "set"):
            raise ValueError("query_mix must be 'get' or 'set'")
        self.region = region
        self.lines_per_query = lines_per_query
        self.mlp = mlp
        self.compute_ns = compute_ns
        self.query_mix = query_mix
        self._rng = random.Random(seed)
        self._outstanding = 0
        self._left_to_issue = 0
        self._compute_until = 0.0
        self._value_start = 0
        self.queries_completed = 0

    def _begin_query(self, now: float) -> None:
        self._left_to_issue = self.lines_per_query
        # A value occupies consecutive lines at a random key position.
        max_start = max(1, self.region.n_lines - self.lines_per_query)
        self._value_start = self._rng.randrange(max_start)

    def try_next(self, now: float) -> Optional[Tuple[int, bool]]:
        if now < self._compute_until:
            return None
        if self._left_to_issue == 0 and self._outstanding == 0:
            self._begin_query(now)
        if self._left_to_issue == 0 or self._outstanding >= self.mlp:
            return None
        offset = self._value_start + (self.lines_per_query - self._left_to_issue)
        self._left_to_issue -= 1
        self._outstanding += 1
        is_store = self.query_mix == "set"
        return self.region.line(offset), is_store

    def wake_time(self, now: float) -> Optional[float]:
        if now < self._compute_until:
            return self._compute_until
        return None  # woken by access completion

    def on_complete(self, now: float, was_store: bool = False) -> None:
        super().on_complete(now, was_store)
        self._outstanding -= 1
        if self._outstanding == 0 and self._left_to_issue == 0:
            self.queries_completed += 1
            self._compute_until = now + self.compute_ns

    def reset_stats(self, now: float) -> None:
        super().reset_stats(now)
        self.queries_completed = 0


def add_redis_cores(
    host,
    n_cores: int,
    query_mix: str = "get",
    value_bytes: int = 1024,
    keys_per_core: int = 1_000_000,
    mlp: int = 4,
    compute_ns: float = 420.0,
    traffic_class: str = "c2m",
) -> List[RedisWorkload]:
    """Attach ``n_cores`` sharded Redis server cores to a host.

    Returns the workloads; queries/sec comes from summing
    ``queries_completed`` over a measurement window.
    """
    lines_per_query = max(1, value_bytes // CACHELINE_BYTES)
    region_lines = keys_per_core * lines_per_query
    workloads = []
    for i in range(n_cores):
        workload = RedisWorkload(
            host.alloc_region(region_lines),
            lines_per_query=lines_per_query,
            mlp=mlp,
            compute_ns=compute_ns,
            query_mix=query_mix,
            seed=1000 + i,
            traffic_class=traffic_class,
        )
        host.add_core(workload, name=f"redis-{query_mix}")
        workloads.append(workload)
    return workloads
