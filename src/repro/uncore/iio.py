"""Integrated IO controller (IIO).

The IIO bridges the peripheral interconnect (PCIe) to the processor
interconnect. Its read/write buffers are the credit pools of the P2M
domains (§4.1):

* a peripheral needs a free IIO entry (a PCIe credit) to send a
  request; the entry is allocated when the device *initiates* the DMA;
* for DMA writes the entry is freed when the request is admitted to
  the MC's WPQ (or served by the LLC under DDIO) — the P2M-Write
  domain spans IIO→MC;
* for DMA reads (non-posted PCIe transactions) the entry is freed only
  when data returns from DRAM and the completion is issued — the
  P2M-Read domain spans IIO→DRAM.

Both buffers are :class:`~repro.sim.credit.CreditPool`\\ s; a
credit-blocked device registers a one-shot FIFO waiter on the pool it
needs instead of the historical broadcast-to-every-device list, so
wakeups are O(waiters) and served in registration order.

The paper measures ~92 write-buffer entries and >164 read credits on
its servers; those are the defaults here.

Reference implementation note: with ``REPRO_UNCORE`` on the host
rebinds :meth:`IIO.alloc` / :meth:`IIO.release` to the fused SoA
kernel (:mod:`repro.uncore.kernel`), which inlines the pool traffic
over the same :class:`~repro.sim.credit.CreditPool` objects. Any
semantic change here must land in the kernel too.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.records import Request, RequestKind, RequestSource
from repro.telemetry.counters import CounterHub


class IIO:
    """IIO buffers + hop to the CHA."""

    def __init__(
        self,
        sim: Simulator,
        hub: CounterHub,
        write_entries: int = 92,
        read_entries: int = 200,
        t_iio_to_cha: float = 40.0,
    ):
        self._sim = sim
        self._hub = hub
        self.write_entries = write_entries
        self.read_entries = read_entries
        self.t_iio_to_cha = t_iio_to_cha
        #: the P2M credit pools (shared credit runtime); the occupancy
        #: counters stay registered under their historical names.
        self.write_pool = hub.pool("iio.write", write_entries)
        self.read_pool = hub.pool("iio.read", read_entries)
        self.write_occ = self.write_pool.occ
        self.read_occ = self.read_pool.occ
        # Per-traffic-class domain latency stats, cached so the
        # per-request hot path skips the f-string and registry lookup.
        self._write_latency: dict = {}
        self._read_latency: dict = {}
        # Wired by the host: called by request_admission's target.
        self.cha_admission: Optional[Callable[[Request], None]] = None

    # ------------------------------------------------------------------
    # Credits (PCIe credits == IIO buffer entries)
    # ------------------------------------------------------------------

    @property
    def write_alloc_count(self) -> int:
        """Lifetime write-credit acquisitions (lines)."""
        return self.write_pool.alloc_count

    @property
    def write_release_count(self) -> int:
        """Lifetime write-credit releases (lines)."""
        return self.write_pool.free_count

    @property
    def read_alloc_count(self) -> int:
        """Lifetime read-credit acquisitions (lines)."""
        return self.read_pool.alloc_count

    @property
    def read_release_count(self) -> int:
        """Lifetime read-credit releases (lines)."""
        return self.read_pool.free_count

    def has_credit(self, kind: RequestKind, n: int = 1) -> bool:
        """Whether a device may initiate an ``n``-line DMA burst."""
        if kind is RequestKind.WRITE:
            return self.write_pool.has_room(n)
        return self.read_pool.has_room(n)

    def pool_for(self, kind: RequestKind):
        """The credit pool backing one DMA direction (waiter target)."""
        if kind is RequestKind.WRITE:
            return self.write_pool
        return self.read_pool

    def alloc(self, req: Request) -> None:
        """Allocate IIO entries at DMA initiation time (device side)."""
        now = self._sim.now
        req.t_alloc = now
        if req.kind is RequestKind.WRITE:
            self.write_pool.acquire(now, req.lines)
        else:
            self.read_pool.acquire(now, req.lines)

    def release(self, req: Request) -> None:
        """Replenish the credit and record the P2M domain latency.

        Waiters registered on the pool fire *after* the per-class stat
        is recorded, so a woken device observes fully-updated state.
        """
        now = self._sim.now
        req.t_free = now
        traffic_class = req.traffic_class
        lines = req.lines
        if req.kind is RequestKind.WRITE:
            stat = self._write_latency.get(traffic_class)
            if stat is None:
                stat = self._hub.latency(f"domain.p2m_write.{traffic_class}")
                self._write_latency[traffic_class] = stat
            stat.record(now - req.t_alloc, lines)
            self.write_pool.release_held(now, req.t_alloc, lines)
        else:
            stat = self._read_latency.get(traffic_class)
            if stat is None:
                stat = self._hub.latency(f"domain.p2m_read.{traffic_class}")
                self._read_latency[traffic_class] = stat
            stat.record(now - req.t_alloc, lines)
            self.read_pool.release_held(now, req.t_alloc, lines)

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------

    def on_dma_arrival(self, req: Request) -> None:
        """A DMA request arrives from the PCIe link; forward to the CHA."""
        if req.source is not RequestSource.P2M:
            raise ValueError("IIO only carries peripheral traffic")
        if self.cha_admission is None:
            raise RuntimeError("IIO not wired to a CHA")
        self._sim.schedule(self.t_iio_to_cha, self.cha_admission, req)
