"""Integrated IO controller (IIO).

The IIO bridges the peripheral interconnect (PCIe) to the processor
interconnect. Its read/write buffers are the credit pools of the P2M
domains (§4.1):

* a peripheral needs a free IIO entry (a PCIe credit) to send a
  request; the entry is allocated when the device *initiates* the DMA;
* for DMA writes the entry is freed when the request is admitted to
  the MC's WPQ (or served by the LLC under DDIO) — the P2M-Write
  domain spans IIO→MC;
* for DMA reads (non-posted PCIe transactions) the entry is freed only
  when data returns from DRAM and the completion is issued — the
  P2M-Read domain spans IIO→DRAM.

The paper measures ~92 write-buffer entries and >164 read credits on
its servers; those are the defaults here.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.engine import Simulator
from repro.sim.records import Request, RequestKind, RequestSource
from repro.telemetry.counters import CounterHub


class IIO:
    """IIO buffers + hop to the CHA."""

    def __init__(
        self,
        sim: Simulator,
        hub: CounterHub,
        write_entries: int = 92,
        read_entries: int = 200,
        t_iio_to_cha: float = 40.0,
    ):
        self._sim = sim
        self._hub = hub
        self.write_entries = write_entries
        self.read_entries = read_entries
        self.t_iio_to_cha = t_iio_to_cha
        self.write_occ = hub.occupancy("iio.write", write_entries)
        self.read_occ = hub.occupancy("iio.read", read_entries)
        #: lifetime credit-event counts per pool, consumed by the
        #: credit conservation check of :mod:`repro.validate`.
        self.write_alloc_count = 0
        self.write_release_count = 0
        self.read_alloc_count = 0
        self.read_release_count = 0
        self._credit_waiters: List[Callable[[], None]] = []
        # Per-traffic-class domain latency stats, cached so the
        # per-request hot path skips the f-string and registry lookup.
        self._write_latency: dict = {}
        self._read_latency: dict = {}
        # Wired by the host: called by request_admission's target.
        self.cha_admission: Optional[Callable[[Request], None]] = None

    # ------------------------------------------------------------------
    # Credits (PCIe credits == IIO buffer entries)
    # ------------------------------------------------------------------

    def has_credit(self, kind: RequestKind, n: int = 1) -> bool:
        """Whether a device may initiate an ``n``-line DMA burst."""
        if kind is RequestKind.WRITE:
            return self.write_occ.value + n <= self.write_entries
        return self.read_occ.value + n <= self.read_entries

    def alloc(self, req: Request) -> None:
        """Allocate IIO entries at DMA initiation time (device side)."""
        now = self._sim.now
        req.t_alloc = now
        lines = req.lines
        if req.kind is RequestKind.WRITE:
            self.write_alloc_count += lines
            self.write_occ.update(now, lines)
        else:
            self.read_alloc_count += lines
            self.read_occ.update(now, lines)

    def release(self, req: Request) -> None:
        """Replenish the credit and record the P2M domain latency."""
        now = self._sim.now
        req.t_free = now
        traffic_class = req.traffic_class
        lines = req.lines
        if req.kind is RequestKind.WRITE:
            self.write_release_count += lines
            self.write_occ.update(now, -lines)
            stat = self._write_latency.get(traffic_class)
            if stat is None:
                stat = self._hub.latency(f"domain.p2m_write.{traffic_class}")
                self._write_latency[traffic_class] = stat
            stat.record(now - req.t_alloc, lines)
        else:
            self.read_release_count += lines
            self.read_occ.update(now, -lines)
            stat = self._read_latency.get(traffic_class)
            if stat is None:
                stat = self._hub.latency(f"domain.p2m_read.{traffic_class}")
                self._read_latency[traffic_class] = stat
            stat.record(now - req.t_alloc, lines)
        self._notify_waiters()

    def add_credit_waiter(self, callback: Callable[[], None]) -> None:
        """Register a device callback fired whenever a credit frees."""
        self._credit_waiters.append(callback)

    def _notify_waiters(self) -> None:
        for callback in self._credit_waiters:
            callback()

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------

    def on_dma_arrival(self, req: Request) -> None:
        """A DMA request arrives from the PCIe link; forward to the CHA."""
        if req.source is not RequestSource.P2M:
            raise ValueError("IIO only carries peripheral traffic")
        if self.cha_admission is None:
            raise RuntimeError("IIO not wired to a CHA")
        self._sim.schedule(self.t_iio_to_cha, self.cha_admission, req)
