"""Struct-of-arrays uncore kernel (``REPRO_UNCORE``).

After the SoA DRAM channel kernel (``dram/kernel.py``) took the
scheduler off the profile, the remaining per-request cost sits in flat
uncore model code: CHA ingress/stage admission, IIO credit handling
and per-line ``CreditPool`` traffic. :class:`UncoreKernel` gives that
path the same fuse-the-pipeline treatment:

* **one fused admission path** — IIO credit acquire → CHA ingress
  (FCFS, HoL-faithful) → read/write stage → MC/LLC handoff runs as a
  single chain of methods with every ``CreditPool`` /
  ``OccupancyCounter`` operation hand-inlined (statement-for-statement
  copies of the canonical methods, pinned by
  ``tests/test_credit.py::TestInlinedFastPaths``-style replay tests);
* **interned traffic classes + deferred stats** — the per-class CHA
  stats (admission delay, arrivals/completions, read/write latency)
  accumulate into flat arrays indexed by interned class ids and are
  materialized into the :class:`~repro.telemetry.counters.CounterHub`
  registries only at window boundaries (:meth:`sync_stats`). The IIO
  *domain* latency stats stay live: :mod:`repro.ext.hostcc` samples
  ``domain.p2m_write.*`` mid-run every control interval, so deferring
  them would change its control decisions;
* **batched train credits** — with ``REPRO_BURST`` > 1 the device
  pumps and the core issue loop commit one *weighted* pool transaction
  per gathered train instead of one per channel group (see
  ``pcie/device.py`` / ``cpu/core.py``; N same-instant acquires and
  one weighted acquire are bit-identical on every observable of the
  pool — occupancy value, integral, high-water mark, alloc count).

The kernel is an *exact* reimplementation of the reference CHA/IIO
path, not an approximation: every simulator event is filed at the same
instant in the same submission order, every float accumulation happens
in the same order on the same operands, and all accounting goes
through the same pool/counter objects — so results are float-identical
and the fig03/ddio fingerprints hold with the kernel on or off
(``tests/test_uncore_kernel.py`` holds it to that standard across the
REPRO_BURST x REPRO_DDIO x REPRO_VALIDATE x checkpoint-interrupt
matrix). ``REPRO_UNCORE=off`` keeps the historical object-at-a-time
path in ``uncore/cha.py`` / ``uncore/iio.py`` (diagnostic aid: any
divergence with the kernel on is a kernel bug).

Wiring mirrors the DRAM kernel's instance-rebinding idiom: the host
constructs one kernel per :class:`~repro.uncore.cha.CHA`/IIO pair and
the kernel rebinds the hot entry points (``request_admission``,
``_pump_ingress``, deliveries, queue-space callbacks, ``iio.alloc`` /
``iio.release``) onto the component instances, so cold-path CHA
methods that re-enter the hot path (LLC hits, writeback spawns)
resolve to the kernel automatically and callers pay zero delegation
overhead. The kernel state rides inside the host pickle, so
checkpoints (``sim/checkpoint.py``) snapshot/restore the arrays for
free; ``REPRO_UNCORE`` is hashed into the checkpoint knob fingerprint
and the run-cache key so a blob or cache entry never silently crosses
implementations.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.sim.records import Request, RequestKind, RequestSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.uncore.cha import CHA
    from repro.uncore.iio import IIO


def uncore_enabled() -> bool:
    """Whether new hosts use the SoA uncore kernel (``REPRO_UNCORE``).

    Defaults to on; ``off``/``0``/``no``/``false`` selects the
    object-at-a-time reference path. Invalid values raise so typos
    don't silently change which implementation runs.
    """
    raw = os.environ.get("REPRO_UNCORE", "on").strip().lower()
    if raw in ("", "on", "1", "yes", "true"):
        return True
    if raw in ("off", "0", "no", "false"):
        return False
    raise ValueError(f"REPRO_UNCORE must be on/off, got {raw!r}")


class UncoreKernel:
    """Fused SoA hot path for one CHA + IIO pair.

    Shares every queue, pool and counter object with the reference
    components (the deques/pools *are* the reference ones), so the
    cold paths, the validator's pool walks and checkpointing see one
    consistent world regardless of which implementation ran.
    """

    __slots__ = (
        "_sim",
        "_hub",
        "_cha",
        "_iio",
        # shared hot structures (the same objects the reference uses)
        "_ingress",
        "_read_backlog",
        "_write_backlog",
        "_channels",
        "llc",
        "ddio_enabled",
        # timing constants
        "t_cha_to_mc",
        "t_llc_hit",
        # pools / counters (same objects as the reference path)
        "ingress_occ",
        "read_stage",
        "write_waiting",
        "_inflight_c2m",
        "_inflight_p2m",
        "write_pool",
        "read_pool",
        # per-channel prebound admission state
        "_rpq_pools",
        "_wpq_pools",
        "_track_full",
        # live per-class IIO domain stats (mid-run readers: ext.hostcc)
        "_iio_wr_stats",
        "_iio_rd_stats",
        # interned traffic classes + deferred flat per-class stats
        "cls_ids",
        "cls_names",
        "adm_total",
        "adm_count",
        "adm_max",
        "arr_lines",
        "comp_lines",
        "rd_total",
        "rd_count",
        "rd_max",
        "wr_total",
        "wr_count",
        "wr_max",
        # incrementally-maintained structural counters (cachelines)
        "ingress_lines",
        "read_backlog_lines",
        "write_backlog_lines",
    )

    def __init__(self, cha: "CHA", iio: "IIO"):
        self._sim = cha._sim
        self._hub = cha._hub
        self._cha = cha
        self._iio = iio
        self._ingress = cha._ingress
        self._read_backlog = cha._read_backlog
        self._write_backlog = cha._write_backlog
        self._channels = cha._channels
        self.llc = cha.llc
        self.ddio_enabled = cha.ddio_enabled
        self.t_cha_to_mc = cha.t_cha_to_mc
        self.t_llc_hit = cha.t_llc_hit
        self.ingress_occ = cha.ingress_occ
        self.read_stage = cha.read_stage
        self.write_waiting = cha.write_waiting
        self._inflight_c2m = cha._inflight_reads[RequestSource.C2M]
        self._inflight_p2m = cha._inflight_reads[RequestSource.P2M]
        self.write_pool = iio.write_pool
        self.read_pool = iio.read_pool
        self._rpq_pools = [ch.rpq_pool for ch in self._channels]
        self._wpq_pools = [ch.wpq_pool for ch in self._channels]
        self._track_full = [ch._track_wpq_full for ch in self._channels]
        # Share the IIO's lazy stat caches: the hub get-or-creates, so
        # whichever path touches a class first binds the same object
        # in the same registry insertion order (DomainTracker.snapshot
        # sums by prefix in that order, which is float-sensitive).
        self._iio_wr_stats = iio._write_latency
        self._iio_rd_stats = iio._read_latency
        self.cls_ids: dict = {}
        self.cls_names: list = []
        self.adm_total: list = []
        self.adm_count: list = []
        self.adm_max: list = []
        self.arr_lines: list = []
        self.comp_lines: list = []
        self.rd_total: list = []
        self.rd_count: list = []
        self.rd_max: list = []
        self.wr_total: list = []
        self.wr_count: list = []
        self.wr_max: list = []
        # Robust against late construction: start from a walk (the
        # host builds the kernel before any traffic, so these are 0).
        self.ingress_lines = sum(req.lines for req, _ in self._ingress)
        self.read_backlog_lines = sum(
            req.lines for q in self._read_backlog for req in q
        )
        self.write_backlog_lines = sum(
            req.lines for q in self._write_backlog for req in q
        )
        # Rebind the hot path onto the component instances (the DRAM
        # kernel's idiom): cold CHA methods that call
        # ``self._pump_ingress()`` / ``self.request_admission()``
        # resolve to the kernel through the instance dict.
        cha.kernel = self
        cha.request_admission = self.request_admission
        cha._pump_ingress = self._pump_ingress
        cha._deliver_read = self._deliver_read
        cha._deliver_write = self._deliver_write
        cha._on_rpq_space = self._on_rpq_space
        cha._on_wpq_space = self._on_wpq_space
        cha._on_read_serviced = self._on_read_serviced
        iio.alloc = self.iio_alloc
        iio.release = self.iio_release
        for channel in self._channels:
            channel.on_rpq_space = self._on_rpq_space
            channel.on_wpq_space = self._on_wpq_space

    # ------------------------------------------------------------------
    # Class interning
    # ------------------------------------------------------------------

    def _intern(self, name: str) -> int:
        """Assign the next class id and grow every parallel array."""
        cid = len(self.cls_names)
        self.cls_ids[name] = cid
        self.cls_names.append(name)
        self.adm_total.append(0.0)
        self.adm_count.append(0)
        self.adm_max.append(0.0)
        self.arr_lines.append(0)
        self.comp_lines.append(0)
        self.rd_total.append(0.0)
        self.rd_count.append(0)
        self.rd_max.append(0.0)
        self.wr_total.append(0.0)
        self.wr_count.append(0)
        self.wr_max.append(0.0)
        return cid

    # ------------------------------------------------------------------
    # Ingress (rebound over CHA.request_admission / CHA._pump_ingress)
    # ------------------------------------------------------------------

    def request_admission(self, req: Request) -> None:
        """A request arrives at the CHA (from a core or the IIO)."""
        now = self._sim.now
        lines = req.lines
        if not self._ingress:
            # Empty ingress and a free stage: admission is synchronous.
            read = req.kind is RequestKind.READ
            pool = self.read_stage if read else self.write_waiting
            if pool.occ.value + lines <= pool.capacity:
                # The reference keeps an occupancy pulse (+n then -n at
                # the same instant) so the integral and high-water mark
                # stay identical to the queued path; inlined
                # OccupancyCounter.update x2 (capacity None: no
                # full-time tracking).
                occ = self.ingress_occ
                dt = now - occ._last_t
                if dt > 0:
                    occ._integral += occ.value * dt
                    occ._last_t = now
                value = occ.value + lines
                if value > occ.max_seen:
                    occ.max_seen = value
                # _admit, fused with the admission delay pinned to 0.0:
                # `total += 0.0 * lines` cannot change an accumulator
                # that stays >= +0.0, and `0.0 > max` is always false,
                # so only the line counts move (bit-exact vs the
                # reference's record(0.0, lines)).
                req.t_cha_admit = now
                cid = self.cls_ids.get(req.traffic_class)
                if cid is None:
                    cid = self._intern(req.traffic_class)
                req.ucls_id = cid
                self.adm_count[cid] += lines
                self.arr_lines[cid] += lines
                if req.on_cha_admit is not None:
                    req.on_cha_admit(req)
                if read:
                    self._admit_read(req, cid, now)
                else:
                    self._admit_write(req, cid, now)
                return
        self._ingress.append((req, now))
        self.ingress_lines += lines
        # OccupancyCounter.update(now, +lines), inlined.
        occ = self.ingress_occ
        dt = now - occ._last_t
        if dt > 0:
            occ._integral += occ.value * dt
            occ._last_t = now
        value = occ.value + lines
        occ.value = value
        if value > occ.max_seen:
            occ.max_seen = value
        self._pump_ingress()

    def _pump_ingress(self) -> None:
        """Admit ingress heads while their type stage has room (FCFS:
        a blocked head blocks everyone behind it)."""
        ingress = self._ingress
        if not ingress:
            return
        read_pool = self.read_stage
        write_pool = self.write_waiting
        occ = self.ingress_occ
        while ingress:
            req, t_arrival = ingress[0]
            lines = req.lines
            if req.kind is RequestKind.READ:
                if read_pool.occ.value + lines > read_pool.capacity:
                    return
            elif write_pool.occ.value + lines > write_pool.capacity:
                return
            ingress.popleft()
            self.ingress_lines -= lines
            # OccupancyCounter.update(now, -lines), inlined. ``now`` is
            # re-read per head: _admit can re-enter the pump (writeback
            # spawns), but the clock cannot advance inside one event.
            now = self._sim.now
            dt = now - occ._last_t
            if dt > 0:
                occ._integral += occ.value * dt
                occ._last_t = now
            occ.value -= lines
            self._admit(req, t_arrival, now)

    def _admit(self, req: Request, t_arrival: float, now: float) -> None:
        req.t_cha_admit = now
        traffic_class = req.traffic_class
        cid = self.cls_ids.get(traffic_class)
        if cid is None:
            cid = self._intern(traffic_class)
        req.ucls_id = cid
        lines = req.lines
        # LatencyStat.record(delay, lines) + arrivals, deferred into
        # the flat arrays (``x * 1`` is bit-exact, so the weighted
        # accumulation covers the n == 1 branch too).
        latency = now - t_arrival
        self.adm_total[cid] += latency * lines
        self.adm_count[cid] += lines
        if latency > self.adm_max[cid]:
            self.adm_max[cid] = latency
        self.arr_lines[cid] += lines
        if req.on_cha_admit is not None:
            req.on_cha_admit(req)
        if req.kind is RequestKind.READ:
            self._admit_read(req, cid, now)
        else:
            self._admit_write(req, cid, now)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _admit_read(self, req: Request, cid: int, now: float) -> None:
        llc = self.llc
        if llc is not None:
            hit, evicted_dirty = llc.lookup_read(req.line_addr)
            if hit:
                self._sim.schedule(
                    self.t_llc_hit, self._cha._complete_llc_read, req
                )
                return
            if evicted_dirty is not None:
                # Re-enters via request_admission (rebound to the
                # kernel), possibly pumping ingress reentrantly —
                # exactly the reference interleaving.
                self._cha._spawn_writeback(evicted_dirty, req.traffic_class)
        lines = req.lines
        # CreditPool.acquire, inlined (soft pool: uncapped counter).
        # Pinned by tests/test_credit.py::TestInlinedFastPaths.
        pool = self.read_stage
        pool.alloc_count += lines
        occ = pool.occ
        dt = now - occ._last_t
        if dt > 0:
            occ._integral += occ.value * dt
            occ._last_t = now
        value = occ.value + lines
        occ.value = value
        if value > occ.max_seen:
            occ.max_seen = value
        # In-flight read tracking, inlined OccupancyCounter.update.
        inflight = (
            self._inflight_c2m
            if req.source is RequestSource.C2M
            else self._inflight_p2m
        )
        dt = now - inflight._last_t
        if dt > 0:
            inflight._integral += inflight.value * dt
            inflight._last_t = now
        value = inflight.value + lines
        inflight.value = value
        if value > inflight.max_seen:
            inflight.max_seen = value
        req.on_serviced = self._on_read_serviced
        channel_id = req.channel_id
        rpq = self._rpq_pools[channel_id]
        # Channel.can_accept_read + reserve_read, inlined (the reserve
        # re-check cannot fail here: checked in the same expression).
        if rpq.occ.value + rpq.reserved + lines <= rpq.capacity:
            rpq.reserved += lines
            self._sim.schedule(self.t_cha_to_mc, self._deliver_read, req)
        else:
            self._read_backlog[channel_id].append(req)
            self.read_backlog_lines += lines

    def _deliver_read(self, req: Request) -> None:
        now = self._sim.now
        lines = req.lines
        # CreditPool.release, inlined (the read stage has no waiters
        # registered, but the drain check is kept for exactness).
        # Pinned by tests/test_credit.py::TestInlinedFastPaths.
        pool = self.read_stage
        pool.free_count += lines
        occ = pool.occ
        dt = now - occ._last_t
        if dt > 0:
            occ._integral += occ.value * dt
            occ._last_t = now
        occ.value -= lines
        if pool._waiters:
            pool._drain_waiters()
        self._channels[req.channel_id].enqueue_read(req)
        if self._ingress:
            self._pump_ingress()

    def _on_read_serviced(self, req: Request) -> None:
        now = self._sim.now
        lines = req.lines
        inflight = (
            self._inflight_c2m
            if req.source is RequestSource.C2M
            else self._inflight_p2m
        )
        dt = now - inflight._last_t
        if dt > 0:
            inflight._integral += inflight.value * dt
            inflight._last_t = now
        inflight.value -= lines
        latency = (req.t_service - req.t_cha_admit) + self.t_cha_to_mc
        cid = req.ucls_id
        self.rd_total[cid] += latency * lines
        self.rd_count[cid] += lines
        if latency > self.rd_max[cid]:
            self.rd_max[cid] = latency
        self.comp_lines[cid] += lines

    def _on_rpq_space(self, channel_id: int) -> None:
        backlog = self._read_backlog[channel_id]
        if not backlog:
            return
        rpq = self._rpq_pools[channel_id]
        schedule = self._sim.schedule
        t_cha_to_mc = self.t_cha_to_mc
        while backlog:
            lines = backlog[0].lines
            if rpq.occ.value + rpq.reserved + lines > rpq.capacity:
                return
            req = backlog.popleft()
            self.read_backlog_lines -= lines
            rpq.reserved += lines
            schedule(t_cha_to_mc, self._deliver_read, req)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def _admit_write(self, req: Request, cid: int, now: float) -> None:
        llc = self.llc
        if (
            llc is not None
            and self.ddio_enabled
            and req.source is RequestSource.P2M
        ):
            # DDIO: the DMA write terminates at the LLC; a dirty
            # eviction becomes a memory write on a fresh request, which
            # inherits the triggering class id (same traffic class).
            outcome, evicted_dirty = llc.write_allocate_ddio(req.line_addr)
            self._sim.schedule(
                self.t_llc_hit, self._cha._complete_ddio_write, req
            )
            if evicted_dirty is None:
                return
            req = self._cha._make_writeback(evicted_dirty, req.traffic_class)
            req.ucls_id = cid
        elif llc is not None and req.source is RequestSource.C2M:
            if llc.writeback_update(req.line_addr):
                self._sim.schedule(
                    0.0, self._cha._complete_absorbed_write, req
                )
                return
        lines = req.lines
        # CreditPool.acquire, inlined (soft pool: uncapped counter).
        pool = self.write_waiting
        pool.alloc_count += lines
        occ = pool.occ
        dt = now - occ._last_t
        if dt > 0:
            occ._integral += occ.value * dt
            occ._last_t = now
        value = occ.value + lines
        occ.value = value
        if value > occ.max_seen:
            occ.max_seen = value
        channel_id = req.channel_id
        wpq = self._wpq_pools[channel_id]
        # Channel.can_accept_write + reserve_write, inlined (the WPQ
        # fullness tracker runs exactly as in the reference reserve).
        if wpq.occ.value + wpq.reserved + lines <= wpq.capacity:
            wpq.reserved += lines
            self._track_full[channel_id]()
            self._sim.schedule(self.t_cha_to_mc, self._deliver_write, req)
        else:
            self._write_backlog[channel_id].append(req)
            self.write_backlog_lines += lines

    def _deliver_write(self, req: Request) -> None:
        now = self._sim.now
        lines = req.lines
        # CreditPool.release, inlined (hot: every memory write).
        # Pinned by tests/test_credit.py::TestInlinedFastPaths.
        pool = self.write_waiting
        pool.free_count += lines
        occ = pool.occ
        dt = now - occ._last_t
        if dt > 0:
            occ._integral += occ.value * dt
            occ._last_t = now
        occ.value -= lines
        if pool._waiters:
            pool._drain_waiters()
        latency = now - req.t_cha_admit
        cid = req.ucls_id
        self.wr_total[cid] += latency * lines
        self.wr_count[cid] += lines
        if latency > self.wr_max[cid]:
            self.wr_max[cid] = latency
        self._channels[req.channel_id].enqueue_write(req)
        self.comp_lines[cid] += lines
        if self._ingress:
            self._pump_ingress()

    def _on_wpq_space(self, channel_id: int) -> None:
        backlog = self._write_backlog[channel_id]
        if not backlog:
            return
        wpq = self._wpq_pools[channel_id]
        track_full = self._track_full[channel_id]
        schedule = self._sim.schedule
        t_cha_to_mc = self.t_cha_to_mc
        moved = False
        while backlog:
            lines = backlog[0].lines
            if wpq.occ.value + wpq.reserved + lines > wpq.capacity:
                break
            req = backlog.popleft()
            self.write_backlog_lines -= lines
            wpq.reserved += lines
            track_full()
            schedule(t_cha_to_mc, self._deliver_write, req)
            moved = True
        if moved:
            self._pump_ingress()

    # ------------------------------------------------------------------
    # IIO credits (rebound over IIO.alloc / IIO.release)
    # ------------------------------------------------------------------

    def iio_alloc(self, req: Request) -> None:
        """Allocate IIO entries at DMA initiation time (device side)."""
        now = self._sim.now
        req.t_alloc = now
        lines = req.lines
        pool = (
            self.write_pool
            if req.kind is RequestKind.WRITE
            else self.read_pool
        )
        # CreditPool.acquire, inlined (hard pool: keep the full-time
        # branch and the capacity guard of OccupancyCounter.update).
        pool.alloc_count += lines
        occ = pool.occ
        value = occ.value
        capacity = occ.capacity
        dt = now - occ._last_t
        if dt > 0:
            occ._integral += value * dt
            if value >= capacity:
                occ._full_time += dt
            occ._last_t = now
        value += lines
        occ.value = value
        if value > capacity:
            raise ValueError(f"occupancy {value} exceeds capacity {capacity}")
        if value > occ.max_seen:
            occ.max_seen = value

    def iio_release(self, req: Request) -> None:
        """Replenish the credit and record the P2M domain latency.

        Both latency stats stay *live* (not deferred):
        :mod:`repro.ext.hostcc` samples ``domain.p2m_write.*`` totals
        mid-run, and the pool hold-time stat feeds the same-window
        domain snapshots. Waiters fire after the stats, exactly as in
        the reference, so a woken device observes fully-updated state.
        """
        now = self._sim.now
        req.t_free = now
        traffic_class = req.traffic_class
        lines = req.lines
        if req.kind is RequestKind.WRITE:
            stat = self._iio_wr_stats.get(traffic_class)
            if stat is None:
                stat = self._hub.latency(f"domain.p2m_write.{traffic_class}")
                self._iio_wr_stats[traffic_class] = stat
            pool = self.write_pool
        else:
            stat = self._iio_rd_stats.get(traffic_class)
            if stat is None:
                stat = self._hub.latency(f"domain.p2m_read.{traffic_class}")
                self._iio_rd_stats[traffic_class] = stat
            pool = self.read_pool
        latency = now - req.t_alloc
        # LatencyStat.record(latency, lines), inlined, twice: the
        # per-class domain stat, then the pool hold-time stat — the
        # same order as IIO.release -> CreditPool.release_held.
        if lines == 1:
            stat.total += latency
            stat.count += 1
        else:
            stat.total += latency * lines
            stat.count += lines
        if latency > stat.max_seen:
            stat.max_seen = latency
        held = pool.latency
        if lines == 1:
            held.total += latency
            held.count += 1
        else:
            held.total += latency * lines
            held.count += lines
        if latency > held.max_seen:
            held.max_seen = latency
        # CreditPool release tail, inlined (hard pool).
        pool.free_count += lines
        occ = pool.occ
        value = occ.value
        dt = now - occ._last_t
        if dt > 0:
            occ._integral += value * dt
            if value >= occ.capacity:
                occ._full_time += dt
            occ._last_t = now
        occ.value = value - lines
        if pool._waiters:
            pool._drain_waiters()

    # ------------------------------------------------------------------
    # Window boundaries
    # ------------------------------------------------------------------

    def sync_stats(self) -> None:
        """Materialize the deferred arrays into the hub registries.

        Assignment, not accumulation: the arrays hold the full totals
        since the last window reset and nothing else writes these
        stats, so syncing is idempotent (safe to call repeatedly
        within one window).
        """
        cha = self._cha
        delays = cha._admission_delay
        arrivals = cha._arrival_rates
        completions = cha._completion_rates
        read_lat = cha._read_latency
        write_lat = cha._write_latency
        for cid, name in enumerate(self.cls_names):
            delay = delays.get(name)
            if delay is None:
                cha._class_stats(name)
                delay = delays[name]
            delay.total = self.adm_total[cid]
            delay.count = self.adm_count[cid]
            delay.max_seen = self.adm_max[cid]
            arrivals[name].count = self.arr_lines[cid]
            completions[name].count = self.comp_lines[cid]
            stat = read_lat[name]
            stat.total = self.rd_total[cid]
            stat.count = self.rd_count[cid]
            stat.max_seen = self.rd_max[cid]
            stat = write_lat[name]
            stat.total = self.wr_total[cid]
            stat.count = self.wr_count[cid]
            stat.max_seen = self.wr_max[cid]

    def reset_window(self) -> None:
        """Zero the deferred accumulators for a fresh measurement
        window (the hub reset zeroes the materialized registries; the
        interning table survives, mirroring the DRAM kernel)."""
        for cid in range(len(self.cls_names)):
            self.adm_total[cid] = 0.0
            self.adm_count[cid] = 0
            self.adm_max[cid] = 0.0
            self.arr_lines[cid] = 0
            self.comp_lines[cid] = 0
            self.rd_total[cid] = 0.0
            self.rd_count[cid] = 0
            self.rd_max[cid] = 0.0
            self.wr_total[cid] = 0.0
            self.wr_count[cid] = 0
            self.wr_max[cid] = 0.0

    # ------------------------------------------------------------------
    # Introspection (REPRO_VALIDATE probe)
    # ------------------------------------------------------------------

    def verify_consistency(self) -> int:
        """Cross-check incremental counters, pools and intern tables
        against direct walks; returns the number of checks performed
        (raises ``AssertionError`` naming the first that fails)."""
        checks = 0
        ingress_walk = sum(req.lines for req, _ in self._ingress)
        assert ingress_walk == self.ingress_lines, (
            f"ingress line cache drifted: walk {ingress_walk} != "
            f"cached {self.ingress_lines}"
        )
        checks += 1
        assert self.ingress_occ.value == self.ingress_lines, (
            f"ingress occupancy {self.ingress_occ.value} disagrees with "
            f"the FCFS queue ({self.ingress_lines} lines)"
        )
        checks += 1
        read_walk = sum(req.lines for q in self._read_backlog for req in q)
        assert read_walk == self.read_backlog_lines, (
            f"read-backlog line cache drifted: walk {read_walk} != "
            f"cached {self.read_backlog_lines}"
        )
        checks += 1
        write_walk = sum(req.lines for q in self._write_backlog for req in q)
        assert write_walk == self.write_backlog_lines, (
            f"write-backlog line cache drifted: walk {write_walk} != "
            f"cached {self.write_backlog_lines}"
        )
        checks += 1
        assert self.read_stage.occ.value >= self.read_backlog_lines, (
            f"more backlogged read lines ({self.read_backlog_lines}) than "
            f"read-stage entries ({self.read_stage.occ.value})"
        )
        checks += 1
        assert self.write_waiting.occ.value >= self.write_backlog_lines, (
            f"more backlogged write lines ({self.write_backlog_lines}) than "
            f"write-stage entries ({self.write_waiting.occ.value})"
        )
        checks += 1
        # Interning bijection + parallel-array integrity.
        assert len(self.cls_ids) == len(self.cls_names), (
            "intern table size mismatch"
        )
        for name, cid in self.cls_ids.items():
            assert self.cls_names[cid] == name, (
                f"intern table corrupt: {name!r} -> {cid} -> "
                f"{self.cls_names[cid]!r}"
            )
        n = len(self.cls_names)
        for arr_name in (
            "adm_total", "adm_count", "adm_max", "arr_lines", "comp_lines",
            "rd_total", "rd_count", "rd_max", "wr_total", "wr_count",
            "wr_max",
        ):
            assert len(getattr(self, arr_name)) == n, (
                f"parallel array {arr_name} has {len(getattr(self, arr_name))} "
                f"entries for {n} interned classes"
            )
        checks += 1
        # Pool occupancy vs. lifetime accounting, for every pool the
        # kernel's inlined fast paths touch.
        for pool in (
            self.write_pool,
            self.read_pool,
            self.read_stage,
            self.write_waiting,
        ):
            drift = pool.alloc_count - pool.free_count
            assert drift == pool.occ.value, (
                f"{pool.name}: allocs({pool.alloc_count}) - "
                f"frees({pool.free_count}) != occupancy({pool.occ.value})"
            )
            checks += 1
        return checks
