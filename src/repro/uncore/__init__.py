"""Processor-interconnect substrate: LLC (+DDIO), CHA, and IIO.

These are the intermediate nodes of the host network (Fig. 4): the
Caching/Home Agent that abstracts the LLC and memory behind coherence,
the Last-Level Cache with Intel DDIO's restricted DMA ways, and the
Integrated IO controller whose read/write buffers bound the credits of
the P2M domains (§4.1).
"""

from repro.uncore.llc import LastLevelCache
from repro.uncore.cha import CHA
from repro.uncore.iio import IIO

__all__ = ["LastLevelCache", "CHA", "IIO"]
