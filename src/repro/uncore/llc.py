"""Last-level cache with Intel DDIO's restricted allocation ways.

DDIO lets DMA writes allocate directly into the LLC instead of going
to memory — but only into a small number of ways (2 on the paper's
servers, ref. [18]). The paper's P2M workload uses buffers larger than
that slice, so in steady state every DMA write misses, allocates, and
evicts a dirty DMA line — memory write bandwidth is unchanged versus
DDIO-off (§2.1). Smaller buffers fit and are absorbed entirely.

The model is a set-associative tag store with per-line dirty and
is-DMA bits. DMA allocations respect the DDIO way budget by evicting
the LRU *DMA-tagged* line of the set once the budget is exceeded;
core fills use plain LRU over all ways.

The DDIO slice doubles as the fifth contention domain ("From RDMA to
RDCA", PAPERS.md): a :class:`~repro.sim.credit.CreditPool` attached via
:meth:`LastLevelCache.attach_ddio_pool` treats each DMA-tagged line as
a held credit — acquired when a DMA line is installed (or a resident
core line is converted by a DDIO hit), released when the line is
evicted — so the slice surfaces the same (C, L, T) snapshot as the
four Fig. 5 domains, with L the DMA-line residency time.

``REPRO_DDIO`` (see :func:`ddio_forced`) force-enables or -disables
DDIO regardless of the :class:`~repro.topology.presets.HostConfig`,
so any existing experiment can be re-run with the cache last mile on.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.sim.records import CACHELINE_BYTES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.credit import CreditPool
    from repro.telemetry.counters import LatencyStat


def ddio_forced() -> Optional[bool]:
    """The ``REPRO_DDIO`` override: True/False to force DDIO on/off,
    ``None`` (unset or ``config``) to defer to the host config.

    Invalid values raise so typos don't silently change which P2M
    write path runs.
    """
    raw = os.environ.get("REPRO_DDIO", "").strip().lower()
    if raw in ("", "config"):
        return None
    if raw in ("1", "on", "yes", "true"):
        return True
    if raw in ("0", "off", "no", "false"):
        return False
    raise ValueError(f"REPRO_DDIO must be 0/1 (or unset), got {raw!r}")


class _Line:
    __slots__ = ("addr", "dirty", "is_dma", "t_install")

    def __init__(self, addr: int, dirty: bool, is_dma: bool):
        self.addr = addr
        self.dirty = dirty
        self.is_dma = is_dma
        #: when the line last became DMA-tagged (credit-hold start).
        self.t_install = 0.0


def _zero_clock() -> float:
    """Default clock before :meth:`LastLevelCache.attach_ddio_pool`."""
    return 0.0


class LastLevelCache:
    """Set-associative LLC model with a DDIO way budget.

    Args:
        size_bytes: total capacity.
        ways: associativity.
        ddio_ways: maximum ways per set that DMA lines may occupy.

    Sets are kept as MRU-first lists of :class:`_Line`.
    """

    def __init__(self, size_bytes: int, ways: int, ddio_ways: int = 2):
        if size_bytes <= 0 or ways <= 0:
            raise ValueError("size and ways must be positive")
        if ddio_ways < 0 or ddio_ways > ways:
            raise ValueError("ddio_ways must be within [0, ways]")
        self.ways = ways
        self.ddio_ways = ddio_ways
        self.n_sets = max(1, size_bytes // (ways * CACHELINE_BYTES))
        self._sets: List[List[_Line]] = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0
        # Optional credit-domain tracking (attach_ddio_pool): every
        # DMA-tagged line holds one llc.ddio credit while resident.
        self._ddio_pool: Optional["CreditPool"] = None
        self._ddio_latency: Optional["LatencyStat"] = None
        # Module-level function, not a lambda: the LLC must survive
        # checkpoint pickling (sim/checkpoint.py).
        self._clock: Callable[[], float] = _zero_clock

    @property
    def size_bytes(self) -> int:
        """Effective capacity after set rounding."""
        return self.n_sets * self.ways * CACHELINE_BYTES

    @property
    def ddio_capacity_bytes(self) -> int:
        """Capacity of the slice DDIO is allowed to use."""
        return self.n_sets * self.ddio_ways * CACHELINE_BYTES

    def attach_ddio_pool(
        self,
        pool: "CreditPool",
        clock: Callable[[], float],
        latency: Optional["LatencyStat"] = None,
    ) -> None:
        """Track DMA-line residency on a credit pool (the fifth domain).

        ``pool`` must be ``soft``: a DDIO hit on a resident core line
        converts it to DMA without evicting, so occupancy may exceed
        the ``ddio_capacity_bytes / 64`` admission budget. ``latency``
        is the hub stat the :class:`~repro.sim.credit.DomainTracker`
        aggregates (``domain.llc_ddio.*``); residency times are
        recorded there *and* on the pool's own hold-time stat.
        """
        self._ddio_pool = pool
        self._ddio_latency = latency
        self._clock = clock

    # ------------------------------------------------------------------
    # Credit-domain hooks (no-ops until attach_ddio_pool)
    # ------------------------------------------------------------------

    def _dma_installed(self, line: _Line, now: float) -> None:
        line.t_install = now
        self._ddio_pool.acquire(now, 1)

    def _dma_evicted(self, line: _Line, now: float) -> None:
        if self._ddio_latency is not None:
            self._ddio_latency.record(now - line.t_install, 1)
        self._ddio_pool.release_held(now, line.t_install, 1)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def _set_for(self, line_addr: int) -> List[_Line]:
        return self._sets[line_addr % self.n_sets]

    def _find(self, lines: List[_Line], addr: int) -> Optional[int]:
        for i, line in enumerate(lines):
            if line.addr == addr:
                return i
        return None

    def lookup_read(self, line_addr: int, allocate: bool = True) -> Tuple[bool, Optional[int]]:
        """Read lookup. Returns ``(hit, evicted_dirty_addr)``.

        On a miss with ``allocate``, the fetched line is installed
        clean via LRU; if the victim is dirty its address is returned
        so the caller can issue the writeback.
        """
        lines = self._set_for(line_addr)
        idx = self._find(lines, line_addr)
        if idx is not None:
            self.hits += 1
            lines.insert(0, lines.pop(idx))
            return True, None
        self.misses += 1
        evicted = None
        if allocate:
            evicted = self._install(lines, _Line(line_addr, dirty=False, is_dma=False))
        return False, evicted

    def write_allocate_ddio(self, line_addr: int) -> Tuple[str, Optional[int]]:
        """DDIO DMA write. Returns ``(outcome, evicted_dirty_addr)``.

        Outcomes: ``"hit"`` (updated in place), ``"alloc"`` (installed
        dirty, possibly evicting — the steady-state thrash path for
        large buffers).
        """
        lines = self._set_for(line_addr)
        idx = self._find(lines, line_addr)
        if idx is not None:
            self.hits += 1
            line = lines.pop(idx)
            line.dirty = True
            if not line.is_dma:
                # A resident core line converted by a DDIO write starts
                # holding a slice credit now (beyond the way budget —
                # the reason the llc.ddio pool is soft).
                line.is_dma = True
                if self._ddio_pool is not None:
                    self._dma_installed(line, self._clock())
            lines.insert(0, line)
            return "hit", None
        self.misses += 1
        evicted = self._install_dma(lines, _Line(line_addr, dirty=True, is_dma=True))
        return "alloc", evicted

    def writeback_update(self, line_addr: int) -> bool:
        """Mark a resident line dirty (core writeback). Returns hit."""
        lines = self._set_for(line_addr)
        idx = self._find(lines, line_addr)
        if idx is None:
            return False
        line = lines.pop(idx)
        line.dirty = True
        lines.insert(0, line)
        return True

    # ------------------------------------------------------------------
    # Installs
    # ------------------------------------------------------------------

    def _install(self, lines: List[_Line], new: _Line) -> Optional[int]:
        """Plain LRU install; returns evicted dirty address if any."""
        evicted_dirty = None
        if len(lines) >= self.ways:
            victim = lines.pop()
            if victim.dirty:
                evicted_dirty = victim.addr
            if victim.is_dma and self._ddio_pool is not None:
                self._dma_evicted(victim, self._clock())
        lines.insert(0, new)
        return evicted_dirty

    def _install_dma(self, lines: List[_Line], new: _Line) -> Optional[int]:
        """DDIO install: victims come from the DMA way budget first."""
        dma_count = sum(1 for line in lines if line.is_dma)
        evicted_dirty = None
        pool = self._ddio_pool
        now = self._clock() if pool is not None else 0.0
        if dma_count >= self.ddio_ways:
            # Evict the LRU DMA line (scan from the LRU end).
            for i in range(len(lines) - 1, -1, -1):
                if lines[i].is_dma:
                    victim = lines.pop(i)
                    if victim.dirty:
                        evicted_dirty = victim.addr
                    if pool is not None:
                        self._dma_evicted(victim, now)
                    break
        elif len(lines) >= self.ways:
            victim = lines.pop()
            if victim.dirty:
                evicted_dirty = victim.addr
            if victim.is_dma and pool is not None:
                self._dma_evicted(victim, now)
        if pool is not None:
            self._dma_installed(new, now)
        lines.insert(0, new)
        return evicted_dirty

    # ------------------------------------------------------------------
    # Prewarm
    # ------------------------------------------------------------------

    def prewarm_ddio(self, base_line: int) -> None:
        """Fill every set's DDIO way budget with dirty DMA lines.

        The paper measures *steady-state* behaviour, where the DDIO
        ways have long been full of in-flight DMA data and every new
        DMA allocation evicts a dirty line. Reaching that state
        organically takes hundreds of microseconds of simulated DMA;
        prewarming jumps straight to it. ``base_line`` should point at
        an address range no workload uses; it is rounded down to a
        multiple of ``n_sets`` so every synthetic address is
        set-congruent (``addr % n_sets`` names the set holding it —
        the :meth:`verify_tags` invariant).

        Idempotent: re-prewarming a cache that already holds the
        synthetic lines re-dirties them in place instead of installing
        duplicate tags. Victims (core-LRU first) are evicted per
        install, exactly as organic DMA traffic would evict them.
        """
        base = base_line - base_line % self.n_sets
        pool = self._ddio_pool
        now = self._clock() if pool is not None else 0.0
        n_sets = self.n_sets
        for set_index, lines in enumerate(self._sets):
            for k in range(self.ddio_ways):
                addr = base + set_index + k * n_sets
                idx = self._find(lines, addr)
                if idx is not None:
                    line = lines.pop(idx)
                    line.dirty = True
                    if not line.is_dma:
                        line.is_dma = True
                        if pool is not None:
                            self._dma_installed(line, now)
                    lines.insert(0, line)
                    continue
                if len(lines) >= self.ways:
                    # Evict the LRU core line; fall back to the LRU DMA
                    # line only when every way is already DMA-tagged.
                    victim_idx = len(lines) - 1
                    for i in range(len(lines) - 1, -1, -1):
                        if not lines[i].is_dma:
                            victim_idx = i
                            break
                    victim = lines.pop(victim_idx)
                    if victim.is_dma and pool is not None:
                        self._dma_evicted(victim, now)
                new = _Line(addr, dirty=True, is_dma=True)
                if pool is not None:
                    self._dma_installed(new, now)
                lines.insert(0, new)

    # ------------------------------------------------------------------
    # Invariants / introspection
    # ------------------------------------------------------------------

    def dma_lines(self) -> int:
        """Resident DMA-tagged lines (the llc.ddio credits held)."""
        return sum(
            1 for lines in self._sets for line in lines if line.is_dma
        )

    def verify_tags(self) -> int:
        """Tag-store structural invariants (REPRO_VALIDATE probe walk).

        Every line's address must map to the set holding it, tags must
        be unique within a set, and no set may exceed the
        associativity. Returns the number of lines checked; raises
        ``AssertionError`` on any violation (wrapped into an
        ``InvariantViolation`` by the validator probe).
        """
        checked = 0
        n_sets = self.n_sets
        for set_index, lines in enumerate(self._sets):
            assert len(lines) <= self.ways, (
                f"set {set_index}: {len(lines)} lines exceed "
                f"{self.ways} ways"
            )
            seen = set()
            for line in lines:
                home = line.addr % n_sets
                assert home == set_index, (
                    f"set {set_index}: line addr {line.addr} maps to "
                    f"set {home}"
                )
                assert line.addr not in seen, (
                    f"set {set_index}: duplicate tag {line.addr}"
                )
                seen.add(line.addr)
                checked += 1
        return checked

    @property
    def miss_ratio(self) -> float:
        """Misses / lookups since the last stats reset."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.misses / total

    def reset_stats(self) -> None:
        """Zero hit/miss counters (tag state is kept)."""
        self.hits = 0
        self.misses = 0
